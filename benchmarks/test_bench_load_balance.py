"""E10 — arbitration load balance across quorum constructions."""

from __future__ import annotations

from repro.experiments.load_balance import run_load_balance


def test_bench_load_balance(run_experiment):
    report = run_experiment(
        run_load_balance,
        n_sites=21,
        constructions=("grid", "tree", "hierarchical", "majority", "wheel"),
        requests_per_site=10,
    )
    rows = {row[0]: row for row in report.rows}
    assert rows["grid"][4] < 1.35          # near-balanced
    assert rows["majority"][4] < 1.35      # ring-balanced
    assert rows["tree"][4] > rows["grid"][4]   # root hotspot
    assert rows["wheel"][4] > rows["tree"][4]  # hub hotspot is worst
    assert rows["tree"][5] == 0            # the hotspot is the root
