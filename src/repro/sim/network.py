"""Network model: delay distributions and FIFO point-to-point channels.

The paper's system model (Section 2) assumes a fully connected network with
reliable channels, unpredictable but bounded message delay, and FIFO
delivery between any pair of sites. :class:`Network` implements exactly
that, with the delay drawn from a pluggable :class:`DelayModel`.

Delays are expressed in units of the mean message delay ``T`` so measured
synchronization delays read directly against the paper's ``T`` / ``2T``
claims. The fault-tolerance experiments additionally need crashed sites and
severed links, which the network models by silently dropping traffic to and
from crashed/partitioned endpoints (a crashed site neither sends nor
receives; the paper's Section 6 recovery protocol then repairs the
protocol-level state).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.common import slotted_dataclass
from repro.errors import ConfigurationError, SimulationError

SiteId = int


class DelayModel(ABC):
    """Distribution of one-way message latencies.

    Implementations must guarantee strictly positive samples (a zero delay
    would let a message arrive in the same instant it was sent, which the
    paper's model excludes and which would break FIFO tie-breaking).
    """

    __slots__ = ()

    @abstractmethod
    def sample(self, rng: random.Random, src: SiteId, dst: SiteId) -> float:
        """Return a latency sample for a message from ``src`` to ``dst``."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """The mean latency ``T`` of the model, used to normalize metrics."""


class ConstantDelay(DelayModel):
    """Every message takes exactly ``latency`` time units.

    Useful for analytical comparisons: with constant delay the measured
    synchronization delay of a correct run is *exactly* ``T`` or ``2T``.
    """

    __slots__ = ("_latency",)

    def __init__(self, latency: float = 1.0) -> None:
        if latency <= 0:
            raise ConfigurationError(f"latency must be positive, got {latency}")
        self._latency = float(latency)

    def sample(self, rng: random.Random, src: SiteId, dst: SiteId) -> float:
        return self._latency

    @property
    def mean(self) -> float:
        return self._latency

    def __repr__(self) -> str:
        return f"ConstantDelay({self._latency})"


class UniformDelay(DelayModel):
    """Latency drawn uniformly from ``[low, high]``."""

    __slots__ = ("_low", "_high")

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if not 0 < low <= high:
            raise ConfigurationError(
                f"need 0 < low <= high, got low={low}, high={high}"
            )
        self._low = float(low)
        self._high = float(high)

    def sample(self, rng: random.Random, src: SiteId, dst: SiteId) -> float:
        return rng.uniform(self._low, self._high)

    @property
    def mean(self) -> float:
        return (self._low + self._high) / 2.0

    def __repr__(self) -> str:
        return f"UniformDelay({self._low}, {self._high})"


class LogNormalDelay(DelayModel):
    """Latency from a log-normal distribution — the classic fit for WAN
    round-trip times (most messages near the mode, a long right tail)."""

    __slots__ = ("_mean", "_sigma", "_mu")

    def __init__(self, mean: float = 1.0, sigma: float = 0.5) -> None:
        if mean <= 0:
            raise ConfigurationError(f"mean must be positive, got {mean}")
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {sigma}")
        self._mean = float(mean)
        self._sigma = float(sigma)
        # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); solve for mu.
        import math

        self._mu = math.log(mean) - sigma * sigma / 2.0

    def sample(self, rng: random.Random, src: SiteId, dst: SiteId) -> float:
        return rng.lognormvariate(self._mu, self._sigma)

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"LogNormalDelay(mean={self._mean}, sigma={self._sigma})"


class ParetoDelay(DelayModel):
    """Heavy-tailed latency (shifted Pareto): occasional extreme stragglers.

    A stress model for the protocol's race windows — forwarded replies and
    releases can be reordered arbitrarily far. ``alpha`` must exceed 1 so
    the mean exists; smaller alpha = heavier tail.
    """

    __slots__ = ("_mean", "_alpha", "_scale")

    def __init__(self, mean: float = 1.0, alpha: float = 2.5) -> None:
        if mean <= 0:
            raise ConfigurationError(f"mean must be positive, got {mean}")
        if alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must exceed 1 for a finite mean, got {alpha}"
            )
        self._mean = float(mean)
        self._alpha = float(alpha)
        # E[x_m * X] with X ~ Pareto(alpha) is x_m * alpha/(alpha-1).
        self._scale = mean * (alpha - 1.0) / alpha

    def sample(self, rng: random.Random, src: SiteId, dst: SiteId) -> float:
        return self._scale * rng.paretovariate(self._alpha)

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"ParetoDelay(mean={self._mean}, alpha={self._alpha})"


class ExponentialDelay(DelayModel):
    """Latency drawn from a shifted exponential distribution.

    A pure exponential can sample arbitrarily close to zero; the paper's
    model requires positive delay, so the distribution is shifted by
    ``floor`` and scaled to keep the requested mean.
    """

    __slots__ = ("_mean", "_floor")

    def __init__(self, mean: float = 1.0, floor: float = 0.05) -> None:
        if mean <= floor:
            raise ConfigurationError(
                f"mean ({mean}) must exceed floor ({floor})"
            )
        self._mean = float(mean)
        self._floor = float(floor)

    def sample(self, rng: random.Random, src: SiteId, dst: SiteId) -> float:
        return self._floor + rng.expovariate(1.0 / (self._mean - self._floor))

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"ExponentialDelay(mean={self._mean}, floor={self._floor})"


@slotted_dataclass
class NetworkStats:
    """Aggregate counters the metrics layer reads after a run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    total_latency: float = 0.0
    by_type: Dict[str, int] = field(default_factory=dict)
    #: Messages addressed to each site — the arbitration-load signal used
    #: by experiment E10 (quorum constructions concentrate load very
    #: differently: grids are balanced, tree roots and wheel hubs are
    #: hotspots).
    by_destination: Dict[SiteId, int] = field(default_factory=dict)

    def record_send(self, type_name: str, dst: SiteId) -> None:
        self.messages_sent += 1
        self.by_type[type_name] = self.by_type.get(type_name, 0) + 1
        self.by_destination[dst] = self.by_destination.get(dst, 0) + 1


#: Signature of the simulator's delivery callback: ``(src, dst, payload)``.
#: The former ``Envelope`` dataclass was inlined into the event payload —
#: a message in flight is now the scheduled call
#: ``Network._deliver(src, dst, payload, latency)``, saving one allocation
#: and two attribute indirections per message.
DeliverCallback = Callable[[SiteId, SiteId, Any], None]


class Network:
    """Fully connected FIFO network with pluggable per-message delays.

    FIFO is enforced per ordered pair: the delivery time of each message is
    clamped to be strictly after the previous delivery on the same channel.
    This mirrors the common implementation of FIFO channels over a
    non-FIFO transport (sequence numbers + reordering buffer) without
    simulating the buffer itself.

    The network knows nothing about protocol messages; it transports opaque
    payloads and lets the scheduler own time. ``send`` returns the delivery
    time, which the trace layer records.
    """

    __slots__ = (
        "_sample",
        "_mean_delay",
        "_rng",
        "_schedule",
        "_now",
        "_last_delivery",
        "_deliver_cb",
        "_crashed",
        "_severed",
        "stats",
    )

    #: Minimal spacing between consecutive deliveries on one channel.
    FIFO_EPSILON = 1e-9

    def __init__(
        self,
        delay_model: DelayModel,
        rng: random.Random,
        schedule: Callable[..., Any],
        now: Callable[[], float],
    ) -> None:
        # The delay model is consulted once per send; bind its bound method
        # and mean up front so the hot path pays no repeated virtual lookup.
        self._sample = delay_model.sample
        self._mean_delay = delay_model.mean
        self._rng = rng
        self._schedule = schedule
        self._now = now
        self._last_delivery: Dict[Tuple[SiteId, SiteId], float] = {}
        self._deliver_cb: Optional[DeliverCallback] = None
        self._crashed: Set[SiteId] = set()
        self._severed: Set[Tuple[SiteId, SiteId]] = set()
        self.stats = NetworkStats()

    @property
    def mean_delay(self) -> float:
        """Mean one-way latency ``T`` of the configured delay model."""
        return self._mean_delay

    def on_deliver(self, callback: DeliverCallback) -> None:
        """Register the single delivery callback (set by the simulator)."""
        self._deliver_cb = callback

    # -- failure injection -------------------------------------------------

    def crash(self, site: SiteId) -> None:
        """Stop delivering to and accepting traffic from ``site``.

        Messages already in flight toward a crashed site are dropped at
        delivery time, modelling a fail-stop crash.
        """
        self._crashed.add(site)

    def recover(self, site: SiteId) -> None:
        """Allow ``site`` to communicate again (crash-recovery model)."""
        self._crashed.discard(site)

    def sever(self, a: SiteId, b: SiteId) -> None:
        """Cut the bidirectional link between ``a`` and ``b``."""
        self._severed.add((a, b))
        self._severed.add((b, a))

    def heal(self, a: SiteId, b: SiteId) -> None:
        """Restore the link between ``a`` and ``b``."""
        self._severed.discard((a, b))
        self._severed.discard((b, a))

    def is_crashed(self, site: SiteId) -> bool:
        """True if ``site`` is currently crashed."""
        return site in self._crashed

    # -- transport ---------------------------------------------------------

    def send(
        self,
        src: SiteId,
        dst: SiteId,
        payload: Any,
        type_name: str,
        piggybacked: bool = False,
    ) -> Optional[float]:
        """Queue ``payload`` for FIFO delivery from ``src`` to ``dst``.

        Returns the delivery time, or ``None`` when the message was dropped
        because an endpoint is crashed or the link is severed. ``type_name``
        feeds the per-type message counters; a piggyback bundle is counted
        once under its combined name, following the paper's costing rule
        (Section 5: a piggybacked control message counts as one message).
        """
        if self._deliver_cb is None:
            raise SimulationError("network has no delivery callback installed")
        if src == dst:
            raise SimulationError(
                "self-delivery must be handled locally by the node layer, "
                f"site {src} tried to send {type_name} to itself"
            )
        stats = self.stats
        if self._crashed or self._severed:
            if (
                src in self._crashed
                or dst in self._crashed
                or (src, dst) in self._severed
            ):
                stats.messages_dropped += 1
                return None

        stats.messages_sent += 1
        by_type = stats.by_type
        by_type[type_name] = by_type.get(type_name, 0) + 1
        by_destination = stats.by_destination
        by_destination[dst] = by_destination.get(dst, 0) + 1

        now = self._now()
        delay = self._sample(self._rng, src, dst)
        if delay <= 0:
            raise SimulationError(f"delay model produced non-positive delay {delay}")
        channel = (src, dst)
        deliver_at = now + delay
        last_delivery = self._last_delivery
        prev = last_delivery.get(channel)
        if prev is not None:
            fifo_floor = prev + 1e-9  # FIFO_EPSILON, inlined as a constant
            if deliver_at < fifo_floor:
                deliver_at = fifo_floor
        last_delivery[channel] = deliver_at
        self._schedule(
            deliver_at,
            self._deliver,
            (src, dst, payload, deliver_at - now),
            type_name,
        )
        return deliver_at

    def _deliver(self, src: SiteId, dst: SiteId, payload: Any, latency: float) -> None:
        """Hand a due message to the delivery callback unless dropped."""
        if self._crashed and (dst in self._crashed or src in self._crashed):
            self.stats.messages_dropped += 1
            return
        if self._severed and (src, dst) in self._severed:
            self.stats.messages_dropped += 1
            return
        stats = self.stats
        stats.messages_delivered += 1
        stats.total_latency += latency
        self._deliver_cb(src, dst, payload)
