"""Heartbeat-based failure detection.

The paper assumes "a site finds out that a site has failed" without
prescribing how. This module provides the standard mechanism: every
monitored site emits periodic heartbeats to its peers; a peer that sees no
heartbeat for ``timeout`` time units suspects the silent site and invokes a
callback (which, in :class:`repro.ft.recovery.MonitoredSite`, broadcasts
the paper's ``failure(i)`` notice).

In a fail-stop model with bounded message delay, ``timeout`` >
``interval + max_delay`` makes the detector *eventually perfect*: no false
suspicions after the bound holds, and every crash is detected within
``timeout``. The experiments also use a zero-cost oracle injector (see
:mod:`repro.ft.recovery`) when detector traffic would pollute message
counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Set

from repro.errors import ConfigurationError
from repro.sim.node import Node
from repro.substrate import SiteId


@dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness beacon."""

    type_name = "heartbeat"


class HeartbeatMonitor:
    """Failure detector component owned by one site.

    Parameters
    ----------
    node:
        The owning simulated site (used for timers, clock, and sends).
    peers:
        The sites to exchange heartbeats with.
    interval:
        Emission period.
    timeout:
        Silence threshold after which a peer is suspected.
    lifetime:
        Simulated time at which the monitor stops scheduling itself, so
        finite experiments can drain their event queues.
    on_suspect:
        Callback invoked exactly once per suspected site.
    """

    def __init__(
        self,
        node: Node,
        peers: Iterable[SiteId],
        interval: float,
        timeout: float,
        lifetime: float,
        on_suspect: Callable[[SiteId], None],
    ) -> None:
        if interval <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval}")
        if timeout <= interval:
            raise ConfigurationError(
                f"timeout ({timeout}) must exceed interval ({interval})"
            )
        self.node = node
        self.peers = sorted(set(peers) - {node.site_id})
        self.interval = interval
        self.timeout = timeout
        self.lifetime = lifetime
        self.on_suspect = on_suspect
        self.last_seen: Dict[SiteId, float] = {}
        self.suspected: Set[SiteId] = set()
        self._started = False

    def start(self) -> None:
        """Begin emitting and checking. Call from ``Node.on_start``."""
        if self._started:
            return
        self._started = True
        now = self.node.now
        for peer in self.peers:
            self.last_seen[peer] = now
        self._emit()
        self.node.set_timer(self.timeout, self._check, label="hb-check")

    def observe(self, src: SiteId) -> Optional[SiteId]:
        """Record evidence of life (call for *any* message, not just
        heartbeats — protocol traffic proves liveness too).

        Returns ``src`` when the message *refutes* a standing suspicion —
        the site was presumed dead (crashed, or cut off by a partition)
        and is demonstrably back. The owner then runs its recovery path
        (``on_suspect``'s dual). This is what makes the detector heal
        after network partitions: suspicions raised while the link was
        down are withdrawn by the first message through the healed link.
        """
        if src in self.last_seen:
            self.last_seen[src] = self.node.now
        if src in self.suspected:
            self.suspected.discard(src)
            return src
        return None

    def force_suspect(self, peer: SiteId) -> None:
        """Adopt an externally sourced suspicion (e.g. a reliable-channel
        give-up after ``max_retries`` retransmissions went unacked).

        Runs the same ``on_suspect`` path as a heartbeat timeout, at most
        once per standing suspicion; evidence of life later withdraws it
        through :meth:`observe` exactly as for timeout-raised suspicions.
        """
        if peer not in self.last_seen or peer in self.suspected:
            return
        self.suspected.add(peer)
        self.on_suspect(peer)

    # -- internals -------------------------------------------------------------

    def _emit(self) -> None:
        if self.node.now > self.lifetime:
            return
        for peer in self.peers:
            # Suspected peers are beaconed too: if the silence was a
            # partition rather than a crash, these are the messages that
            # refute the suspicion once the link heals. (To a genuinely
            # crashed peer they are dropped by the network for free.)
            self.node.send(peer, Heartbeat())
        self.node.set_timer(self.interval, self._emit, label="hb-emit")

    def _check(self) -> None:
        if self.node.now > self.lifetime:
            return
        now = self.node.now
        for peer in self.peers:
            if peer in self.suspected:
                continue
            if now - self.last_seen[peer] > self.timeout:
                self.suspected.add(peer)
                self.on_suspect(peer)
        self.node.set_timer(self.interval, self._check, label="hb-check")
