"""Tests for the reliable-channel layer: exactly-once FIFO delivery over
a lossy/duplicating/reordering network, ack piggybacking, bounded-retry
give-up, and the fail-stop epoch contract."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.network import ConstantDelay, FaultModel, UniformDelay
from repro.sim.node import Node
from repro.sim.simulator import Simulator
from repro.sim.transport import ReliableConfig


class Sink(Node):
    def __init__(self, site_id):
        super().__init__(site_id)
        self.received = []

    def on_message(self, src, message):
        self.received.append(message)


class Echo(Sink):
    """Replies to every ``ping`` — generates the reverse data traffic
    that cumulative acks piggyback on."""

    def on_message(self, src, message):
        super().on_message(src, message)
        if isinstance(message, str) and message.startswith("ping"):
            self.send(src, "pong" + message[4:])


def make_pair(fault_model=None, config=None, seed=0, delay=None, node_cls=Sink):
    sim = Simulator(
        seed=seed,
        delay_model=delay or ConstantDelay(1.0),
        fault_model=fault_model,
    )
    transport = sim.install_transport(config)
    a, b = node_cls(0), node_cls(1)
    sim.add_node(a)
    sim.add_node(b)
    sim.start()
    return sim, transport, a, b


# -- configuration ------------------------------------------------------------


@pytest.mark.parametrize("kwargs", [
    dict(rto=0.0),
    dict(backoff=0.5),
    dict(rto=5.0, rto_max=1.0),
    dict(max_retries=0),
    dict(ack_delay=-1.0),
])
def test_reliable_config_validation(kwargs):
    with pytest.raises(ConfigurationError):
        ReliableConfig(**kwargs)


def test_install_transport_guards():
    sim = Simulator(seed=0, delay_model=ConstantDelay(1.0))
    sim.install_transport()
    with pytest.raises(SimulationError):
        sim.install_transport()
    sim2 = Simulator(seed=0, delay_model=ConstantDelay(1.0))
    sim2.start()
    with pytest.raises(SimulationError):
        sim2.install_transport()


# -- exactly-once FIFO over a hostile network ---------------------------------


@pytest.mark.parametrize("fault_model", [
    FaultModel(loss=0.3),
    FaultModel(duplicate=0.5),
    FaultModel(reorder=0.6),
    FaultModel(loss=0.25, duplicate=0.25, reorder=0.5),
])
def test_exactly_once_fifo_under_faults(fault_model):
    sim, transport, a, b = make_pair(
        fault_model, seed=11, delay=UniformDelay(0.5, 1.5)
    )
    n = 40
    for i in range(n):
        a.send(1, i)
    sim.run()
    # Whatever the network did, the protocol observed a perfect channel.
    assert b.received == list(range(n))
    assert transport.stats.delivered == n


def test_loss_triggers_retransmission_and_dedup_absorbs_duplicates():
    sim, transport, a, b = make_pair(FaultModel(loss=0.4, duplicate=0.4), seed=2)
    for i in range(30):
        a.send(1, i)
    sim.run()
    assert b.received == list(range(30))
    assert transport.stats.retransmitted > 0
    assert transport.stats.deduped > 0


def test_reorder_fills_buffer_then_drains_in_order():
    sim, transport, a, b = make_pair(FaultModel(reorder=0.7), seed=4)
    for i in range(30):
        a.send(1, i)
    sim.run()
    assert b.received == list(range(30))
    assert transport.stats.buffered > 0


def test_clean_network_never_retransmits():
    sim, transport, a, b = make_pair()
    for i in range(10):
        a.send(1, i)
    sim.run()
    assert b.received == list(range(10))
    assert transport.stats.retransmitted == 0
    assert transport.stats.deduped == 0


# -- ack costing --------------------------------------------------------------


def test_acks_piggyback_on_reverse_data():
    sim, transport, a, b = make_pair(node_cls=Echo)
    for i in range(10):
        a.send(1, f"ping{i}")
    sim.run()
    assert [m for m in a.received] == [f"pong{i}" for i in range(10)]
    # Replies leave within the delayed-ack window, so most acks ride them
    # for free (the paper's Section 5 costing rule).
    assert transport.stats.acks_piggybacked > 0


def test_one_way_traffic_pays_pure_acks():
    sim, transport, a, b = make_pair()
    a.send(1, "only")
    sim.run()
    assert transport.stats.acks_sent > 0
    assert transport.stats.acks_piggybacked == 0
    assert sim.network.stats.by_type.get("ack", 0) == transport.stats.acks_sent


# -- bounded retries and epoch recovery ---------------------------------------


def test_give_up_after_max_retries_then_heal_recovers():
    config = ReliableConfig(rto=0.5, backoff=1.0, rto_max=0.5, max_retries=2)
    sim, transport, a, b = make_pair(config=config)
    given_up = []
    transport.on_give_up = lambda src, dst: given_up.append((src, dst))

    sim.network.sever(0, 1)
    a.send(1, "into-the-void")
    sim.run()
    assert given_up == [(0, 1)]
    assert transport.stats.give_ups == 1
    assert transport.unacked_counts() == {}  # the channel reset
    assert b.received == []

    # Post-heal traffic starts a new epoch and flows normally; the
    # abandoned message is lost for good, never delivered late.
    sim.network.heal(0, 1)
    a.send(1, "after-heal")
    sim.run()
    assert b.received == ["after-heal"]


def test_crash_reset_never_resurrects_in_flight_traffic():
    sim, transport, a, b = make_pair()
    a.send(1, "pre-crash")
    sim.schedule(0.5, lambda: sim.crash(0))
    sim.schedule(2.0, lambda: sim.recover(0))
    sim.schedule(3.0, lambda: a.send(1, "post-recovery"))
    sim.run()
    # Fail-stop: the pre-crash segment was dropped in flight and the
    # sender's channel state died with it — no retransmission brings it
    # back after recovery.
    assert b.received == ["post-recovery"]


def test_non_segment_frames_pass_through():
    sim, transport, a, b = make_pair()
    sim.network.send(0, 1, "raw-frame", "raw")
    sim.run()
    assert b.received == ["raw-frame"]
