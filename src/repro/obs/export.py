"""Trace export/import: stable-schema JSONL for ``TraceRecord`` streams.

A trace that caught (or just preceded) an invariant violation is the
single most useful debugging artifact a CI run can leave behind — but
only if it survives the process. This module serializes a trace to JSON
Lines with full round-trip fidelity: records decode back to equal
``TraceRecord`` objects, message payloads included, so the runtime
monitor can :meth:`~repro.obs.monitor.ProtocolMonitor.replay` an
imported trace exactly as it would have seen it live.

Schema (``repro-trace/1``) — one JSON object per line:

* Line 1, the header: ``{"schema": "repro-trace/1", "meta": {...}}``.
  ``meta`` is free-form run context (algorithm, sites, seed, ...).
* Every further line, one record: ``{"t": time, "k": kind, "s": site,
  "d": detail}`` (``d`` omitted when the detail is ``None``).

Detail encoding is by tagged objects, recursively:

* ``{"$p": [seq, site]}`` — a :class:`~repro.common.Priority`;
* ``{"$m": "ClassName", "f": {...}}`` — a protocol message dataclass,
  found by class name in a registry built from the known message
  modules (``Bundle`` included: its ``parts`` tuple round-trips);
* JSON arrays decode to tuples (messages never carry lists);
* ``{"$r": "repr"}`` — anything unknown, wrapped as an :class:`Opaque`
  placeholder that preserves equality on the repr text.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
from typing import Any, Dict, Iterable, List, Optional

from repro.common import Priority, slotted_dataclass
from repro.errors import ConfigurationError
from repro.sim.trace import TraceRecord

SCHEMA = "repro-trace/1"

#: Modules whose dataclasses with a ``type_name`` are wire messages.
_MESSAGE_MODULES = (
    "repro.common",
    "repro.core.messages",
    "repro.mutex.maekawa",
    "repro.mutex.ricart_agrawala",
    "repro.mutex.suzuki_kasami",
    "repro.mutex.raymond",
    "repro.mutex.lamport",
    "repro.mutex.centralized",
    "repro.mutex.singhal_heuristic",
    "repro.mutex.roucairol_carvalho",
    "repro.ft.detector",
    "repro.replication.messages",
)

_registry: Optional[Dict[str, type]] = None


@slotted_dataclass(frozen=True)
class Opaque:
    """Placeholder for a detail value the schema cannot reconstruct."""

    text: str


@slotted_dataclass(frozen=True)
class TraceFile:
    """An imported trace: header metadata plus the decoded records."""

    schema: str
    meta: Dict[str, Any]
    records: List[TraceRecord]

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


def _message_registry() -> Dict[str, type]:
    """Class-name -> class for every known wire-message dataclass.

    Built lazily so importing :mod:`repro.obs` does not pull in every
    algorithm module. Class names are unique across the codebase (the
    per-algorithm prefixes — ``Mk*``, ``RA*`` — exist for this reason);
    a collision would corrupt decoding, so it is a hard error.
    """
    global _registry
    if _registry is not None:
        return _registry
    registry: Dict[str, type] = {}
    for module_name in _MESSAGE_MODULES:
        try:
            module = importlib.import_module(module_name)
        except ImportError:  # pragma: no cover - optional algorithm module
            continue
        for obj in vars(module).values():
            if (
                isinstance(obj, type)
                and dataclasses.is_dataclass(obj)
                and hasattr(obj, "type_name")
            ):
                existing = registry.get(obj.__name__)
                if existing is not None and existing is not obj:
                    raise ConfigurationError(
                        f"message class name collision: {obj.__name__} in "
                        f"{existing.__module__} and {obj.__module__}"
                    )
                registry[obj.__name__] = obj
    _registry = registry
    return registry


def _encode_detail(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Priority):
        return {"$p": [value.seq, value.site]}
    if isinstance(value, Opaque):
        return {"$r": value.text}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "$m": type(value).__name__,
            "f": {
                field.name: _encode_detail(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, (list, tuple)):
        return [_encode_detail(item) for item in value]
    return {"$r": repr(value)}


def _decode_detail(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_decode_detail(item) for item in value)
    if not isinstance(value, dict):
        return value
    if "$p" in value:
        seq, site = value["$p"]
        return Priority(seq, site)
    if "$m" in value:
        cls = _message_registry().get(value["$m"])
        if cls is None:
            raise ConfigurationError(
                f"trace names unknown message class {value['$m']!r}"
            )
        fields = {
            name: _decode_detail(item) for name, item in value["f"].items()
        }
        return cls(**fields)
    if "$r" in value:
        return Opaque(value["$r"])
    raise ConfigurationError(f"unrecognized detail encoding: {value!r}")


def encode_value(value: Any) -> Any:
    """Encode one detail value (message, Priority, tuple, scalar) to the
    JSON-ready tagged form. Public entry point for other serializers —
    the UDP wire format in :mod:`repro.net.wire` reuses it so datagrams
    and trace records share one message codec."""
    return _encode_detail(value)


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    return _decode_detail(value)


def encode_record(rec: TraceRecord) -> str:
    """One record as its JSONL line (no trailing newline)."""
    row: Dict[str, Any] = {"t": rec.time, "k": rec.kind, "s": rec.site}
    if rec.detail is not None:
        row["d"] = _encode_detail(rec.detail)
    return json.dumps(row, separators=(",", ":"))


def decode_record(line: str) -> TraceRecord:
    """Inverse of :func:`encode_record`."""
    row = json.loads(line)
    return TraceRecord(
        time=row["t"],
        kind=row["k"],
        site=row["s"],
        detail=_decode_detail(row["d"]) if "d" in row else None,
    )


def export_jsonl(
    records: Iterable[TraceRecord],
    path,
    meta: Optional[Dict[str, Any]] = None,
) -> int:
    """Write a header plus one line per record; returns the record count.

    ``path`` is a filesystem path or any text file object (``write``
    suffices) — the latter is what lets the CLI stream a trace to
    stdout with ``--out -``. A passed-in file object is not closed.
    """
    count = 0
    if hasattr(path, "write"):
        fh = path
        close = False
    else:
        fh = open(path, "w", encoding="utf-8")
        close = True
    try:
        header: Dict[str, Any] = {"schema": SCHEMA}
        if meta:
            header["meta"] = meta
        fh.write(json.dumps(header, separators=(",", ":")) + "\n")
        for rec in records:
            fh.write(encode_record(rec) + "\n")
            count += 1
    finally:
        if close:
            fh.close()
    return count


def import_jsonl(path) -> TraceFile:
    """Read a JSONL trace back into decoded records (strict on schema).

    ``path`` is a filesystem path or any iterable of lines (an open
    text file, ``sys.stdin``, a list). A passed-in object is consumed,
    not closed.
    """
    if hasattr(path, "read") or not isinstance(path, (str, bytes)):
        return _import_lines(iter(path), label="<stream>")
    with open(path, "r", encoding="utf-8") as fh:
        return _import_lines(iter(fh), label=str(path))


def _import_lines(lines, label: str) -> TraceFile:
    header_line = next(lines, "")
    if not header_line.strip():
        raise ConfigurationError(f"{label}: empty trace file")
    header = json.loads(header_line)
    schema = header.get("schema")
    if schema != SCHEMA:
        raise ConfigurationError(
            f"{label}: unsupported trace schema {schema!r} "
            f"(expected {SCHEMA!r})"
        )
    records = [decode_record(line) for line in lines if line.strip()]
    return TraceFile(
        schema=schema, meta=header.get("meta", {}), records=records
    )
