"""The discrete-event simulator tying clock, network, and nodes together.

Usage sketch::

    sim = Simulator(seed=7, delay_model=ConstantDelay(1.0))
    for i in range(N):
        sim.add_node(MySite(i, ...))
    sim.start()
    sim.run(until=10_000)

The simulator is deliberately small: it owns the clock and the event queue,
delegates transport to :class:`repro.sim.network.Network`, and dispatches
deliveries to :meth:`repro.sim.node.Node.on_message`. Determinism comes
from the seeded RNG streams and the stable event tie-break; two simulators
built with the same seed and the same construction order replay the exact
same history.

Scheduling goes through one kernel API, :meth:`Simulator.schedule_call`:
callbacks are stored as ``(fn, args)`` pairs so the hot path (one network
delivery per message) allocates a single slotted event instead of a
closure per send. :meth:`Simulator.schedule` remains as the zero-argument
convenience wrapper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple, Union

from repro.errors import SimulationError
from repro.sim.event import Event, EventQueue
from repro.sim.network import DelayModel, FaultModel, Network, UniformDelay
from repro.sim.node import Node
from repro.sim.rng import SeedSequence
from repro.sim.trace import NullTrace, Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.transport import ReliableTransport

SiteId = int


class Simulator:
    """Deterministic discrete-event simulator for message-passing systems."""

    __slots__ = (
        "seeds",
        "_queue",
        "_now",
        "_started",
        "nodes",
        "trace",
        "network",
        "transport",
        "_plain_delivery",
        "events_processed",
        "last_event_time",
    )

    def __init__(
        self,
        seed: int = 0,
        delay_model: Optional[DelayModel] = None,
        trace: Union[bool, Trace] = False,
        trace_capacity: Optional[int] = None,
        fault_model: Optional[FaultModel] = None,
    ) -> None:
        self.seeds = SeedSequence(seed)
        self._queue = EventQueue()
        self._now = 0.0
        self._started = False
        self.nodes: Dict[SiteId, Node] = {}
        #: ``trace`` may be a bool (build a Trace/NullTrace) or a ready
        #: Trace instance — Trace and NullTrace are swappable here and the
        #: call sites (``sim.trace.record(...)``) never need to know.
        if isinstance(trace, Trace):
            self.trace = trace
        elif trace:
            self.trace = Trace(enabled=True, capacity=trace_capacity)
        else:
            self.trace = NullTrace()
        # Fault decisions get their own stream (named by chaos_seed so the
        # same run seed can replay under a different fault pattern);
        # deriving it only when faults are on leaves every fault-free run's
        # RNG usage untouched.
        # The network schedules deliveries straight onto the event queue:
        # ``deliver_at`` is always >= now (positive delays, and the FIFO
        # floor only pushes times later), so the past-check in
        # :meth:`_schedule_at` can never fire and is skipped.
        self.network = Network(
            delay_model=delay_model or UniformDelay(0.5, 1.5),
            rng=self.seeds.derive("network"),
            schedule=self._queue.push,
            now=lambda: self._now,
            fault_model=fault_model,
            fault_rng=(
                self.seeds.derive(f"faults#{fault_model.chaos_seed}")
                if fault_model is not None
                else None
            ),
        )
        self.network.on_deliver(self._dispatch)
        # Fused delivery: the network schedules this simulator method
        # directly for due messages, collapsing the former two-hop
        # ``Network._deliver`` → ``Simulator._dispatch`` chain into one
        # callback per message. The checks run in the exact order of the
        # two-hop path, so drop accounting and traces are byte-identical.
        self.network.set_deliver_event(self._deliver_event)
        #: Optional reliable-channel layer (see :meth:`install_transport`);
        #: ``None`` means nodes talk straight to the raw network.
        self.transport: Optional["ReliableTransport"] = None
        #: True once start() has established that deliveries need no
        #: transport hop and no trace record (fast-path precondition).
        self._plain_delivery = False
        #: Number of events processed so far (cheap progress/health metric).
        self.events_processed = 0
        #: Time of the most recently processed event. Unlike :attr:`now`,
        #: this never jumps to ``run(until=...)``'s bound, so it measures
        #: when simulated *activity* ended (the duration the metrics layer
        #: normalizes by).
        self.last_event_time = 0.0

    # -- construction ------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Register ``node``; its ``site_id`` must be unique."""
        if node.site_id in self.nodes:
            raise SimulationError(f"duplicate site id {node.site_id}")
        if self._started:
            raise SimulationError("cannot add nodes after start()")
        node.bind(self)
        self.nodes[node.site_id] = node
        return node

    def install_transport(self, config=None):
        """Layer reliable channels between nodes and the raw network.

        Every subsequent :meth:`Node.send` routes through a
        :class:`~repro.sim.transport.ReliableTransport` (sequence numbers,
        cumulative acks, retransmission, dedup/reorder buffering) which
        re-presents exactly-once FIFO delivery to ``on_message``. Call
        before :meth:`start`. Returns the transport for give-up wiring.
        """
        from repro.sim.transport import ReliableConfig, ReliableTransport

        if self._started:
            raise SimulationError("cannot install a transport after start()")
        if self.transport is not None:
            raise SimulationError("a transport is already installed")
        self.transport = ReliableTransport(self, config or ReliableConfig())
        return self.transport

    def start(self) -> None:
        """Invoke every node's ``on_start`` hook. Idempotent."""
        if self._started:
            return
        self._started = True
        # Deliveries may take the check-free fast path only when nothing
        # sits between the network and the node callback (see
        # :meth:`_deliver_event`); both conditions are fixed by start time.
        self._plain_delivery = self.transport is None and not self.trace.enabled
        if self.transport is None:
            # No reliable-channel layer: nodes may talk straight to the
            # raw network, skipping the per-send transport check in
            # :meth:`send`. The fast path is bound per node here because
            # transports can only be installed before start().
            network_send = self.network.send
            for node in self.nodes.values():
                node._net_send = network_send
        for node in self.nodes.values():
            node.on_start()

    # -- clock & scheduling --------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def schedule(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule zero-argument ``action`` to run ``delay`` units from now.

        Convenience wrapper over :meth:`schedule_call` for closures and
        bound methods that need no arguments.
        """
        return self.schedule_call(delay, action, (), label)

    def schedule_call(
        self,
        delay: float,
        fn: Callable[..., None],
        args: Tuple[Any, ...] = (),
        label: str = "",
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now.

        This is the kernel scheduling API: binding arguments in the event
        instead of a closure keeps per-event allocation to one slotted
        object. Returns the :class:`Event` handle, which supports
        ``cancel()``.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self._now + delay, fn, args, label)

    def _schedule_at(
        self,
        time: float,
        fn: Callable[..., None],
        args: Tuple[Any, ...] = (),
        label: str = "",
    ) -> Event:
        """Absolute-time scheduling used by the network layer."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        return self._queue.push(time, fn, args, label)

    # -- substrate send path ---------------------------------------------------

    def send(
        self,
        src: SiteId,
        dst: SiteId,
        message: Any,
        type_name: str,
        piggybacked: bool = False,
    ) -> None:
        """Accept one protocol message from a node (substrate interface).

        Routes through the reliable-channel transport when one is
        installed, else straight to the raw network — the transport
        selection that used to live in :meth:`repro.sim.node.Node.send`,
        hoisted here so nodes depend only on the substrate interface.
        """
        transport = self.transport
        if transport is not None:
            transport.send(src, dst, message, type_name, piggybacked)
            return
        self.network.send(src, dst, message, type_name, piggybacked, self._now)

    def send_many(
        self,
        src: SiteId,
        dsts: Any,
        message: Any,
        type_name: str,
        piggybacked: bool = False,
    ) -> None:
        """Accept one protocol message addressed to several sites.

        The batched counterpart of :meth:`send`, used for quorum
        broadcasts. With a transport installed it degrades to one
        transport send per destination (channels are stateful); on the
        raw network it takes :meth:`Network.send_many`'s batch path.
        """
        transport = self.transport
        if transport is not None:
            for dst in dsts:
                transport.send(src, dst, message, type_name, piggybacked)
            return
        self.network.send_many(src, dsts, message, type_name, piggybacked, self._now)

    def raw_send(
        self,
        src: SiteId,
        dst: SiteId,
        frame: Any,
        type_name: str,
        piggybacked: bool = False,
    ) -> None:
        """Put one frame on the modelled network, bypassing the transport
        (the reliable-channel layer's down-call)."""
        self.network.send(src, dst, frame, type_name, piggybacked, self._now)

    def is_crashed(self, site: SiteId) -> bool:
        """True if hosted ``site`` is currently crashed (substrate API)."""
        return self.nodes[site].crashed

    def rng(self, name: str) -> Any:
        """Named deterministic RNG stream derived from the run seed."""
        return self.seeds.derive(name)

    # -- delivery ------------------------------------------------------------

    def _dispatch(self, src: SiteId, dst: SiteId, payload: Any) -> None:
        """Deliver a message to its destination node."""
        node = self.nodes.get(dst)
        if node is None:
            raise SimulationError(f"message addressed to unknown site {dst}")
        if node.crashed:
            self.network.stats.messages_dropped += 1
            return
        transport = self.transport
        if transport is not None:
            # Raw network frames are transport segments; the transport
            # unwraps, dedups, and re-orders, then hands the protocol
            # payloads back through deliver_protocol.
            transport.on_network_deliver(src, dst, payload)
            return
        trace = self.trace
        if trace.enabled:
            trace.record(self._now, "deliver", dst, payload)
        node.on_message(src, payload)

    def _deliver_event(
        self,
        src: SiteId,
        dst: SiteId,
        payload: Any,
        latency: float,
        inc: int = 0,
    ) -> None:
        """Fused due-message delivery (network drop checks + node dispatch).

        Scheduled by :meth:`Network.send` in place of the two-hop
        ``Network._deliver`` → :meth:`_dispatch` chain. Every check runs in
        the same order as the layered path: network-level drops (crash,
        incarnation, severed link) first, then delivered/latency
        accounting, then node-level dispatch — so all counters, traces,
        and error paths are byte-identical, one Python call cheaper.

        Fast path: while no crash or link cut has *ever* happened
        (``Network._ever_faulted``), every network-level drop check is
        vacuously false — the crashed/severed/incarnation tables are all
        empty — so a plain run (no transport, no trace) skips straight to
        the counters and the node callback. The flag latches one way
        (recover/heal never clear it), so in-flight messages sent before
        the first fault are still drop-checked after it.
        """
        network = self.network
        if self._plain_delivery and not network._ever_faulted:
            stats = network.stats
            stats.messages_delivered += 1
            stats.total_latency += latency
            node = self.nodes.get(dst)
            if node is None:
                raise SimulationError(f"message addressed to unknown site {dst}")
            if node.crashed:
                stats.messages_dropped += 1
                return
            node.on_message(src, payload)
            return
        stats = network.stats
        if network._crashed and (dst in network._crashed or src in network._crashed):
            stats.messages_dropped += 1
            return
        if network._incarnation and inc != network._incarnation.get(src, 0):
            stats.messages_dropped += 1
            return
        if network._severed and (src, dst) in network._severed:
            stats.messages_dropped += 1
            return
        stats.messages_delivered += 1
        stats.total_latency += latency
        node = self.nodes.get(dst)
        if node is None:
            raise SimulationError(f"message addressed to unknown site {dst}")
        if node.crashed:
            stats.messages_dropped += 1
            return
        transport = self.transport
        if transport is not None:
            transport.on_network_deliver(src, dst, payload)
            return
        trace = self.trace
        if trace.enabled:
            trace.record(self._now, "deliver", dst, payload)
        node.on_message(src, payload)

    def deliver_protocol(self, src: SiteId, dst: SiteId, message: Any) -> None:
        """Deliver an unwrapped protocol message (transport layer exit)."""
        node = self.nodes[dst]
        if node.crashed:
            return
        trace = self.trace
        if trace.enabled:
            trace.record(self._now, "deliver", dst, message)
        node.on_message(src, message)

    def deliver_local(self, site: SiteId, message: Any) -> None:
        """Deliver a self-addressed message (no network, no message cost)."""
        node = self.nodes[site]
        if node.crashed:
            return
        trace = self.trace
        if trace.enabled:
            trace.record(self._now, "deliver-local", site, message)
        node.on_message(site, message)

    # -- failure injection -----------------------------------------------------

    def crash(self, site: SiteId) -> None:
        """Fail-stop ``site``: drop its traffic and silence its timers."""
        node = self.nodes[site]
        if node.crashed:
            return
        node.crashed = True
        self.network.crash(site)
        if self.transport is not None:
            # Fail-stop: channel state touching the site is lost, and
            # retransmission must never resurrect its in-flight traffic.
            self.transport.reset_site(site)
        self.trace.record(self._now, "crash", site)
        node.on_crash()

    def recover(self, site: SiteId) -> None:
        """Bring a crashed ``site`` back (crash-recovery model)."""
        node = self.nodes[site]
        if not node.crashed:
            return
        node.crashed = False
        self.network.recover(site)
        self.trace.record(self._now, "recover", site)
        node.on_recover()

    # -- main loop -------------------------------------------------------------

    def step(self) -> bool:
        """Process one event. Returns False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now:
            raise SimulationError("time went backwards")
        self._now = event.time
        self.last_event_time = event.time
        self.events_processed += 1
        event.fn(*event.args)
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until the event queue drains, ``until`` is reached, or
        ``max_events`` further events have been processed.

        ``until`` is inclusive: events scheduled exactly at ``until`` fire.

        The loop executes whole same-timestamp *cohorts*
        (:meth:`EventQueue.pop_cohort`): the clock is written once per
        cohort instead of once per event, and the heap is only consulted
        between cohorts. Events scheduled at the current instant from
        inside a cohort form the *next* cohort at the same timestamp
        (their sequence numbers are strictly larger), so the fired order
        is exactly the per-event ``(time, seq)`` order — cohort execution
        replays the same history byte-for-byte.

        Clock semantics: when ``until`` is given and the loop stops because
        the queue drained *or* the next event lies beyond ``until``, the
        clock advances to ``until`` (both stop paths behave identically, so
        ``sim.now`` always equals ``until`` afterwards). When the loop
        stops because ``max_events`` ran out, the clock stays at the last
        processed event — the run is mid-flight, not "caught up to"
        ``until``. If a callback raises, the unfired remainder of its
        cohort is requeued (original times and sequence numbers) before
        the exception propagates, so the queue still holds every pending
        event.
        """
        pop_cohort = self._queue.pop_cohort
        budget = max_events
        processed = 0
        caught_up = True
        buf: list = []
        cohort: list = buf
        event: Optional[Event] = None
        try:
            if budget is None:
                while True:
                    event = None
                    cohort = pop_cohort(until, buf)
                    if not cohort:
                        break
                    self._now = cohort[0].time
                    for event in cohort:
                        # Re-check: an earlier cohort member may have
                        # cancelled this one after it was popped.
                        if event.cancelled:
                            continue
                        processed += 1
                        event.fn(*event.args)
            else:
                while True:
                    if budget <= 0:
                        # Budget ran out mid-flight: clock stays put.
                        caught_up = False
                        break
                    event = None
                    cohort = pop_cohort(until, buf)
                    if not cohort:
                        break
                    self._now = cohort[0].time
                    if budget >= len(cohort):
                        # Whole cohort fits in the budget (cancelled
                        # members never consume budget, so live count
                        # <= len(cohort) is a safe bound).
                        before = processed
                        for event in cohort:
                            if event.cancelled:
                                continue
                            processed += 1
                            event.fn(*event.args)
                        budget -= processed - before
                    else:
                        # Budget may run out mid-cohort: fire one at a
                        # time and requeue the unfired tail.
                        for idx, event in enumerate(cohort):
                            if event.cancelled:
                                continue
                            if budget <= 0:
                                caught_up = False
                                self._queue.requeue(cohort[idx:])
                                break
                            budget -= 1
                            processed += 1
                            event.fn(*event.args)
                        event = None
                        if not caught_up:
                            break
        except BaseException:
            # A callback raised: put the unfired tail of the current
            # cohort back so the queue stays complete.
            if event is not None:
                pos = cohort.index(event)
                self._queue.requeue(cohort[pos + 1 :])
            raise
        finally:
            # Keep the counters truthful even when a callback raises; at
            # this point _now is still the last processed event's time.
            self.events_processed += processed
            if processed:
                self.last_event_time = self._now
        if caught_up and until is not None and until > self._now:
            self._now = until

    def run_instrumented(
        self,
        observer: Callable[[str, float], None],
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Like :meth:`run`, but time every event callback.

        ``observer(label, elapsed_seconds)`` is called once per processed
        event with the event's schedule label and its wall-clock callback
        duration — the hook the opt-in profiler in
        :mod:`repro.obs.profile` aggregates. A separate method (rather
        than a branch in :meth:`run`) so the default loop stays exactly
        the hot path the benchmark measures; both loops execute the same
        cohorts and process the identical event history for a given seed.
        """
        import time as _time

        perf = _time.perf_counter
        pop_cohort = self._queue.pop_cohort
        budget = max_events
        processed = 0
        caught_up = True
        buf: list = []
        cohort: list = buf
        event: Optional[Event] = None
        try:
            while True:
                if budget is not None and budget <= 0:
                    caught_up = False
                    break
                event = None
                cohort = pop_cohort(until, buf)
                if not cohort:
                    break
                self._now = cohort[0].time
                for idx, event in enumerate(cohort):
                    if event.cancelled:
                        continue
                    if budget is not None:
                        if budget <= 0:
                            caught_up = False
                            self._queue.requeue(cohort[idx:])
                            break
                        budget -= 1
                    processed += 1
                    start = perf()
                    event.fn(*event.args)
                    observer(event.label, perf() - start)
                event = None
                if not caught_up:
                    break
        except BaseException:
            if event is not None:
                pos = cohort.index(event)
                self._queue.requeue(cohort[pos + 1 :])
            raise
        finally:
            self.events_processed += processed
            if processed:
                self.last_event_time = self._now
        if caught_up and until is not None and until > self._now:
            self._now = until

    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)
