"""The counterexample bridge: replay, shrink, export, monitor-verify.

A :class:`~repro.verify.explore.search.CounterexampleFound` carries the
exact action path from the initial world to the failure. This module
turns that path into a durable artifact:

* :func:`replay_path` — deterministically re-execute the path on a fresh
  world and return the reproduced failure (or ``None``);
* :func:`shrink_path` — greedy elision: drop any action whose removal
  still reproduces the same failure class, to a fixpoint, so the
  committed artifact is the minimal schedule a human has to read;
* :func:`counterexample_records` — replay with tracing enabled, yielding
  the ``repro-trace/1`` record stream (deliveries, CS lifecycle, fault
  events, plus a synthetic ``quiescent`` marker for deadlocks);
* :func:`export_counterexample` / :func:`load_counterexample` — the
  JSONL file, with the config and encoded path in the header ``meta``;
* :func:`replay_counterexample` — the independent verdict: run the
  records through :class:`~repro.obs.monitor.ProtocolMonitor` and return
  the violations it finds. The monitor mirrors protocol state from the
  trace alone, so agreement between the explorer's verdict and the
  monitor's is a genuine cross-check, not a tautology
  (``tests/test_explore_counterexamples.py`` pins the round-trip; the
  committed corpus in ``tests/data/counterexamples/`` pins it for the
  project's two historical bugs).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, DeadlockError
from repro.ft.chaos import FaultBudget
from repro.sim.trace import Trace, TraceRecord
from repro.verify.explore.actions import Action, decode_path, encode_path
from repro.verify.explore.world import _World, _check_terminal, build_world

# NOTE: repro.obs is imported lazily inside functions — its package
# __init__ pulls in the experiment runner, which imports repro.verify,
# and an eager import here would close that cycle.

#: ``meta["kind"]`` marking a trace file as an explorer counterexample.
COUNTEREXAMPLE_KIND = "explorer-counterexample"


def replay_path(
    quorums: Sequence[Iterable[int]],
    path: Sequence[Action],
    requests_per_site: Optional[Sequence[int]] = None,
    enable_transfer: bool = True,
    *,
    fault_budget: Optional[FaultBudget] = None,
    site_cls: Optional[type] = None,
    trace: Optional[Trace] = None,
) -> Tuple[_World, Optional[Exception]]:
    """Re-execute ``path`` from a fresh initial world.

    Returns ``(world, failure)`` where ``failure`` is the exception the
    path reproduces — raised by an action's handler, or by the terminal
    liveness check when the replayed world ends quiescent — or ``None``
    when the path reproduces nothing. Replay is deterministic: the world
    menu is a function of state and the path fixes every choice.

    ``trace``, when given, is installed as the world's (enabled) trace;
    ``world.fake_sim.now`` advances to the step index before each action
    so emitted records carry monotone synthetic times.
    """
    world = build_world(
        quorums,
        requests_per_site,
        enable_transfer,
        fault_budget=fault_budget,
        site_cls=site_cls,
        trace=trace,
    )
    requests = list(requests_per_site or [1] * len(quorums))
    for index, action in enumerate(path):
        world.fake_sim.now = float(index + 1)
        try:
            world.apply(action)
        except Exception as exc:
            return world, exc
    if not world.enabled_actions():
        try:
            _check_terminal(world, sum(requests))
        except Exception as exc:
            return world, exc
    return world, None


def shrink_path(
    quorums: Sequence[Iterable[int]],
    path: Sequence[Action],
    cause: Exception,
    requests_per_site: Optional[Sequence[int]] = None,
    enable_transfer: bool = True,
    *,
    fault_budget: Optional[FaultBudget] = None,
    site_cls: Optional[type] = None,
) -> List[Action]:
    """Greedy elision to a fixpoint, preserving the failure class.

    Tries dropping each action in turn; a drop survives iff the shorter
    path still reproduces an exception of exactly ``type(cause)`` (a
    dropped delivery often makes a *later* action inapplicable — the
    replay's KeyError then reads as "does not reproduce", which is the
    correct rejection). Quadratic in the path length per sweep, which is
    fine at counterexample scale; the result is 1-minimal: no single
    remaining action can be removed.
    """
    target = type(cause)

    def reproduces(candidate: Sequence[Action]) -> bool:
        try:
            _, failure = replay_path(
                quorums,
                candidate,
                requests_per_site,
                enable_transfer,
                fault_budget=fault_budget,
                site_cls=site_cls,
            )
        except Exception:  # malformed schedule (e.g. budget underflow)
            return False
        return type(failure) is target

    current = list(path)
    if not reproduces(current):
        raise ConfigurationError(
            "shrink_path was handed a path that does not reproduce "
            f"{target.__name__}"
        )
    changed = True
    while changed:
        changed = False
        index = 0
        while index < len(current):
            candidate = current[:index] + current[index + 1 :]
            if reproduces(candidate):
                current = candidate
                changed = True  # re-sweep: earlier drops may now succeed
            else:
                index += 1
    return current


def counterexample_records(
    quorums: Sequence[Iterable[int]],
    path: Sequence[Action],
    requests_per_site: Optional[Sequence[int]] = None,
    enable_transfer: bool = True,
    *,
    fault_budget: Optional[FaultBudget] = None,
    site_cls: Optional[type] = None,
) -> Tuple[List[TraceRecord], Optional[Exception]]:
    """Replay with tracing on; return the record stream and the failure.

    The stream contains what a live monitored run would have seen —
    ``request`` / ``deliver`` / ``cs_enter`` / ``cs_exit`` plus the fault
    events — and, when the failure is a terminal liveness violation
    (deadlock), one synthetic ``{"k": "quiescent", "s": -1}`` marker
    after the last action: the explorer knows the state is terminal (no
    enabled action remains), and the marker carries that knowledge to
    the monitor, which otherwise cannot distinguish "stuck forever"
    from "more records coming".
    """
    trace = Trace(enabled=True)
    _, failure = replay_path(
        quorums,
        path,
        requests_per_site,
        enable_transfer,
        fault_budget=fault_budget,
        site_cls=site_cls,
        trace=trace,
    )
    records = list(trace)
    if isinstance(failure, DeadlockError):
        records.append(
            TraceRecord(
                time=float(len(path) + 1),
                kind="quiescent",
                site=-1,
                detail=None,
            )
        )
    return records, failure


def export_counterexample(
    out_path: str,
    quorums: Sequence[Iterable[int]],
    path: Sequence[Action],
    cause: Exception,
    requests_per_site: Optional[Sequence[int]] = None,
    enable_transfer: bool = True,
    *,
    fault_budget: Optional[FaultBudget] = None,
    site_cls: Optional[type] = None,
    shrink: bool = True,
) -> int:
    """Write a monitor-replayable counterexample JSONL; returns its
    record count.

    The header ``meta`` embeds everything needed to regenerate the file:
    the failure class and message, the configuration, and the (shrunk)
    encoded action path. ``site_cls`` (when not the default) is recorded
    as ``module:qualname`` provenance — loading never imports it; the
    monitor verdict comes from the records alone.
    """
    final_path = list(path)
    if shrink:
        final_path = shrink_path(
            quorums,
            final_path,
            cause,
            requests_per_site,
            enable_transfer,
            fault_budget=fault_budget,
            site_cls=site_cls,
        )
    records, failure = counterexample_records(
        quorums,
        final_path,
        requests_per_site,
        enable_transfer,
        fault_budget=fault_budget,
        site_cls=site_cls,
    )
    if type(failure) is not type(cause):
        raise ConfigurationError(
            f"replay reproduced {type(failure).__name__}, "
            f"not {type(cause).__name__}"
        )
    requests = list(requests_per_site or [1] * len(quorums))
    meta: Dict[str, Any] = {
        "kind": COUNTEREXAMPLE_KIND,
        "cause": type(cause).__name__,
        "message": str(cause),
        "config": {
            "quorums": [sorted(q) for q in quorums],
            "requests_per_site": requests,
            "enable_transfer": enable_transfer,
        },
        "path": encode_path(final_path),
    }
    if fault_budget:
        meta["config"]["fault_budget"] = {
            "crashes": fault_budget.crashes,
            "recoveries": fault_budget.recoveries,
            "cuts": fault_budget.cuts,
            "cut_links": [list(link) for link in fault_budget.cut_links],
            "crash_sites": (
                None
                if fault_budget.crash_sites is None
                else sorted(fault_budget.crash_sites)
            ),
        }
    if site_cls is not None:
        meta["site"] = f"{site_cls.__module__}:{site_cls.__qualname__}"
    from repro.obs.export import export_jsonl

    return export_jsonl(records, out_path, meta=meta)


def load_counterexample(path: str) -> "TraceFile":
    """Import a counterexample JSONL, validating its ``meta`` shape."""
    from repro.obs.export import import_jsonl

    trace_file = import_jsonl(path)
    meta = trace_file.meta
    if meta.get("kind") != COUNTEREXAMPLE_KIND:
        raise ConfigurationError(
            f"{path}: not an explorer counterexample "
            f"(meta.kind={meta.get('kind')!r})"
        )
    decode_path(meta.get("path", []))  # validates the encoded actions
    return trace_file


def replay_counterexample(
    source, strict: bool = False
) -> List["Any"]:
    """Run a counterexample's records through the protocol monitor.

    ``source`` is a path or an already-loaded :class:`TraceFile`.
    Returns the :class:`~repro.errors.InvariantViolation` list the
    monitor found (raising at the first one when ``strict``) — the
    independent confirmation that the schedule the explorer flagged
    breaks a protocol invariant.
    """
    from repro.obs.export import TraceFile
    from repro.obs.monitor import ProtocolMonitor

    trace_file = (
        source if isinstance(source, TraceFile) else load_counterexample(source)
    )
    monitor = ProtocolMonitor(strict=strict)
    return monitor.replay(trace_file.records)
