"""Mutex-guarded replica control: the paper's concluding application.

"Even though we mainly discussed mutual exclusion in this paper, the
proposed idea can be used in replicated data management, as long as the
quorum being used supports replica control." — Section 7.

:class:`LockedRegisterSite` is that combination: one process that runs
*both* the delay-optimal mutual exclusion protocol (for serializing
updates) *and* the versioned-register replica protocol (for storing the
data). An update is a read-modify-write executed strictly inside the
critical section:

1. acquire the distributed lock (delay-optimal handoff, ``T``);
2. quorum-read the register, apply the update function, quorum-write the
   result;
3. release the lock.

Because updates are mutually excluded, no update is ever lost — unlike
bare last-writer-wins quorum writes, where two concurrent read-modify-
writes can both read version ``v`` and one increment overwrites the
other. The integration tests demonstrate exactly that anomaly with
unguarded replicas and its absence here.

The lock quorum and the data quorum may come from different
constructions (e.g. tree quorums for the cheap lock, majority for highly
available data); both only need the intersection property.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from repro.core.site import CaoSinghalSite
from repro.mutex.base import RunListener
from repro.replication.messages import Version
from repro.replication.replica import ReplicaRole
from repro.substrate import SiteId

#: An update function: old value -> new value.
UpdateFn = Callable[[Any], Any]
#: Completion callback: (new value, installed version).
UpdateCallback = Callable[[Any, Version], None]


class LockedRegisterSite(ReplicaRole, CaoSinghalSite):
    """A site running mutex-guarded read-modify-write on a replicated
    register."""

    algorithm_name = "locked-register"

    def __init__(
        self,
        site_id: SiteId,
        lock_quorum: Iterable[SiteId],
        data_quorum: Iterable[SiteId],
        initial_value: Any = None,
        listener: Optional[RunListener] = None,
    ) -> None:
        # cs_duration=None: the CS is held until the quorum write lands.
        CaoSinghalSite.__init__(
            self, site_id, lock_quorum, cs_duration=None, listener=listener
        )
        self._init_replica(data_quorum, initial_value)
        self._updates: List[tuple] = []
        #: Completed guarded updates.
        self.updates_completed = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def submit_update(
        self, update: UpdateFn, callback: Optional[UpdateCallback] = None
    ) -> None:
        """Queue a guarded read-modify-write of the register."""
        self._updates.append((update, callback))
        self.submit_request()

    # ------------------------------------------------------------------
    # Glue: run the RMW inside the CS
    # ------------------------------------------------------------------

    def _enter_cs(self) -> None:
        super()._enter_cs()
        update, callback = self._updates.pop(0)

        def after_read(value: Any, version: Version) -> None:
            new_value = update(value)

            def after_write(installed: Version) -> None:
                self.updates_completed += 1
                if callback is not None:
                    callback(new_value, installed)
                self.release_cs()

            self.write(new_value, after_write)

        self.read(after_read)

    def on_message(self, src: SiteId, message: object) -> None:
        if self.handle_replication_message(src, message):
            return
        super().on_message(src, message)
