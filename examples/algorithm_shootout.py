#!/usr/bin/env python3
"""Shootout: every implemented algorithm on the same workload.

Reproduces the shape of the paper's Table 1 interactively: for each
algorithm, the measured messages per CS execution, contended
synchronization delay (in units of the mean message latency T), mean
waiting time, and throughput under heavy load — so the
message-complexity / synchronization-delay trade-off the paper's
introduction describes is visible in one table, with the proposed
algorithm sitting at the efficient corner (O(K) messages *and* T delay).

Run: ``python examples/algorithm_shootout.py [n_sites]``
"""

from __future__ import annotations

import sys

from repro import ConstantDelay, RunConfig, run_mutex
from repro.metrics import render_table
from repro.mutex import algorithm_names
from repro.workload import SaturationWorkload

QUORUM_ALGOS = {"cao-singhal", "cao-singhal-no-transfer", "maekawa"}


def main() -> None:
    n_sites = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    rows = []
    for algorithm in algorithm_names():
        summary = run_mutex(
            RunConfig(
                algorithm=algorithm,
                n_sites=n_sites,
                quorum="grid" if algorithm in QUORUM_ALGOS else None,
                seed=3,
                delay_model=ConstantDelay(1.0),
                cs_duration=1.0,
                workload=SaturationWorkload(15),
            )
        ).summary
        rows.append(
            [
                algorithm,
                summary.messages_per_cs,
                summary.sync_delay_in_t,
                summary.waiting_time.mean,
                summary.throughput,
                summary.fairness,
            ]
        )
    rows.sort(key=lambda r: r[2])  # by sync delay: the paper's axis
    print(
        render_table(
            ["algorithm", "msgs/CS", "sync delay (T)", "wait (T)",
             "throughput", "fairness"],
            rows,
            title=f"Heavy-load shootout, N={n_sites}, E=T=1 "
            "(sorted by synchronization delay)",
        )
    )
    print("Reading guide: Lamport/Ricart-Agrawala buy T-delay with O(N) "
          "messages; Maekawa buys O(sqrt N) messages with 2T delay; "
          "cao-singhal gets both (the paper's contribution). Token "
          "algorithms trade fairness-priority semantics for low cost.")


if __name__ == "__main__":
    main()
