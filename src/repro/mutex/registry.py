"""Name-based registry of mutual-exclusion algorithms.

Factories hide the constructor differences between the families: quorum
algorithms take a ``req_set``, broadcast/token algorithms take ``n``. The
experiment harness and CLI build sites exclusively through
:func:`make_site`, so adding an algorithm means one entry here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.mutex.base import DurationSpec, MutexSite, RunListener
from repro.mutex.centralized import CentralizedSite
from repro.mutex.lamport import LamportSite
from repro.mutex.maekawa import MaekawaSite
from repro.mutex.raymond import RaymondSite
from repro.mutex.ricart_agrawala import RicartAgrawalaSite
from repro.mutex.roucairol_carvalho import RoucairolCarvalhoSite
from repro.mutex.singhal_heuristic import SinghalHeuristicSite
from repro.mutex.suzuki_kasami import SuzukiKasamiSite
from repro.quorums.coterie import QuorumSystem

#: Factory signature: (site_id, n, quorum_system, cs_duration, listener).
SiteFactory = Callable[
    [int, int, Optional[QuorumSystem], DurationSpec, Optional[RunListener]],
    MutexSite,
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """Registry entry for one algorithm."""

    name: str
    needs_quorum: bool
    factory: SiteFactory
    description: str


def _quorum_of(qs: Optional[QuorumSystem], site_id: int, name: str):
    if qs is None:
        raise ConfigurationError(f"algorithm {name!r} requires a quorum system")
    return qs.quorum_for(site_id)


def _make_cao_singhal(i, n, qs, d, l, enable_transfer=True):
    # Imported lazily: repro.core.site itself imports repro.mutex.base,
    # which triggers this package's __init__ — an eager import here would
    # close that cycle while repro.core.site is still half-initialized.
    from repro.core.site import CaoSinghalSite

    return CaoSinghalSite(
        i,
        _quorum_of(qs, i, "cao-singhal"),
        d,
        l,
        enable_transfer=enable_transfer,
    )


_SPECS: Dict[str, AlgorithmSpec] = {}


def _register(spec: AlgorithmSpec) -> None:
    if spec.name in _SPECS:
        raise ConfigurationError(f"algorithm {spec.name!r} already registered")
    _SPECS[spec.name] = spec


_register(
    AlgorithmSpec(
        name="cao-singhal",
        needs_quorum=True,
        factory=_make_cao_singhal,
        description="Proposed delay-optimal quorum algorithm (sync delay T)",
    )
)
_register(
    AlgorithmSpec(
        name="cao-singhal-no-transfer",
        needs_quorum=True,
        factory=lambda i, n, qs, d, l: _make_cao_singhal(
            i, n, qs, d, l, enable_transfer=False
        ),
        description="Ablation: direct forwarding disabled (sync delay 2T)",
    )
)
_register(
    AlgorithmSpec(
        name="maekawa",
        needs_quorum=True,
        factory=lambda i, n, qs, d, l: MaekawaSite(
            i, _quorum_of(qs, i, "maekawa"), d, l
        ),
        description="Maekawa's quorum algorithm (sync delay 2T)",
    )
)
_register(
    AlgorithmSpec(
        name="lamport",
        needs_quorum=False,
        factory=lambda i, n, qs, d, l: LamportSite(i, n, d, l),
        description="Lamport's timestamp algorithm, 3(N-1) messages",
    )
)
_register(
    AlgorithmSpec(
        name="ricart-agrawala",
        needs_quorum=False,
        factory=lambda i, n, qs, d, l: RicartAgrawalaSite(i, n, d, l),
        description="Ricart-Agrawala, 2(N-1) messages",
    )
)
_register(
    AlgorithmSpec(
        name="roucairol-carvalho",
        needs_quorum=False,
        factory=lambda i, n, qs, d, l: RoucairolCarvalhoSite(i, n, d, l),
        description="Carvalho-Roucairol dynamic algorithm, N-1..2(N-1) messages",
    )
)
_register(
    AlgorithmSpec(
        name="suzuki-kasami",
        needs_quorum=False,
        factory=lambda i, n, qs, d, l: SuzukiKasamiSite(i, n, d, l),
        description="Suzuki-Kasami broadcast token, 0..N messages",
    )
)
_register(
    AlgorithmSpec(
        name="singhal-heuristic",
        needs_quorum=False,
        factory=lambda i, n, qs, d, l: SinghalHeuristicSite(i, n, d, l),
        description="Singhal's heuristic token algorithm, 0..N messages",
    )
)
_register(
    AlgorithmSpec(
        name="raymond",
        needs_quorum=False,
        factory=lambda i, n, qs, d, l: RaymondSite(i, n, d, l),
        description="Raymond's tree token, O(log N) messages and delay",
    )
)
_register(
    AlgorithmSpec(
        name="centralized",
        needs_quorum=False,
        factory=lambda i, n, qs, d, l: CentralizedSite(i, n, d, l),
        description="Central coordinator, 3 messages, sync delay 2T",
    )
)


def algorithm_names() -> List[str]:
    """Registered algorithm names, sorted."""
    return sorted(_SPECS)


def get_algorithm_spec(name: str) -> AlgorithmSpec:
    """Look up an algorithm's registry entry."""
    try:
        return _SPECS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; known: {', '.join(algorithm_names())}"
        ) from None


def make_site(
    name: str,
    site_id: int,
    n: int,
    quorum_system: Optional[QuorumSystem] = None,
    cs_duration: DurationSpec = 0.1,
    listener: Optional[RunListener] = None,
) -> MutexSite:
    """Build one site of algorithm ``name``."""
    return get_algorithm_spec(name).factory(
        site_id, n, quorum_system, cs_duration, listener
    )
