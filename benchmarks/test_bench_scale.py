"""Simulator scalability: events/second at large N.

Not a paper experiment — a performance benchmark of the substrate itself,
so regressions in the event loop, FIFO bookkeeping, or protocol handlers
show up in CI. A saturated 100-site grid run processes on the order of
10^5 protocol events.
"""

from __future__ import annotations

from repro.experiments.runner import RunConfig, run_mutex
from repro.sim.network import ConstantDelay
from repro.workload.driver import SaturationWorkload


def test_bench_simulator_scale_n100(benchmark):
    def run():
        return run_mutex(
            RunConfig(
                algorithm="cao-singhal",
                n_sites=100,
                quorum="grid",
                seed=7,
                delay_model=ConstantDelay(1.0),
                cs_duration=0.05,
                workload=SaturationWorkload(3),
            )
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = result.summary
    assert summary.completed == 300
    assert summary.unserved == 0
    events = result.sim.events_processed
    print(f"\nN=100 saturated grid: {events} events, "
          f"{summary.messages_sent} messages, "
          f"sync={summary.sync_delay_in_t:.2f}T")
    assert events > 20_000  # sanity: this really is a large run
