"""Named workload scenarios used across experiments and examples.

The paper's evaluation talks about "light load" and "heavy load"; these
helpers pin down what that means operationally so every experiment uses
identical definitions.
"""

from __future__ import annotations

from repro.workload.arrivals import PoissonArrivals
from repro.workload.driver import OpenLoopWorkload, SaturationWorkload, Workload


def light_load(horizon: float = 2000.0, rate: float = 0.002) -> Workload:
    """Section 5.1's regime: contention is rare.

    With the default mean message delay ``T = 1`` and CS time ``E << T``,
    a per-site rate of 0.002 requests per time unit keeps system-wide
    utilization far below 1, so requests almost always find the system
    idle.
    """
    return OpenLoopWorkload(PoissonArrivals(rate), horizon=horizon)


def moderate_load(horizon: float = 1000.0, rate: float = 0.02) -> Workload:
    """In-between regime for the load-sweep figure (E8)."""
    return OpenLoopWorkload(PoissonArrivals(rate), horizon=horizon)


def heavy_load(requests_per_site: int = 30) -> Workload:
    """Section 5.2's regime: every site always has a pending request."""
    return SaturationWorkload(requests_per_site=requests_per_site)
