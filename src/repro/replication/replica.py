"""A replicated versioned register over any intersecting quorum system.

:class:`ReplicaSite` plays two roles, mirroring the mutex design:

* **storage role** — holds one copy of the register as ``(version,
  value)`` and serves read/write requests, installing a write only when
  its version is newer (so replays and reordered writes are harmless);
* **client role** — runs quorum operations against its own
  ``req_set``-style quorum:

  - :meth:`read` — collect ``(version, value)`` from every member of a
    quorum, return the highest-versioned value;
  - :meth:`write` — phase 1 read versions from a quorum, phase 2 install
    ``(max+1, me)`` at a quorum; the operation completes when every
    member acknowledged.

Safety rests on exactly the paper's Section 2 property: any two quorums
intersect, so a read quorum always contains at least one replica that
holds the latest committed write. Concurrent writers are serialized only
by version tie-break (last-writer-wins); for strict one-at-a-time write
ordering, guard writes with the distributed mutex — which is precisely
the pairing the paper's conclusion proposes, demonstrated in
``examples/`` and the integration tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.errors import ProtocolError
from repro.replication.messages import (
    ReadAck,
    ReadReq,
    Version,
    WriteAck,
    WriteReq,
    ZERO_VERSION,
)
from repro.sim.node import Node
from repro.substrate import SiteId

#: Completion callbacks: read -> (value, version); write -> version.
ReadCallback = Callable[[Any, Version], None]
WriteCallback = Callable[[Version], None]


@dataclass
class _PendingRead:
    quorum: frozenset
    acks: Dict[SiteId, ReadAck] = field(default_factory=dict)
    callback: Optional[ReadCallback] = None
    #: True when this read is the version-discovery phase of a write
    #: (``write_value`` may legitimately be None).
    is_write: bool = False
    write_value: Any = None
    write_callback: Optional[WriteCallback] = None


@dataclass
class _PendingWrite:
    quorum: frozenset
    version: Version
    acked: set = field(default_factory=set)
    callback: Optional[WriteCallback] = None


class ReplicaRole:
    """The storage+client state machine, as a mixin.

    Factored out of :class:`ReplicaSite` so it can compose with a mutex
    site (see :class:`repro.replication.locked.LockedRegisterSite`): the
    host class must provide ``send``/``site_id`` (any
    :class:`~repro.sim.node.Node`) and call :meth:`_init_replica` from its
    constructor, then route replication messages through
    :meth:`handle_replication_message`.
    """

    def _init_replica(
        self,
        data_quorum: Iterable[SiteId],
        initial_value: Any = None,
    ) -> None:
        self.data_quorum = frozenset(data_quorum)
        if not self.data_quorum:
            raise ProtocolError(f"replica {self.site_id} has an empty quorum")
        self.version: Version = ZERO_VERSION
        self.value: Any = initial_value
        self._op_ids = itertools.count()
        self._reads: Dict[int, _PendingRead] = {}
        self._writes: Dict[int, _PendingWrite] = {}
        #: Operation counters for tests/metrics.
        self.reads_completed = 0
        self.writes_completed = 0

    # ------------------------------------------------------------------
    # Client role
    # ------------------------------------------------------------------

    def read(self, callback: Optional[ReadCallback] = None) -> int:
        """Start a quorum read; ``callback(value, version)`` on completion."""
        op_id = next(self._op_ids)
        self._reads[op_id] = _PendingRead(
            quorum=self.data_quorum, callback=callback
        )
        for member in sorted(self.data_quorum):
            self.send(member, ReadReq(op_id=op_id, client=self.site_id))
        return op_id

    def write(self, value: Any, callback: Optional[WriteCallback] = None) -> int:
        """Start a quorum write; ``callback(version)`` once installed.

        Runs the two-phase Gifford protocol: discover the highest version
        at a quorum, then install ``(max_counter + 1, self)`` at a quorum.
        """
        op_id = next(self._op_ids)
        self._reads[op_id] = _PendingRead(
            quorum=self.data_quorum,
            is_write=True,
            write_value=value,
            write_callback=callback,
        )
        for member in sorted(self.data_quorum):
            self.send(member, ReadReq(op_id=op_id, client=self.site_id))
        return op_id

    # ------------------------------------------------------------------
    # Storage role
    # ------------------------------------------------------------------

    def _serve_read(self, src: SiteId, msg: ReadReq) -> None:
        self.send(
            src, ReadAck(op_id=msg.op_id, version=self.version, value=self.value)
        )

    def _serve_write(self, src: SiteId, msg: WriteReq) -> None:
        if msg.version > self.version:
            self.version = msg.version
            self.value = msg.value
        # Idempotent ack: even an old write is acknowledged (it is
        # subsumed by what we already store).
        self.send(src, WriteAck(op_id=msg.op_id, version=msg.version))

    # ------------------------------------------------------------------
    # Client-side completion
    # ------------------------------------------------------------------

    def _record_read_ack(self, src: SiteId, msg: ReadAck) -> None:
        pending = self._reads.get(msg.op_id)
        if pending is None or src not in pending.quorum:
            return  # late ack for a finished operation
        pending.acks[src] = msg
        if set(pending.acks) < pending.quorum:
            return
        del self._reads[msg.op_id]
        best = max(pending.acks.values(), key=lambda a: a.version)
        if not pending.is_write:
            self.reads_completed += 1
            if pending.callback is not None:
                pending.callback(best.value, best.version)
            return
        # Phase 2 of a write: install a strictly newer version.
        new_version: Version = (best.version[0] + 1, self.site_id)
        op_id = next(self._op_ids)
        self._writes[op_id] = _PendingWrite(
            quorum=self.data_quorum,
            version=new_version,
            callback=pending.write_callback,
        )
        for member in sorted(self.data_quorum):
            self.send(
                member,
                WriteReq(
                    op_id=op_id,
                    client=self.site_id,
                    version=new_version,
                    value=pending.write_value,
                ),
            )

    def _record_write_ack(self, src: SiteId, msg: WriteAck) -> None:
        pending = self._writes.get(msg.op_id)
        if pending is None or src not in pending.quorum:
            return
        pending.acked.add(src)
        if pending.acked < pending.quorum:
            return
        del self._writes[msg.op_id]
        self.writes_completed += 1
        if pending.callback is not None:
            pending.callback(pending.version)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def handle_replication_message(self, src: SiteId, message: object) -> bool:
        """Consume one replication message; False if it is not ours."""
        if isinstance(message, ReadReq):
            self._serve_read(src, message)
        elif isinstance(message, ReadAck):
            self._record_read_ack(src, message)
        elif isinstance(message, WriteReq):
            self._serve_write(src, message)
        elif isinstance(message, WriteAck):
            self._record_write_ack(src, message)
        else:
            return False
        return True


class ReplicaSite(ReplicaRole, Node):
    """One standalone replica (and client) of the replicated register."""

    def __init__(
        self,
        site_id: SiteId,
        quorum: Iterable[SiteId],
        initial_value: Any = None,
    ) -> None:
        Node.__init__(self, site_id)
        self._init_replica(quorum, initial_value)

    def on_message(self, src: SiteId, message: object) -> None:
        if not self.handle_replication_message(src, message):
            raise ProtocolError(f"replica {self.site_id}: unknown {message!r}")
