"""Simulation-kernel throughput: events/sec on the heavy-load scenario.

Not a paper experiment — a performance benchmark of the discrete-event
kernel itself, guarding the hot-path refactor (tuple-heap event queue,
``(fn, args)`` scheduling, slotted state, NullTrace). The scenario is
the paper's heavy-load workhorse: N=49, grid quorums, saturation
workload — the same shape every table in Section 5 is built from, so
events/sec here is the number that bounds how fast the whole experiment
suite can run.

``BASELINE_EVENTS_PER_SEC`` is the best-of-five measurement taken on
the pre-refactor kernel (dataclass events compared via ``__lt__``,
closure-per-send scheduling, dict-backed sites) on this container,
recorded before the refactor landed so the speedup denominator cannot
drift. The benchmark asserts the scenario still processes the exact
pre-refactor event count (cheap determinism guard; the byte-level proof
lives in ``tests/test_kernel_equivalence.py``) and archives the measured
throughput in ``BENCH_sim_kernel.json``.

The ≥2.0× speedup target (raised from 1.3× after the cohort-batched
main loop, message-construction slimming, and delivery fast path
landed) is asserted softly (warn, don't fail) because CI containers
have wildly varying single-core performance; the archived JSON is the
artifact reviewers check, and the CI trend gate compares runs of the
same workflow against the committed artifact rather than against an
absolute number.
"""

from __future__ import annotations

import time
import warnings

from conftest import archive_json

from repro.experiments.runner import RunConfig, run_mutex
from repro.sim.network import UniformDelay
from repro.workload.driver import SaturationWorkload

N_SITES = 49
REPS = 5

#: Best-of-five events/sec of the pre-refactor kernel on this scenario,
#: measured on the reference container (see module docstring).
BASELINE_EVENTS_PER_SEC = 86_821

#: Events the scenario deterministically processes (same before and
#: after the refactor — the run is a pure function of the seed).
EXPECTED_EVENTS = 63_507

SPEEDUP_TARGET = 2.0


def _scenario() -> RunConfig:
    return RunConfig(
        algorithm="cao-singhal",
        n_sites=N_SITES,
        quorum="grid",
        seed=1,
        delay_model=UniformDelay(0.5, 1.5),
        cs_duration=0.05,
        workload=SaturationWorkload(20),
    )


def test_bench_sim_kernel_events_per_sec(benchmark):
    samples = []

    def one_rep():
        config = _scenario()
        start = time.perf_counter()
        result = run_mutex(config)
        elapsed = time.perf_counter() - start
        samples.append((result.sim.events_processed, elapsed))
        return result

    result = benchmark.pedantic(one_rep, rounds=REPS, iterations=1)

    # Determinism guard: the refactor must not change the event history.
    assert result.sim.events_processed == EXPECTED_EVENTS
    assert all(events == EXPECTED_EVENTS for events, _ in samples)

    best_eps = max(events / elapsed for events, elapsed in samples)
    speedup = best_eps / BASELINE_EVENTS_PER_SEC

    # Message complexity c (Section 5): messages/CS = c*K with 3 <= c <= 6.
    # Deterministic for the pinned seed; archived so the regression gate
    # can hold the paper's bound across commits.
    summary = result.summary
    assert summary.mean_quorum_size is not None
    complexity_c = summary.messages_per_cs / summary.mean_quorum_size
    assert 3.0 <= complexity_c <= 6.0, (
        f"message complexity c={complexity_c:.3f} outside the paper's "
        f"[3, 6] claim (messages/CS={summary.messages_per_cs:.2f}, "
        f"K={summary.mean_quorum_size:.2f})"
    )

    payload = {
        "benchmark": "sim_kernel",
        "scenario": {
            "algorithm": "cao-singhal",
            "n_sites": N_SITES,
            "quorum": "grid",
            "seed": 1,
            "delay": "uniform(0.5, 1.5)",
            "cs_duration": 0.05,
            "workload": "saturation(20 req/site)",
        },
        "events_processed": EXPECTED_EVENTS,
        "message_complexity_c": round(complexity_c, 3),
        "reps": REPS,
        "baseline_events_per_sec": BASELINE_EVENTS_PER_SEC,
        "events_per_sec": round(best_eps),
        "speedup": round(speedup, 2),
        "speedup_target": SPEEDUP_TARGET,
    }
    path = archive_json("sim_kernel", payload)
    print(f"\nkernel throughput: {best_eps:,.0f} events/sec "
          f"({speedup:.2f}x baseline) -> {path.name}")

    if speedup < SPEEDUP_TARGET:
        warnings.warn(
            f"kernel speedup {speedup:.2f}x below the {SPEEDUP_TARGET}x "
            f"target on this host ({best_eps:,.0f} vs baseline "
            f"{BASELINE_EVENTS_PER_SEC:,} events/sec)"
        )
