"""Runtime protocol monitor: online checking of the paper's invariants.

The verification layer (:mod:`repro.verify`) checks a run *after* it
finishes, from the metrics records. This module checks it *while it
happens*, from the trace stream: a :class:`ProtocolMonitor` mirrors the
protocol state it can deduce from delivery and lifecycle records and
raises a structured :class:`~repro.errors.InvariantViolation` at the
first record that contradicts an invariant — with the trailing trace
window attached, so the failure is diagnosable without a re-run.

Invariants checked (slugs are stable; see ``docs/API.md``):

``mutual-exclusion``
    No two sites are inside the critical section at once (Theorem 1).
    Applies to every algorithm, since it only reads ``cs_enter`` /
    ``cs_exit`` / ``crash`` records.
``arbiter-double-grant``
    An arbiter's permission is held by at most one live request at a
    time: a ``reply`` delivery while the monitor still sees another
    request holding that arbiter is a double grant (at most one
    outstanding forwarded reply per arbiter falls out of this, because a
    forwarded reply moves the permission at the forwarder's exit).
``transfer-not-honoured``
    A holder that accepted a ``transfer(k, j)`` for its current tenure
    must forward the reply at exit and say so in its ``release`` —
    releasing with ``max`` instead silently degrades the handoff from
    the paper's ``T`` to Maekawa's ``2T`` (Section 5.1).
``quorum-consistency``
    After an arbiter crashes and recovers, it must not grant while its
    pre-crash permission is still held by a live request it has not
    reconciled with (Section 6 / :mod:`repro.core.faults` probes).
``deadlock``
    At a ``quiescent`` marker (emitted only by the interleaving
    explorer's counterexample bridge, never by live runs), no live
    unserved request may remain and no site may still be inside the CS
    (Theorems 2-3: nothing else will ever run, so waiting is forever).

The monitor consumes only the record kinds the simulator already emits
(``deliver``, ``deliver-local``, ``request``, ``cs_enter``, ``cs_exit``,
``crash``, ``recover``): attaching it never changes the trace stream,
which is what keeps the PR-2 golden kernel fingerprints intact.

It assumes the trace shows exactly-once FIFO delivery — true for the
fault-free network and for any faulty run under the reliable-channel
layer (``--reliable``), where ``deliver`` records are emitted after the
transport's dedup/reorder buffer. Attaching it to a *raw* lossy network
will produce false alarms, by design: that network breaks the paper's
channel assumptions.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.common import Priority
from repro.core.messages import (
    FailureNotice,
    Probe,
    ProbeAck,
    RejoinAck,
    RejoinProbe,
    Release,
    Reply,
    Request,
    Transfer,
    Yield,
)
from repro.errors import InvariantViolation
from repro.sim.trace import Trace, TraceRecord

SiteId = int

#: How many trailing records a violation carries as context.
WINDOW_SIZE = 64

_MISSING = object()


class MonitorTrace(Trace):
    """A :class:`~repro.sim.trace.Trace` that feeds a monitor as it records.

    Hand it to a run via ``RunConfig(trace=monitor.trace)`` (the simulator
    accepts a ready trace instance): every record is stored as usual *and*
    pushed through :meth:`ProtocolMonitor.observe`, so in strict mode the
    run dies at the exact event that broke an invariant.
    """

    __slots__ = ("monitor",)

    def __init__(
        self, monitor: "ProtocolMonitor", capacity: Optional[int] = None
    ) -> None:
        super().__init__(enabled=True, capacity=capacity)
        self.monitor = monitor

    def record(
        self, time: float, kind: str, site: int, detail: Any = None
    ) -> None:
        rec = TraceRecord(time=time, kind=kind, site=site, detail=detail)
        if self._capacity is not None and len(self._records) >= self._capacity:
            self.dropped += 1
        else:
            self._records.append(rec)
        self.monitor.observe(rec)


class ProtocolMonitor:
    """Online invariant checker over a :class:`~repro.sim.trace.Trace` stream.

    Parameters
    ----------
    strict:
        ``True`` (default) raises the :class:`InvariantViolation` at the
        offending record, killing the run right there; ``False`` collects
        violations in :attr:`violations` and lets the run continue (what
        ``repro.cli trace`` uses, so a bad run still exports its trace).
    """

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.trace = MonitorTrace(self)
        #: Violations found so far (also raised one by one when strict).
        self.violations: List[InvariantViolation] = []
        #: Records observed so far.
        self.records_seen = 0
        #: Handoff-path synchronization delays: forwarded-reply flight
        #: times, forwarder's ``cs_exit`` to beneficiary's ``cs_enter``,
        #: sampled only when the forwarded reply gated the entry. The
        #: paper's headline claim is that these take one hop (``T``).
        self.handoff_delays: List[float] = []
        self._window: Deque[TraceRecord] = deque(maxlen=WINDOW_SIZE)
        # -- mirrored protocol state --------------------------------------
        # Sites currently inside the CS (any algorithm).
        self._in_cs: Set[SiteId] = set()
        # site -> its current request priority (cao-singhal only).
        self._active: Dict[SiteId, Priority] = {}
        # Requests that finished (exited, crashed, or superseded).
        self._finished: Set[Priority] = set()
        # arbiter -> request its permission is granted to (None = free).
        self._holder: Dict[SiteId, Optional[Priority]] = {}
        self._holder_epoch: Dict[SiteId, int] = {}
        # request -> {arbiter: grant epoch} permissions it holds.
        self._held: Dict[Priority, Dict[SiteId, int]] = {}
        # holder request -> {arbiter: (beneficiary, holder_epoch)} accepted
        # transfer instructions, latest per arbiter (the TranStack rule).
        self._transfers: Dict[Priority, Dict[SiteId, Tuple[Priority, int]]] = {}
        # (releaser, arbiter) -> beneficiary its release must name (or
        # None), recorded at the releaser's cs_exit.
        self._release_expect: Dict[Tuple[Priority, SiteId], Optional[Priority]] = {}
        # (arbiter, beneficiary, epoch) -> forwarder's exit time, for the
        # handoff-delay measurement.
        self._forward_out: Dict[Tuple[SiteId, Priority, int], float] = {}
        # site -> (reply delivery time, forward exit time): a forwarded
        # reply just landed; if the site enters at that same instant the
        # handoff gated the entry and the flight time is a T-path sample.
        self._entry_pending: Dict[SiteId, Tuple[float, float]] = {}
        # Arbiters that crashed (state lost) and have not granted since:
        # a conflicting grant from them is a recovery bug, not a plain
        # double grant.
        self._crash_suspect: Set[SiteId] = set()

    # -- feeding ----------------------------------------------------------

    def observe(self, rec: TraceRecord) -> None:
        """Consume one trace record, checking invariants as state evolves."""
        self._window.append(rec)
        self.records_seen += 1
        kind = rec.kind
        if kind == "deliver" or kind == "deliver-local":
            detail = rec.detail
            for part in getattr(detail, "parts", (detail,)):
                self._on_message(rec, part)
        elif kind == "cs_enter":
            self._on_enter(rec)
        elif kind == "cs_exit":
            self._on_exit(rec)
        elif kind == "crash":
            self._on_crash(rec)
        elif kind == "quiescent":
            self._on_quiescent(rec)
        # "request" and "recover" need no bookkeeping: requests are
        # learned from their deliveries, recovery from later probe traffic.

    def replay(self, records: Any) -> List[InvariantViolation]:
        """Run the monitor over an iterable of records (e.g. an imported
        JSONL trace) and return the violations found."""
        for rec in records:
            self.observe(rec)
        return self.violations

    # -- reporting --------------------------------------------------------

    def assert_clean(self) -> None:
        """Raise the first collected violation, if any (collect mode)."""
        if self.violations:
            raise self.violations[0]

    def handoff_mean(self) -> Optional[float]:
        """Mean handoff-path synchronization delay, or ``None`` if the run
        had no transfer-gated entries."""
        if not self.handoff_delays:
            return None
        return sum(self.handoff_delays) / len(self.handoff_delays)

    def report(self, mean_delay_t: Optional[float] = None) -> Dict[str, Any]:
        """Summary dict for logs and the ``repro.cli trace`` output.

        ``mean_delay_t`` (the network's mean one-way latency ``T``)
        normalizes the handoff delay into hop units when provided.
        """
        mean = self.handoff_mean()
        out: Dict[str, Any] = {
            "records": self.records_seen,
            "violations": [
                {
                    "invariant": v.invariant,
                    "time": v.time,
                    "site": v.site,
                    "description": v.description,
                }
                for v in self.violations
            ],
            "handoff_samples": len(self.handoff_delays),
            "handoff_mean": mean,
        }
        if mean is not None and mean_delay_t:
            out["handoff_mean_in_t"] = mean / mean_delay_t
        return out

    # -- internals: lifecycle records -------------------------------------

    def _violate(self, invariant: str, rec: TraceRecord, description: str) -> None:
        violation = InvariantViolation(
            invariant=invariant,
            time=rec.time,
            site=rec.site,
            description=description,
            window=tuple(self._window),
        )
        self.violations.append(violation)
        if self.strict:
            raise violation

    def _on_enter(self, rec: TraceRecord) -> None:
        site = rec.site
        others = self._in_cs - {site}
        if others:
            self._violate(
                "mutual-exclusion",
                rec,
                f"site {site} entered the CS while site(s) "
                f"{sorted(others)} were inside",
            )
        self._in_cs.add(site)
        pending = self._entry_pending.pop(site, None)
        if pending is not None and pending[0] == rec.time:
            # The forwarded reply that just landed completed the quorum:
            # this entry rode the handoff path, one hop after the
            # forwarder's exit.
            self.handoff_delays.append(rec.time - pending[1])

    def _on_exit(self, rec: TraceRecord) -> None:
        site = rec.site
        self._in_cs.discard(site)
        priority = self._active.get(site)
        if priority is None:
            return  # not a cao-singhal site (or an untracked request)
        self._finished.add(priority)
        transfers = self._transfers.pop(priority, {})
        held = self._held.get(priority, {})
        for arbiter, epoch in held.items():
            expected = transfers.get(arbiter)
            if expected is not None and expected[1] == epoch:
                # A current-tenure transfer instruction stands: the site
                # must forward this arbiter's permission now.
                beneficiary = expected[0]
                self._release_expect[(priority, arbiter)] = beneficiary
                self._forward_out[(arbiter, beneficiary, epoch + 1)] = rec.time
                self._holder[arbiter] = beneficiary
                self._holder_epoch[arbiter] = epoch + 1
            else:
                self._release_expect[(priority, arbiter)] = None
                if self._holder.get(arbiter) == priority:
                    self._holder[arbiter] = None

    def _on_quiescent(self, rec: TraceRecord) -> None:
        """A producer asserted the system is terminally quiescent.

        Live runs never emit this kind; the interleaving explorer's
        counterexample bridge appends one synthetic marker (site ``-1``)
        after a deadlocking schedule's last action. Quiescence makes
        waiting requests checkable from the trace alone: nothing more
        will ever be delivered, so any live unserved request the monitor
        still tracks — or any site still inside the CS — is a deadlock,
        not a not-yet-finished run.
        """
        stuck = sorted(
            str(priority)
            for priority in self._active.values()
            if priority not in self._finished
        )
        if stuck or self._in_cs:
            inside = sorted(self._in_cs)
            self._violate(
                "deadlock",
                rec,
                "terminally quiescent with unserved requests "
                f"{stuck} and site(s) {inside} inside the CS",
            )

    def _on_crash(self, rec: TraceRecord) -> None:
        site = rec.site
        self._in_cs.discard(site)
        priority = self._active.pop(site, None)
        if priority is not None:
            # The request dies with the site; permissions it held are
            # logically lost (recovery reconciles the arbiters).
            self._finished.add(priority)
            self._transfers.pop(priority, None)
            for arbiter in self._held.pop(priority, {}):
                if self._holder.get(arbiter) == priority:
                    self._holder[arbiter] = None
        # The site's arbiter state (lock, queue, epoch) is lost: its next
        # grant must be reconciled against any still-live pre-crash grant.
        self._crash_suspect.add(site)

    # -- internals: protocol messages -------------------------------------

    def _on_message(self, rec: TraceRecord, msg: Any) -> None:
        if isinstance(msg, Reply):
            self._on_reply(rec, msg)
        elif isinstance(msg, Request):
            self._on_request(msg)
        elif isinstance(msg, Release):
            self._on_release(rec, msg)
        elif isinstance(msg, Transfer):
            self._on_transfer(msg)
        elif isinstance(msg, Yield):
            self._on_yield(rec, msg)
        elif isinstance(msg, ProbeAck):
            self._on_probe_ack(msg)
        elif isinstance(msg, RejoinAck):
            self._on_rejoin_ack(msg)
        elif isinstance(msg, (Probe, RejoinProbe, FailureNotice)):
            pass  # no state to mirror: answers/cleanup show up later
        # Inquire/Fail carry no permission movement; other algorithms'
        # messages (Mk*, RA*, tokens) are not cao-singhal protocol traffic.

    def _on_request(self, msg: Request) -> None:
        priority = msg.priority
        site = priority.site
        current = self._active.get(site)
        if current == priority:
            return
        if current is not None and priority.seq > current.seq:
            # A fresh timestamp supersedes the old request (it exited, or
            # was abandoned by a recovery restart).
            self._finished.add(current)
            self._transfers.pop(current, None)
        if current is None or priority.seq > current.seq:
            self._active[site] = priority

    def _on_reply(self, rec: TraceRecord, msg: Reply) -> None:
        grantee = msg.grantee
        arbiter = msg.arbiter
        if rec.site != grantee.site:
            return  # misrouted; the site ignores it
        active = self._active.get(grantee.site)
        if grantee in self._finished or (
            active is not None and active.seq > grantee.seq
        ):
            return  # stale reply for a finished request; the site drops it
        if msg.forwarded_by is not None:
            key = (arbiter, grantee, msg.epoch)
            sent_at = self._forward_out.pop(key, None)
            if sent_at is not None:
                self._entry_pending[grantee.site] = (rec.time, sent_at)
        holder = self._holder.get(arbiter)
        if holder is not None and holder != grantee:
            if arbiter in self._crash_suspect:
                slug = "quorum-consistency"
                detail = (
                    f"recovered arbiter {arbiter} granted {grantee} while "
                    f"its pre-crash permission is still held by {holder} "
                    "(unreconciled recovery)"
                )
            else:
                slug = "arbiter-double-grant"
                detail = (
                    f"arbiter {arbiter} granted {grantee} "
                    f"(epoch {msg.epoch}) while {holder} still holds its "
                    f"permission (epoch {self._holder_epoch.get(arbiter)})"
                )
            self._violate(slug, rec, detail)
        self._holder[arbiter] = grantee
        self._holder_epoch[arbiter] = msg.epoch
        self._crash_suspect.discard(arbiter)
        self._held.setdefault(grantee, {})[arbiter] = msg.epoch

    def _on_transfer(self, msg: Transfer) -> None:
        holder = msg.holder
        if holder in self._finished:
            return
        held = self._held.get(holder)
        if held is None or held.get(msg.arbiter) != msg.holder_epoch:
            return  # outdated instruction; the site ignores it (A.5)
        self._transfers.setdefault(holder, {})[msg.arbiter] = (
            msg.beneficiary,
            msg.holder_epoch,
        )

    def _on_yield(self, rec: TraceRecord, msg: Yield) -> None:
        arbiter = rec.site
        if (
            self._holder.get(arbiter) != msg.yielder
            or self._holder_epoch.get(arbiter) != msg.epoch
        ):
            return  # stale yield; the arbiter ignores it
        self._holder[arbiter] = None
        held = self._held.get(msg.yielder)
        if held is not None:
            held.pop(arbiter, None)
        transfers = self._transfers.get(msg.yielder)
        if transfers is not None:
            transfers.pop(arbiter, None)

    def _on_release(self, rec: TraceRecord, msg: Release) -> None:
        arbiter = rec.site
        releaser = msg.releaser
        expected = self._release_expect.pop((releaser, arbiter), _MISSING)
        if expected is not _MISSING:
            actual = msg.transferred_to
            if expected != actual:
                if expected is not None and actual is None:
                    detail = (
                        f"site {releaser.site} released arbiter {arbiter} "
                        f"with max although it accepted a transfer to "
                        f"{expected} — the handoff fell back to the 2T path"
                    )
                elif expected is None:
                    detail = (
                        f"site {releaser.site} told arbiter {arbiter} it "
                        f"transferred to {actual} without an accepted "
                        "transfer instruction"
                    )
                else:
                    detail = (
                        f"site {releaser.site} released arbiter {arbiter} "
                        f"naming {actual} but the accepted transfer was "
                        f"for {expected}"
                    )
                self._violate("transfer-not-honoured", rec, detail)
        # A release from the recorded holder settles the permission the
        # way the release says (this also repairs the monitor's view
        # after a collected, non-strict violation).
        if self._holder.get(arbiter) == releaser:
            self._holder[arbiter] = msg.transferred_to
            if msg.transferred_to is not None:
                self._holder_epoch[arbiter] = msg.epoch + 1
        held = self._held.get(releaser)
        if held is not None:
            held.pop(arbiter, None)
            if not held and releaser in self._finished:
                del self._held[releaser]

    def _on_probe_ack(self, msg: ProbeAck) -> None:
        arbiter = msg.arbiter
        if msg.holds:
            # The probed site confirmed it holds this permission: the
            # recovering arbiter's view is reconciled to that holder.
            self._holder[arbiter] = msg.target
            held = self._held.get(msg.target)
            if held is not None and arbiter in held:
                self._holder_epoch[arbiter] = held[arbiter]
            self._crash_suspect.discard(arbiter)
        elif self._holder.get(arbiter) == msg.target:
            self._holder[arbiter] = None

    def _on_rejoin_ack(self, msg: RejoinAck) -> None:
        arbiter = msg.arbiter
        if msg.holder is not None:
            # The answering site holds the rebuilt arbiter's pre-crash
            # permission: the arbiter adopts it (and its tenure).
            self._holder[arbiter] = msg.holder
            self._holder_epoch[arbiter] = msg.epoch
            self._held.setdefault(msg.holder, {})[arbiter] = msg.epoch
            self._crash_suspect.discard(arbiter)
            return
        held = self._holder.get(arbiter)
        if held is not None and held.site == msg.responder:
            # The site we credited with this permission denies holding it
            # (e.g. a recovery restart abandoned the grant without a
            # release reaching the then-dead arbiter).
            self._holder[arbiter] = None
