"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate on the finer-grained classes below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid combination of parameters was supplied to a constructor.

    Examples: a quorum construction asked for an unsupported number of
    sites, an algorithm handed a coterie with no quorum for some site, or a
    workload configured with a negative arrival rate.
    """


class CoterieError(ReproError):
    """A set of quorums violates the coterie definition of Section 2.

    Raised by :class:`repro.quorums.coterie.Coterie` validation when the
    non-emptiness, minimality, or intersection property does not hold.
    """


class ProtocolError(ReproError):
    """An algorithm reached a state its specification forbids.

    The simulator never swallows these: a protocol error during a run is a
    bug either in the implementation or in the paper reconstruction, and the
    test suite treats it as a failure.
    """


class InvariantViolation(ProtocolError):
    """The runtime protocol monitor caught a paper invariant being broken.

    Raised (or collected, in non-strict mode) by
    :class:`repro.obs.monitor.ProtocolMonitor` the moment a trace record
    contradicts one of the paper's invariants — mutual exclusion, per-
    arbiter grant uniqueness, transfer honouring, or post-recovery quorum
    consistency. Structured: ``invariant`` is a stable slug, ``time`` and
    ``site`` locate the offence, and ``window`` carries the trailing trace
    records so a failure is diagnosable without re-running.
    """

    def __init__(
        self,
        invariant: str,
        time: float,
        site: int,
        description: str,
        window: tuple = (),
    ) -> None:
        super().__init__(
            f"[{invariant}] t={time:.4f} site={site}: {description}"
        )
        self.invariant = invariant
        self.time = time
        self.site = site
        self.description = description
        #: The trailing trace records leading up to the violation.
        self.window = window


class MutualExclusionViolation(ProtocolError):
    """Two sites were observed inside the critical section simultaneously.

    Detected post-hoc by :class:`repro.verify.invariants.MutexChecker` from
    the recorded (enter, exit) intervals, or online by the shared-resource
    guard installed in the workload driver.
    """


class DeadlockError(ProtocolError):
    """The simulation ran out of events while CS requests were pending.

    In a correct run the event queue only drains when every issued request
    has been served; pending requests with no events in flight mean the
    protocol deadlocked (Theorem 2 says this must never happen).
    """


class SimulationError(ReproError):
    """The simulation engine itself was misused.

    Examples: scheduling an event in the past, delivering a message to an
    unknown node, or running a simulator that was already exhausted.
    """
