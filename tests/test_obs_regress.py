"""Benchmark-regression gate: the comparator must bite when numbers move.

The acceptance case for the CI gate is explicit: a 30% events/sec
slowdown, or a message-complexity ``c`` outside the paper's [3, 6]
bound, must fail the check and name the metric in the report. Equally
important, noise-floor drift and benchmark subsets must *not* fail.
"""

from __future__ import annotations

import copy
import json

from repro.obs.regress import (
    DEFAULT_THRESHOLD_PCT,
    MetricSpec,
    check,
    compare,
    load_results,
)

KERNEL = {
    "benchmark": "sim_kernel",
    "events_processed": 63_507,
    "events_per_sec": 150_000,
    "message_complexity_c": 4.508,
}

CHAOS = {
    "benchmark": "chaos_resilience",
    "headers": ["loss", "algorithm", "resp(T)", "msgs/CS", "rtx/CS", "thrpt"],
    "rows": [
        [0.0, "cao-singhal", 15.5, 32.7, 0.6, 0.50],
        [0.2, "cao-singhal", 50.3, 47.2, 10.9, 0.12],
    ],
}

PARALLEL = {"benchmark": "parallel_engine", "sync_delay_mean_t": 1.407}


def write_results(directory, **payloads):
    directory.mkdir(parents=True, exist_ok=True)
    for name, payload in payloads.items():
        (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))
    return str(directory)


def baseline_dirs(tmp_path):
    base = write_results(
        tmp_path / "base", sim_kernel=KERNEL, chaos_resilience=CHAOS,
        parallel_engine=PARALLEL,
    )
    return base, tmp_path / "cur"


def test_identical_results_pass(tmp_path):
    base, cur = baseline_dirs(tmp_path)
    write_results(
        cur, sim_kernel=KERNEL, chaos_resilience=CHAOS, parallel_engine=PARALLEL
    )
    report = check(base, str(cur))
    assert report.ok
    assert report.failures == []
    assert "**PASS**" in report.to_markdown()


def test_thirty_percent_slowdown_fails_naming_the_metric(tmp_path):
    base, cur = baseline_dirs(tmp_path)
    slow = copy.deepcopy(KERNEL)
    slow["events_per_sec"] = round(KERNEL["events_per_sec"] * 0.7)
    write_results(cur, sim_kernel=slow)
    report = check(base, str(cur), threshold_pct=25.0)
    assert not report.ok
    assert [(r.benchmark, r.metric) for r in report.failures] == [
        ("sim_kernel", "events_per_sec")
    ]
    failure = report.failures[0]
    assert failure.status == "regression"
    assert failure.delta_pct < -25.0
    markdown = report.to_markdown()
    assert "**FAIL**" in markdown
    assert "`sim_kernel:events_per_sec`" in markdown


def test_noise_floor_drift_passes(tmp_path):
    base, cur = baseline_dirs(tmp_path)
    noisy = copy.deepcopy(KERNEL)
    noisy["events_per_sec"] = round(KERNEL["events_per_sec"] * 0.9)
    write_results(cur, sim_kernel=noisy)
    assert check(base, str(cur), threshold_pct=25.0).ok


def test_complexity_bound_violation_fails_even_against_same_baseline(tmp_path):
    """c outside [3, 6] is an absolute check on the paper's claim — a
    freshly regenerated baseline with the same bad value must not mask
    it."""
    base, cur = baseline_dirs(tmp_path)
    bad = copy.deepcopy(KERNEL)
    bad["message_complexity_c"] = 6.5
    write_results(cur, sim_kernel=bad)
    report = check(base, str(cur))
    assert [r.metric for r in report.failures] == ["message_complexity_c"]
    assert report.failures[0].status == "bound-violation"

    # Same bad value on both sides: still a failure.
    both_bad = write_results(cur.parent / "base_bad", sim_kernel=bad)
    report = check(both_bad, str(cur))
    assert [r.status for r in report.failures] == ["bound-violation"]
    assert "outside the required [3, 6]" in report.to_markdown()


def test_event_count_change_is_exact_mismatch(tmp_path):
    base, cur = baseline_dirs(tmp_path)
    shifted = copy.deepcopy(KERNEL)
    shifted["events_processed"] = KERNEL["events_processed"] + 1
    write_results(cur, sim_kernel=shifted)
    report = check(base, str(cur))
    assert [r.status for r in report.failures] == ["exact-mismatch"]
    assert report.failures[0].metric == "events_processed"


def test_chaos_directions_throughput_up_is_good_rest_down_is_good(tmp_path):
    base, cur = baseline_dirs(tmp_path)
    worse = copy.deepcopy(CHAOS)
    worse["rows"][0][2] *= 1.4  # resp(T) up 40%: regression
    worse["rows"][0][5] *= 1.4  # throughput up 40%: improvement
    write_results(cur, chaos_resilience=worse)
    report = check(base, str(cur))
    statuses = {f"{r.metric}": r.status for r in report.results if r.delta_pct}
    assert statuses["loss=0/cao-singhal/resp_t"] == "regression"
    assert statuses["loss=0/cao-singhal/throughput"] == "improved"
    assert [r.metric for r in report.failures] == ["loss=0/cao-singhal/resp_t"]


def test_missing_current_benchmark_is_reported_not_failed(tmp_path):
    """CI regenerates a subset of the benchmarks; the ones it does not
    rerun show as 'missing' and never gate."""
    base, cur = baseline_dirs(tmp_path)
    write_results(cur, sim_kernel=KERNEL)  # no chaos, no parallel
    report = check(base, str(cur))
    assert report.ok
    missing = {r.status for r in report.results if r.benchmark != "sim_kernel"}
    assert missing == {"missing"}


def test_new_benchmark_is_reported_not_failed_unless_out_of_bounds(tmp_path):
    cur = write_results(tmp_path / "cur", sim_kernel=KERNEL)
    report = check(str(tmp_path / "nothing"), cur)
    assert report.ok
    assert {r.status for r in report.results} == {"new"}

    bad = copy.deepcopy(KERNEL)
    bad["message_complexity_c"] = 2.0
    cur = write_results(tmp_path / "cur2", sim_kernel=bad)
    report = check(str(tmp_path / "nothing"), cur)
    assert [r.status for r in report.failures] == ["bound-violation"]


def test_unknown_benchmark_gets_informational_row(tmp_path):
    base = write_results(tmp_path / "base", mystery={"whatever": 1})
    cur = write_results(tmp_path / "cur", mystery={"whatever": 2})
    report = check(base, cur)
    assert report.ok
    assert [r.status for r in report.results] == ["no-spec"]
    assert "no extractor registered" in report.to_markdown()


def test_load_results_ignores_non_bench_files(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "BENCH_sim_kernel.json").write_text(json.dumps(KERNEL))
    (directory / "README.md").write_text("not a result")
    (directory / "notes.json").write_text("{}")
    assert set(load_results(str(directory))) == {"sim_kernel"}
    assert load_results(str(tmp_path / "missing")) == {}


def test_per_metric_threshold_override():
    spec_table = compare(
        {"sim_kernel": KERNEL},
        {"sim_kernel": {**KERNEL, "events_per_sec": 100_000}},
        threshold_pct=50.0,
    )
    assert spec_table.ok  # -33% within the runwide 50%

    tight = MetricSpec(direction="higher", threshold_pct=10.0)
    assert tight.threshold_pct == 10.0
    assert DEFAULT_THRESHOLD_PCT == 25.0


def test_markdown_table_lists_every_judged_metric(tmp_path):
    base, cur = baseline_dirs(tmp_path)
    write_results(
        cur, sim_kernel=KERNEL, chaos_resilience=CHAOS, parallel_engine=PARALLEL
    )
    markdown = check(base, str(cur)).to_markdown()
    for needle in (
        "| benchmark | metric |",
        "events_per_sec",
        "events_processed",
        "message_complexity_c",
        "sync_delay_mean_t",
        "loss=0.2/cao-singhal/rtx_per_cs",
    ):
        assert needle in markdown
