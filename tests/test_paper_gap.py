"""Regression: the paper's literal C.2 rule deadlocks; our fix does not.

DESIGN.md §3 documents the reconstruction finding: when a ``release``
installs a transfer beneficiary as the new lock holder while a
higher-priority request already heads the queue, the paper's rules never
(re-)issue an inquire for the new tenure, and the head can defer forever.
This module keeps the finding executable:

* ``PaperLiteralSite`` implements C.2 exactly as the paper states it
  (transfer to the new holder, never an inquire);
* the simulator reproduces the deadlock on a recorded seed in
  milliseconds;
* the exhaustive explorer *proves* the deadlock needs no special timing —
  some interleaving of a 5-site world strands requests (run with
  ``REPRO_SLOW=1``; ~40 s);
* the shipped protocol passes the identical scenarios.
"""

from __future__ import annotations

import os

import pytest

from _explore_mutants import PaperLiteralSite
from repro.core.site import CaoSinghalSite
from repro.errors import DeadlockError
from repro.metrics.collector import MetricsCollector
from repro.quorums.registry import make_quorum_system
from repro.sim.network import ExponentialDelay
from repro.sim.simulator import Simulator
from repro.verify.invariants import check_progress


def run_sim(site_cls, seed=0, n=5, rps=8):
    """The configuration that first exposed the deadlock (grid, exp delays)."""
    qs = make_quorum_system("grid", n)
    sim = Simulator(seed=seed, delay_model=ExponentialDelay(1.0))
    collector = MetricsCollector()
    sites = [
        site_cls(i, qs.quorum_for(i), cs_duration=0.05, listener=collector)
        for i in range(n)
    ]
    for s in sites:
        sim.add_node(s)
        for _ in range(rps):
            sim.schedule(0.0, s.submit_request)
    sim.start()
    sim.run(until=1_000_000.0)
    return collector


def test_paper_literal_rule_deadlocks_in_simulation():
    collector = run_sim(PaperLiteralSite)
    with pytest.raises(DeadlockError):
        check_progress(collector.records, context="paper-literal C.2")


def test_shipped_protocol_survives_the_same_run():
    collector = run_sim(CaoSinghalSite)
    check_progress(collector.records)


@pytest.mark.skipif(
    not os.environ.get("REPRO_SLOW"),
    reason="exhaustive exploration takes ~40s; set REPRO_SLOW=1 to run",
)
def test_explorer_proves_the_gap():
    import repro.verify.explore as ex

    class PaperExploreSite(ex._ExploreSite, PaperLiteralSite):
        pass

    original = ex._ExploreSite
    ex._ExploreSite = PaperExploreSite
    try:
        with pytest.raises(DeadlockError):
            ex.explore(
                [{3, 4}, {3, 4}, {3, 4}, {3}, {4}],
                [1, 1, 1, 0, 0],
                max_states=3_000_000,
            )
    finally:
        ex._ExploreSite = original
