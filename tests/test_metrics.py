"""Unit tests for the metrics layer: collector, summaries, tables."""

from __future__ import annotations

import math

import pytest

from repro.errors import ProtocolError
from repro.metrics.collector import CSRecord, MetricsCollector
from repro.metrics.summary import Stats, jain_fairness, summarize, sync_delays
from repro.metrics.tables import fmt, render_csv, render_table


def rec(site, request, enter, exit_):
    return CSRecord(site=site, request_time=request, enter_time=enter, exit_time=exit_)


# -- collector -----------------------------------------------------------------


def test_collector_pairs_lifecycle():
    c = MetricsCollector()
    c.on_request(0, 1.0)
    c.on_enter(0, 3.0)
    c.on_exit(0, 4.0)
    assert len(c.completed) == 1
    r = c.completed[0]
    assert r.waiting_time == 2.0
    assert r.response_time == 3.0


def test_collector_rejects_double_request():
    c = MetricsCollector()
    c.on_request(0, 1.0)
    with pytest.raises(ProtocolError):
        c.on_request(0, 2.0)


def test_collector_rejects_orphan_enter_and_exit():
    c = MetricsCollector()
    with pytest.raises(ProtocolError):
        c.on_enter(0, 1.0)
    with pytest.raises(ProtocolError):
        c.on_exit(0, 1.0)


def test_collector_unserved_and_per_site_counts():
    c = MetricsCollector()
    c.on_request(0, 1.0)
    c.on_enter(0, 2.0)
    c.on_exit(0, 3.0)
    c.on_request(1, 1.5)
    assert len(c.unserved) == 1
    assert c.per_site_counts() == {0: 1}


# -- stats ---------------------------------------------------------------------


def test_stats_of_empty_is_nan():
    s = Stats.of([])
    assert s.count == 0
    assert math.isnan(s.mean)


def test_stats_percentiles():
    s = Stats.of(list(range(1, 101)))
    assert s.mean == pytest.approx(50.5)
    assert s.p50 == 50
    assert s.p95 == 95
    assert (s.minimum, s.maximum) == (1, 100)


# -- sync delays ---------------------------------------------------------------


def test_sync_delay_counts_contended_handoffs_only():
    records = [
        rec(0, 0.0, 1.0, 2.0),
        # Contended: site 1 requested (t=1.5) before site 0 exited (2.0).
        rec(1, 1.5, 3.0, 4.0),
        # Uncontended: site 2 requested long after site 1 exited.
        rec(2, 50.0, 52.0, 53.0),
    ]
    gaps = sync_delays(records)
    assert gaps == [1.0]


def test_sync_delay_ignores_incomplete_records():
    records = [rec(0, 0.0, 1.0, 2.0), CSRecord(site=1, request_time=1.0)]
    assert sync_delays(records) == []


# -- fairness --------------------------------------------------------------------


def test_jain_perfectly_fair():
    assert jain_fairness({0: 5, 1: 5, 2: 5}, 3) == pytest.approx(1.0)


def test_jain_maximally_unfair():
    assert jain_fairness({0: 9}, 3) == pytest.approx(1 / 3)


def test_jain_empty_is_nan():
    assert math.isnan(jain_fairness({}, 3))


# -- summarize -------------------------------------------------------------------


def test_summarize_basic_quantities():
    records = [
        rec(0, 10.0, 11.0, 12.0),
        rec(1, 11.0, 13.0, 14.0),
        rec(2, 12.0, 15.0, 16.0),
    ]
    summary = summarize(
        algorithm="x",
        n_sites=3,
        records=records,
        messages_sent=30,
        messages_by_type={"request": 15, "reply": 15},
        duration=20.0,
        mean_delay_t=1.0,
        seed=0,
        warmup_fraction=0.0,
    )
    assert summary.completed == 3
    assert summary.messages_per_cs == pytest.approx(10.0)
    assert summary.throughput == pytest.approx(3 / 20)
    assert summary.sync_delay_in_t == pytest.approx(1.0)  # both gaps are 1
    assert summary.fairness == pytest.approx(1.0)
    assert "messages/CS" in summary.describe()


def test_summarize_warmup_excludes_early_records():
    records = [rec(0, 0.0, 1.0, 2.0), rec(1, 50.0, 51.0, 52.0)]
    summary = summarize(
        algorithm="x",
        n_sites=2,
        records=records,
        messages_sent=0,
        messages_by_type={},
        duration=100.0,
        mean_delay_t=1.0,
        seed=0,
        warmup_fraction=0.1,
    )
    # Only the second record is in the steady-state window.
    assert summary.response_time.count == 1


# -- tables ----------------------------------------------------------------------


def test_fmt_handles_nan_and_precision():
    assert fmt(float("nan")) == "-"
    assert fmt(1.23456, 2) == "1.23"
    assert fmt("abc") == "abc"
    assert fmt(7) == "7"


def test_render_table_alignment_and_title():
    text = render_table(["a", "bb"], [[1, 2.5], [10, 3.25]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_render_csv():
    text = render_csv(["x", "y"], [[1, 2.0]])
    assert text.splitlines() == ["x,y", "1,2.000000"]
