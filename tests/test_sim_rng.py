"""Unit tests for deterministic seed derivation."""

from __future__ import annotations

from repro.sim.rng import SeedSequence


def test_same_name_same_stream():
    a = SeedSequence(42).derive("network")
    b = SeedSequence(42).derive("network")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_differ():
    seq = SeedSequence(42)
    a = seq.derive("network")
    b = seq.derive("arrivals/0")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_master_seeds_differ():
    a = SeedSequence(1).derive("x")
    b = SeedSequence(2).derive("x")
    assert a.random() != b.random()


def test_spawn_namespaces_are_independent():
    parent = SeedSequence(7)
    child1 = parent.spawn("ft")
    child2 = parent.spawn("workload")
    assert child1.master_seed != child2.master_seed
    assert child1.derive("x").random() != child2.derive("x").random()


def test_derivation_is_stable_across_instances():
    # The derivation must be hash-salt independent (pure SHA-256), so two
    # processes get identical streams; emulate by rebuilding everything.
    value1 = SeedSequence(99).derive("stable-name").randint(0, 10**9)
    value2 = SeedSequence(99).derive("stable-name").randint(0, 10**9)
    assert value1 == value2


def test_master_seed_property():
    assert SeedSequence(123).master_seed == 123
