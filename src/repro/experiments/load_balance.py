"""Experiments E10/E15 — load balance: quorum constructions and lock shards.

Maekawa's original design goal was *equal work*: with FPP/grid quorums
every site arbitrates for equally many peers. The fault-tolerant
constructions of Section 6 give that up — every tree quorum contains the
root, every wheel quorum the hub — concentrating message load. This
experiment measures the per-site message load (messages addressed to each
site over a saturated run of the proposed algorithm) and reports the
hotspot factor ``max_load / mean_load`` per construction.

Not a table in the paper, but the quantitative footing for its Section 6
remark that tree quorums have "log N in the best case" at the price of
structural asymmetry — and a practical consideration for anyone choosing
a construction.

E15 asks the same balance question one layer up: when *named locks*
hash onto K shards and the key popularity is Zipf-skewed, how uneven
does per-shard load get, and how much protocol traffic does the hot-key
lease cache save? (:func:`run_lock_skew`.)
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.report import ExperimentReport
from repro.experiments.runner import RunConfig, run_mutex
from repro.sim.network import ConstantDelay
from repro.workload.driver import SaturationWorkload

DEFAULT_CONSTRUCTIONS = ("grid", "tree", "hierarchical", "majority", "wheel")


def run_load_balance(
    n_sites: int = 21,
    constructions: Sequence[str] = DEFAULT_CONSTRUCTIONS,
    seed: int = 12,
    requests_per_site: int = 10,
) -> ExperimentReport:
    """Per-site message-load distribution by quorum construction."""
    report = ExperimentReport(
        experiment_id="E10",
        title=f"Arbitration load balance, N={n_sites}, heavy load "
        "(per-site messages received)",
        headers=[
            "construction",
            "K",
            "mean load",
            "max load",
            "hotspot (max/mean)",
            "hottest site",
        ],
    )
    for construction in constructions:
        result = run_mutex(
            RunConfig(
                algorithm="cao-singhal",
                n_sites=n_sites,
                quorum=construction,
                seed=seed,
                delay_model=ConstantDelay(1.0),
                cs_duration=0.1,
                workload=SaturationWorkload(requests_per_site),
            )
        )
        loads = result.sim.network.stats.by_destination
        per_site = [loads.get(s, 0) for s in range(n_sites)]
        mean = sum(per_site) / n_sites
        peak = max(per_site)
        report.add_row(
            construction,
            result.summary.mean_quorum_size,
            mean,
            peak,
            peak / mean if mean else float("nan"),
            per_site.index(peak),
        )
    report.add_note(
        "Grid quorums spread arbitration nearly evenly (hotspot ~1); the "
        "tree funnels every failure-free quorum through the root (site 0) "
        "and the wheel through its hub — cheap quorums, concentrated load."
    )
    return report


DEFAULT_SKEWS = (0.0, 0.8, 1.1, 1.4)


def run_lock_skew(
    skews: Sequence[float] = DEFAULT_SKEWS,
    algorithm: str = "cao-singhal",
    shards: int = 4,
    n_sites: int = 9,
    n_keys: int = 2_000,
    n_clients: int = 32,
    n_requests: int = 400,
    arrival_rate: float = 4.0,
    seed: int = 23,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Zipf hot-key skew vs per-shard balance and lease-cache savings.

    Each skew runs twice on the same seed — lease cache on and off — so
    the "lease saves %" column is a like-for-like message-cost delta.
    Shard load is counted in completed acquires per shard; the hotspot
    factor is ``max/mean`` over the K shards.
    """
    from repro.locks.runner import LockRunConfig, run_lock_configs

    report = ExperimentReport(
        experiment_id="E15",
        title=f"Lock-service key skew, {algorithm}, {shards} shards x "
        f"{n_sites} sites, {n_keys} keys, {n_requests} acquires",
        headers=[
            "zipf s",
            "shard hotspot",
            "busiest shard",
            "msgs/acquire (lease)",
            "msgs/acquire (none)",
            "lease saves %",
            "lease hit %",
        ],
    )
    grid = [
        LockRunConfig(
            algorithm=algorithm,
            shards=shards,
            n_sites=n_sites,
            n_keys=n_keys,
            n_clients=n_clients,
            n_requests=n_requests,
            arrival_rate=arrival_rate,
            key_skew=skew,
            lease=lease,
            seed=seed,
        )
        for skew in skews
        for lease in (True, False)
    ]
    summaries = run_lock_configs(grid, workers=workers)
    for leased, bare in zip(summaries[0::2], summaries[1::2]):
        saved = (
            100 * (1 - leased.messages_per_acquire / bare.messages_per_acquire)
            if bare.messages_per_acquire
            else 0.0
        )
        loads = leased.shard_loads
        report.add_row(
            leased.key_skew,
            round(leased.hotspot_factor, 2),
            loads.index(max(loads)),
            round(leased.messages_per_acquire, 2),
            round(bare.messages_per_acquire, 2),
            round(saved, 1),
            round(100 * leased.lease_hit_rate, 1),
        )
    report.add_note(
        "Skew concentrates load on the hot keys' shards (hotspot factor "
        "rises with s) but also makes the lease cache bite: repeat "
        "acquires of a hot key land on its home site while the "
        "authorization is still warm, so the message saving grows with "
        "the very skew that unbalances the shards."
    )
    return report
