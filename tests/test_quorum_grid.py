"""Unit tests for Maekawa grid quorums."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.quorums.grid import GridQuorumSystem


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 9, 12, 16, 23, 25, 49, 100])
def test_intersection_for_many_sizes(n):
    GridQuorumSystem(n).validate()


def test_perfect_square_geometry():
    g = GridQuorumSystem(9)
    assert (g.rows, g.cols) == (3, 3)
    assert g.position(4) == (1, 1)
    assert g.row_members(1) == {3, 4, 5}
    assert g.col_members(1) == {1, 4, 7}
    assert g.quorum_for(4) == {3, 4, 5, 1, 7}


def test_quorum_size_is_order_sqrt_n():
    for n in (16, 25, 100, 225):
        g = GridQuorumSystem(n)
        k = g.mean_quorum_size()
        assert k == pytest.approx(2 * math.sqrt(n) - 1, rel=0.15)


def test_partial_last_row_still_intersects():
    g = GridQuorumSystem(7)  # 3 columns, last row has one site
    g.validate()
    assert g.quorum_for(6)  # the lonely site still has a quorum


def test_own_site_always_in_quorum():
    g = GridQuorumSystem(12)
    for s in g.sites:
        assert s in g.quorum_for(s)


def test_position_bounds_checked():
    g = GridQuorumSystem(9)
    with pytest.raises(ConfigurationError):
        g.position(9)


def test_avoiding_failed_row_and_column():
    g = GridQuorumSystem(9)
    # Fail site 4 (center): quorums through row 1 / col 1 must reroute.
    q = g.quorum_avoiding(4, frozenset({4}))
    assert q is not None
    assert 4 not in q
    # Two failures in one row: another full row + an untouched column work.
    q = g.quorum_avoiding(8, frozenset({0, 1}))
    assert q is not None and not (q & {0, 1})


def test_avoiding_impossible_patterns_return_none():
    g = GridQuorumSystem(9)
    # One failure per row kills every full row.
    assert g.quorum_avoiding(0, frozenset({0, 4, 8})) is None
    # A full dead row wounds every column, so row+column quorums die too —
    # exactly the fragility Section 6's constructions fix.
    assert g.quorum_avoiding(8, frozenset({0, 1, 2})) is None


def test_custom_cols():
    g = GridQuorumSystem(8, cols=4)
    assert (g.rows, g.cols) == (2, 4)
    g.validate()
