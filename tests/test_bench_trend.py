"""Tests for the CI perf-trend helper (benchmarks/trend.py).

The helper is a standalone script (it must run without PYTHONPATH=src in
a minimal CI step), so it is loaded by file path here.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

_TREND_PATH = (
    pathlib.Path(__file__).parent.parent / "benchmarks" / "trend.py"
)
_spec = importlib.util.spec_from_file_location("bench_trend", _TREND_PATH)
trend = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(trend)


def test_extract_throughput_walks_nested_dicts():
    payload = {
        "events_per_sec": 1000,
        "speedup": 2.0,  # not a throughput key
        "throughput": {"states_per_sec": 50.5},
        "fault_grid": {"nested": {"states_per_sec": 7}},
    }
    assert trend.extract_throughput(payload) == {
        "events_per_sec": 1000.0,
        "throughput.states_per_sec": 50.5,
        "fault_grid.nested.states_per_sec": 7.0,
    }


def test_extract_throughput_ignores_non_numeric():
    assert trend.extract_throughput({"events_per_sec": "fast"}) == {}
    assert trend.extract_throughput({"rows": [1, 2, 3]}) == {}


def _write(path: pathlib.Path, payload: dict) -> pathlib.Path:
    path.write_text(json.dumps(payload))
    return path


def test_append_accumulates_jsonl_records(tmp_path, capsys):
    result = _write(tmp_path / "r.json", {"events_per_sec": 123})
    out = tmp_path / "history.jsonl"
    for sha in ("aaa", "bbb"):
        code = trend.main(
            ["append", "--bench", "kernel", "--result", str(result),
             "--out", str(out), "--sha", sha]
        )
        assert code == 0
    records = [json.loads(line) for line in out.read_text().splitlines()]
    assert [r["sha"] for r in records] == ["aaa", "bbb"]
    assert all(r["bench"] == "kernel" for r in records)
    assert all(r["metrics"] == {"events_per_sec": 123.0} for r in records)


def test_gate_passes_within_threshold(tmp_path, capsys):
    base = _write(tmp_path / "base.json", {"events_per_sec": 100_000})
    fresh = _write(tmp_path / "fresh.json", {"events_per_sec": 80_000})
    code = trend.main(
        ["gate", "--result", str(fresh), "--baseline", str(base),
         "--threshold-pct", "25"]
    )
    assert code == 0


def test_gate_fails_beyond_threshold(tmp_path, capsys):
    base = _write(tmp_path / "base.json", {"events_per_sec": 100_000})
    fresh = _write(tmp_path / "fresh.json", {"events_per_sec": 70_000})
    code = trend.main(
        ["gate", "--result", str(fresh), "--baseline", str(base),
         "--threshold-pct", "25"]
    )
    assert code == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_gate_fails_when_metric_disappears(tmp_path, capsys):
    base = _write(tmp_path / "base.json", {"t": {"states_per_sec": 10}})
    fresh = _write(tmp_path / "fresh.json", {"t": {}})
    code = trend.main(
        ["gate", "--result", str(fresh), "--baseline", str(base)]
    )
    assert code == 1


def test_gate_trivially_passes_without_throughput_metrics(tmp_path):
    # Benches without events/states-per-sec metrics (tables, counters)
    # are the regress CLI's job; the trend gate must not block them.
    base = _write(tmp_path / "base.json", {"rows": [1], "violations": 0})
    fresh = _write(tmp_path / "fresh.json", {"rows": [2], "violations": 5})
    code = trend.main(
        ["gate", "--result", str(fresh), "--baseline", str(base)]
    )
    assert code == 0
