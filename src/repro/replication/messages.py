"""Messages for quorum replica control.

Versions are ``(counter, writer)`` pairs ordered lexicographically, the
classic Gifford/Thomas versioned-register scheme: a writer picks a counter
one above the largest it read from a quorum, and readers return the
highest-versioned value a quorum holds. Quorum intersection (the same
property that carries mutual exclusion in the paper) guarantees a read
quorum overlaps every committed write quorum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

SiteId = int

#: Version tag: (counter, writer site id), lexicographic order.
Version = Tuple[int, int]

ZERO_VERSION: Version = (0, -1)


@dataclass(frozen=True)
class ReadReq:
    """Ask a replica for its current (version, value)."""

    op_id: int
    client: SiteId

    type_name = "read-req"


@dataclass(frozen=True)
class ReadAck:
    """A replica's answer to :class:`ReadReq`."""

    op_id: int
    version: Version
    value: Any

    type_name = "read-ack"


@dataclass(frozen=True)
class WriteReq:
    """Install (version, value) at a replica if the version is newer."""

    op_id: int
    client: SiteId
    version: Version
    value: Any

    type_name = "write-req"


@dataclass(frozen=True)
class WriteAck:
    """Acknowledgement of a :class:`WriteReq` (idempotent)."""

    op_id: int
    version: Version

    type_name = "write-ack"
