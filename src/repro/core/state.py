"""Per-site data structures of the delay-optimal algorithm (Section 3.1).

The paper names five structures: ``lock``, ``req_queue``, ``inq_queue``,
``tran_stack``, and the ``replied``/``failed`` request-side flags. They are
small (bounded by the quorum size and the number of sites), so the
implementations favour clarity and cheap removal over asymptotics:
``RequestQueue`` is a sorted list, ``TranStack`` a plain list used LIFO.
"""

from __future__ import annotations

import bisect
from dataclasses import field
from typing import Dict, List, Optional, Set

from repro.core.messages import Transfer
from repro.common import Priority, slotted_dataclass

SiteId = int


#: Bits reserved for the site id in a packed queue key. 2^32 sites is
#: far beyond any simulated system; the guard in :meth:`RequestQueue.push`
#: keeps the encoding honest.
_SITE_BITS = 32
_SITE_LIMIT = 1 << _SITE_BITS


class RequestQueue:
    """The arbiter's priority queue of waiting requests (``req_queue``).

    Kept sorted ascending; the head (index 0) is the highest-priority
    waiting request. Supports the removal patterns the protocol needs:
    pop-head, remove-by-exact-priority, remove-by-site.

    Array-encoded internally: alongside the :class:`Priority` objects the
    queue keeps a parallel ``list[int]`` of packed ``(seq << 32) | site``
    keys. Packed keys order exactly like the paper's ``(seq, site)``
    lexicographic rule, so every bisect runs C integer comparisons
    instead of calling ``Priority.__lt__`` per probe — the queue is on
    the arbiter's per-message hot path. The iteration/head/pop API still
    yields the shared immutable :class:`Priority` objects.
    """

    __slots__ = ("_keys", "_items")

    def __init__(self) -> None:
        self._keys: List[int] = []
        self._items: List[Priority] = []

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __contains__(self, priority: Priority) -> bool:
        keys = self._keys
        key = (priority.seq << _SITE_BITS) | priority.site
        idx = bisect.bisect_left(keys, key)
        return idx < len(keys) and keys[idx] == key

    def __iter__(self):
        return iter(self._items)

    def push(self, priority: Priority) -> None:
        """Insert keeping ascending (highest priority first) order."""
        site = priority.site
        if not 0 <= site < _SITE_LIMIT and not priority.is_max:
            # The free-lock sentinel's (max, max) fields exceed the
            # packed layout, but its key still sorts after every
            # in-range key (the seq term dominates), so it passes.
            raise ValueError(f"site id {site} outside the packed-key range")
        key = (priority.seq << _SITE_BITS) | site
        idx = bisect.bisect_left(self._keys, key)
        self._keys.insert(idx, key)
        self._items.insert(idx, priority)

    def head(self) -> Optional[Priority]:
        """Highest-priority waiting request, or ``None``."""
        return self._items[0] if self._items else None

    def pop_head(self) -> Priority:
        """Remove and return the highest-priority waiting request."""
        del self._keys[0]
        return self._items.pop(0)

    def remove(self, priority: Priority) -> bool:
        """Remove an exact entry; returns whether it was present."""
        keys = self._keys
        key = (priority.seq << _SITE_BITS) | priority.site
        idx = bisect.bisect_left(keys, key)
        if idx < len(keys) and keys[idx] == key:
            del keys[idx]
            del self._items[idx]
            return True
        return False

    def remove_site(self, site: SiteId) -> Optional[Priority]:
        """Remove the entry of ``site`` (at most one exists); return it."""
        for idx, item in enumerate(self._items):
            if item.site == site:
                del self._keys[idx]
                return self._items.pop(idx)
        return None

    def clone(self) -> "RequestQueue":
        """Independent copy (entries are immutable and shared)."""
        new = RequestQueue.__new__(RequestQueue)
        new._keys = list(self._keys)
        new._items = list(self._items)
        return new

    def __repr__(self) -> str:
        return f"RequestQueue({[str(p) for p in self._items]})"


class TranStack:
    """The requester-side stack of pending ``transfer`` instructions.

    LIFO order matters: an arbiter may send several transfers as its queue
    head changes (out-of-order request arrivals), and only the most recent
    one per arbiter reflects that arbiter's true next-in-line. On CS exit
    the stack is popped and, per the paper, after honouring a transfer all
    remaining entries from the same arbiter are discarded.
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: List[Transfer] = []

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self):
        return iter(self._items)

    def push(self, transfer: Transfer) -> None:
        """Record a transfer instruction."""
        self._items.append(transfer)

    def pop(self) -> Transfer:
        """Remove and return the most recent instruction."""
        return self._items.pop()

    def drop_arbiter(self, arbiter: SiteId) -> int:
        """Discard every instruction from ``arbiter``; returns how many.

        Used when yielding that arbiter's permission (the yielder must no
        longer forward it) and after honouring the arbiter's most recent
        transfer on CS exit.
        """
        before = len(self._items)
        self._items = [t for t in self._items if t.arbiter != arbiter]
        return before - len(self._items)

    def drop_beneficiary(self, site: SiteId) -> int:
        """Discard instructions benefiting ``site`` (Section 6 cleanup)."""
        before = len(self._items)
        self._items = [t for t in self._items if t.beneficiary.site != site]
        return before - len(self._items)

    def clear(self) -> None:
        """Empty the stack (start of a new request)."""
        self._items.clear()

    def clone(self) -> "TranStack":
        """Independent copy (entries are immutable and shared)."""
        new = TranStack.__new__(TranStack)
        new._items = list(self._items)
        return new

    def __repr__(self) -> str:
        return (
            "TranStack(["
            + ", ".join(f"{t.beneficiary}@{t.arbiter}" for t in self._items)
            + "])"
        )


@slotted_dataclass
class ArbiterState:
    """Arbiter-role state: who locks this site's permission and who waits.

    ``epoch`` numbers lock tenures: it increments every time the lock is
    granted to a request (directly, via yield reassignment, or via a
    release installing a transfer beneficiary). Grants, transfers,
    inquires, and yields all carry the tenure they belong to, which is
    what lets receivers discard traffic from an earlier tenure of the
    *same* request — a distinction neither FIFO channels nor request
    timestamps can make once replies travel through proxies (see
    ``repro.core.site``).
    """

    lock: Priority = field(default_factory=Priority.maximum)
    req_queue: RequestQueue = field(default_factory=RequestQueue)
    epoch: int = 0

    def install(self, priority: Priority) -> int:
        """Assign the lock to ``priority``, opening a new tenure."""
        self.lock = priority
        self.epoch += 1
        return self.epoch

    @property
    def is_free(self) -> bool:
        """True when no request holds this arbiter's permission."""
        return self.lock.is_max

    def clone(self) -> "ArbiterState":
        """Independent copy sharing the immutable priorities.

        The interleaving explorer branches worlds thousands of times per
        second; a hand-rolled clone avoids ``copy.deepcopy``'s recursive
        introspection while staying exactly as deep as mutation requires.
        """
        return ArbiterState(
            lock=self.lock, req_queue=self.req_queue.clone(), epoch=self.epoch
        )


@slotted_dataclass
class RequesterState:
    """Requester-role state for the site's current CS request."""

    priority: Optional[Priority] = None
    replied: Dict[SiteId, bool] = field(default_factory=dict)
    #: Tenure under which each arbiter's permission is held (valid while
    #: the matching ``replied`` flag is True).
    grant_epoch: Dict[SiteId, int] = field(default_factory=dict)
    failed: bool = False
    #: Deferred inquires: arbiter -> tenure inquired (reply pending or
    #: undecided at receipt time).
    inq_pending: Dict[SiteId, int] = field(default_factory=dict)
    tran_stack: TranStack = field(default_factory=TranStack)

    def reset_for(self, priority: Priority, quorum) -> None:
        """Re-initialize for a new request (algorithm step A.1)."""
        self.priority = priority
        self.replied = {site: False for site in quorum}
        self.grant_epoch = {}
        self.failed = False
        self.inq_pending.clear()
        self.tran_stack.clear()

    @property
    def all_replied(self) -> bool:
        """True when every quorum member's permission is held (step B)."""
        return bool(self.replied) and all(self.replied.values())

    def clone(self) -> "RequesterState":
        """Independent copy sharing the immutable priorities/transfers."""
        new = RequesterState(
            priority=self.priority,
            replied=dict(self.replied),
            grant_epoch=dict(self.grant_epoch),
            failed=self.failed,
            inq_pending=dict(self.inq_pending),
        )
        new.tran_stack = self.tran_stack.clone()
        return new
