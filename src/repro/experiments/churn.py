"""Experiment E11 — service continuity under crash/recovery churn.

Extends the Section 6 story from a single failure to continuous churn:
sites repeatedly crash and rejoin while the system serves a steady
workload. For each quorum construction we report how much throughput
survives churn (relative to an identical churn-free run), whether any
live site's request was lost, and the recovery machinery's message
overhead — with mutual exclusion verified across every transition.

This exercises the full rejoin pipeline added on top of the paper
(failure notices → cleanup → quorum re-selection → recovery notices →
readmission), quantifying the cost of the paper's "fault-tolerance
capability" in steady state rather than at a single point failure.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.faults import FaultTolerantSite
from repro.experiments.report import ExperimentReport
from repro.ft.recovery import ChurnPlan
from repro.metrics.collector import MetricsCollector
from repro.quorums.registry import make_quorum_system
from repro.sim.network import ConstantDelay
from repro.sim.simulator import Simulator
from repro.verify.invariants import check_mutual_exclusion

DEFAULT_CONSTRUCTIONS = ("tree", "majority", "rst")


def _run_once(
    quorum: str,
    n_sites: int,
    seed: int,
    requests_per_site: int,
    churn: bool,
    cycle: float = 30.0,
    down_time: float = 10.0,
):
    qs = make_quorum_system(quorum, n_sites)
    sim = Simulator(seed=seed, delay_model=ConstantDelay(1.0))
    collector = MetricsCollector()
    sites = [
        FaultTolerantSite(i, qs, cs_duration=0.2, listener=collector)
        for i in range(n_sites)
    ]
    for site in sites:
        sim.add_node(site)
        for _ in range(requests_per_site):
            sim.schedule(0.0, site.submit_request)
    if churn:
        plan = ChurnPlan()
        # Two rotating victims per cycle, staggered half a cycle apart.
        plan.churn(0, crash_at=cycle / 6, recover_at=cycle / 6 + down_time,
                   detection_delay=1.5)
        plan.churn(n_sites - 1, crash_at=cycle / 2,
                   recover_at=cycle / 2 + down_time, detection_delay=1.5)
        plan.install(sim, sites)
    sim.start()
    sim.run(until=1_000_000.0)
    check_mutual_exclusion(collector.records)
    return sim, sites, collector


def run_churn(
    n_sites: int = 9,
    constructions: Sequence[str] = DEFAULT_CONSTRUCTIONS,
    seed: int = 14,
    requests_per_site: int = 8,
) -> ExperimentReport:
    """Churn vs churn-free throughput per construction."""
    report = ExperimentReport(
        experiment_id="E11",
        title=f"Crash/recovery churn, N={n_sites} "
        "(2 crash+rejoin cycles during a saturated run)",
        headers=[
            "construction",
            "served (churn-free)",
            "served (churn)",
            "throughput retained",
            "stuck live sites",
            "recovery msgs (probe/ack)",
        ],
    )
    for construction in constructions:
        base_sim, _, base_col = _run_once(
            construction, n_sites, seed, requests_per_site, churn=False
        )
        sim, sites, collector = _run_once(
            construction, n_sites, seed, requests_per_site, churn=True
        )
        base_rate = len(base_col.completed) / base_sim.last_event_time
        churn_rate = len(collector.completed) / sim.last_event_time
        by_type = sim.network.stats.by_type
        recovery_msgs = by_type.get("probe", 0) + by_type.get("probe-ack", 0)
        stuck = sum(1 for s in sites if s.has_work)
        report.add_row(
            construction,
            len(base_col.completed),
            len(collector.completed),
            churn_rate / base_rate,
            stuck,
            recovery_msgs,
        )
    report.add_note(
        "Served counts differ only by the crashed sites' in-flight and "
        "deferred requests; every live site's requests complete (stuck "
        "must be 0) and mutual exclusion is verified across crash, "
        "cleanup, rejoin, and readmission."
    )
    return report
