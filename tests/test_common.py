"""Unit tests for shared primitives: Priority ordering and Bundles."""

from __future__ import annotations

import pytest

from repro.common import Bundle, Priority, bundle_or_single


def test_priority_orders_by_sequence_then_site():
    # Paper rule: smaller sequence number wins; ties -> smaller site id.
    assert Priority(1, 5) < Priority(2, 0)
    assert Priority(3, 1) < Priority(3, 2)
    assert not Priority(3, 2) < Priority(3, 2)


def test_priority_max_sentinel():
    top = Priority.maximum()
    assert top.is_max
    assert Priority(10**9, 10**6) < top
    assert str(top) == "(max,max)"


def test_priority_str():
    assert str(Priority(4, 2)) == "(4,2)"


def test_priority_equality_and_hash():
    assert Priority(1, 1) == Priority(1, 1)
    assert len({Priority(1, 1), Priority(1, 1), Priority(1, 2)}) == 2


def test_priority_total_order_sorting():
    ps = [Priority(2, 1), Priority(1, 9), Priority(2, 0), Priority(1, 0)]
    assert sorted(ps) == [
        Priority(1, 0),
        Priority(1, 9),
        Priority(2, 0),
        Priority(2, 1),
    ]


class _Msg:
    def __init__(self, name):
        self.type_name = name


def test_bundle_combines_type_names():
    b = Bundle(parts=(_Msg("inquire"), _Msg("transfer")))
    assert b.type_name == "inquire+transfer"


def test_bundle_requires_two_parts():
    with pytest.raises(ValueError):
        Bundle(parts=(_Msg("solo"),))


def test_bundle_or_single_passthrough():
    solo = _Msg("reply")
    assert bundle_or_single(solo) is solo
    combined = bundle_or_single(_Msg("reply"), _Msg("transfer"))
    assert isinstance(combined, Bundle)
    assert combined.type_name == "reply+transfer"
