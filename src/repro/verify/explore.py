"""Exhaustive interleaving exploration (bounded model checking).

The simulator replays *one* schedule per seed; this module explores **every
message/timer interleaving** of a small configuration of
:class:`~repro.core.site.CaoSinghalSite` processes and checks, on every
path:

* **safety** — at most one site is ever inside the CS (Theorem 1), on
  every prefix of every interleaving;
* **liveness** — every terminal state (no deliverable message, no pending
  timer) has served every submitted request with all arbiters free
  (Theorems 2 and 3: a terminal state with waiting requests *is* a
  deadlock).

The abstraction is sound for the paper's model: per-channel FIFO order is
preserved (only channel heads are deliverable), while everything else —
relative speeds of channels, CS execution time, timer firings — is left
completely free, which over-approximates every possible assignment of
message delays and CS durations. A property that holds here holds for
*all* delay models, not just sampled ones.

State deduplication (structural fingerprints) keeps the exploration DAG
small enough for worlds of up to ~5 sites and a handful of requests; the
randomized stress and property tests cover the large configurations. The
explorer earned its keep twice in this repo's history: reverting the C.2
handover-inquire fix in ``repro.core.site`` makes a 5-site exploration
deadlock (``tests/test_paper_gap.py``), and the cross-tenure transfer
race that motivated the tenure-epoch extension was *discovered* by this
module — a 32-action interleaving no randomized run had produced (see
DESIGN.md, "Cross-tenure relics need tenure epochs").
"""

from __future__ import annotations

import copy
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.site import CaoSinghalSite
from repro.errors import DeadlockError, MutualExclusionViolation, ProtocolError
from repro.mutex.base import RunListener
from repro.sim.trace import Trace


class _FakeTimer:
    """Symbolic timer: (site id, method name), rebindable under deepcopy.

    A closure-based timer would keep pointing at the *original* site after
    ``copy.deepcopy`` branches a world (functions are not deep-copied), so
    timers store the target symbolically and are resolved against the
    branch's own site list when fired.
    """

    __slots__ = ("site_id", "method", "label", "cancelled")

    def __init__(self, site_id: int, method: str, label: str) -> None:
        self.site_id = site_id
        self.method = method
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def fire(self, world: "_World") -> None:
        getattr(world.sites[self.site_id], self.method)()


class _FakeSim:
    """The minimal simulator surface a site touches, timeless.

    Message sends and timers never reach it (the explorer's site subclass
    overrides both); only the trace/now properties remain.
    """

    def __init__(self, world: "_World") -> None:
        self.world = world
        self.trace = Trace(enabled=False)
        self.now = 0.0

    def schedule(self, delay: float, action, label: str = ""):  # pragma: no cover
        raise AssertionError("explorer sites register timers symbolically")

    def deliver_local(self, site: int, message) -> None:  # pragma: no cover
        raise AssertionError("sends are intercepted; deliver_local unused")


class _ExploreSite(CaoSinghalSite):
    """Site whose sends go straight into the world's FIFO channels.

    Implemented as an override (not a monkeypatched closure) so that
    ``copy.deepcopy`` of a world rebinds everything consistently —
    a closure would keep writing into the original world's channels.
    """

    def send(self, dst, message, piggybacked: bool = False) -> None:
        world = self.sim.world  # type: ignore[attr-defined]
        world.channels.setdefault((self.site_id, dst), deque()).append(message)

    def set_timer(self, delay, action, label: str = "timer") -> _FakeTimer:
        world = self.sim.world  # type: ignore[attr-defined]
        timer = _FakeTimer(self.site_id, action.__name__, label)
        world.timers.append(timer)
        return timer


class _SafetyListener(RunListener):
    """Counts CS occupancy online; any overlap is an immediate violation."""

    def __init__(self) -> None:
        self.in_cs = 0
        self.served = 0

    def on_enter(self, site, time) -> None:
        self.in_cs += 1
        if self.in_cs > 1:
            raise MutualExclusionViolation(
                f"{self.in_cs} sites in the CS simultaneously"
            )

    def on_exit(self, site, time) -> None:
        self.in_cs -= 1
        self.served += 1


@dataclass
class _World:
    """One explored state: sites + in-flight channels + pending timers."""

    sites: List[CaoSinghalSite] = field(default_factory=list)
    #: per-ordered-pair FIFO of undelivered messages
    channels: Dict[Tuple[int, int], deque] = field(default_factory=dict)
    timers: List[_FakeTimer] = field(default_factory=list)
    listener: _SafetyListener = field(default_factory=_SafetyListener)

    def enabled_actions(self) -> List[Tuple[str, object]]:
        actions: List[Tuple[str, object]] = []
        for channel, queue in sorted(self.channels.items()):
            if queue:
                actions.append(("deliver", channel))
        for idx, timer in enumerate(self.timers):
            if not timer.cancelled:
                actions.append(("timer", idx))
        return actions

    def apply(self, action: Tuple[str, object]) -> None:
        kind, arg = action
        if kind == "deliver":
            src, dst = arg  # type: ignore[misc]
            message = self.channels[arg].popleft()
            self.sites[dst].on_message(src, message)
        else:
            timer = self.timers.pop(arg)  # type: ignore[arg-type]
            if not timer.cancelled:
                timer.fire(self)

    def fingerprint(self) -> Tuple:
        """Hashable digest of the full protocol state, for deduplication.

        Different interleavings frequently converge to identical states;
        hashing them collapses the exploration DAG and keeps the state
        count polynomial-ish for the configurations we check.
        """
        site_parts = []
        for s in self.sites:
            req = s.req
            site_parts.append(
                (
                    s.state.value,
                    s.backlog,
                    s.completed,
                    s.max_seq_seen,
                    req.priority,
                    tuple(sorted(req.replied.items())),
                    tuple(sorted(req.grant_epoch.items())),
                    req.failed,
                    tuple(sorted(req.inq_pending.items())),
                    tuple(req.tran_stack),
                    s.arbiter.lock,
                    s.arbiter.epoch,
                    tuple(s.arbiter.req_queue),
                    tuple(sorted(s._pending_releases.items())),
                )
            )
        channel_parts = tuple(
            (channel, tuple(queue))
            for channel, queue in sorted(self.channels.items())
            if queue
        )
        timer_parts = tuple(
            (t.site_id, t.method)
            for t in self.timers
            if not t.cancelled
        )
        return (tuple(site_parts), channel_parts, timer_parts, self.listener.in_cs)


@dataclass
class ExplorationResult:
    """Outcome of an exhaustive exploration."""

    states_explored: int
    terminal_states: int
    max_depth: int
    complete: bool  # False when the state budget was exhausted


class CounterexampleFound(Exception):
    """Wraps a property failure together with the action path reaching it.

    ``path`` is the exact sequence of deliver/timer actions from the
    initial world; replaying it through :meth:`_World.apply` reproduces
    the failure deterministically (used to shrink and diagnose explorer
    findings).
    """

    def __init__(self, cause: Exception, path: List[Tuple[str, object]]) -> None:
        super().__init__(f"{cause} (after {len(path)} actions)")
        self.cause = cause
        self.path = path


def build_world(
    quorums: Sequence[Iterable[int]],
    requests_per_site: Optional[Sequence[int]] = None,
    enable_transfer: bool = True,
) -> _World:
    """Construct the initial world: sites wired to intercepted channels."""
    world = _World()
    fake_sim = _FakeSim(world)
    n = len(quorums)
    requests = list(requests_per_site or [1] * n)
    if len(requests) != n:
        raise ProtocolError("requests_per_site must match the site count")

    for i, quorum in enumerate(quorums):
        site = _ExploreSite(
            i,
            quorum,
            cs_duration=1.0,  # becomes a free-fire timer in the explorer
            listener=world.listener,
            enable_transfer=enable_transfer,
        )
        site.bind(fake_sim)  # type: ignore[arg-type]
        world.sites.append(site)

    for site, count in zip(world.sites, requests):
        for _ in range(count):
            site.submit_request()
    return world


def explore(
    quorums: Sequence[Iterable[int]],
    requests_per_site: Optional[Sequence[int]] = None,
    enable_transfer: bool = True,
    max_states: int = 100_000,
    keep_paths: bool = False,
) -> ExplorationResult:
    """Explore every interleaving; raise on any safety or liveness failure.

    Raises :class:`MutualExclusionViolation` the moment any interleaving
    overlaps two CS executions, and :class:`DeadlockError` for any
    terminal state with unserved requests or residual arbiter state.
    With ``keep_paths=True`` any failure is wrapped in
    :class:`CounterexampleFound` carrying the exact action sequence (uses
    more memory; meant for diagnosing a failure found without paths).
    """
    initial = build_world(quorums, requests_per_site, enable_transfer)
    expected = sum(requests_per_site or [1] * len(quorums))

    empty_path: List[Tuple[str, object]] = []
    stack: List[Tuple[_World, int, List[Tuple[str, object]]]] = [
        (initial, 0, empty_path)
    ]
    seen = {initial.fingerprint()}
    states = 0
    terminals = 0
    max_depth = 0
    while stack:
        world, depth, path = stack.pop()
        states += 1
        max_depth = max(max_depth, depth)
        if states > max_states:
            return ExplorationResult(
                states_explored=states,
                terminal_states=terminals,
                max_depth=max_depth,
                complete=False,
            )
        actions = world.enabled_actions()
        if not actions:
            terminals += 1
            try:
                _check_terminal(world, expected)
            except Exception as cause:
                if keep_paths:
                    raise CounterexampleFound(cause, path) from cause
                raise
            continue
        for action in actions:
            branch = copy.deepcopy(world)
            try:
                branch.apply(action)
            except Exception as cause:
                if keep_paths:
                    raise CounterexampleFound(cause, path + [action]) from cause
                raise
            digest = branch.fingerprint()
            if digest in seen:
                continue  # another interleaving already reached this state
            seen.add(digest)
            stack.append(
                (branch, depth + 1, path + [action] if keep_paths else empty_path)
            )
    return ExplorationResult(
        states_explored=states,
        terminal_states=terminals,
        max_depth=max_depth,
        complete=True,
    )


def _check_terminal(world: _World, expected: int) -> None:
    if world.listener.in_cs != 0:
        raise DeadlockError("terminal state with a site stuck inside the CS")
    if world.listener.served != expected:
        raise DeadlockError(
            f"terminal state served {world.listener.served} of {expected} "
            "requests — an interleaving deadlocks the protocol"
        )
    for site in world.sites:
        if site.has_work:
            raise DeadlockError(f"site {site.site_id} still has queued work")
        if not site.arbiter.is_free or len(site.arbiter.req_queue):
            raise DeadlockError(
                f"arbiter {site.site_id} holds residual state at termination"
            )
