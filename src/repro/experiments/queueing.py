"""Experiment E12 — arbiter queue dynamics across the load range.

The paper's heavy-load analysis implicitly assumes arbiters carry queues
of waiting requests; this experiment measures them: mean and peak arbiter
queue length and the fraction of time arbiters sit non-empty, as offered
load sweeps from idle to saturation. The knee where queues take off marks
the light/heavy boundary the paper's two analyses (5.1 vs 5.2) divide at
— and shows it lands at the same place for the proposed algorithm and
Maekawa (queueing is a property of the load, not of the handoff
mechanism; the handoff decides how fast the queues *drain*).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.report import ExperimentReport
from repro.experiments.runner import RunConfig, build_run
from repro.metrics.instruments import ArbiterSampler
from repro.sim.network import ConstantDelay
from repro.workload.arrivals import PoissonArrivals
from repro.workload.driver import OpenLoopWorkload, SaturationWorkload

DEFAULT_RATES = (0.005, 0.02, 0.05, None)  # None = saturation


def run_queueing(
    n_sites: int = 16,
    rates: Sequence = DEFAULT_RATES,
    seed: int = 15,
    horizon: float = 800.0,
) -> ExperimentReport:
    """Arbiter queue statistics vs offered load."""
    report = ExperimentReport(
        experiment_id="E12",
        title=f"Arbiter queue dynamics, N={n_sites}, grid quorums "
        "(cao-singhal | maekawa)",
        headers=[
            "load (req/site/T)",
            "cs mean queue",
            "mk mean queue",
            "cs peak",
            "mk peak",
            "cs busy frac",
            "mk busy frac",
        ],
    )
    for rate in rates:
        row = ["saturation" if rate is None else rate]
        means, peaks, busy = [], [], []
        for algorithm in ("cao-singhal", "maekawa"):
            workload = (
                SaturationWorkload(12)
                if rate is None
                else OpenLoopWorkload(PoissonArrivals(rate), horizon)
            )
            config = RunConfig(
                algorithm=algorithm,
                n_sites=n_sites,
                quorum="grid",
                seed=seed,
                delay_model=ConstantDelay(1.0),
                cs_duration=0.2,
                workload=workload,
            )
            sim, sites, collector, _, _ = build_run(config)
            sampler = ArbiterSampler(
                sim, sites, period=1.0, lifetime=horizon
            )
            sim.start()
            sim.run(until=1_000_000.0)
            means.append(sampler.system_mean_queue())
            peaks.append(sampler.system_peak_queue())
            fracs = [
                sampler.stats_for(s.site_id).busy_fraction for s in sites
            ]
            busy.append(sum(fracs) / len(fracs))
        report.add_row(row[0], means[0], means[1], peaks[0], peaks[1],
                       busy[0], busy[1])
    report.add_note(
        "Queues stay near zero through the light-load regime and take off "
        "toward saturation — the boundary between the paper's Section 5.1 "
        "and 5.2 analyses. Maekawa's slower drains show as equal-or-longer "
        "queues at equal load."
    )
    return report
