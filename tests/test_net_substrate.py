"""NetSubstrate unit tests: substrate-interface conformance, the
write-through JSONL trace, chaos injection, and run-directory plumbing."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.net import NetRunConfig, NetSubstrate
from repro.net.substrate import JsonlTraceWriter
from repro.obs.export import import_jsonl
from repro.sim.node import Node
from repro.sim.simulator import Simulator
from repro.substrate import Substrate


class Echo(Node):
    """Replies ``("echo", x)`` to every ``("ping", x)`` it receives."""

    def __init__(self, site_id):
        super().__init__(site_id)
        self.got = []

    def on_message(self, src, message):
        self.got.append((src, message))
        if isinstance(message, tuple) and message[0] == "ping":
            self.send(src, ("echo", message[1]))


def test_both_substrates_satisfy_the_protocol():
    # The whole point of the split: the simulator and the UDP backend
    # are interchangeable behind one structural interface.
    assert isinstance(Simulator(), Substrate)
    assert isinstance(NetSubstrate(0, NetRunConfig(n_sites=1)), Substrate)


def run_pair(config_kwargs=None, rounds=3):
    """Two Echo nodes on two UDP substrates in one loop; returns them."""
    config = NetRunConfig(n_sites=2, **(config_kwargs or {}))

    async def drive():
        subs = [NetSubstrate(i, config) for i in range(2)]
        nodes = [Echo(i) for i in range(2)]
        for sub, node in zip(subs, nodes):
            sub.add_node(node)
            if config.reliable:
                sub.install_transport(config.reliable_config())
        addresses = {}
        for sub in subs:
            addresses[sub.site_id] = (config.host, await sub.start())
        import time

        for sub in subs:
            sub.configure(addresses, time.time())
        for i in range(rounds):
            nodes[0].send(1, ("ping", i))
        deadline = asyncio.get_running_loop().time() + 10.0
        while len(nodes[0].got) < rounds:
            if asyncio.get_running_loop().time() > deadline:
                raise TimeoutError(
                    f"echo incomplete: {len(nodes[0].got)}/{rounds}"
                )
            await asyncio.sleep(0.005)
        for sub in subs:
            sub.close()
        return subs, nodes

    return asyncio.run(drive())


def test_udp_echo_roundtrip_with_reliable_channels():
    subs, nodes = run_pair(rounds=3)
    assert [m for _, m in nodes[1].got] == [("ping", i) for i in range(3)]
    assert [m for _, m in nodes[0].got] == [("echo", i) for i in range(3)]
    # Protocol accounting: 3 pings + 3 echoes, independent of acks.
    assert subs[0].stats.messages_sent == 3
    assert subs[1].stats.messages_sent == 3


def test_chaos_loss_is_healed_by_the_reliable_layer():
    subs, nodes = run_pair(
        config_kwargs={"loss": 0.3, "chaos_seed": 5}, rounds=5
    )
    dropped = sum(s.stats.chaos_dropped for s in subs)
    retransmitted = sum(
        s.transport.stats.retransmitted for s in subs if s.transport
    )
    assert dropped > 0, "with loss=0.3 over >=20 datagrams, some must drop"
    assert retransmitted >= dropped - 1  # each loss costs a retransmission
    # And yet delivery was exactly-once FIFO:
    assert [m for _, m in nodes[1].got] == [("ping", i) for i in range(5)]


def test_self_send_bypasses_the_wire():
    config = NetRunConfig(n_sites=1)

    async def drive():
        sub = NetSubstrate(0, config)
        node = Echo(0)
        sub.add_node(node)
        await sub.start()
        import time

        sub.configure({}, time.time())
        node.send(0, ("local", 1))
        deadline = asyncio.get_running_loop().time() + 5.0
        while not node.got:
            if asyncio.get_running_loop().time() > deadline:
                raise TimeoutError("self-send never delivered")
            await asyncio.sleep(0.005)
        sub.close()
        return sub, node

    sub, node = asyncio.run(drive())
    assert node.got == [(0, ("local", 1))]
    assert sub.stats.messages_sent == 0, "self-delivery costs no message"
    assert sub.stats.datagrams_sent == 0
    # ... and is traced as deliver-local, like on the simulator.
    assert [r.kind for r in sub.trace] == ["deliver-local"]


def test_jsonl_trace_writer_is_valid_at_every_instant(tmp_path):
    path = tmp_path / "shard.jsonl"
    writer = JsonlTraceWriter(path, meta={"site": 0})
    writer.record(0.5, "request", 0)
    writer.record(1.0, "cs_enter", 0)
    # No close(): the file must already be a complete, parseable trace,
    # because SIGTERM can land at any moment.
    imported = import_jsonl(str(path))
    assert [r.kind for r in imported.records] == ["request", "cs_enter"]
    assert imported.meta == {"site": 0}
    writer.close()
    assert len(writer._records) == 2  # in-memory mirror kept too


def test_malformed_datagram_is_dropped_not_fatal():
    config = NetRunConfig(n_sites=1)
    sub = NetSubstrate(0, config)
    sub.add_node(Echo(0))
    sub.datagram_received(b"not even json")
    sub.datagram_received(json.dumps({"v": 99}).encode())
    assert sub.stats.decode_errors == 2


def test_crashed_node_receives_nothing():
    config = NetRunConfig(n_sites=1)
    sub = NetSubstrate(0, config)
    node = Echo(0)
    sub.add_node(node)
    node.crashed = True
    sub.deliver_protocol(1, 0, ("ping", 1))
    assert node.got == []


def test_duplicate_addition_of_a_site_is_rejected():
    from repro.errors import ConfigurationError

    sub = NetSubstrate(0, NetRunConfig(n_sites=1))
    sub.add_node(Echo(0))
    with pytest.raises(ConfigurationError):
        sub.add_node(Echo(0))
