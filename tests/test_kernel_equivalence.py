"""Differential equivalence: the kernel still replays the pinned goldens.

``tests/data/golden_kernel_fingerprints.json`` holds run fingerprints
(summary digest, per-record trace digest, event/message counts, final
clock) captured from the kernel *before* the hot-path refactor, for
3 algorithms x 3 seeds. This test re-runs each configuration on the
current kernel and asserts every field matches byte-for-byte — the
strongest practical proof that an optimisation changed the kernel's
speed and nothing else.

If this test fails after an intentional behaviour change, regenerate the
goldens with ``python -m repro.verify.fingerprint`` and call the change
out in the commit message; never regenerate to make a refactor pass.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.verify.fingerprint import (
    GOLDEN_ALGORITHMS,
    GOLDEN_SEEDS,
    fingerprint_run,
    golden_config,
)

GOLDEN_PATH = (
    pathlib.Path(__file__).parent / "data" / "golden_kernel_fingerprints.json"
)

GRID = [
    (algorithm, seed)
    for algorithm in GOLDEN_ALGORITHMS
    for seed in GOLDEN_SEEDS
]


@pytest.fixture(scope="module")
def goldens():
    return json.loads(GOLDEN_PATH.read_text())


def test_golden_file_covers_the_whole_grid(goldens):
    assert sorted(goldens) == sorted(f"{a}/{s}" for a, s in GRID)


@pytest.mark.parametrize("algorithm,seed", GRID)
def test_kernel_replays_golden_fingerprint(goldens, algorithm, seed):
    key = f"{algorithm}/{seed}"
    expected = goldens[key]
    actual = fingerprint_run(golden_config(algorithm, seed))
    # Compare field-by-field so a failure names what diverged (counts
    # catch gross drift; the trace digest catches single-event drift).
    for field in expected:
        assert actual[field] == expected[field], (
            f"{key}: kernel diverged from golden on {field!r}"
        )
