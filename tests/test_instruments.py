"""Tests for the in-simulation instruments (ArbiterSampler) and E12."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.queueing import run_queueing
from repro.experiments.runner import RunConfig, build_run
from repro.metrics.instruments import ArbiterSampler
from repro.sim.network import ConstantDelay
from repro.workload.driver import SaturationWorkload


def sampled_run(n=6, rps=6, period=0.5):
    config = RunConfig(
        algorithm="cao-singhal",
        n_sites=n,
        quorum="grid",
        seed=3,
        delay_model=ConstantDelay(1.0),
        cs_duration=0.2,
        workload=SaturationWorkload(rps),
    )
    sim, sites, collector, _, _ = build_run(config)
    sampler = ArbiterSampler(sim, sites, period=period, lifetime=200.0)
    sim.start()
    sim.run(until=500_000.0)
    return sim, sites, sampler


def test_sampler_period_validation():
    config = RunConfig(workload=SaturationWorkload(1))
    sim, sites, _, _, _ = build_run(config)
    with pytest.raises(ConfigurationError):
        ArbiterSampler(sim, sites, period=0.0)


def test_sampler_collects_on_schedule():
    sim, sites, sampler = sampled_run(period=0.5)
    assert sampler.samples, "no samples collected"
    times = [s.time for s in sampler.samples]
    assert times == sorted(times)
    # Samples every 0.5 until the run drained (or lifetime).
    assert times[0] == pytest.approx(0.5)
    assert times[1] - times[0] == pytest.approx(0.5)


def test_saturated_run_shows_queues():
    _, sites, sampler = sampled_run(n=6, rps=8)
    assert sampler.system_peak_queue() >= 1
    assert sampler.system_mean_queue() > 0
    stats = sampler.stats_for(sites[0].site_id)
    assert 0 <= stats.busy_fraction <= 1
    assert stats.peak >= stats.mean


def test_stats_for_unknown_site_is_nan_free_peak():
    _, _, sampler = sampled_run()
    stats = sampler.stats_for(999)
    assert stats.peak == 0
    assert stats.mean == 0.0 or math.isnan(stats.mean) is False


def test_e12_report_shape():
    report = run_queueing(n_sites=9, rates=(0.01, None), horizon=200.0)
    assert len(report.rows) == 2
    light, saturated = report.rows
    assert light[1] <= saturated[1]  # queues grow with load
