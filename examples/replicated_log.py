#!/usr/bin/env python3
"""Replicated append-only log guarded by distributed mutual exclusion.

The paper's motivating applications are replicated data and atomic
commitment: a resource that must be updated by one site at a time. This
example builds exactly that — every site repeatedly appends its next local
record to a fully replicated log, entering the critical section for each
append — and then *proves* the runs were serialized:

* every replica ends up with the identical sequence (no lost or
  interleaved appends);
* each site's own records appear in issue order (the per-site FIFO the
  local backlog guarantees);
* the mutual-exclusion checker validates the recorded CS intervals.

The "network" carrying the log replication piggybacks on the simulation:
an append performed inside the CS is applied to every replica before the
CS is released (in a real deployment this would be the write to the
replicated store that the lock protects).

Run: ``python examples/replicated_log.py``
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.site import CaoSinghalSite
from repro.metrics.collector import MetricsCollector
from repro.mutex.base import RunListener
from repro.quorums import make_quorum_system
from repro.sim import Simulator, UniformDelay
from repro.verify import check_mutual_exclusion

N_SITES = 9
APPENDS_PER_SITE = 5

Record = Tuple[int, int]  # (site, local sequence number)


class ReplicatedLog:
    """The shared resource: one logical log, one physical copy per site."""

    def __init__(self, n_sites: int) -> None:
        self.replicas: Dict[int, List[Record]] = {s: [] for s in range(n_sites)}

    def append_everywhere(self, record: Record) -> None:
        """Apply an append to all replicas (performed inside the CS)."""
        for replica in self.replicas.values():
            replica.append(record)

    def check_convergence(self) -> List[Record]:
        """All replicas identical; returns the agreed sequence."""
        sequences = list(self.replicas.values())
        first = sequences[0]
        assert all(seq == first for seq in sequences), "replicas diverged!"
        return first


class AppendingListener(RunListener):
    """Performs the guarded append whenever a site enters the CS."""

    def __init__(self, log: ReplicatedLog, metrics: MetricsCollector) -> None:
        self.log = log
        self.metrics = metrics
        self.next_seq: Dict[int, int] = {}

    def on_request(self, site: int, time: float) -> None:
        self.metrics.on_request(site, time)

    def on_enter(self, site: int, time: float) -> None:
        self.metrics.on_enter(site, time)
        seq = self.next_seq.get(site, 0)
        self.next_seq[site] = seq + 1
        self.log.append_everywhere((site, seq))

    def on_exit(self, site: int, time: float) -> None:
        self.metrics.on_exit(site, time)


def main() -> None:
    quorums = make_quorum_system("tree", N_SITES)  # K = log N quorums
    sim = Simulator(seed=7, delay_model=UniformDelay(0.5, 1.5))
    log = ReplicatedLog(N_SITES)
    metrics = MetricsCollector()
    listener = AppendingListener(log, metrics)

    sites = [
        CaoSinghalSite(i, quorums.quorum_for(i), cs_duration=0.2, listener=listener)
        for i in range(N_SITES)
    ]
    for site in sites:
        sim.add_node(site)
        for _ in range(APPENDS_PER_SITE):
            sim.schedule(0.0, site.submit_request)

    sim.start()
    sim.run()

    # -- verification ------------------------------------------------------
    check_mutual_exclusion(metrics.records)
    agreed = log.check_convergence()
    assert len(agreed) == N_SITES * APPENDS_PER_SITE
    for site in range(N_SITES):
        own = [seq for s, seq in agreed if s == site]
        assert own == sorted(own), f"site {site} records out of order"

    print(f"replicated {len(agreed)} appends across {N_SITES} replicas "
          f"in {sim.now:.1f} time units "
          f"({sim.network.stats.messages_sent} protocol messages)")
    print("all replicas converged; per-site order preserved; "
          "mutual exclusion verified")
    print("\nfirst ten agreed records:", agreed[:10])


if __name__ == "__main__":
    main()
