"""Node abstraction: a process bound to an execution substrate.

A :class:`Node` is the unit the paper calls a *site*: a process plus the
computer it runs on. Nodes interact with the world only through the narrow
:class:`~repro.substrate.Substrate` interface — send a message, set a
timer, read the clock — which keeps algorithm implementations free of
execution plumbing and makes them read like the paper's pseudo-code. The
same node runs unchanged inside the discrete-event
:class:`~repro.sim.simulator.Simulator` or on real asyncio UDP sockets
(:class:`repro.net.substrate.NetSubstrate`).

All scheduling routes through the substrate's ``(fn, args)`` API
(:meth:`~repro.substrate.Substrate.schedule_call`): timers and
self-sends bind their context as event arguments instead of closures, so
on the simulator the per-message and per-timer cost is one slotted event
allocation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.substrate import SiteId, TimerHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.substrate import Substrate

__all__ = ["Node", "SiteId"]


class Node:
    """Base class for protocol processes.

    Subclasses override :meth:`on_message` (and optionally :meth:`on_start`,
    :meth:`on_crash`, :meth:`on_recover`). The substrate wires the node in
    via :meth:`bind`; until then the node is inert and sending raises.

    The base class declares ``__slots__``; subclasses that want ad-hoc
    attributes simply omit their own ``__slots__`` (they then get a
    ``__dict__`` as usual), while the substrate-facing fields here stay
    slotted.
    """

    __slots__ = ("site_id", "_sim", "crashed", "_net_send")

    def __init__(self, site_id: SiteId) -> None:
        self.site_id = site_id
        self._sim: Optional["Substrate"] = None
        self.crashed = False
        #: Direct raw-network send, bound by the simulator at start() when
        #: no transport is installed (``None`` = route through
        #: ``substrate.send``). A pure fast path: both routes are the
        #: same code with one fewer call frame.
        self._net_send: Optional[Callable[..., Any]] = None

    # -- lifecycle ---------------------------------------------------------

    def bind(self, sim: "Substrate") -> None:
        """Attach this node to a substrate. Called once by the substrate."""
        self._sim = sim

    @property
    def sim(self) -> "Substrate":
        """The substrate this node runs on (raises if unbound).

        Named ``sim`` for historical reasons — the discrete-event
        simulator was the only substrate for most of this repo's life —
        and kept because every algorithm reads ``self.sim.trace`` etc.
        :attr:`substrate` is the self-describing alias.
        """
        if self._sim is None:
            raise RuntimeError(f"node {self.site_id} is not bound to a substrate")
        return self._sim

    @property
    def substrate(self) -> "Substrate":
        """Alias for :attr:`sim` under its substrate-era name."""
        return self.sim

    @property
    def now(self) -> float:
        """Current time (substrate clock)."""
        return self.sim.now

    # -- messaging ---------------------------------------------------------

    def send(self, dst: SiteId, message: Any, piggybacked: bool = False) -> None:
        """Send ``message`` to site ``dst``.

        Self-sends bypass the network (the paper charges no message cost
        for a site consulting itself, e.g. a site that belongs to its own
        quorum) and are delivered in the same instant via a zero-delay
        event so handler re-entrancy is still impossible. Everything else
        goes through the substrate's send path, which routes via the
        reliable-channel transport when one is installed.
        """
        if self.crashed:
            return
        sim = self._sim
        if sim is None:
            raise RuntimeError(f"node {self.site_id} is not bound to a substrate")
        if dst == self.site_id:
            sim.schedule_call(
                0.0, sim.deliver_local, (dst, message), "self-deliver"
            )
            return
        type_name = getattr(message, "type_name", None) or type(message).__name__
        net_send = self._net_send
        if net_send is not None:
            net_send(self.site_id, dst, message, type_name, piggybacked, sim._now)
            return
        sim.send(self.site_id, dst, message, type_name, piggybacked)

    def send_fanout(self, dsts: Any, message: Any) -> None:
        """Send ``message`` to every site in ``dsts``, in order.

        Equivalent to calling :meth:`send` once per destination —
        self-sends still become zero-delay local deliveries, scheduled in
        their exact position within the fanout so event sequence numbers
        (and therefore run fingerprints) match the unbatched loop — but
        the crash check and ``type_name`` lookup happen once, and
        contiguous runs of remote destinations go through the substrate's
        batched ``send_many`` path when it offers one.
        """
        if self.crashed:
            return
        sim = self.sim
        send_many = getattr(sim, "send_many", None)
        me = self.site_id
        type_name = getattr(message, "type_name", None) or type(message).__name__
        if send_many is None:
            # Substrate without a batch path: fall back to the plain
            # per-destination send, which honours subclass overrides
            # (the explorer's channel mixin) and transport routing.
            for dst in dsts:
                self.send(dst, message)
            return
        run_start = 0
        for i, dst in enumerate(dsts):
            if dst == me:
                if run_start < i:
                    send_many(me, dsts[run_start:i], message, type_name, False)
                run_start = i + 1
                sim.schedule_call(
                    0.0, sim.deliver_local, (dst, message), "self-deliver"
                )
        if run_start == 0:
            send_many(me, dsts, message, type_name, False)
        elif run_start < len(dsts):
            send_many(me, dsts[run_start:], message, type_name, False)

    def set_timer(
        self, delay: float, action: Callable[[], None], label: str = "timer"
    ) -> TimerHandle:
        """Schedule ``action`` to run after ``delay`` time units.

        Returns the timer handle, which may be cancelled (e.g. a failure
        detector timeout refreshed by a heartbeat). Timer actions are
        suppressed while the node is crashed.
        """
        return self.sim.schedule_call(delay, self._fire_timer, (action,), label)

    def _fire_timer(self, action: Callable[[], None]) -> None:
        """Run a timer action unless this node is (now) crashed."""
        if not self.crashed:
            action()

    # -- hooks for subclasses ----------------------------------------------

    def on_start(self) -> None:
        """Called once when the substrate starts."""

    def on_message(self, src: SiteId, message: Any) -> None:
        """Called for every delivered message. Subclasses must override."""
        raise NotImplementedError

    def on_crash(self) -> None:
        """Called when the failure injector crashes this node."""

    def on_recover(self) -> None:
        """Called when the failure injector recovers this node."""
