"""Property tests for the simulation substrate."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.event import EventQueue
from repro.sim.network import ExponentialDelay, UniformDelay
from repro.sim.node import Node
from repro.sim.simulator import Simulator


@given(
    times=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=100),
)
def test_event_queue_pops_in_nondecreasing_time_order(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    popped = []
    while (event := q.pop()) is not None:
        popped.append(event.time)
    assert popped == sorted(popped)
    assert len(popped) == len(times)


@given(
    times=st.lists(st.floats(0.0, 100.0), min_size=2, max_size=60),
    cancel_idx=st.data(),
)
def test_cancellation_never_fires(times, cancel_idx):
    q = EventQueue()
    handles = [q.push(t, lambda: None) for t in times]
    to_cancel = cancel_idx.draw(
        st.sets(st.integers(0, len(times) - 1), max_size=len(times))
    )
    for i in to_cancel:
        handles[i].cancel()
    survivors = 0
    while q.pop() is not None:
        survivors += 1
    assert survivors == len(times) - len(to_cancel)


class _Collector(Node):
    def __init__(self, site_id):
        super().__init__(site_id)
        self.got = []

    def on_message(self, src, message):
        self.got.append(message)


@given(
    seed=st.integers(0, 2**32 - 1),
    count=st.integers(1, 80),
    model=st.one_of(
        st.builds(UniformDelay, st.just(0.1), st.floats(0.2, 5.0)),
        st.builds(ExponentialDelay, st.floats(0.2, 3.0)),
    ),
)
@settings(max_examples=60, deadline=None)
def test_fifo_holds_for_any_delay_model(seed, count, model):
    sim = Simulator(seed=seed, delay_model=model)
    a, b = _Collector(0), _Collector(1)
    sim.add_node(a)
    sim.add_node(b)
    sim.start()
    for i in range(count):
        a.send(1, i)
    sim.run()
    assert b.got == list(range(count))


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_replay_determinism(seed):
    def run_once():
        sim = Simulator(seed=seed, delay_model=ExponentialDelay(1.0))
        a, b = _Collector(0), _Collector(1)
        sim.add_node(a)
        sim.add_node(b)
        sim.start()
        for i in range(30):
            a.send(1, i)
            b.send(0, -i)
        sim.run()
        return (sim.now, a.got, b.got, sim.network.stats.messages_delivered)

    assert run_once() == run_once()
