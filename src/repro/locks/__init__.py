"""Sharded multi-resource lock service over the mutual-exclusion kernel.

Named locks (string keys) hash onto ``K`` independent mutex instances —
each an unmodified registry algorithm running over a shard-private
substrate view of one simulator — with per-site front ends providing
request batching, coalescing, and a Roucairol–Carvalho-style lease
cache for hot keys. Under crash faults the shard arbiters run the
paper's Section 6 recovery protocol and the service adds client-side
failover (seeded backoff retries, idempotent request ids) plus lease
fencing. See ``docs/API.md`` for the layer map and DESIGN.md §10 for
the failure model.
"""

from repro.locks.conformance import (
    KeyConformanceChecker,
    check_key_mutual_exclusion,
)
from repro.locks.faults import (
    RetryPolicy,
    ShardCrashCycle,
    derive_shard_crashes,
    install_shard_churn,
)
from repro.locks.frontend import LockRequest, ShardFrontEnd
from repro.locks.router import ShardRouter, stable_key_hash
from repro.locks.runner import (
    LockRunConfig,
    LockRunResult,
    LockServiceSummary,
    run_lock_configs,
    run_lock_service,
)
from repro.locks.service import LockService, LockStats
from repro.locks.substrate import ShardView

__all__ = [
    "KeyConformanceChecker",
    "LockRequest",
    "LockRunConfig",
    "LockRunResult",
    "LockService",
    "LockServiceSummary",
    "LockStats",
    "RetryPolicy",
    "ShardCrashCycle",
    "ShardFrontEnd",
    "ShardRouter",
    "ShardView",
    "check_key_mutual_exclusion",
    "derive_shard_crashes",
    "install_shard_churn",
    "run_lock_configs",
    "run_lock_service",
    "stable_key_hash",
]
