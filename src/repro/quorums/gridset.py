"""Grid-set quorums (Cheung, Ammar, Ahamad), reference [2] of the paper.

Two-level construction: the ``N`` sites are partitioned into groups of size
``G``; the *upper* level takes a **majority of groups** (for resiliency),
and within each selected group the *lower* level takes a **grid quorum**
of its members (for low cost). Intersection: two group-majorities share at
least one group, and within that group two grid quorums intersect.

Quorum size is roughly ``(N/G + 1)/2 * O(sqrt(G))``, matching the paper's
Section 6 expression up to the grid constant. A site failure inside a group
is tolerated whenever the group's grid can route around it; losing whole
groups is tolerated up to a minority — no recovery protocol needed for
minority failures, which is the property Section 6 highlights.
"""

from __future__ import annotations

from typing import AbstractSet, List, Optional, Sequence, Set

from repro.errors import ConfigurationError
from repro.quorums.coterie import Quorum, QuorumSystem, SiteId
from repro.quorums.grid import GridQuorumSystem


class GridSetQuorumSystem(QuorumSystem):
    """Majority of groups, grid quorum inside each chosen group."""

    name = "grid-set"

    def __init__(self, n: int, group_size: int = 4) -> None:
        super().__init__(n)
        if group_size < 1:
            raise ConfigurationError(f"group_size must be >= 1, got {group_size}")
        self.group_size = min(group_size, n)
        self.groups: List[Sequence[SiteId]] = [
            range(start, min(start + self.group_size, n))
            for start in range(0, n, self.group_size)
        ]
        # One grid geometry per group; members are indexed locally 0..g-1.
        self._grids = [GridQuorumSystem(len(g)) for g in self.groups]

    @property
    def group_count(self) -> int:
        """Number of groups at the upper (majority) level."""
        return len(self.groups)

    @property
    def groups_needed(self) -> int:
        """Strict majority of groups."""
        return self.group_count // 2 + 1

    def group_of(self, site: SiteId) -> int:
        """Index of the group containing ``site``."""
        return site // self.group_size

    def _group_quorum(
        self, group_idx: int, preferred: Optional[SiteId], failed: AbstractSet[SiteId]
    ) -> Optional[Quorum]:
        """A grid quorum inside ``group_idx`` avoiding ``failed`` sites."""
        members = self.groups[group_idx]
        base = members[0]
        grid = self._grids[group_idx]
        local_failed = frozenset(s - base for s in failed if s in members)
        if preferred is not None and preferred in members and preferred not in failed:
            anchor = preferred - base
        else:
            alive = [s - base for s in members if s not in failed]
            if not alive:
                return None
            anchor = alive[0]
        local = grid.quorum_avoiding(anchor, local_failed)
        if local is None:
            return None
        return frozenset(base + s for s in local)

    # -- QuorumSystem interface ----------------------------------------------

    def quorum_for(self, site: SiteId) -> Quorum:
        quorum = self.quorum_avoiding(site, frozenset())
        assert quorum is not None
        return quorum

    def quorum_avoiding(
        self, site: SiteId, failed: AbstractSet[SiteId]
    ) -> Optional[Quorum]:
        own = self.group_of(site)
        order = sorted(range(self.group_count), key=lambda g: (g != own, g))
        chosen: Set[SiteId] = set()
        got = 0
        for g in order:
            sub = self._group_quorum(g, site if g == own else None, failed)
            if sub is not None:
                chosen |= sub
                got += 1
                if got == self.groups_needed:
                    return frozenset(chosen)
        return None
