"""Experiment E9 — ablations of the two design choices DESIGN.md calls out.

1. **Direct forwarding (transfer)** — the headline mechanism. Disabling it
   (``enable_transfer=False``) removes every transfer and forwarded
   reply; releases all carry ``max`` and arbiters relay grants
   themselves. The delay should regress from ``T`` to ``2T`` while the
   message count *drops* slightly (no transfer traffic): the mechanism
   buys latency with messages, exactly the trade the paper prices at
   ``5(K-1)``–``6(K-1)`` vs Maekawa's ``5(K-1)``.
2. **Piggybacking** — the paper counts a piggybacked control message as
   one message. We report both accountings (bundles vs naked parts) so
   the cost of the convention is visible.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.experiments.runner import RunConfig, run_mutex
from repro.sim.network import ConstantDelay
from repro.workload.driver import SaturationWorkload


def naked_message_count(by_type: dict) -> int:
    """Count logical messages, splitting piggyback bundles into parts.

    A bundle's type name joins its parts with ``+`` (e.g.
    ``inquire+transfer``), so the part count is ``plus_signs + 1``.
    """
    total = 0
    for type_name, count in by_type.items():
        total += count * (type_name.count("+") + 1)
    return total


#: Byte model for the paper's costing argument (Section 5): "the message
#: header is relatively large due to the requirements of the network
#: protocols" — roughly an IP+UDP header plus framing vs a few fields of
#: control payload.
HEADER_BYTES = 40
PAYLOAD_BYTES_PER_PART = 16


def wire_bytes(by_type: dict, piggybacked: bool) -> int:
    """Estimated bytes on the wire under the byte model.

    ``piggybacked=True`` charges one header per network message (bundles
    share a header); ``False`` charges one header per logical part — the
    counterfactual the paper's one-message costing rule stands on.
    """
    total = 0
    for type_name, count in by_type.items():
        parts = type_name.count("+") + 1
        payload = parts * PAYLOAD_BYTES_PER_PART
        if piggybacked:
            total += count * (HEADER_BYTES + payload)
        else:
            total += count * parts * (HEADER_BYTES + PAYLOAD_BYTES_PER_PART)
    return total


def run_ablation(
    n_sites: int = 25,
    seed: int = 8,
    requests_per_site: int = 20,
    quorum: str = "grid",
) -> ExperimentReport:
    """Transfer and piggybacking ablations at heavy load."""
    report = ExperimentReport(
        experiment_id="E9",
        title=f"Ablations at heavy load, N={n_sites}, grid quorums",
        headers=[
            "variant",
            "sync delay (T)",
            "msgs/CS (piggyback)",
            "msgs/CS (naked)",
            "throughput (CS/T)",
        ],
    )
    byte_rows = {}
    for algorithm, label in (
        ("cao-singhal", "full (transfer on)"),
        ("cao-singhal-no-transfer", "no transfer"),
        ("maekawa", "maekawa reference"),
    ):
        summary = run_mutex(
            RunConfig(
                algorithm=algorithm,
                n_sites=n_sites,
                quorum=quorum,
                seed=seed,
                delay_model=ConstantDelay(1.0),
                cs_duration=0.05,
                workload=SaturationWorkload(requests_per_site),
            )
        ).summary
        done = max(1, summary.completed)
        byte_rows[label] = (
            wire_bytes(summary.messages_by_type, piggybacked=True) / done,
            wire_bytes(summary.messages_by_type, piggybacked=False) / done,
        )
        report.add_row(
            label,
            summary.sync_delay_in_t,
            summary.messages_per_cs,
            naked_message_count(summary.messages_by_type) / done,
            summary.throughput,
        )
    with_pb, without_pb = byte_rows["full (transfer on)"]
    report.add_note(
        f"byte model ({HEADER_BYTES}B header + {PAYLOAD_BYTES_PER_PART}B/part): "
        f"full protocol {with_pb:.0f} B/CS piggybacked vs {without_pb:.0f} "
        f"B/CS with one header per control message — piggybacking saves "
        f"{(1 - with_pb / without_pb) * 100:.1f}% of wire bytes, the "
        "paper's Section 5 costing argument quantified."
    )
    report.add_note(
        "no-transfer should match Maekawa on both delay (2T) and messages: "
        "removing direct forwarding degenerates the protocol to the "
        "Maekawa relay."
    )
    report.add_note(
        "naked counts undo the paper's piggyback accounting; the gap shows "
        "how much header cost piggybacking saves."
    )
    return report
