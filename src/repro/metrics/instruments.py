"""In-simulation instruments: periodic samplers of protocol state.

The metrics collector records *lifecycle events*; some questions need
*state over time* instead — how long arbiter queues get, how many sites
wait at once. :class:`ArbiterSampler` polls every arbiter's queue length
and lock occupancy on a fixed period (via an ordinary simulation timer,
so the sampling is part of the deterministic run) and summarizes the
distribution afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.site import CaoSinghalSite
from repro.errors import ConfigurationError
from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class QueueSample:
    """One sampling instant."""

    time: float
    #: queue length per arbiter site id
    queue_lengths: Dict[int, int]
    #: arbiters whose permission was held at the instant
    locked: int


@dataclass
class QueueStats:
    """Distribution summary of an arbiter's sampled queue lengths."""

    site: int
    mean: float
    peak: int
    busy_fraction: float  # fraction of samples with a non-empty queue


class ArbiterSampler:
    """Samples every arbiter's queue on a fixed period.

    Attach before ``sim.start()``; sampling stops at ``lifetime`` so the
    event queue can drain. The overhead is one event per period.
    """

    def __init__(
        self,
        sim: Simulator,
        sites: Sequence[CaoSinghalSite],
        period: float = 1.0,
        lifetime: float = 10_000.0,
    ) -> None:
        if period <= 0:
            raise ConfigurationError(f"period must be positive, got {period}")
        self.sim = sim
        self.sites = list(sites)
        self.period = period
        self.lifetime = lifetime
        self.samples: List[QueueSample] = []
        self._schedule_next()

    def _schedule_next(self) -> None:
        self.sim.schedule(self.period, self._sample, label="arbiter-sampler")

    def _sample(self) -> None:
        lengths = {s.site_id: len(s.arbiter.req_queue) for s in self.sites}
        locked = sum(1 for s in self.sites if not s.arbiter.is_free)
        self.samples.append(
            QueueSample(time=self.sim.now, queue_lengths=lengths, locked=locked)
        )
        if self.sim.now + self.period <= self.lifetime:
            self._schedule_next()

    # -- summaries ----------------------------------------------------------

    def stats_for(self, site: int) -> QueueStats:
        """Queue-length distribution of one arbiter."""
        values = [s.queue_lengths.get(site, 0) for s in self.samples]
        if not values:
            return QueueStats(site=site, mean=float("nan"), peak=0, busy_fraction=float("nan"))
        return QueueStats(
            site=site,
            mean=sum(values) / len(values),
            peak=max(values),
            busy_fraction=sum(1 for v in values if v > 0) / len(values),
        )

    def system_mean_queue(self) -> float:
        """Mean queue length across all arbiters and samples."""
        total = 0
        count = 0
        for sample in self.samples:
            total += sum(sample.queue_lengths.values())
            count += len(sample.queue_lengths)
        return total / count if count else float("nan")

    def system_peak_queue(self) -> int:
        """Largest queue observed anywhere."""
        peak = 0
        for sample in self.samples:
            if sample.queue_lengths:
                peak = max(peak, max(sample.queue_lengths.values()))
        return peak


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters of the on-disk trial-result cache.

    Maintained by :class:`repro.parallel.cache.RunCache`; exposed here so
    the measurement layer owns every counter a run can report.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: records discarded as unreadable/corrupt/stale (each also counts as
    #: a miss, since the trial had to be re-run)
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total cache probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (NaN before any lookup)."""
        return self.hits / self.lookups if self.lookups else float("nan")

    def merge(self, other: "CacheStats") -> None:
        """Fold another counter set into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.invalidations += other.invalidations

    def __str__(self) -> str:
        return (
            f"cache: {self.hits} hit / {self.misses} miss "
            f"({self.invalidations} invalidated, {self.stores} stored)"
        )
