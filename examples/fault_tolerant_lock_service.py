#!/usr/bin/env python3
"""A lock service that survives site crashes (paper Section 6).

Fifteen sites run the fault-tolerant variant of the delay-optimal
algorithm over Agrawal–El Abbadi tree quorums. Mid-run we crash the *tree
root* — the site every failure-free quorum passes through — and later a
second site. Heartbeat failure detectors notice the silence, broadcast the
paper's ``failure(i)`` notices, sites re-run quorum construction around
the dead nodes, arbiters purge the dead sites' requests, and service
continues.

The run demonstrates the Section 6 claims:

* the algorithm is quorum-agnostic, so swapping in a fault-tolerant
  construction adds resilience with no change to the mutex core;
* after a failure, live sites' pending and future requests still complete;
* mutual exclusion holds through the failures and the recovery.

Run: ``python examples/fault_tolerant_lock_service.py``
"""

from __future__ import annotations

from repro.ft import MonitoredSite
from repro.metrics.collector import MetricsCollector
from repro.quorums import TreeQuorumSystem
from repro.sim import ConstantDelay, Simulator
from repro.verify import check_mutual_exclusion

N_SITES = 15
REQUESTS_PER_SITE = 4
CRASHES = {0: 12.0, 9: 30.0}  # site -> crash time (site 0 is the tree root)


def main() -> None:
    quorums = TreeQuorumSystem(N_SITES)
    sim = Simulator(seed=11, delay_model=ConstantDelay(1.0))
    metrics = MetricsCollector()

    sites = [
        MonitoredSite(
            i,
            quorums,
            cs_duration=0.3,
            listener=metrics,
            hb_interval=2.0,   # heartbeat every 2T
            hb_timeout=6.0,    # suspect after 6T of silence
            hb_lifetime=300.0,
        )
        for i in range(N_SITES)
    ]
    for site in sites:
        sim.add_node(site)
        for _ in range(REQUESTS_PER_SITE):
            sim.schedule(0.0, site.submit_request)

    for victim, at in CRASHES.items():
        sim.schedule(at, lambda v=victim: sim.crash(v), label=f"crash:{victim}")

    print(f"lock service: {N_SITES} sites, tree quorums "
          f"(K = {quorums.mean_quorum_size():.1f}); "
          f"crashing root at t=12 and site 9 at t=30\n")

    sim.start()
    sim.run(until=400.0)

    check_mutual_exclusion(metrics.records)
    victims = set(CRASHES)
    served = len(metrics.completed)
    live_unserved = [
        r for r in metrics.records if not r.complete and r.site not in victims
    ]
    print(f"served {served} lock acquisitions by t={sim.now:.0f}")
    print(f"unserved requests at live sites: {len(live_unserved)} (must be 0)")
    assert not live_unserved

    detectors = sorted(
        (s.site_id, sorted(s.monitor.suspected)) for s in sites
        if s.site_id not in victims
    )
    suspected_sets = {tuple(susp) for _, susp in detectors}
    print(f"every live detector converged on suspects: {suspected_sets}")

    sample = next(s for s in sites if s.site_id not in victims)
    print(f"site {sample.site_id} re-quorumed to "
          f"{sorted(sample.quorum)} (avoids {sorted(sample.known_failed)})")
    print("\nmutual exclusion verified across crashes and recovery — "
          "Section 6 works as advertised")


if __name__ == "__main__":
    main()
