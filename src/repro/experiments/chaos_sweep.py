"""Experiment E13 — chaos resilience: the loss sweep.

The paper costs its algorithm on a reliable network. This experiment asks
what that costing *buys* when the network misbehaves: with the reliable
channel layer (:mod:`repro.sim.transport`) underneath, each algorithm is
run across a sweep of packet-loss rates (with duplication and reordering
held constant) and we record how response time, throughput, and the
retransmission overhead degrade. Safety and liveness are verified on every
cell — the table only exists because every run still satisfied mutual
exclusion and served every request.

The interesting quantity is ``retransmit/CS``: the extra network traffic
the reliability layer spends per critical-section execution to present
the algorithm with the loss-free FIFO channels the paper assumes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.report import ExperimentReport
from repro.experiments.runner import RunConfig, run_many
from repro.sim.network import FaultModel
from repro.sim.transport import ReliableConfig
from repro.workload.driver import SaturationWorkload

DEFAULT_LOSS_RATES = (0.0, 0.05, 0.1, 0.2)
ALGORITHMS = ("cao-singhal", "maekawa", "ricart-agrawala")


def run_chaos_resilience(
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    algorithms: Sequence[str] = ALGORITHMS,
    seeds: Sequence[int] = (0, 1, 2),
    n_sites: int = 9,
    requests_per_site: int = 5,
    duplicate: float = 0.05,
    reorder: float = 0.1,
    chaos_seed: int = 0,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Delay/throughput/retransmit-overhead degradation vs loss rate.

    Every cell averages ``seeds`` independent runs; each run goes through
    the full verification layer, so a row in the table is also a proof
    that the algorithm stayed safe and live at that loss rate.
    """
    report = ExperimentReport(
        experiment_id="E13",
        title=(
            f"Chaos resilience, N={n_sites}, dup={duplicate}, "
            f"reorder={reorder} (response in T | retransmit/CS | throughput)"
        ),
        headers=["loss", "algorithm", "resp(T)", "msgs/CS", "rtx/CS", "thrpt"],
    )

    configs = []
    cells = []
    for loss in loss_rates:
        for algorithm in algorithms:
            for seed in seeds:
                fault_model = None
                reliable = None
                if loss or duplicate or reorder:
                    fault_model = FaultModel(
                        loss=loss,
                        duplicate=duplicate,
                        reorder=reorder,
                        chaos_seed=chaos_seed,
                    )
                    reliable = ReliableConfig()
                configs.append(
                    RunConfig(
                        algorithm=algorithm,
                        n_sites=n_sites,
                        seed=seed,
                        workload=SaturationWorkload(requests_per_site),
                        fault_model=fault_model,
                        reliable=reliable,
                    )
                )
                cells.append((loss, algorithm))
    summaries = run_many(configs, workers=workers)

    baseline = {}
    grouped = {}
    for (loss, algorithm), summary in zip(cells, summaries):
        grouped.setdefault((loss, algorithm), []).append(summary)
    for loss in loss_rates:
        for algorithm in algorithms:
            group = grouped[(loss, algorithm)]
            n = len(group)
            resp = sum(s.response_time_in_t for s in group) / n
            msgs = sum(s.messages_per_cs for s in group) / n
            rtx = sum(
                s.channel_stats.get("retransmitted", 0) / max(s.completed, 1)
                for s in group
            ) / n
            thrpt = sum(s.throughput for s in group) / n
            if loss == min(loss_rates):
                baseline[algorithm] = (resp, thrpt)
            report.add_row(
                loss,
                algorithm,
                round(resp, 3),
                round(msgs, 2),
                round(rtx, 2),
                round(thrpt, 4),
            )

    worst = max(loss_rates)
    for algorithm in algorithms:
        base_resp, base_thrpt = baseline[algorithm]
        peak = grouped[(worst, algorithm)]
        peak_resp = sum(s.response_time_in_t for s in peak) / len(peak)
        peak_thrpt = sum(s.throughput for s in peak) / len(peak)
        report.add_note(
            f"{algorithm}: at loss={worst} response is "
            f"{peak_resp / base_resp:.2f}x the loss-free value, throughput "
            f"{peak_thrpt / base_thrpt:.2f}x; every run stayed safe and "
            "served all requests."
        )
    report.add_note(
        "rtx/CS is the reliability tax: retransmissions spent per CS to "
        "present the paper's loss-free FIFO channel abstraction."
    )
    return report
