"""Metrics snapshots and opt-in event-loop profiling.

Two observability primitives over a live simulation, both strictly
additive — neither is touched unless explicitly invoked, so a run with
profiling disabled executes the exact PR-2 hot path and keeps the golden
kernel fingerprints byte-for-byte:

* :func:`snapshot` — a point-in-time dict of every kernel counter: the
  network's aggregate and per-site/per-type counters, the reliable
  transport's totals and per-channel windows, and per-site protocol
  progress (completed CS executions, backlog, lifecycle state).
* :class:`LoopProfiler` — drives the run through
  :meth:`~repro.sim.simulator.Simulator.run_instrumented`, timing each
  event callback by its schedule label (``cs-hold``, ``rto``,
  ``ack-delay``, per-message delivery labels, ...). The event *history*
  is identical to a normal run — only wall-clock timing is added — so
  ``profiled_run`` returns the same summary a plain ``run_mutex`` does.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.runner import RunConfig, RunResult, run_mutex
from repro.sim.simulator import Simulator


def snapshot(sim: Simulator, sites: Optional[list] = None) -> Dict[str, Any]:
    """Freeze every counter the kernel exposes at this instant.

    Safe to call mid-run (e.g. from a scheduled probe) or after; values
    are copies, so successive snapshots can be diffed.
    """
    out: Dict[str, Any] = {
        "time": sim.now,
        "events_processed": sim.events_processed,
        "pending_events": sim.pending_events(),
        "network": sim.network.stats.snapshot(),
    }
    if sim.transport is not None:
        out["transport"] = sim.transport.stats_dict()
        out["channels"] = sim.transport.channel_snapshot()
    if sites is not None:
        per_site: Dict[int, Dict[str, Any]] = {}
        inbound = sim.network.stats.by_destination
        for site in sites:
            per_site[site.site_id] = {
                "completed": site.completed,
                "backlog": site.backlog,
                "state": site.state.value,
                "crashed": site.crashed,
                "inbound": inbound.get(site.site_id, 0),
            }
        out["sites"] = per_site
    return out


class LoopProfiler:
    """Aggregates per-label event timings from an instrumented run.

    Labels come from :meth:`Simulator.schedule_call`; the unlabelled
    remainder (plain deliveries scheduled by the network carry their
    message ``type_name``) is grouped under ``"<unlabelled>"``.
    """

    def __init__(self) -> None:
        # label -> [count, total_seconds, max_seconds]
        self._acc: Dict[str, List[float]] = {}
        self.events = 0
        self.total_seconds = 0.0

    # -- the observer fed to run_instrumented -----------------------------

    def observe(self, label: str, elapsed: float) -> None:
        self.events += 1
        self.total_seconds += elapsed
        cell = self._acc.get(label or "<unlabelled>")
        if cell is None:
            self._acc[label or "<unlabelled>"] = [1, elapsed, elapsed]
            return
        cell[0] += 1
        cell[1] += elapsed
        if elapsed > cell[2]:
            cell[2] = elapsed

    # -- the loop hook fed to run_mutex ------------------------------------

    def loop(
        self,
        sim: Simulator,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        sim.run_instrumented(self.observe, until=until, max_events=max_events)

    # -- reporting ---------------------------------------------------------

    def rows(self) -> List[Tuple[str, int, float, float, float, float]]:
        """``(label, count, total_s, mean_us, max_us, share)`` rows,
        heaviest total first."""
        total = self.total_seconds or 1.0
        out = []
        for label, (count, acc, peak) in self._acc.items():
            out.append(
                (
                    label,
                    int(count),
                    acc,
                    acc / count * 1e6,
                    peak * 1e6,
                    acc / total,
                )
            )
        out.sort(key=lambda row: row[2], reverse=True)
        return out

    def report(self) -> str:
        """Human-readable table of where event-loop time went."""
        lines = [
            f"event-loop profile: {self.events} events, "
            f"{self.total_seconds * 1e3:.1f} ms in callbacks",
            f"  {'label':<18} {'count':>8} {'total ms':>9} "
            f"{'mean us':>8} {'max us':>8} {'share':>6}",
        ]
        for label, count, acc, mean_us, max_us, share in self.rows():
            lines.append(
                f"  {label:<18} {count:>8} {acc * 1e3:>9.2f} "
                f"{mean_us:>8.2f} {max_us:>8.1f} {share:>6.1%}"
            )
        return "\n".join(lines)


def profiled_run(config: RunConfig) -> Tuple[RunResult, LoopProfiler]:
    """Run one configured simulation under the event-loop profiler.

    The profiled run processes the identical event history as a plain
    ``run_mutex(config)`` — same summary, same verification — with the
    per-label timing breakdown as a second return value.
    """
    profiler = LoopProfiler()
    result = run_mutex(config, loop=profiler.loop)
    return result, profiler
