"""Reliable channels over an unreliable network.

The paper (like most mutual-exclusion papers) simply *assumes* reliable
FIFO channels. This module discharges that assumption: a
:class:`ReliableTransport` sits between :meth:`repro.sim.node.Node.send`
and the raw wire and rebuilds exactly-once FIFO delivery over a
transport that may drop, duplicate, or reorder, using the textbook
machinery (Aspnes, *Notes on Theory of Distributed Systems*, ch. 29).
The layer is written against the :class:`~repro.substrate.Substrate`
interface (``raw_send`` down, ``deliver_protocol`` up, ``schedule_call``
for timers), so the *same* implementation serves both the simulated
network — where :class:`~repro.sim.network.FaultModel` injects the
faults — and the real asyncio UDP backend in :mod:`repro.net`, where the
faults are real (or injected at the datagram layer). The machinery:

* **Sequence numbers** per directed channel, carried by every
  :class:`Segment`;
* **Cumulative acks**, piggybacked on reverse data traffic whenever any
  exists (the paper's Section 5 costing rule: a piggybacked control
  message is free) and otherwise emitted as a pure ``ack`` after a short
  delayed-ack window;
* **Retransmission timers** with exponential backoff and a cap — every
  unacked segment is retransmitted each time the channel's timer fires;
* **A dedup/reorder buffer** on the receiver: duplicates are dropped
  (and re-acked, so lost acks heal), out-of-order segments are held
  until the gap fills, and the protocol above observes exactly-once
  FIFO delivery;
* **Bounded retries**: after ``max_retries`` consecutive timeouts the
  channel *gives up* — unacked traffic is discarded, the channel epoch
  is bumped (so stale segments and acks are recognizably old), and the
  :attr:`ReliableTransport.on_give_up` hook fires, feeding the failure
  detector instead of retrying forever.

Channel **epochs** make resets sound: a crash (fail-stop loses all
channel state) or a give-up bumps the sender's epoch; the receiver
resets its expectations on the first segment of a newer epoch and drops
stragglers from older ones. Within one epoch delivery is exactly-once
FIFO; across a reset, undelivered traffic is *lost, never duplicated or
delayed* — exactly the fail-stop contract the recovery protocol in
:mod:`repro.core.faults` is built on.

The transport is deterministic (no RNG of its own) and, when not
installed, costs the default send path one attribute check.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from repro.common import slotted_dataclass
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.substrate import Substrate, TimerHandle

SiteId = int
Channel = Tuple[SiteId, SiteId]

#: Cumulative-ack value meaning "nothing received yet".
NO_ACK = -1


@slotted_dataclass
class ReliableConfig:
    """Tuning knobs for the reliable-channel layer (pure data, cacheable).

    Times are in simulation units; with the default delay models the mean
    one-way latency ``T`` is 1.0, so ``rto=4.0`` means "retransmit after
    ~2 round trips of silence".
    """

    #: Initial retransmission timeout.
    rto: float = 4.0
    #: Multiplicative backoff applied after every expiry.
    backoff: float = 2.0
    #: Cap on the backed-off timeout.
    rto_max: float = 60.0
    #: Consecutive expiries tolerated before the channel gives up.
    max_retries: int = 12
    #: Delayed-ack window: how long a receiver waits for reverse data to
    #: piggyback on before paying for a pure ack message.
    ack_delay: float = 0.5

    def __post_init__(self) -> None:
        if self.rto <= 0:
            raise ConfigurationError(f"rto must be positive, got {self.rto}")
        if self.backoff < 1.0:
            raise ConfigurationError(
                f"backoff must be >= 1, got {self.backoff}"
            )
        if self.rto_max < self.rto:
            raise ConfigurationError(
                f"rto_max ({self.rto_max}) must be >= rto ({self.rto})"
            )
        if self.max_retries < 1:
            raise ConfigurationError(
                f"max_retries must be >= 1, got {self.max_retries}"
            )
        if self.ack_delay < 0:
            raise ConfigurationError(
                f"ack_delay must be >= 0, got {self.ack_delay}"
            )


class Segment:
    """One data frame on a reliable channel.

    Carries the payload plus the channel's ``(epoch, seq)`` position and a
    piggybacked cumulative ack for the *reverse* channel: ``ack`` says
    "I have delivered every reverse-channel segment up to and including
    this seq, within reverse epoch ``ack_epoch``".
    """

    __slots__ = ("seq", "epoch", "ack", "ack_epoch", "payload", "type_name")

    def __init__(
        self,
        seq: int,
        epoch: int,
        ack: int,
        ack_epoch: int,
        payload: Any,
        type_name: str,
    ) -> None:
        self.seq = seq
        self.epoch = epoch
        self.ack = ack
        self.ack_epoch = ack_epoch
        self.payload = payload
        self.type_name = type_name

    def __repr__(self) -> str:
        return (
            f"Segment(seq={self.seq}, epoch={self.epoch}, ack={self.ack}, "
            f"payload={self.payload!r})"
        )


class AckSegment:
    """A pure cumulative ack (sent only when no data could carry it)."""

    __slots__ = ("ack", "epoch")

    type_name = "ack"

    def __init__(self, ack: int, epoch: int) -> None:
        self.ack = ack
        self.epoch = epoch

    def __repr__(self) -> str:
        return f"AckSegment(ack={self.ack}, epoch={self.epoch})"


@slotted_dataclass
class TransportStats:
    """Counters the metrics layer folds into ``channel_stats``."""

    #: Protocol messages accepted from the node layer.
    data_sent: int = 0
    #: Segment (re)transmissions beyond the first attempt.
    retransmitted: int = 0
    #: Duplicate segments discarded by the receive buffer.
    deduped: int = 0
    #: Out-of-order segments parked until their gap filled.
    buffered: int = 0
    #: Segments dropped for belonging to a superseded epoch.
    stale: int = 0
    #: Pure ack messages actually paid for on the network.
    acks_sent: int = 0
    #: Acks that rode reverse data traffic for free (Section 5 costing).
    acks_piggybacked: int = 0
    #: Channels that exhausted max_retries and reset.
    give_ups: int = 0
    #: Protocol messages re-presented, exactly once and in order.
    delivered: int = 0


class _SendState:
    """Sender half of one directed channel."""

    __slots__ = ("epoch", "next_seq", "unacked", "retries", "rto", "timer")

    def __init__(self, base_rto: float) -> None:
        self.epoch = 0
        self.next_seq = 0
        #: seq -> Segment, insertion-ordered (seqs only ever grow).
        self.unacked: Dict[int, Segment] = {}
        self.retries = 0
        self.rto = base_rto
        self.timer: Optional["TimerHandle"] = None

    def reset(self, base_rto: float) -> None:
        """Abandon the current epoch: in-flight traffic is lost for good."""
        self.epoch += 1
        self.next_seq = 0
        self.unacked.clear()
        self.retries = 0
        self.rto = base_rto
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None


class _RecvState:
    """Receiver half of one directed channel."""

    __slots__ = ("epoch", "expected", "buffer", "ack_timer")

    def __init__(self) -> None:
        self.epoch = 0
        self.expected = 0
        #: seq -> Segment parked until the sequence gap fills.
        self.buffer: Dict[int, Segment] = {}
        self.ack_timer: Optional["TimerHandle"] = None

    @property
    def cumulative_ack(self) -> int:
        """Highest seq below which everything was delivered (or NO_ACK)."""
        return self.expected - 1 if self.expected > 0 else NO_ACK

    def adopt_epoch(self, epoch: int) -> None:
        """A newer sender epoch obsoletes everything buffered so far."""
        self.epoch = epoch
        self.expected = 0
        self.buffer.clear()


class ReliableTransport:
    """Exactly-once FIFO channels for every site pair on one substrate.

    One instance serves all channels its substrate hosts — the whole
    simulation (installed via
    :meth:`repro.sim.simulator.Simulator.install_transport`), or one
    site's channels to every peer on the UDP backend (installed via
    :meth:`repro.net.substrate.NetSubstrate.install_transport`).
    Channels are cheap dict entries created on first use.

    ``on_give_up(src, dst)`` fires at most once per exhausted epoch when
    ``src``'s channel to ``dst`` runs out of retries; wire it to the
    failure-detector path (e.g.
    :meth:`repro.ft.detector.HeartbeatMonitor.force_suspect` or
    :meth:`repro.core.faults.FaultTolerantSite.notify_failure`) so
    unreachable peers are handled by the recovery protocol instead of
    being retried forever.
    """

    def __init__(
        self, substrate: "Substrate", config: Optional[ReliableConfig] = None
    ) -> None:
        self.sim = substrate
        self.config = config or ReliableConfig()
        self.stats = TransportStats()
        self.on_give_up: Optional[Callable[[SiteId, SiteId], None]] = None
        self._senders: Dict[Channel, _SendState] = {}
        self._receivers: Dict[Channel, _RecvState] = {}

    # -- channel state accessors -------------------------------------------

    def _sender(self, src: SiteId, dst: SiteId) -> _SendState:
        state = self._senders.get((src, dst))
        if state is None:
            state = self._senders[(src, dst)] = _SendState(self.config.rto)
        return state

    def _receiver(self, src: SiteId, dst: SiteId) -> _RecvState:
        """State ``dst`` keeps about the data stream arriving from ``src``."""
        state = self._receivers.get((src, dst))
        if state is None:
            state = self._receivers[(src, dst)] = _RecvState()
        return state

    # -- send path ---------------------------------------------------------

    def send(
        self,
        src: SiteId,
        dst: SiteId,
        message: Any,
        type_name: str,
        piggybacked: bool = False,
    ) -> None:
        """Accept one protocol message for reliable delivery to ``dst``."""
        sender = self._sender(src, dst)
        # Piggyback the reverse channel's cumulative ack on this segment;
        # a pending pure-ack timer for that channel becomes unnecessary.
        reverse = self._receiver(dst, src)
        if reverse.ack_timer is not None:
            reverse.ack_timer.cancel()
            reverse.ack_timer = None
            self.stats.acks_piggybacked += 1
        segment = Segment(
            seq=sender.next_seq,
            epoch=sender.epoch,
            ack=reverse.cumulative_ack,
            ack_epoch=reverse.epoch,
            payload=message,
            type_name=type_name,
        )
        sender.next_seq += 1
        sender.unacked[segment.seq] = segment
        self.stats.data_sent += 1
        self.sim.raw_send(src, dst, segment, type_name, piggybacked)
        if sender.timer is None:
            sender.timer = self.sim.schedule_call(
                sender.rto, self._on_rto, (src, dst), "rto"
            )

    # -- receive path ------------------------------------------------------

    def on_network_deliver(self, src: SiteId, dst: SiteId, frame: Any) -> None:
        """Handle one raw network frame addressed to a live node."""
        if isinstance(frame, AckSegment):
            self._process_ack(dst, src, frame.ack, frame.epoch)
            return
        if not isinstance(frame, Segment):
            # A frame sent before the transport was installed (or by a
            # direct network.send caller): pass it through untouched.
            self.sim.deliver_protocol(src, dst, frame)
            return
        # The segment's piggybacked ack covers the reverse channel
        # (data dst previously sent to src).
        self._process_ack(dst, src, frame.ack, frame.ack_epoch)

        recv = self._receiver(src, dst)
        if frame.epoch > recv.epoch:
            # The sender reset (crash recovery or give-up): everything
            # buffered under the old epoch is lost by construction.
            recv.adopt_epoch(frame.epoch)
        elif frame.epoch < recv.epoch:
            self.stats.stale += 1
            return

        seq = frame.seq
        if seq < recv.expected or seq in recv.buffer:
            # Duplicate (fault-injected or a retransmission that crossed
            # its ack). Re-ack so a lost ack cannot retransmit forever.
            self.stats.deduped += 1
            self._schedule_ack(dst, src)
            return
        if seq == recv.expected:
            self._deliver(src, dst, frame)
            recv.expected += 1
            # Drain any buffered run that this arrival unblocked.
            while recv.expected in recv.buffer:
                self._deliver(src, dst, recv.buffer.pop(recv.expected))
                recv.expected += 1
        else:
            self.stats.buffered += 1
            recv.buffer[seq] = frame
        self._schedule_ack(dst, src)

    def _deliver(self, src: SiteId, dst: SiteId, segment: Segment) -> None:
        self.stats.delivered += 1
        self.sim.deliver_protocol(src, dst, segment.payload)

    # -- acks --------------------------------------------------------------

    def _process_ack(self, owner: SiteId, peer: SiteId, ack: int, epoch: int) -> None:
        """Apply a cumulative ack to ``owner``'s channel toward ``peer``."""
        sender = self._senders.get((owner, peer))
        if sender is None or epoch != sender.epoch or ack < 0:
            return
        unacked = sender.unacked
        progressed = False
        while unacked:
            lowest = next(iter(unacked))
            if lowest > ack:
                break
            del unacked[lowest]
            progressed = True
        if not progressed:
            return
        # Progress resets the backoff; an empty window stops the timer.
        sender.retries = 0
        sender.rto = self.config.rto
        if sender.timer is not None:
            sender.timer.cancel()
            sender.timer = None
        if unacked:
            sender.timer = self.sim.schedule_call(
                sender.rto, self._on_rto, (owner, peer), "rto"
            )

    def _schedule_ack(self, owner: SiteId, peer: SiteId) -> None:
        """Arm the delayed pure-ack for traffic ``owner`` got from ``peer``."""
        recv = self._receiver(peer, owner)
        if recv.ack_timer is not None:
            return
        recv.ack_timer = self.sim.schedule_call(
            self.config.ack_delay, self._send_pure_ack, (owner, peer), "ack-delay"
        )

    def _send_pure_ack(self, owner: SiteId, peer: SiteId) -> None:
        recv = self._receiver(peer, owner)
        recv.ack_timer = None
        if self.sim.is_crashed(owner):
            return
        self.stats.acks_sent += 1
        self.sim.raw_send(
            owner, peer, AckSegment(recv.cumulative_ack, recv.epoch), "ack"
        )

    # -- retransmission ----------------------------------------------------

    def _on_rto(self, src: SiteId, dst: SiteId) -> None:
        sender = self._senders.get((src, dst))
        if sender is None:
            return
        sender.timer = None
        if not sender.unacked or self.sim.is_crashed(src):
            return
        sender.retries += 1
        if sender.retries > self.config.max_retries:
            # The peer is unreachable as far as this channel can tell:
            # stop retrying, surface it, and reset so later traffic (e.g.
            # after a heal or rejoin) starts a recognizably new epoch.
            self.stats.give_ups += 1
            sender.reset(self.config.rto)
            if self.on_give_up is not None:
                self.on_give_up(src, dst)
            return
        # Refresh each segment's piggybacked ack before re-sending: the
        # retransmission is also this channel's reverse-ack carrier.
        reverse = self._receiver(dst, src)
        for segment in sender.unacked.values():
            segment.ack = reverse.cumulative_ack
            segment.ack_epoch = reverse.epoch
            self.stats.retransmitted += 1
            self.sim.raw_send(src, dst, segment, segment.type_name)
        sender.rto = min(sender.rto * self.config.backoff, self.config.rto_max)
        sender.timer = self.sim.schedule_call(
            sender.rto, self._on_rto, (src, dst), "rto"
        )

    # -- fail-stop integration ---------------------------------------------

    def reset_site(self, site: SiteId) -> None:
        """Fail-stop ``site``: drop channel state it participated in.

        Sender states touching the site keep their identity but bump
        their epoch (in-flight traffic is lost; post-recovery traffic is
        recognizably new). The crashed site's own receive states are
        deleted outright — its memory is gone — while peers keep theirs
        and resynchronize via the epoch bump.
        """
        for (src, dst), sender in self._senders.items():
            if src == site or dst == site:
                sender.reset(self.config.rto)
        for (src, dst), recv in list(self._receivers.items()):
            if dst == site:
                if recv.ack_timer is not None:
                    recv.ack_timer.cancel()
                del self._receivers[(src, dst)]
            elif src == site and recv.ack_timer is not None:
                recv.ack_timer.cancel()
                recv.ack_timer = None

    # -- introspection -----------------------------------------------------

    def unacked_counts(self) -> Dict[Channel, int]:
        """Outstanding unacked segments per channel (debugging/tests)."""
        return {
            channel: len(state.unacked)
            for channel, state in self._senders.items()
            if state.unacked
        }

    def channel_snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-directed-channel state for the observability layer.

        Keys are ``"src->dst"``; values merge the sender half (epoch,
        next seq, outstanding unacked segments, consecutive retries) and
        the receiver half (next expected seq, parked out-of-order
        segments). Channels with no interesting state are omitted so a
        quiescent run snapshots to ``{}``.
        """
        out: Dict[str, Dict[str, int]] = {}
        for (src, dst), sender in self._senders.items():
            if not (sender.unacked or sender.retries or sender.epoch):
                continue
            entry = out.setdefault(f"{src}->{dst}", {})
            entry["send_epoch"] = sender.epoch
            entry["next_seq"] = sender.next_seq
            entry["unacked"] = len(sender.unacked)
            entry["retries"] = sender.retries
        for (src, dst), recv in self._receivers.items():
            if not (recv.buffer or recv.epoch):
                continue
            entry = out.setdefault(f"{src}->{dst}", {})
            entry["recv_epoch"] = recv.epoch
            entry["expected"] = recv.expected
            entry["reorder_buffered"] = len(recv.buffer)
        return out

    def stats_dict(self) -> Dict[str, int]:
        """Non-zero transport counters, ready for ``channel_stats``."""
        out: Dict[str, int] = {}
        for name in (
            "data_sent",
            "retransmitted",
            "deduped",
            "buffered",
            "stale",
            "acks_sent",
            "acks_piggybacked",
            "give_ups",
            "delivered",
        ):
            value = getattr(self.stats, name)
            if value:
                out[name] = value
        return out
