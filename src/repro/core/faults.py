"""Fault-tolerant extension of the delay-optimal algorithm (Section 6).

The paper makes the algorithm resilient in two steps:

1. plug in a fault-tolerant quorum construction (tree, HQC, grid-set,
   RST) so a live quorum still exists when sites fail;
2. add a ``failure(i)`` notification protocol that cleans the failed
   site's residue out of every data structure: a requester whose
   ``req_set`` contains the failed site re-runs quorum construction
   (paper step 1); an arbiter removes the failed site's request from its
   ``req_queue`` (case 1), drops transfers benefiting it (case 2), and
   releases the lock if the dead site held it (case 3).

**A reproduction finding.** The paper's Section 6 cleanup is *not
sufficient* for its own Section 3 algorithm. The delay-optimal handoff
makes a permission change hands with two messages sent by the exiting
site over different channels — the forwarded ``reply`` to the
beneficiary and the ``release`` to the arbiter. A crash of the exiting
site between those deliveries leaves the arbiter and the beneficiary
with divergent views, and the paper's case 3 ("grant the next waiter")
can then either wedge a live site (the arbiter installed the beneficiary
but the forwarded reply died with the proxy) or grant a second
permission while the forwarded one is in use (the reply arrived but the
release did not). Stress tests in ``tests/`` reproduce both races.

This implementation therefore adds a **probe/ack reconciliation round**:

* whenever an arbiter learns of a failure while its lock is held by a
  *live* site, it probes that site — "does your request hold my
  permission?"; a *no* answer re-issues the (possibly lost) grant;
* when the lock holder itself is the dead site, the arbiter probes every
  live queued requester before granting anew — a *yes* answer means the
  dead proxy had already forwarded the permission, and the arbiter
  adopts that site as its lock holder instead of double-granting;
* a crash-*recovered* arbiter runs the same reconciliation on rejoin
  (``RejoinProbe``/``RejoinAck``): its pre-crash permission may still be
  held by a live site — even one inside the CS, when the whole
  crash/recover cycle fits inside a single CS residency — so the rebuilt
  arbiter defers arriving requests until every live peer has answered
  "do you hold my permission?", adopting the holder (and its tenure
  number) on a *yes*. The model checker in :mod:`repro.verify.explore`
  found the double-grant this prevents (see DESIGN.md).

Both exchanges are race-free because the probe/ack shares a FIFO channel
with the yield/release traffic it could conflict with: any yield or
release the probed site issued earlier is processed by the arbiter
*before* the ack, so a stale ack is always detectable by a lock
comparison. The fail-stop model (in-flight messages from a crashed site
are lost, never delayed) makes a *no* answer final.

Further engineering additions the paper leaves implicit:

* a requester that re-selects its quorum first releases every permission
  it held and restarts with a fresh timestamp; grants that stray in from
  abandoned arbiters are answered with an immediate release, so the
  switch is self-cleaning;
* a site's newer request supersedes its older queued one at an arbiter
  (a restarted site may briefly have both in flight);
* a release whose ``transferred_to`` names a purged request degrades to
  a plain release.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.common import Priority, bundle_or_single
from repro.core.messages import (
    FailureNotice,
    Inquire,
    Probe,
    ProbeAck,
    RejoinAck,
    RejoinProbe,
    Release,
    Reply,
    Request,
    Transfer,
)
from repro.core.site import CaoSinghalSite
from repro.mutex.base import DurationSpec, RunListener, SiteState
from repro.quorums.coterie import QuorumSystem
from repro.substrate import SiteId


class FaultTolerantSite(CaoSinghalSite):
    """Delay-optimal mutex site with the Section 6 failure handling.

    Takes the whole :class:`~repro.quorums.coterie.QuorumSystem` (not a
    fixed quorum) so it can re-run quorum construction around failures.
    """

    algorithm_name = "cao-singhal-ft"

    def __init__(
        self,
        site_id: SiteId,
        quorum_system: QuorumSystem,
        cs_duration: DurationSpec = 0.1,
        listener: Optional[RunListener] = None,
    ) -> None:
        self.quorum_system = quorum_system
        super().__init__(
            site_id,
            quorum_system.quorum_for(site_id),
            cs_duration,
            listener,
        )
        self.known_failed: Set[SiteId] = set()
        #: True when no live quorum avoiding the failures exists for us.
        self.inaccessible = False
        #: True between crash-recovery and readmission: the site serves
        #: its arbiter role but defers its own requests (peers would drop
        #: them while they still mark us failed).
        self.rejoining = False
        #: Outstanding case-3 recovery: the queued requests still to be
        #: probed before the dead holder's permission is granted anew.
        self._probe_pending: Optional[Set[Priority]] = None
        #: Outstanding rejoin reconciliation: the live peers whose
        #: :class:`~repro.core.messages.RejoinAck` we still await before
        #: the rebuilt arbiter may grant (see ``reset_after_recovery``).
        self._rejoin_waiting: Set[SiteId] = set()
        #: Requests that arrived during the rejoin round, replayed
        #: through normal A.2 handling once the round resolves.
        self._rejoin_deferred: List[Request] = []

    # ------------------------------------------------------------------
    # Failure notification handling (Section 6)
    # ------------------------------------------------------------------

    def notify_failure(self, failed_site: SiteId) -> None:
        """Entry point used by detectors/injectors on the local site."""
        self._handle_failure_notice(FailureNotice(failed_site=failed_site))

    def _handle_failure_notice(self, msg: FailureNotice) -> None:
        failed = msg.failed_site
        if failed == self.site_id or failed in self.known_failed:
            return
        self.known_failed.add(failed)
        self._arbiter_cleanup(failed)
        self._requester_cleanup(failed)
        if self._rejoin_waiting:
            # A peer we were waiting on for a rejoin ack died; its answer
            # will never come (fail-stop), so stop waiting for it.
            self._rejoin_waiting.discard(failed)
            if not self._rejoin_waiting:
                self._resolve_rejoin_round()

    # -- arbiter side (paper cases 1-3 + probe reconciliation) -----------------

    def _arbiter_cleanup(self, failed: SiteId) -> None:
        arb = self.arbiter
        # Buffered out-of-order releases from the dead site are moot.
        self._pending_releases = {
            p: r for p, r in self._pending_releases.items() if p.site != failed
        }
        # Case 2: stop planning to forward anything to the dead site.
        self.req.tran_stack.drop_beneficiary(failed)

        # Case 1: purge every queued request of the dead site (a restarted
        # site can briefly have two).
        old_head = arb.req_queue.head()
        removed_any = False
        while arb.req_queue.remove_site(failed) is not None:
            removed_any = True

        if arb.is_free:
            return

        if self._probe_pending is not None:
            # A recovery round is already running: retire candidates that
            # just died and resolve if none remain.
            self._probe_pending = {
                p for p in self._probe_pending if p.site not in self.known_failed
            }
            if not self._probe_pending:
                self._probe_pending = None
                self._grant_next_or_free()
            return

        if arb.lock.site in self.known_failed:
            # Case 3, hardened: the dead site held our permission, but it
            # may already have forwarded it. Reconcile before re-granting.
            self._begin_lock_recovery()
            return

        # The lock holder is alive, but its grant may have travelled
        # through the dead site as a forwarded reply and been lost with
        # it. Ask; a "no" answer re-issues the grant (FIFO makes a stale
        # "no" detectable — see module docstring).
        self.send(
            arb.lock.site,
            Probe(arbiter=self.site_id, target=arb.lock, epoch=arb.epoch),
        )

        # Paper case-1 tail: the dead site was next in line, so the
        # transfer previously sent to the (live) holder names a ghost;
        # replace it, inquiring when the new head outranks the holder.
        new_head = arb.req_queue.head()
        if (
            removed_any
            and old_head is not None
            and old_head.site == failed
            and new_head is not None
            and self.enable_transfer
        ):
            parts: List[object] = [
                Transfer(
                    beneficiary=new_head,
                    arbiter=self.site_id,
                    holder=arb.lock,
                    holder_epoch=arb.epoch,
                )
            ]
            if new_head < arb.lock:
                parts.append(
                    Inquire(
                        arbiter=self.site_id, target=arb.lock, epoch=arb.epoch
                    )
                )
            self.send(
                arb.lock.site, bundle_or_single(*parts), piggybacked=len(parts) > 1
            )

    def _begin_lock_recovery(self) -> None:
        """Probe live waiters for a forwarded permission before re-granting."""
        arb = self.arbiter
        candidates = {
            p for p in arb.req_queue if p.site not in self.known_failed
        }
        if not candidates:
            self._probe_pending = None
            self._grant_next_or_free()
            return
        self._probe_pending = set(candidates)
        for priority in sorted(candidates):
            # A grant forwarded by the dead holder would carry the tenure
            # after the dead holder's: epoch + 1.
            self.send(
                priority.site,
                Probe(
                    arbiter=self.site_id,
                    target=priority,
                    epoch=arb.epoch + 1,
                ),
            )

    def _grant_next_or_free(self) -> None:
        """Grant the best live waiter, or free the permission."""
        arb = self.arbiter
        while arb.req_queue and arb.req_queue.head().site in self.known_failed:
            arb.req_queue.pop_head()  # defensive; cleanup purges these
        if not arb.req_queue:
            arb.lock = Priority.maximum()
            return
        new_lock = arb.req_queue.pop_head()
        arb.install(new_lock)
        self._grant(new_lock)

    def _handle_probe(self, src: SiteId, msg: Probe) -> None:
        """Requester side: report whether ``target`` holds ``src``'s grant
        under the probed tenure."""
        holds = (
            self.req.priority == msg.target
            and bool(self.req.replied.get(msg.arbiter))
            and self.req.grant_epoch.get(msg.arbiter) == msg.epoch
        )
        self.send(
            src, ProbeAck(arbiter=msg.arbiter, target=msg.target, holds=holds)
        )

    def _handle_probe_ack(self, src: SiteId, msg: ProbeAck) -> None:
        """Arbiter side: resolve a reconciliation round."""
        arb = self.arbiter
        if self._probe_pending is not None:
            if msg.target not in self._probe_pending:
                return  # stale ack from an earlier round
            self._probe_pending.discard(msg.target)
            if msg.holds:
                self._adopt_forwarded_holder(msg.target)
            elif not self._probe_pending:
                self._probe_pending = None
                self._grant_next_or_free()
            return
        # Holder-reconciliation mode: re-issue a grant that died with the
        # proxy. A stale ack cannot slip through: the lock comparison
        # fails after any yield/release the holder sent before the ack
        # (FIFO ordering on the holder->arbiter channel).
        if (
            not msg.holds
            and arb.lock == msg.target
            and msg.target.site not in self.known_failed
        ):
            self._grant(msg.target)

    def _adopt_forwarded_holder(self, priority: Priority) -> None:
        """The probed site already holds the dead proxy's forwarded grant."""
        arb = self.arbiter
        self._probe_pending = None
        arb.req_queue.remove(priority)
        arb.install(priority)
        stashed = self._pending_releases.pop(priority, None)
        if stashed is not None:
            self._handle_release(priority.site, stashed)
            return
        head = arb.req_queue.head()
        if head is not None and self.enable_transfer:
            parts: List[object] = [
                Transfer(
                    beneficiary=head,
                    arbiter=self.site_id,
                    holder=priority,
                    holder_epoch=arb.epoch,
                )
            ]
            if head < priority:
                parts.append(
                    Inquire(
                        arbiter=self.site_id, target=priority, epoch=arb.epoch
                    )
                )
            self.send(
                priority.site, bundle_or_single(*parts), piggybacked=len(parts) > 1
            )

    # -- requester side (paper step 1) -----------------------------------------

    def _requester_cleanup(self, failed: SiteId) -> None:
        if failed not in self.quorum:
            return
        if self.state is SiteState.REQUESTING:
            self._abort_and_restart()
        # IN_CS: finish normally — the exit protocol must run over the
        # quorum that granted us (the dead member drops its release
        # harmlessly). IDLE: nothing — every new request computes a fresh
        # quorum in _begin_request.

    def _adopt_new_quorum(self, restart: bool) -> bool:
        """Re-run quorum construction avoiding known failures.

        Returns False (and marks the site inaccessible) when the
        construction cannot produce a live quorum.
        """
        new_quorum = self.quorum_system.quorum_avoiding(
            self.site_id, self.known_failed
        )
        if new_quorum is None:
            self.inaccessible = True
            return False
        self.inaccessible = False
        self.quorum = frozenset(new_quorum)
        self._quorum_sorted = tuple(sorted(self.quorum))
        if restart and self.state is SiteState.REQUESTING:
            self._begin_request()
        return True

    def _begin_request(self) -> None:
        """A.1 with a fresh quorum: every request (re)runs the quorum
        construction against the current failure view, so rejoined sites
        are readmitted and newly failed ones avoided without any special
        casing."""
        if not self._adopt_new_quorum(restart=False):
            # Inaccessible: stay REQUESTING with nothing in flight; a
            # later notify_recovery retries via _abort_and_restart.
            self.max_seq_seen += 1
            self.req.reset_for(
                Priority(self.max_seq_seen, self.site_id), self.quorum
            )
            return
        super()._begin_request()

    def _abort_and_restart(self) -> None:
        """Release everything held and re-request over a fresh quorum."""
        assert self.req.priority is not None
        old_priority = self.req.priority
        for arbiter, replied in sorted(self.req.replied.items()):
            if replied and arbiter not in self.known_failed:
                # "Releases all the resources it has gotten": a release
                # with no transfer frees the arbiter for its next waiter.
                self.send(
                    arbiter,
                    Release(
                        releaser=old_priority,
                        transferred_to=None,
                        epoch=self.req.grant_epoch.get(arbiter, 0),
                    ),
                )
        self.req.tran_stack.clear()
        self.req.inq_pending.clear()
        if self._adopt_new_quorum(restart=False):
            self._begin_request()
        # else: inaccessible; the pending request stays unserved, which the
        # fault-tolerance experiments count explicitly.

    # ------------------------------------------------------------------
    # Crash-recovery (rejoin) — extension beyond the paper
    # ------------------------------------------------------------------

    def notify_recovery(self, recovered: SiteId) -> None:
        """A previously failed site is back and clean.

        Safe to honour only after this site has already processed
        ``failure(recovered)`` — the cleanup is what guarantees nobody
        still holds one of the recovered site's pre-crash grants. When
        the recovery notice beats the failure notice (a short downtime),
        we force the cleanup first, exactly as if the failure had been
        detected, then readmit the site. Quorums re-include it lazily:
        the next ``quorum_avoiding`` call simply stops avoiding it.
        """
        if recovered == self.site_id:
            return
        if recovered not in self.known_failed:
            self._handle_failure_notice(FailureNotice(failed_site=recovered))
        self.known_failed.discard(recovered)
        if self.state is SiteState.REQUESTING and self.inaccessible:
            # We were blocked for lack of a live quorum; the rejoin may
            # have restored one — retry over a fresh quorum.
            self._abort_and_restart()
        # Otherwise nothing: a quorum is only (re)computed when a request
        # starts, so an in-flight request keeps the quorum it asked.

    def reset_after_recovery(
        self,
        known_failed: Optional[Iterable[SiteId]] = None,
        clear_backlog: bool = False,
    ) -> None:
        """Rebuild this site's volatile state after a crash.

        The fail-stop model loses all protocol state; the site rejoins
        with a free arbiter lock, an empty queue, and no request in
        flight. Any CS request that was open at crash time is abandoned
        (reported to the listener so metrics close the record); the local
        backlog of not-yet-started requests is preserved and resumes —
        unless ``clear_backlog`` is set, for callers (the lock service)
        that already rerouted the queued work elsewhere and must not see
        it replayed. ``known_failed`` seeds the failure view (in a
        deployment the rejoin handshake supplies it; the injector does
        here).
        """
        from repro.core.state import ArbiterState, RequesterState

        if self.state is not SiteState.IDLE:
            self.listener.on_abandon(self.site_id, self.now)
        if clear_backlog:
            self.backlog = 0
        self.state = SiteState.IDLE
        self.arbiter = ArbiterState()
        self.req = RequesterState()
        self._pending_releases.clear()
        self._probe_pending = None
        self.known_failed = set(known_failed or ()) - {self.site_id}
        self.inaccessible = False
        self._adopt_new_quorum(restart=False)
        # Defer our own requests until peers have readmitted us: a request
        # sent now would be dropped by their known-failed filter.
        self.rejoining = True
        # The arbiter role must NOT resume from the fresh free lock: our
        # *pre-crash* permission may still be held by a live site — even
        # one inside the CS, when recovery completes within a single CS
        # residency (the model checker finds the double-grant in an
        # 8-action schedule; see DESIGN.md). Before the first grant, ask
        # every live peer whether it holds our permission and defer
        # arriving requests until all answers are in.
        self._rejoin_deferred = []
        peers = {
            s
            for s in range(self.quorum_system.n)
            if s != self.site_id and s not in self.known_failed
        }
        self._rejoin_waiting = peers
        for peer in sorted(peers):
            self.send(peer, RejoinProbe(arbiter=self.site_id))

    def complete_rejoin(self) -> None:
        """Peers have processed our recovery; resume requesting."""
        self.rejoining = False
        self._maybe_start()

    def _handle_rejoin_probe(self, src: SiteId, msg: RejoinProbe) -> None:
        """Requester side: report whether we hold the rebuilt arbiter's
        pre-crash permission, and under which tenure."""
        holds = self.req.priority is not None and bool(
            self.req.replied.get(msg.arbiter)
        )
        self.send(
            src,
            RejoinAck(
                arbiter=msg.arbiter,
                responder=self.site_id,
                holder=self.req.priority if holds else None,
                epoch=self.req.grant_epoch.get(msg.arbiter, 0)
                if holds
                else 0,
            ),
        )

    def _handle_rejoin_ack(self, src: SiteId, msg: RejoinAck) -> None:
        """Arbiter side: account one answer; resolve when all are in."""
        if src not in self._rejoin_waiting:
            return  # stale ack from an already-resolved round
        self._rejoin_waiting.discard(src)
        if msg.holder is not None and self.arbiter.is_free:
            # Our pre-crash permission is alive out there: adopt its
            # holder and *resume the pre-crash tenure numbering*, so our
            # later inquires and transfers pass the holder's staleness
            # checks (a fresh epoch would make them die as ghosts — a
            # liveness hole). At most one site can answer positively: a
            # permission has one holder at a time and in-flight handoffs
            # die with their proxy (fail-stop), so the round is decided.
            self._rejoin_waiting = set()
            self.arbiter.lock = msg.holder
            self.arbiter.epoch = msg.epoch
        if not self._rejoin_waiting:
            self._resolve_rejoin_round()

    def _resolve_rejoin_round(self) -> None:
        """All answers in (or moot): replay the deferred requests through
        the normal A.2 path against the reconciled lock state."""
        deferred, self._rejoin_deferred = self._rejoin_deferred, []
        for msg in deferred:
            self._handle_request(msg)

    def _maybe_start(self) -> None:
        if self.rejoining:
            return
        super()._maybe_start()

    # ------------------------------------------------------------------
    # Overrides tolerating quorum-switch and crash races
    # ------------------------------------------------------------------

    def _record_reply(self, msg: Reply) -> None:
        """Accept in-quorum replies; free arbiters that grant ghosts.

        After a quorum switch, arbiters of the abandoned quorum may still
        grant our old (or even current) request. Leaving them locked on a
        ghost would wedge every other site that quorums through them, so
        any grant we cannot use is answered with an immediate release.
        """
        usable = (
            self.req.priority is not None
            and msg.grantee == self.req.priority
            and self.state is SiteState.REQUESTING
            and msg.arbiter in self.req.replied
            # An inaccessible site can never complete its quorum: hoarding
            # a grant would wedge the (live) arbiter for everyone else.
            and not self.inaccessible
        )
        if usable:
            if self.req.replied.get(msg.arbiter):
                return  # duplicate grant (re-issued after a probe): idempotent
            super()._record_reply(msg)
            return
        if msg.arbiter != self.site_id and msg.arbiter not in self.known_failed:
            self.send(
                msg.arbiter,
                Release(
                    releaser=msg.grantee, transferred_to=None, epoch=msg.epoch
                ),
            )
        elif msg.arbiter == self.site_id:
            # Local ghost grant: apply the release directly.
            self._handle_release(
                self.site_id,
                Release(
                    releaser=msg.grantee, transferred_to=None, epoch=msg.epoch
                ),
            )

    def _handle_release(self, src: SiteId, msg: Release) -> None:
        """Tolerate the races the failure protocol introduces."""
        arb = self.arbiter
        if arb.lock != msg.releaser and msg.releaser not in arb.req_queue:
            # Ghost release: the lock already moved on (e.g. both the
            # failure cleanup and the releaser freed it). Safe to drop.
            return
        if (
            msg.transferred_to is not None
            and arb.lock == msg.releaser
            and msg.transferred_to not in arb.req_queue
        ):
            # The reply was forwarded to a request we purged — because its
            # site failed, or because the site restarted onto a new quorum
            # and its newer request superseded this one. Either way the
            # beneficiary cannot use the grant (it answers with a
            # ghost-release if alive), so the permission returns to us.
            msg = Release(
                releaser=msg.releaser, transferred_to=None, epoch=msg.epoch
            )
        super()._handle_release(src, msg)

    def _handle_yield(self, msg) -> None:
        """A.4, tolerant of crash races.

        The base algorithm treats "yield with no better waiter" as a
        protocol bug — an arbiter only inquires when a higher-priority
        request is queued. With failures that premise breaks: the request
        that triggered the inquire may have been purged by the failure
        cleanup between the inquire and the yield. The arbiter then simply
        re-grants the yielder.
        """
        arb = self.arbiter
        if msg.yielder != arb.lock or msg.epoch != arb.epoch:
            return
        if msg.yielder.site in self.known_failed:
            # The yielder itself died; free the permission.
            self._grant_next_or_free()
            return
        arb.req_queue.push(arb.lock)
        new_lock = arb.req_queue.pop_head()
        arb.install(new_lock)
        self._grant(new_lock)

    def _handle_request(self, msg: Request) -> None:
        """Drop dead and superseded requests before normal A.2 handling.

        A request from a known-failed site must never (re-)enter the queue
        — a granted ghost would never release. And when a restarted site's
        *newer* request arrives while its pre-restart request still sits
        queued, the old entry is superseded: the site abandoned it and
        will answer any grant for it with a ghost-release anyway, so
        removing it here saves that round trip and keeps the queue free of
        duplicates.
        """
        if self._rejoin_waiting:
            # Mid rejoin-reconciliation: granting now could double-grant
            # a permission a live site still holds from before our crash.
            # Park the request; the round's resolution replays it here.
            self._rejoin_deferred.append(msg)
            return
        if msg.priority.site in self.known_failed:
            return
        arb = self.arbiter
        stale = arb.req_queue.remove_site(msg.priority.site)
        if stale is not None and stale.seq >= msg.priority.seq:
            # Not actually stale (duplicate delivery would be a bug, but
            # never clobber a newer entry with an older message).
            arb.req_queue.push(stale)
            return
        super()._handle_request(msg)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch_part(self, src: SiteId, part: object) -> None:
        if isinstance(part, FailureNotice):
            self._handle_failure_notice(part)
        elif isinstance(part, Probe):
            self._handle_probe(src, part)
        elif isinstance(part, ProbeAck):
            self._handle_probe_ack(src, part)
        elif isinstance(part, RejoinProbe):
            self._handle_rejoin_probe(src, part)
        elif isinstance(part, RejoinAck):
            self._handle_rejoin_ack(src, part)
        else:
            super()._dispatch_part(src, part)
