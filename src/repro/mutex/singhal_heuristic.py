"""Singhal's heuristically-aided token algorithm (1989), reference [14].

The Table 1 entry between full broadcast (Suzuki–Kasami, ``N`` messages)
and tree routing (Raymond): each site maintains a *state vector* ``SV``
guessing every other site's state (Requesting / Not requesting /
Executing / Holding an idle token) plus sequence numbers ``SN``; a
requester sends its request **only to the sites its heuristic marks as
probable token holders** (those marked Requesting — one of them will get
the token before us, or has it). Message cost therefore varies between 0
and ``N``; the synchronization delay stays ``T`` because the token flies
directly from the holder to the next user.

The staircase initialization (site ``i`` marks all lower-numbered sites
Requesting) makes the union of everyone's request sets cover the token's
possible locations — the invariant behind the heuristic's correctness.

Token bookkeeping on exit reconciles the holder's fresher knowledge with
the token's (``TSV``/``TSN``), exactly as in Singhal's paper, and passes
the token to the lowest-numbered requester after the holder (round-robin
fairness; the algorithm trades Lamport-style priority fairness for
message economy, like the other token algorithms).

**Reproduction note.** The heuristic as published has a liveness gap that
our stress harness reproduces: after enough token movement, two sites can
simultaneously believe the other is Not-requesting (the paper's staircase
invariant ``SV_i[j]=R or SV_j[i]=R`` is not preserved by the exit
reconciliation), after which a new request can reach *no* site that knows
where the idle token is, and the requester strands. This implementation
(a) also sends requests to sites marked Executing — they verifiably had
the token last, which already fixes most executions — and (b) adds a
timeout backstop: a request unserved after ``retry_timeout`` is re-issued
with a fresh sequence number as a broadcast, after which the normal token
machinery serves it. The backstop only affects executions that the
published algorithm would strand.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.mutex.base import DurationSpec, MutexSite, RunListener, SiteState
from repro.substrate import SiteId


class PeerState(enum.Enum):
    """What a site believes about a peer (Singhal's SV entries)."""

    REQUESTING = "R"
    NOT_REQUESTING = "N"
    EXECUTING = "E"
    HOLDING = "H"


@dataclass(frozen=True)
class SHRequest:
    """Heuristically-routed token request: ``(site, sequence number)``."""

    site: SiteId
    number: int

    type_name = "request"


@dataclass(frozen=True)
class SHToken:
    """The token: its own view of site states and served numbers."""

    tsv: Tuple[str, ...]
    tsn: Tuple[int, ...]

    type_name = "token"


class SinghalHeuristicSite(MutexSite):
    """One site of Singhal's heuristic algorithm; site 0 holds the token."""

    algorithm_name = "singhal-heuristic"

    def __init__(
        self,
        site_id: SiteId,
        n: int,
        cs_duration: DurationSpec = 0.1,
        listener: Optional[RunListener] = None,
        retry_timeout: float = 150.0,
    ) -> None:
        super().__init__(site_id, cs_duration, listener)
        self.n = n
        #: Liveness backstop (see module docstring): broadcast the request
        #: anew if unserved this long. Count of backstop firings is kept
        #: so tests can assert the fast path stays heuristic.
        self.retry_timeout = retry_timeout
        self.retries = 0
        self._retry_timer = None
        # Staircase initialization: lower-numbered peers are assumed
        # Requesting, higher-numbered Not-requesting; site 0 starts with
        # the (idle) token.
        self.sv: List[PeerState] = [
            PeerState.REQUESTING if j < site_id else PeerState.NOT_REQUESTING
            for j in range(n)
        ]
        self.sn: List[int] = [0] * n
        self.has_token = site_id == 0
        if self.has_token:
            self.sv[site_id] = PeerState.HOLDING
        self.token_tsv: List[PeerState] = (
            [PeerState.NOT_REQUESTING] * n if self.has_token else []
        )
        self.token_tsn: List[int] = [0] * n if self.has_token else []

    # -- MutexSite hooks -----------------------------------------------------

    def _begin_request(self) -> None:
        if self.has_token:
            self.sv[self.site_id] = PeerState.EXECUTING
            self._enter_cs()
            return
        self.sv[self.site_id] = PeerState.REQUESTING
        self.sn[self.site_id] += 1
        request = SHRequest(self.site_id, self.sn[self.site_id])
        for j in range(self.n):
            if j != self.site_id and self.sv[j] is not PeerState.NOT_REQUESTING:
                # R: may get the token before us; H: has it idle;
                # E: verifiably had it last (see module docstring).
                self.send(j, request)
        self._arm_retry()

    def _arm_retry(self) -> None:
        self._retry_timer = self.set_timer(
            self.retry_timeout, self._retry_broadcast, label="sh-retry"
        )

    def _retry_broadcast(self) -> None:
        """Liveness backstop: the heuristic stranded us — ask everyone."""
        if self.has_token or self.state is not SiteState.REQUESTING:
            return
        self.retries += 1
        self.sn[self.site_id] += 1
        request = SHRequest(self.site_id, self.sn[self.site_id])
        for j in range(self.n):
            if j != self.site_id:
                self.send(j, request)
        self._arm_retry()

    def _exit_protocol(self) -> None:
        """Reconcile site and token knowledge, then route the token."""
        self.sv[self.site_id] = PeerState.NOT_REQUESTING
        self.token_tsv[self.site_id] = PeerState.NOT_REQUESTING
        for j in range(self.n):
            if j == self.site_id:
                continue
            if self.sn[j] > self.token_tsn[j]:
                # Our knowledge of j is fresher than the token's.
                self.token_tsv[j] = self.sv[j]
                self.token_tsn[j] = self.sn[j]
            else:
                # The token travelled and knows better.
                self.sv[j] = self.token_tsv[j]
                self.sn[j] = self.token_tsn[j]
        nxt = self._next_requester()
        if nxt is None:
            self.sv[self.site_id] = PeerState.HOLDING
            self.has_token = True  # keep the idle token
        else:
            self._pass_token(nxt)

    def _next_requester(self) -> Optional[SiteId]:
        """Round-robin scan for the next site the token believes requests."""
        for offset in range(1, self.n):
            j = (self.site_id + offset) % self.n
            if self.token_tsv[j] is PeerState.REQUESTING:
                return j
        return None

    def _pass_token(self, dst: SiteId) -> None:
        token = SHToken(
            tsv=tuple(s.value for s in self.token_tsv),
            tsn=tuple(self.token_tsn),
        )
        self.has_token = False
        self.token_tsv = []
        self.token_tsn = []
        self.sv[dst] = PeerState.EXECUTING
        self.send(dst, token)

    # -- message handlers ------------------------------------------------------

    def on_message(self, src: SiteId, message: object) -> None:
        if isinstance(message, SHRequest):
            self._handle_request(message)
        elif isinstance(message, SHToken):
            self._handle_token(message)
        else:
            raise TypeError(f"unexpected message {message!r}")

    def _handle_request(self, msg: SHRequest) -> None:
        if msg.number <= self.sn[msg.site]:
            return  # outdated (duplicate or superseded) request
        self.sn[msg.site] = msg.number
        me = self.sv[self.site_id]
        if me is PeerState.NOT_REQUESTING:
            self.sv[msg.site] = PeerState.REQUESTING
        elif me is PeerState.REQUESTING:
            if self.sv[msg.site] is not PeerState.REQUESTING:
                # We learned of a new contender we had not asked: ask it,
                # it may receive the token before us (Singhal's rule).
                self.sv[msg.site] = PeerState.REQUESTING
                self.send(
                    msg.site, SHRequest(self.site_id, self.sn[self.site_id])
                )
        elif me is PeerState.EXECUTING:
            self.sv[msg.site] = PeerState.REQUESTING
        elif me is PeerState.HOLDING:
            # Idle token holder: hand the token over immediately.
            self.sv[msg.site] = PeerState.REQUESTING
            self.token_tsv[msg.site] = PeerState.REQUESTING
            self.token_tsn[msg.site] = msg.number
            self.sv[self.site_id] = PeerState.NOT_REQUESTING
            self._pass_token(msg.site)

    def _handle_token(self, msg: SHToken) -> None:
        if self._retry_timer is not None:
            self._retry_timer.cancel()
            self._retry_timer = None
        self.has_token = True
        self.token_tsv = [PeerState(v) for v in msg.tsv]
        self.token_tsn = list(msg.tsn)
        if self.state is SiteState.REQUESTING:
            self.sv[self.site_id] = PeerState.EXECUTING
            self._enter_cs()
        else:
            # Token arrived while idle (possible after reconciliation):
            # keep it as holder.
            self.sv[self.site_id] = PeerState.HOLDING
