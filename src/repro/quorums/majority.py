"""Majority voting quorums (Thomas 1979), reference [18] of the paper.

A quorum is any ``floor(N/2) + 1`` sites. Majority has the best possible
availability of any coterie for iid site failures but ``K = O(N)`` message
cost — the high-resiliency / high-cost end of the trade-off the paper's
Section 6 discusses.

Per-site assignment takes the site itself plus the next ``floor(N/2)``
sites around the ring, so arbitration load is perfectly balanced.
"""

from __future__ import annotations

from typing import AbstractSet, Optional

from repro.quorums.coterie import Quorum, QuorumSystem, SiteId


class MajorityQuorumSystem(QuorumSystem):
    """Ring-balanced majority quorums."""

    name = "majority"

    @property
    def quorum_size(self) -> int:
        """``floor(N/2) + 1``."""
        return self.n // 2 + 1

    def quorum_for(self, site: SiteId) -> Quorum:
        return frozenset((site + k) % self.n for k in range(self.quorum_size))

    def quorum_avoiding(
        self, site: SiteId, failed: AbstractSet[SiteId]
    ) -> Optional[Quorum]:
        """Any majority of live sites, preferring the requester's own vote."""
        alive = [s for s in self.sites if s not in failed]
        if len(alive) < self.quorum_size:
            return None
        alive.sort(key=lambda s: (s != site, (s - site) % self.n))
        return frozenset(alive[: self.quorum_size])
