"""Lock-service benchmark: acceptance-scale sharded run, lease on vs off.

Not a paper experiment — the headline measurement for the multi-resource
layer built on the paper's mutex kernel. One seeded scenario at the
PR's acceptance scale — 10^5 named locks, Zipf(1.1) hot-key skew, 10^4
open-loop acquires over 16 shards x 9 sites — run twice on the same
seed: hot-key lease cache on, then off. The run itself verifies per-key
mutual exclusion (zero violations or it raises), and the benchmark
asserts the lease cache *measurably* reduces quorum messages per
acquire against the lease-off control.

Everything in the archived ``BENCH_lock_service.json`` is deterministic
for the pinned seed (the timing lives only in pytest-benchmark's own
stats), so the regression gate holds these numbers exactly where the
spec says exact and within absolute bounds where it says bounded.
"""

from __future__ import annotations

from conftest import archive_json

from repro.locks import LockRunConfig, run_lock_service

SCENARIO = dict(
    algorithm="cao-singhal",
    shards=16,
    n_sites=9,
    n_keys=100_000,
    n_clients=64,
    arrival_rate=8.0,
    n_requests=10_000,
    key_skew=1.1,
    seed=7,
)

#: "Measurably reduces": the lease run must beat the control by at
#: least this percentage of quorum messages per acquire.
MIN_LEASE_REDUCTION_PCT = 5.0


def test_bench_lock_service(benchmark):
    leased = benchmark.pedantic(
        lambda: run_lock_service(LockRunConfig(**SCENARIO)).summary,
        rounds=1,
        iterations=1,
    )
    control = run_lock_service(LockRunConfig(lease=False, **SCENARIO)).summary

    # The acceptance run drained and verified: every acquire served,
    # per-key mutual exclusion intact, keys genuinely concurrent.
    assert leased.completed == SCENARIO["n_requests"]
    assert leased.violations == 0 and control.violations == 0
    assert leased.peak_concurrent_keys > 1

    reduction_pct = 100 * (
        1 - leased.messages_per_acquire / control.messages_per_acquire
    )
    assert reduction_pct >= MIN_LEASE_REDUCTION_PCT, (
        f"lease cache saved only {reduction_pct:.1f}% of messages per "
        f"acquire ({leased.messages_per_acquire:.2f} vs "
        f"{control.messages_per_acquire:.2f}); expected >= "
        f"{MIN_LEASE_REDUCTION_PCT}%"
    )
    assert leased.quorum_rounds < control.quorum_rounds

    payload = {
        "benchmark": "lock_service",
        "scenario": dict(SCENARIO),
        "completed": leased.completed,
        "violations": leased.violations,
        "messages_per_acquire_lease_on": round(leased.messages_per_acquire, 4),
        "messages_per_acquire_lease_off": round(
            control.messages_per_acquire, 4
        ),
        "lease_reduction_pct": round(reduction_pct, 2),
        "lease_hits": leased.lease_hits,
        "lease_hit_rate": round(leased.lease_hit_rate, 4),
        "quorum_rounds_lease_on": leased.quorum_rounds,
        "quorum_rounds_lease_off": control.quorum_rounds,
        "mean_wait": round(leased.mean_wait, 4),
        "p95_wait": round(leased.p95_wait, 4),
        "shard_hotspot": round(leased.hotspot_factor, 4),
        "peak_concurrent_keys": leased.peak_concurrent_keys,
    }
    path = archive_json("lock_service", payload)
    print(
        f"\nlock service: {leased.completed} acquires, "
        f"{leased.messages_per_acquire:.2f} msgs/acquire with lease vs "
        f"{control.messages_per_acquire:.2f} without "
        f"(-{reduction_pct:.1f}%) -> {path.name}"
    )
