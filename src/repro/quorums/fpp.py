"""Finite-projective-plane quorums — Maekawa's optimal construction.

Maekawa's paper [8] builds its quorums from a projective plane of order
``q``: ``N = q^2 + q + 1`` sites, one per line of PG(2, q); each quorum
(line) has exactly ``q + 1 ~ sqrt(N)`` sites, any two quorums meet in
*exactly one* site, and every site carries exactly the same arbitration
load — the ideal the grid construction only approximates. The paper's
``K = sqrt(N)`` row assumes exactly this.

This implementation constructs PG(2, q) over the prime field GF(q):
points are normalized homogeneous triples, lines are the same set by
duality, and incidence is a zero dot product mod ``q``. Supported system
sizes are therefore ``N = q^2 + q + 1`` for prime ``q``: 7, 13, 31, 57,
133, 183, ... (order-6 planes do not exist, and prime powers would need
full GF(p^k) arithmetic — the prime orders cover the practical sizes).

Following Maekawa, each site is additionally inserted into its own quorum
when the plane does not already put it there (costs at most one extra
member and cannot break the intersection property).
"""

from __future__ import annotations

from typing import AbstractSet, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.quorums.coterie import Quorum, QuorumSystem, SiteId


def _is_prime(q: int) -> bool:
    if q < 2:
        return False
    f = 2
    while f * f <= q:
        if q % f == 0:
            return False
        f += 1
    return True


def plane_order_for(n: int) -> int:
    """The prime order ``q`` with ``n = q^2 + q + 1``, or raise."""
    q = 1
    while q * q + q + 1 < n:
        q += 1
    if q * q + q + 1 != n or not _is_prime(q):
        valid = [p * p + p + 1 for p in (2, 3, 5, 7, 11, 13, 17) ]
        raise ConfigurationError(
            f"no prime-order projective plane with {n} points; "
            f"supported sizes: {valid}"
        )
    return q


def _normalized_points(q: int) -> List[Tuple[int, int, int]]:
    """Canonical representatives of the projective points of PG(2, q)."""
    points: List[Tuple[int, int, int]] = [(1, a, b) for a in range(q) for b in range(q)]
    points.extend((0, 1, c) for c in range(q))
    points.append((0, 0, 1))
    return points


class FPPQuorumSystem(QuorumSystem):
    """Projective-plane quorums for ``n = q^2 + q + 1`` sites, prime q."""

    name = "fpp"

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self.order = plane_order_for(n)
        q = self.order
        points = _normalized_points(q)
        index: Dict[Tuple[int, int, int], int] = {
            pt: i for i, pt in enumerate(points)
        }
        assert len(points) == n
        # By duality, line i is the point triple i; site j lies on line i
        # iff <point_j, line_i> = 0 (mod q).
        self._quorums: List[Quorum] = []
        for i, line in enumerate(points):
            members = {
                j
                for j, pt in enumerate(points)
                if (pt[0] * line[0] + pt[1] * line[1] + pt[2] * line[2]) % q == 0
            }
            assert len(members) == q + 1, "projective line has q+1 points"
            members.add(i)  # Maekawa: a site arbitrates its own requests
            self._quorums.append(frozenset(members))
        self._index = index

    def quorum_for(self, site: SiteId) -> Quorum:
        return self._quorums[site]

    def quorum_avoiding(
        self, site: SiteId, failed: AbstractSet[SiteId]
    ) -> Optional[Quorum]:
        """Any surviving line containing ``site``, else any surviving line.

        The plane has no substitution structure (each pair of lines shares
        exactly one point), so availability is limited — the same
        fragility as the grid, which is why Section 6 moves to other
        constructions for fault tolerance.
        """
        if not failed:
            return self.quorum_for(site)
        candidates = [q for q in self._quorums if not (q & failed)]
        if not candidates:
            return None
        own = [q for q in candidates if site in q]
        pool = own or candidates
        return min(pool, key=lambda q: (len(q), sorted(q)))
