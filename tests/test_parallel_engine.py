"""Differential-equivalence and failure-path tests for the trial engine.

The engine's contract: worker count and cache state may change *how fast*
a batch of trials runs, never *what it returns*. These tests pin that
down by comparing byte-identical serialized summaries across
``workers=1``, ``workers=4``, and cache-hit replay, and by exercising
every failure path (violating trial, unpicklable config, corrupted cache
records).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.errors import (
    ConfigurationError,
    MutualExclusionViolation,
    ReproError,
)
from repro.experiments.replicate import replicate
from repro.experiments.runner import RunConfig, build_run, run_many, run_mutex
from repro.metrics.summary import RunSummary, summarize
from repro.parallel import RunCache, TrialPool, fingerprint
from repro.parallel import pool as pool_module
from repro.sim.network import ConstantDelay
from repro.workload.driver import SaturationWorkload

ALGORITHMS = ["cao-singhal", "maekawa", "ricart-agrawala"]
SEEDS = [0, 1, 2]


def small_config(algorithm: str = "cao-singhal", **overrides) -> RunConfig:
    defaults = dict(
        algorithm=algorithm,
        n_sites=5,
        delay_model=ConstantDelay(1.0),
        workload=SaturationWorkload(2),
    )
    defaults.update(overrides)
    return RunConfig(**defaults)


def canonical(summaries) -> list:
    """Byte-stable rendering of summaries (NaN-safe, order-preserving)."""
    return [json.dumps(s.to_dict(), sort_keys=True) for s in summaries]


# -- differential equivalence -------------------------------------------------


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_parallel_equals_serial(algorithm):
    config = small_config(algorithm)
    serial = TrialPool(workers=1).run_seeds(config, SEEDS)
    parallel = TrialPool(workers=4).run_seeds(config, SEEDS)
    assert canonical(parallel) == canonical(serial)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_cached_replay_equals_cold_run(algorithm, tmp_path):
    config = small_config(algorithm)
    cold_cache = RunCache(tmp_path)
    cold = TrialPool(workers=1, cache=cold_cache).run_seeds(config, SEEDS)
    assert cold_cache.stats.misses == len(SEEDS)
    assert cold_cache.stats.stores == len(SEEDS)

    warm_cache = RunCache(tmp_path)
    warm = TrialPool(workers=4, cache=warm_cache).run_seeds(config, SEEDS)
    assert warm_cache.stats.hits == len(SEEDS)
    assert warm_cache.stats.misses == 0
    assert canonical(warm) == canonical(cold)


def test_merge_order_is_seed_order_not_completion_order():
    # Seeds deliberately unsorted: the merge must preserve *input* order.
    config = small_config()
    seeds = [7, 0, 3]
    out = TrialPool(workers=4).run_seeds(config, seeds)
    assert [s.seed for s in out] == seeds


def test_run_many_merges_grid_in_input_order():
    grid = [small_config(a, seed=s) for a in ALGORITHMS for s in (0, 1)]
    merged = run_many(grid, workers=4)
    assert [(s.algorithm, s.seed) for s in merged] == [
        (a, s) for a in ALGORITHMS for s in (0, 1)
    ]
    assert canonical(merged) == canonical(run_many(grid, workers=1))


def test_replicate_parallel_and_cached_samples_match(tmp_path):
    config = small_config()
    kwargs = dict(metric=lambda s: s.messages_per_cs, seeds=SEEDS)
    serial = replicate(config, workers=1, **kwargs)
    parallel = replicate(config, workers=4, **kwargs)
    cached = replicate(config, workers=4, cache=RunCache(tmp_path), **kwargs)
    replayed = replicate(config, workers=1, cache=RunCache(tmp_path), **kwargs)
    assert parallel.samples == serial.samples
    assert cached.samples == serial.samples
    assert replayed.samples == serial.samples


# -- failure paths ------------------------------------------------------------


def test_violation_propagates_with_seed_and_poisons_no_cache(
    tmp_path, monkeypatch
):
    config = small_config()
    real_run_mutex = pool_module.run_mutex

    def failing_run_mutex(cfg):
        if cfg.seed == 1:
            raise MutualExclusionViolation("sites 0 and 3 overlapped")
        return real_run_mutex(cfg)

    monkeypatch.setattr(pool_module, "run_mutex", failing_run_mutex)
    cache = RunCache(tmp_path)
    with pytest.raises(MutualExclusionViolation) as err:
        TrialPool(workers=1, cache=cache).run_seeds(config, SEEDS)
    assert err.value.trial_seed == 1
    assert "seed=1" in str(err.value)
    # Healthy sibling trials are cached; the failed seed left no record.
    assert cache.stats.stores == 2
    failed_key = fingerprint(dataclasses.replace(config, seed=1))
    assert RunCache(tmp_path).load(failed_key) is None


def test_worker_process_failure_reports_seed():
    # A genuine in-worker failure (safety cap) must cross the process
    # boundary as its original exception type with the seed attached.
    config = small_config(max_events=50)
    with pytest.raises(ConfigurationError) as err:
        TrialPool(workers=2).run_seeds(config, SEEDS)
    assert isinstance(err.value, ReproError)
    assert err.value.trial_seed == SEEDS[0]
    assert f"seed={SEEDS[0]}" in str(err.value)


def test_first_failure_in_seed_order_wins(monkeypatch):
    config = small_config()
    real_run_mutex = pool_module.run_mutex

    def failing_run_mutex(cfg):
        if cfg.seed in (1, 2):
            raise MutualExclusionViolation(f"boom {cfg.seed}")
        return real_run_mutex(cfg)

    monkeypatch.setattr(pool_module, "run_mutex", failing_run_mutex)
    with pytest.raises(MutualExclusionViolation) as err:
        TrialPool(workers=1).run_seeds(config, SEEDS)
    assert err.value.trial_seed == 1


def test_single_cpu_host_falls_back_in_process(monkeypatch):
    # On a 1-CPU host the pool can only add fork/pickle overhead
    # (BENCH_parallel_engine.json measured 0.98x "speedup"), so even an
    # explicit workers>1 must degrade to in-process execution.
    monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 1)

    def no_pool(*args, **kwargs):
        raise AssertionError("process pool constructed on a 1-CPU host")

    monkeypatch.setattr(pool_module, "ProcessPoolExecutor", no_pool)
    out = TrialPool(workers=4).run_seeds(small_config(), [0, 1])
    assert [s.seed for s in out] == [0, 1]


def test_multi_cpu_host_still_uses_the_pool(monkeypatch):
    # The degenerate-host fallback must not swallow real parallelism.
    monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 4)
    used = {}
    real_executor = pool_module.ProcessPoolExecutor

    def spying_executor(*args, **kwargs):
        used["workers"] = kwargs.get("max_workers") or args[0]
        return real_executor(*args, **kwargs)

    monkeypatch.setattr(pool_module, "ProcessPoolExecutor", spying_executor)
    out = TrialPool(workers=2).run_seeds(small_config(), [0, 1])
    assert [s.seed for s in out] == [0, 1]
    assert used["workers"] == 2


def test_unpicklable_config_falls_back_in_process():
    config = small_config(cs_duration=lambda: 0.05)
    with pytest.warns(RuntimeWarning, match="picklable"):
        out = TrialPool(workers=4).run_seeds(config, [0, 1])
    assert [s.seed for s in out] == [0, 1]


def test_corrupted_cache_record_is_a_miss_not_a_crash(tmp_path):
    config = small_config()
    cache = RunCache(tmp_path)
    key = cache.key_for(config)
    TrialPool(workers=1, cache=cache).run_seeds(config, [config.seed])
    path = cache._path(key)
    assert path.exists()

    for garbage in ("{truncat", "", '{"fingerprint": "wrong", "salt": "x"}'):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(garbage)
        fresh = RunCache(tmp_path)
        out = fresh.load(key)
        assert out is None
        assert fresh.stats.misses == 1
        assert fresh.stats.invalidations == 1
        assert not path.exists()  # the bad record was discarded

    # And the engine recovers end-to-end: corrupt record -> re-run -> store.
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("not json at all")
    recovering = RunCache(tmp_path)
    out = TrialPool(workers=1, cache=recovering).run_seeds(
        config, [config.seed]
    )
    assert len(out) == 1
    assert recovering.stats.invalidations == 1
    assert recovering.stats.stores == 1


def test_cache_miss_on_salt_change(tmp_path):
    config = small_config()
    TrialPool(workers=1, cache=RunCache(tmp_path)).run_seeds(config, [0])
    bumped = RunCache(tmp_path, salt="salt-bumped-for-test")
    TrialPool(workers=1, cache=bumped).run_seeds(config, [0])
    assert bumped.stats.hits == 0
    assert bumped.stats.misses == 1


def test_chunked_dispatch_matches_serial(monkeypatch):
    # Chunking changes how trials cross the worker boundary, never what
    # they return: every chunk size must merge byte-identically.
    monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 4)
    config = small_config()
    serial = TrialPool(workers=1).run_seeds(config, SEEDS)
    for chunk_size in (1, 2, 3, 16):
        chunked = TrialPool(workers=2, chunk_size=chunk_size).run_seeds(
            config, SEEDS
        )
        assert canonical(chunked) == canonical(serial)


def test_one_chunk_batches_run_in_process(monkeypatch):
    # chunk_size >= trial count collapses the batch into a single chunk;
    # a pool would hand that chunk to one worker anyway, so no executor
    # (process or thread) may be constructed.
    monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 4)

    def no_pool(*args, **kwargs):
        raise AssertionError("executor constructed for a single chunk")

    monkeypatch.setattr(pool_module, "ProcessPoolExecutor", no_pool)
    monkeypatch.setattr(pool_module, "ThreadPoolExecutor", no_pool)
    out = TrialPool(workers=4, chunk_size=8).run_seeds(small_config(), [0, 1])
    assert [s.seed for s in out] == [0, 1]


def test_thread_dispatch_matches_serial(monkeypatch):
    monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 4)

    def no_process_pool(*args, **kwargs):
        raise AssertionError("process pool constructed under thread dispatch")

    monkeypatch.setattr(pool_module, "ProcessPoolExecutor", no_process_pool)
    config = small_config()
    serial = TrialPool(workers=1).run_seeds(config, SEEDS)
    threaded = TrialPool(
        workers=2, chunk_size=1, dispatch="thread"
    ).run_seeds(config, SEEDS)
    assert canonical(threaded) == canonical(serial)


def test_dispatch_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_DISPATCH", "thread")
    assert TrialPool().dispatch == "thread"
    monkeypatch.setenv("REPRO_DISPATCH", "fibers")
    with pytest.raises(ConfigurationError):
        TrialPool()
    monkeypatch.delenv("REPRO_DISPATCH")
    assert TrialPool().dispatch == "auto"
    assert TrialPool(dispatch="process").dispatch == "process"
    with pytest.raises(ConfigurationError):
        TrialPool(dispatch="greenlets")
    with pytest.raises(ConfigurationError):
        TrialPool(chunk_size=0)


def test_workers_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert TrialPool().workers == 3
    monkeypatch.setenv("REPRO_WORKERS", "zero")
    with pytest.raises(ConfigurationError):
        TrialPool()
    monkeypatch.setenv("REPRO_WORKERS", "0")
    with pytest.raises(ConfigurationError):
        TrialPool()


# -- hermeticity regression (serial-assumption audit) -------------------------


def summarize_built(config: RunConfig, sim, collector, quorum_system):
    """The summarize() call run_mutex performs, for a hand-stepped run."""
    return summarize(
        algorithm=config.algorithm,
        n_sites=config.n_sites,
        records=collector.records,
        messages_sent=sim.network.stats.messages_sent,
        messages_by_type=sim.network.stats.by_type,
        duration=sim.now,
        mean_delay_t=sim.network.mean_delay,
        seed=config.seed,
        quorum_name=config.resolved_quorum(),
        mean_quorum_size=(
            quorum_system.mean_quorum_size() if quorum_system else None
        ),
    )


def test_same_seed_trials_identical_back_to_back_and_interleaved():
    """Two same-seed trials must not see each other, however scheduled.

    Runs the same config+seed twice back-to-back via run_mutex, then
    builds two fresh simulators and *interleaves* their event loops one
    event at a time — any state shared across trials (module-level
    collector, reused RNG, leaked registry entry) would diverge the
    interleaved summaries from the sequential ones.
    """
    config = small_config()
    first = run_mutex(config).summary
    second = run_mutex(config).summary
    assert canonical([first]) == canonical([second])

    sim_a, _, coll_a, qs_a, _ = build_run(config)
    sim_b, _, coll_b, qs_b, _ = build_run(config)
    sim_a.start()
    sim_b.start()
    live_a = live_b = True
    while live_a or live_b:
        if live_a:
            live_a = sim_a.step()
        if live_b:
            live_b = sim_b.step()
    interleaved_a = summarize_built(config, sim_a, coll_a, qs_a)
    interleaved_b = summarize_built(config, sim_b, coll_b, qs_b)
    assert canonical([interleaved_a]) == canonical([first])
    assert canonical([interleaved_b]) == canonical([first])
