"""Deterministic key placement: named lock → shard → home site.

The lock service arbitrates millions of *named* locks with a handful of
mutex instances by hashing every key onto one of ``K`` shards. Two
placement decisions ride on the hash:

* **shard** — which of the ``K`` independent mutex instances arbitrates
  the key;
* **home site** — which of the shard's ``N`` protocol sites serves as
  the key's front end under affinity routing, so repeat acquires of a
  hot key land on the site that already holds (or recently held) the
  shard's authorization.

Both must be *stable*: the same key maps to the same shard in every
process, on every platform, across interpreter restarts. Python's
built-in ``hash()`` is randomized per process (``PYTHONHASHSEED``), so
placement uses BLAKE2s over the UTF-8 key bytes instead — a keyed,
documented function with no process-local state.

Balance contract (documented bound, pinned by
``tests/property/test_shard_router_props.py``): for ``m >= 256 * K``
uniformly random keys the empirical hotspot factor
``max_shard_load / mean_shard_load`` stays below ``1.5``. (The loads
are Binomial(m, 1/K); at ``m = 256 K`` the relative standard deviation
is 1/16, so 1.5 is an ~8-sigma bound — misses mean a broken hash, not
bad luck.)
"""

from __future__ import annotations

import hashlib

from repro.errors import ConfigurationError

__all__ = ["ShardRouter", "stable_key_hash"]


def stable_key_hash(key: str, salt: str = "") -> int:
    """64-bit hash of ``key``, stable across processes and platforms.

    ``salt`` (at most 8 ASCII bytes) derives independent placement
    streams from one key — the router uses ``""`` for the shard choice
    and ``"site"`` for the home-site choice, so the two coordinates are
    uncorrelated.
    """
    digest = hashlib.blake2s(
        key.encode("utf-8"), digest_size=8, salt=salt.encode("ascii")
    ).digest()
    return int.from_bytes(digest, "big")


class ShardRouter:
    """Maps named locks onto ``shards`` independent mutex instances."""

    __slots__ = ("shards", "n_sites")

    def __init__(self, shards: int, n_sites: int = 1) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if n_sites < 1:
            raise ConfigurationError(f"n_sites must be >= 1, got {n_sites}")
        self.shards = shards
        self.n_sites = n_sites

    def shard_of(self, key: str) -> int:
        """The shard whose mutex instance arbitrates ``key``."""
        return stable_key_hash(key) % self.shards

    def home_site(self, key: str) -> int:
        """The key's affinity front-end site within its shard.

        Hashed with an independent salt so keys sharing a shard still
        spread across the shard's sites.
        """
        return stable_key_hash(key, salt="site") % self.n_sites

    def place(self, key: str) -> "tuple[int, int]":
        """``(shard, home_site)`` for ``key`` in one call."""
        return self.shard_of(key), self.home_site(key)

    def __repr__(self) -> str:
        return f"ShardRouter(shards={self.shards}, n_sites={self.n_sites})"
