"""Raymond's tree-based token algorithm (1989), reference [12].

Sites form a logical tree; each site points toward the token along the
``holder`` edge and keeps a FIFO queue of neighbours (or itself) wanting
the token. Requests and the token travel hop by hop, giving ``O(log N)``
messages per CS execution at the price of an ``O(log N)`` synchronization
delay — the paper's Table 1 contrasts exactly this trade-off (and notes
the token-loss fragility of the family).

The tree is the heap layout over ``0..n-1``; site 0 initially holds the
token.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ProtocolError
from repro.mutex.base import DurationSpec, MutexSite, RunListener, SiteState
from repro.substrate import SiteId


@dataclass(frozen=True)
class RaymondRequest:
    """Hop-by-hop token request from a neighbour."""

    type_name = "request"


@dataclass(frozen=True)
class RaymondToken:
    """The token, passed along a tree edge."""

    type_name = "token"


class RaymondSite(MutexSite):
    """One site of Raymond's algorithm on the heap-shaped tree."""

    algorithm_name = "raymond"

    def __init__(
        self,
        site_id: SiteId,
        n: int,
        cs_duration: DurationSpec = 0.1,
        listener: Optional[RunListener] = None,
    ) -> None:
        super().__init__(site_id, cs_duration, listener)
        self.n = n
        #: Tree edge toward the token; ``self`` means we hold it.
        self.holder: SiteId = self._initial_holder()
        #: FIFO of neighbours (or self) waiting for the token.
        self.request_q: List[SiteId] = []
        #: True once we asked our holder for the token (one ask at a time).
        self.asked = False

    def _initial_holder(self) -> SiteId:
        """Point every site toward site 0 along the tree."""
        return self.site_id if self.site_id == 0 else (self.site_id - 1) // 2

    def neighbors(self) -> List[SiteId]:
        """Tree neighbours in the heap layout (parent plus children)."""
        out = []
        if self.site_id != 0:
            out.append((self.site_id - 1) // 2)
        for child in (2 * self.site_id + 1, 2 * self.site_id + 2):
            if child < self.n:
                out.append(child)
        return out

    # -- queue machinery -------------------------------------------------------

    def _assign_token(self, exiting: bool = False) -> None:
        """Pass the token toward the queue head (or enter the CS ourselves).

        ``exiting`` is set by the CS-exit path, where the base class has
        not flipped the state back to idle yet but the CS is over.
        """
        if self.holder != self.site_id:
            return
        if self.state is SiteState.IN_CS and not exiting:
            return
        if not self.request_q:
            return
        nxt = self.request_q.pop(0)
        if nxt == self.site_id:
            if self.state is SiteState.REQUESTING:
                self._enter_cs()
            return
        self.holder = nxt
        self.asked = False
        self.send(nxt, RaymondToken())
        if self.request_q:
            self._ask()

    def _ask(self) -> None:
        """Send one request along the holder edge if we have not already."""
        if self.holder != self.site_id and not self.asked and self.request_q:
            self.asked = True
            self.send(self.holder, RaymondRequest())

    # -- MutexSite hooks -------------------------------------------------------

    def _begin_request(self) -> None:
        self.request_q.append(self.site_id)
        if self.holder == self.site_id:
            self._assign_token()
        else:
            self._ask()

    def _exit_protocol(self) -> None:
        self._assign_token(exiting=True)

    # -- message handlers -----------------------------------------------------

    def on_message(self, src: SiteId, message: object) -> None:
        if isinstance(message, RaymondRequest):
            if src not in self.neighbors():
                raise ProtocolError(
                    f"site {self.site_id} got a request from non-neighbour {src}"
                )
            self.request_q.append(src)
            if self.holder == self.site_id:
                self._assign_token()
            else:
                self._ask()
        elif isinstance(message, RaymondToken):
            self.holder = self.site_id
            self.asked = False
            self._assign_token()
        else:
            raise TypeError(f"unexpected message {message!r}")
