"""Tests for the sharded lock service: determinism, batching, leases.

The headline contract: a lock-service run is a pure function of its
config — same config + seed gives a byte-identical summary dict,
whether the trial runs inline or fans out through the parallel trial
engine at any worker count — and the front-end optimizations (batching,
coalescing, lease cache) change message *cost*, never outcomes.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.locks import (
    LockRunConfig,
    LockService,
    ShardView,
    run_lock_configs,
    run_lock_service,
)
from repro.parallel.cache import RunCache
from repro.parallel.pool import TrialPool
from repro.sim.node import Node
from repro.sim.simulator import Simulator


def _config(**overrides) -> LockRunConfig:
    params = dict(
        algorithm="cao-singhal",
        shards=3,
        n_sites=4,
        n_keys=60,
        n_clients=8,
        arrival_rate=2.0,
        n_requests=150,
        key_skew=1.1,
        seed=5,
    )
    params.update(overrides)
    return LockRunConfig(**params)


# -- determinism ------------------------------------------------------------


def test_summary_dict_is_byte_identical_across_runs():
    config = _config()
    first = run_lock_service(config).summary.to_dict()
    second = run_lock_service(dataclasses.replace(config)).summary.to_dict()
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )


def test_trial_pool_workers_do_not_change_summaries():
    configs = [_config(seed=s) for s in range(4)]
    serial = run_lock_configs(configs, workers=1)
    parallel = run_lock_configs(configs, workers=2)
    assert [s.to_dict() for s in serial] == [s.to_dict() for s in parallel]
    # Summaries come back in input order: seeds in, seeds out.
    assert [s.seed for s in parallel] == [0, 1, 2, 3]


def test_distinct_seeds_give_distinct_schedules():
    a = run_lock_service(_config(seed=0)).summary
    b = run_lock_service(_config(seed=1)).summary
    assert a.to_dict() != b.to_dict()


def test_lock_trials_are_never_cached(tmp_path):
    """The run cache reconstructs records as RunSummary, so lock configs
    must be uncacheable rather than round-trip mis-typed."""
    cache = RunCache(tmp_path)
    config = _config(n_requests=30)
    assert cache.key_for(config) is None
    summaries = TrialPool(workers=1, cache=cache).run_configs([config])
    assert summaries[0].completed == 30
    assert cache.stats.stores == 0


# -- front-end mechanics -----------------------------------------------------


def test_lease_cache_reduces_messages_on_the_same_seed():
    leased = run_lock_service(_config()).summary
    control = run_lock_service(_config(lease=False)).summary
    assert leased.lease_hits > 0
    assert control.lease_hits == 0 and control.lease_window == 0.0
    assert leased.quorum_rounds < control.quorum_rounds
    assert leased.messages_per_acquire < control.messages_per_acquire


def test_batching_and_coalescing_amortize_one_authorization():
    batched = run_lock_service(_config(lease=False)).summary
    serial = run_lock_service(_config(lease=False, batch_max=1)).summary
    # batch_max=1 degenerates to one batch per request; wider batches
    # group queued acquires under the same grant.
    assert serial.batches == 150
    assert batched.batches < serial.batches
    # Either way the queue drains before the CS is released, so backlog
    # beyond the first batch rides the same authorization (coalescing)
    # and the protocol cost in quorum rounds is identical.
    assert serial.coalesced_batches > batched.coalesced_batches > 0
    assert batched.quorum_rounds == serial.quorum_rounds


def test_affinity_routing_beats_client_routing_on_lease_hits():
    """Hot keys keep landing on their home site under affinity routing,
    so the retained authorization actually gets reused."""
    affinity = run_lock_service(_config(key_skew=1.4)).summary
    pinned = run_lock_service(_config(key_skew=1.4, routing="client")).summary
    assert affinity.lease_hit_rate > pinned.lease_hit_rate


def test_summary_accounting_is_consistent():
    summary = run_lock_service(_config()).summary
    assert summary.submitted == summary.completed == 150
    assert summary.violations == 0
    assert summary.batches >= summary.quorum_rounds
    assert sum(summary.shard_loads) == summary.completed
    assert summary.lease_hits + summary.quorum_rounds <= summary.batches + 1
    assert summary.duration > 0
    assert "messages/acquire" in summary.describe()


# -- config validation --------------------------------------------------------


@pytest.mark.parametrize(
    "field, value",
    [
        ("n_keys", 0),
        ("n_clients", 0),
        ("n_requests", 0),
        ("hold_duration", 0.0),
        ("key_skew", -0.5),
        ("arrival_rate", 0.0),
        ("batch_max", 0),
        ("lease_window", -1.0),
        ("routing", "random"),
        ("shards", 0),
    ],
)
def test_invalid_configs_are_rejected(field, value):
    with pytest.raises(ConfigurationError):
        run_lock_service(_config(**{field: value}))


def test_quorum_rejected_for_non_quorum_algorithm():
    with pytest.raises(ConfigurationError):
        run_lock_service(_config(algorithm="lamport", quorum="grid"))


def test_safety_cap_reported_as_configuration_error():
    with pytest.raises(ConfigurationError, match="safety cap"):
        run_lock_service(_config(max_events=50))


# -- shard substrate ----------------------------------------------------------


class _Probe(Node):
    """Minimal node recording what the shard view delivers to it."""

    def __init__(self, site_id):
        super().__init__(site_id)
        self.seen = []

    def on_message(self, src, message):
        self.seen.append((src, message))


def test_shard_views_isolate_id_spaces():
    sim = Simulator(seed=0)
    views = [ShardView(sim, index, n=3) for index in range(2)]
    probes = [[views[s].add_node(_Probe(i)) for i in range(3)] for s in range(2)]
    sim.start()
    # Same local coordinates, different shards: global ids must differ.
    views[0].send(0, 2, "a", "Msg")
    views[1].send(0, 2, "b", "Msg")
    sim.run()
    assert probes[0][2].seen == [(0, "a")]
    assert probes[1][2].seen == [(0, "b")]
    assert all(not p.seen for row in probes for p in row[:2])


def test_shard_view_rejects_out_of_range_and_duplicate_ids():
    sim = Simulator(seed=0)
    view = ShardView(sim, 0, n=2)
    view.add_node(_Probe(0))
    with pytest.raises(SimulationError):
        view.add_node(_Probe(0))
    with pytest.raises(SimulationError):
        view.add_node(_Probe(2))


def test_shard_view_rng_streams_are_shard_qualified():
    sim = Simulator(seed=3)
    a = ShardView(sim, 0, n=2).rng("proto")
    b = ShardView(sim, 1, n=2).rng("proto")
    assert a.random() != b.random()


def test_crash_through_the_port_reaches_the_inner_site():
    sim = Simulator(seed=0)
    view = ShardView(sim, 1, n=2)
    probe = view.add_node(_Probe(0))
    sim.start()
    sim.crash(view.base + 0)
    assert probe.crashed and view.is_crashed(0)
    view.deliver_local(0, "dropped")
    assert probe.seen == []
    sim.recover(view.base + 0)
    assert not probe.crashed


# -- service composition -------------------------------------------------------


def test_service_spans_shards_times_sites_simulator_nodes():
    sim = Simulator(seed=0)
    LockService(sim, shards=3, n_sites=4)
    assert len(sim.nodes) == 12
    assert sorted(sim.nodes) == list(range(12))


def test_cli_locks_run_prints_summary(capsys):
    from repro.cli import main

    code = main(
        [
            "locks", "run", "-a", "cao", "--shards", "2", "-n", "4",
            "--keys", "30", "--clients", "4", "--requests", "40",
            "--zipf", "1.1", "--seed", "2",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "40/40 acquires" in out and "violations 0" in out


def test_cli_locks_run_json(capsys):
    from repro.cli import main

    code = main(
        [
            "locks", "run", "--shards", "2", "-n", "4", "--keys", "30",
            "--requests", "40", "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["completed"] == 40 and payload["violations"] == 0


def test_lock_experiments_registered():
    from repro.cli import EXPERIMENTS

    assert "E14" in EXPERIMENTS and "E15" in EXPERIMENTS
