"""Unit tests for arrival processes, key samplers, and workload drivers."""

from __future__ import annotations

import math
import random
from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.mutex.base import MutexSite
from repro.sim.simulator import Simulator
from repro.workload.arrivals import (
    BurstArrivals,
    PeriodicArrivals,
    PoissonArrivals,
    UniformKeys,
    ZipfKeys,
)
from repro.workload.driver import (
    OpenLoopWorkload,
    SaturationWorkload,
    StaggeredSingleShot,
)
from repro.workload.scenarios import heavy_load, light_load, moderate_load


class CountingSite(MutexSite):
    """Counts submissions without running any protocol."""

    def __init__(self, site_id):
        super().__init__(site_id, cs_duration=0.01)
        self.submissions = 0

    def submit_request(self):
        self.submissions += 1

    def _begin_request(self):
        raise AssertionError("not used")

    def _exit_protocol(self):
        raise AssertionError("not used")


def make_sites(n=3):
    sim = Simulator(seed=5)
    sites = [sim.add_node(CountingSite(i)) for i in range(n)]
    sim.start()
    return sim, sites


# -- arrival processes -----------------------------------------------------------


def test_poisson_rate_and_horizon():
    rng = random.Random(0)
    times = list(PoissonArrivals(rate=2.0).times(rng, horizon=1000.0))
    assert all(0 < t <= 1000.0 for t in times)
    assert times == sorted(times)
    # Expected ~2000 arrivals; allow generous tolerance.
    assert 1700 < len(times) < 2300


def test_poisson_rejects_nonpositive_rate():
    with pytest.raises(ConfigurationError):
        PoissonArrivals(0.0)


def test_periodic_arrivals_deterministic():
    times = list(PeriodicArrivals(2.0).times(random.Random(0), 7.0))
    assert times == [2.0, 4.0, 6.0]
    offset = list(PeriodicArrivals(2.0, offset=1.0).times(random.Random(0), 6.0))
    assert offset == [1.0, 3.0, 5.0]


def test_burst_arrivals_cluster():
    times = list(BurstArrivals(5.0, burst_size=3).times(random.Random(0), 11.0))
    assert times == [5.0, 5.0, 5.0, 10.0, 10.0, 10.0]


def test_burst_jitter_stays_in_window():
    times = list(
        BurstArrivals(5.0, burst_size=2, jitter=0.5).times(random.Random(1), 20.0)
    )
    for t in times:
        base = 5.0 * round(t / 5.0 - 0.049)
        assert 0 <= t - base <= 0.5 or t <= 20.0


# -- key samplers ------------------------------------------------------------------


def test_uniform_keys_cover_the_space():
    sampler = UniformKeys(10)
    rng = random.Random(3)
    draws = [sampler.sample(rng) for _ in range(2000)]
    assert set(draws) == set(range(10))
    counts = Counter(draws)
    assert max(counts.values()) / min(counts.values()) < 2.0


def test_zipf_keys_seeded_reproducibility():
    """Same seed, same draws — across independent sampler instances."""
    a = [ZipfKeys(500, s=1.1).sample(random.Random(9)) for _ in range(1)]
    first = ZipfKeys(500, s=1.1)
    second = ZipfKeys(500, s=1.1)
    draws_a = [first.sample(random.Random(9)) for _ in range(5)]
    draws_b = [second.sample(random.Random(9)) for _ in range(5)]
    assert draws_a == draws_b
    rng_a, rng_b = random.Random(9), random.Random(9)
    assert [first.sample(rng_a) for _ in range(200)] == [
        second.sample(rng_b) for _ in range(200)
    ]
    assert a[0] == draws_a[0]


def test_zipf_one_rng_draw_per_sample():
    """The sampler consumes exactly one random() per draw, so seeded
    streams shared with other consumers stay aligned."""
    sampler = ZipfKeys(100, s=1.1)
    rng = random.Random(4)
    reference = random.Random(4)
    for _ in range(50):
        sampler.sample(rng)
        reference.random()
    assert rng.random() == reference.random()


def test_zipf_skew_orders_popularity():
    sampler = ZipfKeys(1000, s=1.1)
    rng = random.Random(7)
    counts = Counter(sampler.sample(rng) for _ in range(20_000))
    # Rank 0 is the hottest key and popularity decays with rank.
    assert counts[0] > counts[10] > counts[500]
    assert sampler.popularity(0) > sampler.popularity(1) > sampler.popularity(999)
    total = sum(sampler.popularity(r) for r in range(1000))
    assert math.isclose(total, 1.0, rel_tol=1e-9)


def test_zipf_draws_stay_in_range():
    sampler = ZipfKeys(7, s=1.3)
    rng = random.Random(11)
    assert all(0 <= sampler.sample(rng) < 7 for _ in range(5000))


def test_zipf_zero_exponent_is_uniform():
    sampler = ZipfKeys(50, s=0.0)
    assert math.isclose(sampler.popularity(0), sampler.popularity(49))


def test_key_samplers_validate():
    with pytest.raises(ConfigurationError):
        UniformKeys(0)
    with pytest.raises(ConfigurationError):
        ZipfKeys(0)
    with pytest.raises(ConfigurationError):
        ZipfKeys(10, s=-1.0)


# -- drivers ---------------------------------------------------------------------


def test_saturation_workload_submits_everything_at_zero():
    sim, sites = make_sites()
    total = SaturationWorkload(4).install(sim, sites)
    sim.run()
    assert total == 12
    assert all(s.submissions == 4 for s in sites)


def test_saturation_validates():
    with pytest.raises(ConfigurationError):
        SaturationWorkload(0)


def test_open_loop_workload_counts_and_installs():
    sim, sites = make_sites()
    wl = OpenLoopWorkload(PeriodicArrivals(10.0), horizon=35.0)
    total = wl.install(sim, sites)
    sim.run()
    assert total == 9  # 3 arrivals x 3 sites
    assert all(s.submissions == 3 for s in sites)


def test_open_loop_sites_get_independent_streams():
    sim, sites = make_sites()
    OpenLoopWorkload(PoissonArrivals(0.5), horizon=100.0).install(sim, sites)
    sim.run()
    counts = [s.submissions for s in sites]
    assert len(set(counts)) > 1  # overwhelmingly likely with independent RNGs


def test_staggered_single_shot():
    sim, sites = make_sites()
    StaggeredSingleShot({0: 1.0, 2: 5.0}).install(sim, sites)
    sim.run()
    assert [s.submissions for s in sites] == [1, 0, 1]


def test_staggered_unknown_site_rejected():
    sim, sites = make_sites()
    with pytest.raises(ConfigurationError):
        StaggeredSingleShot({9: 1.0}).install(sim, sites)


# -- scenarios ---------------------------------------------------------------------


def test_named_scenarios_shapes():
    assert isinstance(heavy_load(), SaturationWorkload)
    assert isinstance(light_load(), OpenLoopWorkload)
    assert isinstance(moderate_load(), OpenLoopWorkload)
