"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (see the
experiment index in DESIGN.md), asserts its headline shape, prints the
rendered report, and archives it under ``benchmarks/results/`` so
EXPERIMENTS.md can be refreshed from actual runs.

The harness is wired through the parallel trial engine: the
``trial_pool`` fixture hands each benchmark a ready
:class:`repro.parallel.TrialPool` (worker count from ``$REPRO_WORKERS``,
default 1 so timing benchmarks stay comparable run-to-run), and
``archive_json`` persists machine-readable ``BENCH_*.json`` entries next
to the text reports.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.parallel import TrialPool

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def archive(report) -> None:
    """Print and persist an experiment report."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = report.render()
    print()
    print(text)
    path = RESULTS_DIR / f"{report.experiment_id}.txt"
    path.write_text(text)


def archive_json(name: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable benchmark entry as ``BENCH_<name>.json``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture
def trial_pool() -> TrialPool:
    """A trial engine for benchmark fan-out.

    Defaults to one in-process worker so wall-clock numbers stay
    comparable across machines; export ``REPRO_WORKERS`` to fan out.
    """
    workers = int(os.environ.get("REPRO_WORKERS", "1"))
    return TrialPool(workers=workers)


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def _run(func, **kwargs):
        report = benchmark.pedantic(
            lambda: func(**kwargs), rounds=1, iterations=1
        )
        archive(report)
        return report

    return _run
