"""Network model: delay distributions and FIFO point-to-point channels.

The paper's system model (Section 2) assumes a fully connected network with
reliable channels, unpredictable but bounded message delay, and FIFO
delivery between any pair of sites. :class:`Network` implements exactly
that, with the delay drawn from a pluggable :class:`DelayModel`.

Delays are expressed in units of the mean message delay ``T`` so measured
synchronization delays read directly against the paper's ``T`` / ``2T``
claims. The fault-tolerance experiments additionally need crashed sites and
severed links, which the network models by silently dropping traffic to and
from crashed/partitioned endpoints (a crashed site neither sends nor
receives; the paper's Section 6 recovery protocol then repairs the
protocol-level state).

Beyond crashes and partitions, the network can run *adversarially*: a
pluggable :class:`FaultModel` injects per-channel message loss (independent
or bursty via a two-state Gilbert–Elliott chain), duplication, and
reordering (a message may bypass the FIFO clamp and pick up extra jitter,
so later sends overtake it). Fault decisions draw from a dedicated RNG
stream derived from the run seed, so chaotic runs replay exactly; with no
fault model installed the send path is byte-identical to the reliable
network. The :mod:`repro.sim.transport` layer rebuilds exactly-once FIFO
delivery on top.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.common import slotted_dataclass
from repro.errors import ConfigurationError, SimulationError

SiteId = int


class DelayModel(ABC):
    """Distribution of one-way message latencies.

    Implementations must guarantee strictly positive samples (a zero delay
    would let a message arrive in the same instant it was sent, which the
    paper's model excludes and which would break FIFO tie-breaking).
    """

    __slots__ = ()

    @abstractmethod
    def sample(self, rng: random.Random, src: SiteId, dst: SiteId) -> float:
        """Return a latency sample for a message from ``src`` to ``dst``."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """The mean latency ``T`` of the model, used to normalize metrics."""


class ConstantDelay(DelayModel):
    """Every message takes exactly ``latency`` time units.

    Useful for analytical comparisons: with constant delay the measured
    synchronization delay of a correct run is *exactly* ``T`` or ``2T``.
    """

    __slots__ = ("_latency",)

    def __init__(self, latency: float = 1.0) -> None:
        if latency <= 0:
            raise ConfigurationError(f"latency must be positive, got {latency}")
        self._latency = float(latency)

    def sample(self, rng: random.Random, src: SiteId, dst: SiteId) -> float:
        return self._latency

    @property
    def mean(self) -> float:
        return self._latency

    def __repr__(self) -> str:
        return f"ConstantDelay({self._latency})"


class UniformDelay(DelayModel):
    """Latency drawn uniformly from ``[low, high]``."""

    __slots__ = ("_low", "_high")

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if not 0 < low <= high:
            raise ConfigurationError(
                f"need 0 < low <= high, got low={low}, high={high}"
            )
        self._low = float(low)
        self._high = float(high)

    def sample(self, rng: random.Random, src: SiteId, dst: SiteId) -> float:
        return rng.uniform(self._low, self._high)

    @property
    def mean(self) -> float:
        return (self._low + self._high) / 2.0

    def __repr__(self) -> str:
        return f"UniformDelay({self._low}, {self._high})"


class LogNormalDelay(DelayModel):
    """Latency from a log-normal distribution — the classic fit for WAN
    round-trip times (most messages near the mode, a long right tail)."""

    __slots__ = ("_mean", "_sigma", "_mu")

    def __init__(self, mean: float = 1.0, sigma: float = 0.5) -> None:
        if mean <= 0:
            raise ConfigurationError(f"mean must be positive, got {mean}")
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {sigma}")
        self._mean = float(mean)
        self._sigma = float(sigma)
        # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); solve for mu.
        import math

        self._mu = math.log(mean) - sigma * sigma / 2.0

    def sample(self, rng: random.Random, src: SiteId, dst: SiteId) -> float:
        return rng.lognormvariate(self._mu, self._sigma)

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"LogNormalDelay(mean={self._mean}, sigma={self._sigma})"


class ParetoDelay(DelayModel):
    """Heavy-tailed latency (shifted Pareto): occasional extreme stragglers.

    A stress model for the protocol's race windows — forwarded replies and
    releases can be reordered arbitrarily far. ``alpha`` must exceed 1 so
    the mean exists; smaller alpha = heavier tail.
    """

    __slots__ = ("_mean", "_alpha", "_scale")

    def __init__(self, mean: float = 1.0, alpha: float = 2.5) -> None:
        if mean <= 0:
            raise ConfigurationError(f"mean must be positive, got {mean}")
        if alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must exceed 1 for a finite mean, got {alpha}"
            )
        self._mean = float(mean)
        self._alpha = float(alpha)
        # E[x_m * X] with X ~ Pareto(alpha) is x_m * alpha/(alpha-1).
        self._scale = mean * (alpha - 1.0) / alpha

    def sample(self, rng: random.Random, src: SiteId, dst: SiteId) -> float:
        return self._scale * rng.paretovariate(self._alpha)

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"ParetoDelay(mean={self._mean}, alpha={self._alpha})"


class ExponentialDelay(DelayModel):
    """Latency drawn from a shifted exponential distribution.

    A pure exponential can sample arbitrarily close to zero; the paper's
    model requires positive delay, so the distribution is shifted by
    ``floor`` and scaled to keep the requested mean.
    """

    __slots__ = ("_mean", "_floor")

    def __init__(self, mean: float = 1.0, floor: float = 0.05) -> None:
        if mean <= floor:
            raise ConfigurationError(
                f"mean ({mean}) must exceed floor ({floor})"
            )
        self._mean = float(mean)
        self._floor = float(floor)

    def sample(self, rng: random.Random, src: SiteId, dst: SiteId) -> float:
        return self._floor + rng.expovariate(1.0 / (self._mean - self._floor))

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"ExponentialDelay(mean={self._mean}, floor={self._floor})"


class GilbertElliott:
    """Two-state burst-loss chain (Gilbert–Elliott model).

    Each channel is independently in a *good* or *bad* state; every send
    on the channel first takes one Markov step (good→bad with probability
    ``p_enter``, bad→good with ``p_exit``), then a message sent in the bad
    state is lost with probability ``loss`` (on top of the fault model's
    base loss). Small ``p_enter`` with small ``p_exit`` yields rare but
    long loss bursts — the regime that defeats naive single-retry schemes.
    """

    __slots__ = ("p_enter", "p_exit", "loss")

    def __init__(
        self, p_enter: float = 0.01, p_exit: float = 0.25, loss: float = 0.9
    ) -> None:
        for name, p in (("p_enter", p_enter), ("p_exit", p_exit), ("loss", loss)):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(
                    f"{name} must be a probability in [0, 1], got {p}"
                )
        if p_exit <= 0.0:
            raise ConfigurationError("p_exit must be positive or bursts never end")
        self.p_enter = float(p_enter)
        self.p_exit = float(p_exit)
        self.loss = float(loss)

    def __repr__(self) -> str:
        return (
            f"GilbertElliott(p_enter={self.p_enter}, p_exit={self.p_exit}, "
            f"loss={self.loss})"
        )


class FaultModel:
    """Immutable description of channel-level fault injection.

    Pure configuration: per-run mutable state (the Gilbert–Elliott chain
    position per channel) lives in the :class:`Network`, so one model
    instance can parameterize many runs (and be fingerprinted by the trial
    cache) without cross-run leakage.

    Parameters
    ----------
    loss:
        Independent per-message drop probability.
    duplicate:
        Probability a message is delivered twice (the copy takes an
        independently sampled delay and never tightens the FIFO clamp).
    reorder:
        Probability a message bypasses the FIFO clamp: it picks up extra
        jitter, does not advance the channel's FIFO floor, and is
        therefore overtaken by later, faster sends.
    reorder_spread:
        Jitter magnitude for reordered messages, as a multiple of the
        delay model's mean ``T`` (actual jitter ~ U(0, spread*T)).
    burst:
        Optional :class:`GilbertElliott` burst-loss chain layered on top
        of ``loss``.
    chaos_seed:
        Decouples the fault stream from the run seed: the same simulation
        seed replayed under a different ``chaos_seed`` sees the same
        delays but a different fault pattern.
    """

    __slots__ = ("loss", "duplicate", "reorder", "reorder_spread", "burst", "chaos_seed")

    def __init__(
        self,
        loss: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        reorder_spread: float = 2.0,
        burst: Optional[GilbertElliott] = None,
        chaos_seed: int = 0,
    ) -> None:
        for name, p in (("loss", loss), ("duplicate", duplicate), ("reorder", reorder)):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(
                    f"{name} must be a probability in [0, 1], got {p}"
                )
        if reorder_spread < 0:
            raise ConfigurationError(
                f"reorder_spread must be >= 0, got {reorder_spread}"
            )
        if burst is not None and not isinstance(burst, GilbertElliott):
            raise ConfigurationError(
                f"burst must be a GilbertElliott instance, got {burst!r}"
            )
        self.loss = float(loss)
        self.duplicate = float(duplicate)
        self.reorder = float(reorder)
        self.reorder_spread = float(reorder_spread)
        self.burst = burst
        self.chaos_seed = int(chaos_seed)

    def __repr__(self) -> str:
        return (
            f"FaultModel(loss={self.loss}, duplicate={self.duplicate}, "
            f"reorder={self.reorder}, reorder_spread={self.reorder_spread}, "
            f"burst={self.burst!r}, chaos_seed={self.chaos_seed})"
        )


@slotted_dataclass
class NetworkStats:
    """Aggregate counters the metrics layer reads after a run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    #: Fault-injected losses (distinct from crash/sever drops above).
    messages_lost: int = 0
    messages_duplicated: int = 0
    messages_reordered: int = 0
    total_latency: float = 0.0
    by_type: Dict[str, int] = field(default_factory=dict)
    #: Messages addressed to each site — the arbitration-load signal used
    #: by experiment E10 (quorum constructions concentrate load very
    #: differently: grids are balanced, tree roots and wheel hubs are
    #: hotspots).
    by_destination: Dict[SiteId, int] = field(default_factory=dict)

    def record_send(self, type_name: str, dst: SiteId) -> None:
        self.messages_sent += 1
        self.by_type[type_name] = self.by_type.get(type_name, 0) + 1
        self.by_destination[dst] = self.by_destination.get(dst, 0) + 1

    def snapshot(self) -> Dict[str, Any]:
        """Point-in-time copy of every counter (observability layer).

        Dict values are copied so successive snapshots are independent;
        ``mean_latency`` is derived per delivered message.
        """
        delivered = self.messages_delivered
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": delivered,
            "messages_dropped": self.messages_dropped,
            "messages_lost": self.messages_lost,
            "messages_duplicated": self.messages_duplicated,
            "messages_reordered": self.messages_reordered,
            "mean_latency": (self.total_latency / delivered) if delivered else 0.0,
            "by_type": dict(self.by_type),
            "by_destination": dict(self.by_destination),
        }


#: Signature of the simulator's delivery callback: ``(src, dst, payload)``.
#: The former ``Envelope`` dataclass was inlined into the event payload —
#: a message in flight is now the scheduled call
#: ``Network._deliver(src, dst, payload, latency)``, saving one allocation
#: and two attribute indirections per message.
DeliverCallback = Callable[[SiteId, SiteId, Any], None]


class Network:
    """Fully connected FIFO network with pluggable per-message delays.

    FIFO is enforced per ordered pair: the delivery time of each message is
    clamped to be strictly after the previous delivery on the same channel.
    This mirrors the common implementation of FIFO channels over a
    non-FIFO transport (sequence numbers + reordering buffer) without
    simulating the buffer itself.

    The network knows nothing about protocol messages; it transports opaque
    payloads and lets the scheduler own time. ``send`` returns the delivery
    time, which the trace layer records.
    """

    __slots__ = (
        "_sample",
        "_uniform_low",
        "_uniform_span",
        "_rng_random",
        "_mean_delay",
        "_rng",
        "_schedule",
        "_now",
        "_last_delivery",
        "_deliver_cb",
        "_deliver_fn",
        "_crashed",
        "_incarnation",
        "_severed",
        "_ever_faulted",
        "_faults",
        "_fault_rng",
        "_burst_bad",
        "_loss_override",
        "_delay_factor",
        "stats",
    )

    #: Minimal spacing between consecutive deliveries on one channel.
    FIFO_EPSILON = 1e-9

    def __init__(
        self,
        delay_model: DelayModel,
        rng: random.Random,
        schedule: Callable[..., Any],
        now: Callable[[], float],
        fault_model: Optional[FaultModel] = None,
        fault_rng: Optional[random.Random] = None,
    ) -> None:
        # The delay model is consulted once per send; bind its bound method
        # and mean up front so the hot path pays no repeated virtual lookup.
        self._sample = delay_model.sample
        self._mean_delay = delay_model.mean
        self._rng = rng
        self._rng_random = rng.random
        # Uniform delays (the default and the benchmark workhorse) are
        # sampled inline: ``low + span * random()`` is the exact
        # expression ``random.Random.uniform`` evaluates, so the sampled
        # floats are bit-identical while skipping two call frames.
        if type(delay_model) is UniformDelay:
            self._uniform_low = delay_model._low
            self._uniform_span = delay_model._high - delay_model._low
        else:
            self._uniform_low = None
            self._uniform_span = 0.0
        self._schedule = schedule
        self._now = now
        self._last_delivery: Dict[Tuple[SiteId, SiteId], float] = {}
        self._deliver_cb: Optional[DeliverCallback] = None
        #: The callback scheduled for each due message. Defaults to the
        #: layered :meth:`_deliver` (drop checks here, then the delivery
        #: callback); the simulator replaces it with its fused
        #: ``_deliver_event`` so a due message costs one Python call.
        self._deliver_fn: Callable[..., None] = self._deliver
        self._crashed: Set[SiteId] = set()
        #: Per-site crash count. A message in flight remembers its
        #: sender's incarnation at send time; a mismatch at delivery time
        #: means the sender crashed in between, and fail-stop semantics
        #: drop the message — even if the sender has already recovered.
        self._incarnation: Dict[SiteId, int] = {}
        self._severed: Set[Tuple[SiteId, SiteId]] = set()
        #: Latched True by the first :meth:`crash` or :meth:`sever` and
        #: never cleared; while False, every delivery-time drop check is
        #: vacuous, which the simulator's fast delivery path exploits.
        self._ever_faulted = False
        if fault_model is not None and fault_rng is None:
            raise ConfigurationError(
                "a fault model needs its own RNG stream (fault_rng)"
            )
        self._faults = fault_model
        self._fault_rng = fault_rng
        #: Per-channel Gilbert–Elliott state: True while the channel is in
        #: its bad (bursty-loss) state. Reset per run, not per model.
        self._burst_bad: Dict[Tuple[SiteId, SiteId], bool] = {}
        #: Chaos-engine runtime overlays (see repro.ft.chaos): an active
        #: loss burst replaces the model's base loss; a delay spike
        #: multiplies sampled latencies.
        self._loss_override: Optional[float] = None
        self._delay_factor = 1.0
        self.stats = NetworkStats()

    @property
    def mean_delay(self) -> float:
        """Mean one-way latency ``T`` of the configured delay model."""
        return self._mean_delay

    def on_deliver(self, callback: DeliverCallback) -> None:
        """Register the single delivery callback (set by the simulator)."""
        self._deliver_cb = callback

    def set_deliver_event(self, fn: Callable[..., None]) -> None:
        """Install a fused due-message callback (simulator optimization).

        ``fn(src, dst, payload, latency, inc)`` replaces the layered
        :meth:`_deliver` → delivery-callback chain for every subsequently
        scheduled message. The caller owns replicating :meth:`_deliver`'s
        drop checks and accounting in the exact same order.
        """
        self._deliver_fn = fn

    # -- failure injection -------------------------------------------------

    def crash(self, site: SiteId) -> None:
        """Stop delivering to and accepting traffic from ``site``.

        Messages already in flight toward a crashed site are dropped at
        delivery time, modelling a fail-stop crash. Messages in flight
        *from* the site are dropped too — permanently: the crash bumps
        the site's incarnation, so its pre-crash traffic can never
        arrive late, not even after the site recovers.
        """
        self._ever_faulted = True
        self._crashed.add(site)
        self._incarnation[site] = self._incarnation.get(site, 0) + 1

    def recover(self, site: SiteId) -> None:
        """Allow ``site`` to communicate again (crash-recovery model)."""
        self._crashed.discard(site)

    def sever(self, a: SiteId, b: SiteId) -> None:
        """Cut the bidirectional link between ``a`` and ``b``."""
        self._ever_faulted = True
        self._severed.add((a, b))
        self._severed.add((b, a))

    def heal(self, a: SiteId, b: SiteId) -> None:
        """Restore the link between ``a`` and ``b``."""
        self._severed.discard((a, b))
        self._severed.discard((b, a))

    def is_crashed(self, site: SiteId) -> bool:
        """True if ``site`` is currently crashed."""
        return site in self._crashed

    # -- chaos overlays ----------------------------------------------------

    @property
    def has_faults(self) -> bool:
        """True when a :class:`FaultModel` is installed."""
        return self._faults is not None

    def set_loss_override(self, loss: Optional[float]) -> None:
        """Replace the fault model's base loss (``None`` restores it).

        Used by the chaos engine's scripted loss bursts; requires a fault
        model (even an all-zero one) so the override has a path to act on.
        """
        if self._faults is None:
            raise SimulationError(
                "loss override requires a fault model (install FaultModel())"
            )
        if loss is not None and not 0.0 <= loss <= 1.0:
            raise SimulationError(f"loss override must be in [0, 1], got {loss}")
        self._loss_override = loss

    def set_delay_factor(self, factor: float) -> None:
        """Scale every sampled latency by ``factor`` (chaos delay spikes).

        Only consulted while a fault model is installed, keeping the
        fault-free hot path untouched.
        """
        if self._faults is None:
            raise SimulationError(
                "delay factor requires a fault model (install FaultModel())"
            )
        if factor <= 0:
            raise SimulationError(f"delay factor must be positive, got {factor}")
        self._delay_factor = float(factor)

    # -- transport ---------------------------------------------------------

    def send(
        self,
        src: SiteId,
        dst: SiteId,
        payload: Any,
        type_name: str,
        piggybacked: bool = False,
        now: Optional[float] = None,
    ) -> Optional[float]:
        """Queue ``payload`` for FIFO delivery from ``src`` to ``dst``.

        Returns the delivery time, or ``None`` when the message was dropped
        because an endpoint is crashed or the link is severed. ``type_name``
        feeds the per-type message counters; a piggyback bundle is counted
        once under its combined name, following the paper's costing rule
        (Section 5: a piggybacked control message counts as one message).
        ``now`` lets the simulator pass its clock value directly (it is
        constant for the duration of one event callback), skipping the
        clock-callable indirection on the hot path.
        """
        if self._deliver_cb is None:
            raise SimulationError("network has no delivery callback installed")
        if src == dst:
            raise SimulationError(
                "self-delivery must be handled locally by the node layer, "
                f"site {src} tried to send {type_name} to itself"
            )
        stats = self.stats
        if self._crashed or self._severed:
            if (
                src in self._crashed
                or dst in self._crashed
                or (src, dst) in self._severed
            ):
                stats.messages_dropped += 1
                return None

        stats.messages_sent += 1
        by_type = stats.by_type
        by_type[type_name] = by_type.get(type_name, 0) + 1
        by_destination = stats.by_destination
        by_destination[dst] = by_destination.get(dst, 0) + 1

        channel = (src, dst)
        if now is None:
            now = self._now()
        low = self._uniform_low
        if low is not None:
            # UniformDelay guarantees 0 < low <= high, so the sampled
            # delay is positive by construction and needs no check.
            delay = low + self._uniform_span * self._rng_random()
        else:
            delay = self._sample(self._rng, src, dst)
            if delay <= 0:
                raise SimulationError(
                    f"delay model produced non-positive delay {delay}"
                )

        faults = self._faults
        duplicated = False
        bypass_fifo = False
        if faults is not None:
            frng = self._fault_rng
            p_loss = (
                faults.loss if self._loss_override is None else self._loss_override
            )
            burst = faults.burst
            if burst is not None:
                bad = self._burst_bad.get(channel, False)
                if bad:
                    if frng.random() < burst.p_exit:
                        bad = False
                elif frng.random() < burst.p_enter:
                    bad = True
                self._burst_bad[channel] = bad
                if bad and burst.loss > p_loss:
                    p_loss = burst.loss
            if p_loss and frng.random() < p_loss:
                stats.messages_lost += 1
                return None
            delay *= self._delay_factor
            if faults.duplicate and frng.random() < faults.duplicate:
                duplicated = True
            if faults.reorder and frng.random() < faults.reorder:
                # A reordered message picks up extra jitter and neither
                # obeys nor advances the FIFO floor: later, faster sends
                # on the channel overtake it.
                bypass_fifo = True
                delay += frng.uniform(0.0, faults.reorder_spread * self._mean_delay)
                stats.messages_reordered += 1

        deliver_at = now + delay
        if not bypass_fifo:
            last_delivery = self._last_delivery
            prev = last_delivery.get(channel)
            if prev is not None:
                fifo_floor = prev + 1e-9  # FIFO_EPSILON, inlined as a constant
                if deliver_at < fifo_floor:
                    deliver_at = fifo_floor
            last_delivery[channel] = deliver_at
        inc = self._incarnation.get(src, 0) if self._incarnation else 0
        self._schedule(
            deliver_at,
            self._deliver_fn,
            (src, dst, payload, deliver_at - now, inc),
            type_name,
        )
        if duplicated:
            # The copy takes an independent delay (drawn from the fault
            # stream so the primary delay sequence is undisturbed) and
            # ignores the FIFO floor, like a stray retransmission.
            stats.messages_duplicated += 1
            dup_delay = self._sample(self._fault_rng, src, dst) * self._delay_factor
            self._schedule(
                now + dup_delay,
                self._deliver_fn,
                (src, dst, payload, dup_delay, inc),
                type_name,
            )
        return deliver_at

    def send_many(
        self,
        src: SiteId,
        dsts: Any,
        payload: Any,
        type_name: str,
        piggybacked: bool = False,
        now: Optional[float] = None,
    ) -> None:
        """Batch delivery path: one payload to several destinations.

        Semantically identical to calling :meth:`send` once per
        destination, in order — same per-channel delay samples (drawn in
        destination order from the same RNG), same FIFO clamps, same
        counters — but the clock, stats dicts, and scheduler are bound
        once per batch instead of once per message, and consecutive sends
        to the same destination reuse the bound channel state. This is
        the quorum-broadcast fast path (a requester asks every member of
        its ``req_set`` in one call).

        With a fault model installed the batch degrades to per-message
        :meth:`send` calls so every fault decision consumes the fault RNG
        stream in the exact order of the unbatched path.
        """
        if self._faults is not None:
            for dst in dsts:
                self.send(src, dst, payload, type_name, piggybacked, now)
            return
        if self._deliver_cb is None:
            raise SimulationError("network has no delivery callback installed")
        stats = self.stats
        crashed = self._crashed
        severed = self._severed
        check_drop = bool(crashed or severed)
        by_type = stats.by_type
        by_destination = stats.by_destination
        if now is None:
            now = self._now()
        low = self._uniform_low
        span = self._uniform_span
        rng_random = self._rng_random
        sample = self._sample
        rng = self._rng
        last_delivery = self._last_delivery
        schedule = self._schedule
        deliver_fn = self._deliver_fn
        inc = self._incarnation.get(src, 0) if self._incarnation else 0
        sent = 0
        for dst in dsts:
            if src == dst:
                raise SimulationError(
                    "self-delivery must be handled locally by the node layer, "
                    f"site {src} tried to send {type_name} to itself"
                )
            if check_drop and (
                src in crashed or dst in crashed or (src, dst) in severed
            ):
                stats.messages_dropped += 1
                continue
            sent += 1
            by_type[type_name] = by_type.get(type_name, 0) + 1
            by_destination[dst] = by_destination.get(dst, 0) + 1
            if low is not None:
                delay = low + span * rng_random()
            else:
                delay = sample(rng, src, dst)
                if delay <= 0:
                    raise SimulationError(
                        f"delay model produced non-positive delay {delay}"
                    )
            deliver_at = now + delay
            channel = (src, dst)
            prev = last_delivery.get(channel)
            if prev is not None:
                fifo_floor = prev + 1e-9  # FIFO_EPSILON
                if deliver_at < fifo_floor:
                    deliver_at = fifo_floor
            last_delivery[channel] = deliver_at
            schedule(
                deliver_at,
                deliver_fn,
                (src, dst, payload, deliver_at - now, inc),
                type_name,
            )
        stats.messages_sent += sent

    def _deliver(
        self,
        src: SiteId,
        dst: SiteId,
        payload: Any,
        latency: float,
        inc: int = 0,
    ) -> None:
        """Hand a due message to the delivery callback unless dropped."""
        if self._crashed and (dst in self._crashed or src in self._crashed):
            self.stats.messages_dropped += 1
            return
        if self._incarnation and inc != self._incarnation.get(src, 0):
            # Sent before the source's fail-stop crash: lost for good.
            self.stats.messages_dropped += 1
            return
        if self._severed and (src, dst) in self._severed:
            self.stats.messages_dropped += 1
            return
        stats = self.stats
        stats.messages_delivered += 1
        stats.total_latency += latency
        self._deliver_cb(src, dst, payload)
