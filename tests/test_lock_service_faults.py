"""Crash-fault suite for the lock service: failover, fencing, retries.

The scenarios here pin the DESIGN.md §10 failure model end to end: shard
sites crash and rejoin on seeded schedules, stranded acquires fail over
to surviving sites through the retry layer, orphaned holds are fenced
off, and all three safety checkers stay green throughout. The unit
half of the file exercises the new machinery in isolation — fencing
epochs, the explicit orphan path in the post-hoc checker, retry-policy
validation, and the idempotence filter.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, MutualExclusionViolation
from repro.locks import (
    KeyConformanceChecker,
    LockRequest,
    LockRunConfig,
    LockService,
    RetryPolicy,
    check_key_mutual_exclusion,
    derive_shard_crashes,
    run_lock_configs,
    run_lock_service,
)
from repro.locks.frontend import _FrontEndState
from repro.sim.network import ConstantDelay
from repro.sim.rng import SeedSequence
from repro.sim.simulator import Simulator


def _crash_config(**overrides) -> LockRunConfig:
    """Contended enough that crashes land on busy sites."""
    params = dict(
        shards=4,
        n_sites=5,
        n_keys=50,
        n_clients=32,
        arrival_rate=24.0,
        n_requests=1200,
        hold_duration=0.8,
        key_skew=1.1,
        seed=7,
        crashes=1,
        crash_downtime=20.0,
        detection_delay=2.0,
    )
    params.update(overrides)
    return LockRunConfig(**params)


# -- end-to-end crash-chaos runs ------------------------------------------------


def test_crash_run_safe_and_fully_resolved():
    result = run_lock_service(_crash_config())
    summary = result.summary
    service = result.service

    # One crash cycle per shard actually happened.
    assert summary.crashes == 4
    # The safety surface stayed green all three ways (run_lock_service
    # already raises on a violation; the summary records the count).
    assert summary.violations == 0
    assert not service.checker.holding
    # Every acquire reached a terminal state, and every non-aborted
    # acquire was granted (completed and orphaned both imply granted).
    assert (
        summary.completed + summary.orphaned + summary.aborted
        == summary.submitted
    )
    for request in service.requests:
        assert request.finished
        if not request.aborted:
            assert request.granted
    # Failover was actually exercised, not vacuously passed.
    assert summary.failovers >= 1
    assert summary.retries >= summary.failovers
    # Degraded windows opened and closed: availability strictly between
    # 0 and 1.
    assert 0.0 < summary.availability < 1.0


def test_crash_run_deterministic_across_workers():
    cfg = _crash_config(n_requests=600)
    inline = run_lock_service(cfg).summary.to_dict()
    assert run_lock_configs([cfg], workers=1)[0].to_dict() == inline
    fanned = run_lock_configs([cfg, cfg], workers=4)
    assert fanned[0].to_dict() == inline
    assert fanned[1].to_dict() == inline


def test_permanent_crash_still_resolves_every_acquire():
    # downtime=0 means fail-stop forever: the shard keeps running on the
    # four survivors and the ledger still balances.
    result = run_lock_service(
        _crash_config(n_requests=600, crash_downtime=0.0)
    )
    summary = result.summary
    assert summary.crashes == 4
    assert summary.violations == 0
    assert (
        summary.completed + summary.orphaned + summary.aborted
        == summary.submitted
    )
    # A permanently-down site keeps its shard degraded to the end.
    assert summary.availability < 1.0


def test_chaos_overlay_supplies_crash_count():
    from repro.ft.chaos import ChaosSchedule

    cfg = _crash_config(
        n_requests=400,
        crashes=0,
        chaos=ChaosSchedule(
            seed=3, horizon=40.0, loss_bursts=1, burst_duration=2.0,
            burst_loss=0.3, delay_spikes=1, spike_duration=2.0,
            link_cuts=0, crashes=1, crash_downtime=15.0,
        ),
    )
    assert cfg.effective_crashes() == 1
    result = run_lock_service(cfg)
    summary = result.summary
    assert summary.crashes == 4  # 1 per shard x 4 shards
    assert summary.violations == 0
    assert (
        summary.completed + summary.orphaned + summary.aborted
        == summary.submitted
    )


def test_crash_free_run_reports_full_availability():
    result = run_lock_service(
        _crash_config(n_requests=200, crashes=0)
    )
    summary = result.summary
    assert summary.crashes == 0
    assert summary.availability == 1.0
    assert summary.failovers == summary.retries == 0
    assert summary.orphaned == summary.aborted == 0
    assert summary.completed == summary.submitted


def test_lock_chaos_experiment_smoke():
    from repro.experiments import run_lock_chaos

    report = run_lock_chaos(
        crash_counts=(0, 1),
        detection_delays=(2.0,),
        shards=2,
        n_sites=4,
        n_keys=100,
        n_clients=8,
        n_requests=120,
        rate_per_client=1.0,
        workers=1,
    )
    assert report.experiment_id == "E16"
    assert len(report.rows) == 2
    violations_col = report.headers.index("violations")
    assert all(row[violations_col] == 0 for row in report.rows)
    # The fault-free baseline row reports full availability.
    availability_col = report.headers.index("availability %")
    assert report.rows[0][availability_col] == 100.0


# -- lease-timer crash regression ----------------------------------------------


def _single_shard_service(lease_window: float = 5.0):
    sim = Simulator(seed=1, delay_model=ConstantDelay(0.1))
    service = LockService(
        sim,
        shards=1,
        n_sites=5,
        lease_window=lease_window,
        fault_tolerant=True,
    )
    return sim, service


def test_lease_timer_cancelled_when_site_crashes_mid_lease():
    # Regression: hold/lease timers go through view.schedule_call and
    # are raw simulator events, NOT crash-suppressed like Node timers.
    # An uncancelled lease timer would fire release_cs() against a site
    # that no longer holds (or even knows about) the shard CS.
    sim, service = _single_shard_service(lease_window=5.0)
    request = service.acquire(client=0, key="k", hold=0.2)
    sim.run(until=3.0)

    front = service.front_ends[0][request.site]
    assert request.complete
    assert front.state is _FrontEndState.LEASING
    assert front._lease_timer is not None

    view = service.views[0]
    view.crash(request.site)
    assert front.state is _FrontEndState.CRASHED
    assert front._lease_timer is None
    # Let the (now cancelled) lease expiry instant pass: nothing fires,
    # in particular no release_cs() on the crashed site.
    expiries_before = service.stats.lease_expiries
    sim.run(until=30.0)
    assert service.stats.lease_expiries == expiries_before


def test_hold_timer_cancelled_and_lease_orphaned_on_crash():
    sim, service = _single_shard_service(lease_window=0.0)
    request = service.acquire(client=0, key="k", hold=50.0)
    sim.run(until=3.0)
    assert request.granted and not request.complete

    view = service.views[0]
    view.crash(request.site)
    assert request.orphaned
    assert request.orphan_time == pytest.approx(sim.now)
    # The hold expired orphaned, so the key's fence was bumped and the
    # hold vacated online.
    assert service.checker.fence_of("k") == 1
    assert "k" not in service.checker.holding
    # The hold timer was cancelled: no phantom release at t=50+.
    sim.run(until=120.0)
    assert not request.complete
    # Post-hoc the orphaned hold is excused at its orphan instant.
    check_key_mutual_exclusion(service.requests)


def test_stranded_acquires_fail_over_to_surviving_site():
    sim, service = _single_shard_service(lease_window=0.0)
    first = service.acquire(client=0, key="a", hold=30.0)
    sim.run(until=3.0)
    assert first.granted
    # Queue a second key behind the long hold on the same front end,
    # then kill the site: the stranded acquire must be rerouted to and
    # complete on a survivor.
    crashed = first.site
    view = service.views[0]
    key = next(
        f"k{i}" for i in range(1000)
        if service.router.home_site(f"k{i}") == crashed
    )
    second = service.acquire(client=1, key=key, hold=0.1)
    assert second.site == crashed
    view.crash(crashed)
    # Oracle detection, as the runner's churn plan would deliver it:
    # survivors learn of the failure so the shard CS recovers.
    for site in view.live_sites():
        view.nodes[site].notify_failure(crashed)
    assert first.orphaned
    sim.run(until=200.0)
    assert second.complete
    assert second.site != crashed
    assert service.stats.failovers >= 1
    assert service.stats.crashes == 1


# -- fencing epochs -------------------------------------------------------------


def _granted(key: str, fence: int, t: float = 1.0) -> LockRequest:
    request = LockRequest(0, key, 0, 0, 0.1, 0.0)
    request.fence = fence
    request.grant_time = t
    return request


def test_stale_fence_grant_is_refused():
    checker = KeyConformanceChecker()
    assert checker.fence_of("k") == 0
    holder = _granted("k", fence=0)
    checker.on_grant(holder)
    checker.on_holder_crashed(holder)
    assert checker.fence_of("k") == 1
    # A front end replaying pre-crash state serves the revoked lease:
    # its token is one epoch behind.
    with pytest.raises(MutualExclusionViolation, match="stale fencing"):
        checker.on_grant(_granted("k", fence=0, t=2.0))
    # The same grant issued under the bumped epoch is fine.
    checker.on_grant(_granted("k", fence=1, t=2.0))


def test_holder_crash_bumps_fence_even_after_release():
    # The front end may crash after a hold completed; the revocation
    # still bumps the epoch (the crash invalidates any state the front
    # end might replay) but must not disturb another live holder.
    checker = KeyConformanceChecker()
    old = _granted("k", fence=0)
    checker.on_grant(old)
    old.release_time = 1.5
    checker.on_release(old)
    fresh = _granted("k", fence=0, t=2.0)
    checker.on_grant(fresh)
    checker.on_holder_crashed(old)
    assert checker.holding["k"] is fresh
    assert checker.fence_of("k") == 1


# -- post-hoc checker: explicit orphan / in-flight paths ------------------------


def _request(key: str, grant: float, release=None, orphan=None) -> LockRequest:
    request = LockRequest(0, key, 0, 0, 0.1, 0.0)
    request.grant_time = grant
    request.release_time = release
    request.orphan_time = orphan
    return request


def test_post_hoc_excuses_crash_orphaned_holds():
    rows = [
        _request("k", grant=1.0, orphan=2.0),
        _request("k", grant=2.5, release=3.0),
    ]
    check_key_mutual_exclusion(rows)


def test_post_hoc_catches_grant_inside_orphaned_hold():
    rows = [
        _request("k", grant=1.0, orphan=4.0),
        _request("k", grant=2.5, release=3.0),
    ]
    with pytest.raises(MutualExclusionViolation):
        check_key_mutual_exclusion(rows)


def test_post_hoc_unreleased_hold_conflicts_with_everything_later():
    rows = [
        _request("k", grant=1.0),  # in flight at end of run: ends at +inf
        _request("k", grant=100.0, release=100.1),
    ]
    with pytest.raises(MutualExclusionViolation):
        check_key_mutual_exclusion(rows)


def test_post_hoc_skips_never_granted_requests():
    aborted = LockRequest(0, "k", 0, 0, 0.1, 0.0)
    aborted.abort_time = 5.0
    queued = LockRequest(1, "k", 0, 0, 0.1, 0.0)
    assert check_key_mutual_exclusion(
        [aborted, queued, _request("k", 1.0, release=2.0)]
    ) == 0


# -- retry policy ---------------------------------------------------------------


def test_retry_policy_validation():
    with pytest.raises(ConfigurationError):
        RetryPolicy(base=0.0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ConfigurationError):
        RetryPolicy(cap=0.1, base=0.5)
    with pytest.raises(ConfigurationError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(deadline=-1.0)


def test_backoff_grows_then_saturates_at_cap():
    policy = RetryPolicy(base=0.5, multiplier=2.0, cap=4.0, jitter=0.0)
    rng = SeedSequence(0).derive("t")
    delays = [policy.backoff(attempt, rng) for attempt in range(8)]
    assert delays[:4] == [0.5, 1.0, 2.0, 4.0]
    assert all(d == 4.0 for d in delays[3:])


def test_derive_shard_crashes_validation():
    rng = SeedSequence(0).derive("t")
    with pytest.raises(ConfigurationError):
        derive_shard_crashes(rng, 3, 3, 60.0, 10.0, 2.0)  # nobody survives
    with pytest.raises(ConfigurationError):
        derive_shard_crashes(rng, 3, -1, 60.0, 10.0, 2.0)
    cycles = derive_shard_crashes(rng, 5, 2, 60.0, 10.0, 2.0)
    assert len(cycles) == 2
    assert len({c.site for c in cycles}) == 2
    for cycle in cycles:
        assert 0.0 < cycle.crash_at < 60.0
        assert cycle.recover_at == cycle.crash_at + 10.0
    permanent = derive_shard_crashes(rng, 5, 1, 60.0, 0.0, 2.0)
    assert permanent[0].recover_at is None


# -- idempotence ----------------------------------------------------------------


def test_duplicate_submission_is_dropped():
    sim, service = _single_shard_service(lease_window=0.0)
    request = service.acquire(client=0, key="k", hold=0.1)
    before = service.stats.duplicate_drops
    # A duplicated submission of an in-flight request bounces off the
    # pending filter and changes nothing.
    assert not service.submit(request)
    assert service.stats.duplicate_drops == before + 1
    sim.run(until=50.0)
    assert request.complete
    # Re-submitting a finished request is also a no-op, not a re-grant.
    assert not service.submit(request)
    assert service.stats.grants == 1


def test_acquire_deadline_aborts_unservable_requests():
    # All sites crashed: acquires can never be placed, and the deadline
    # turns endless retries into a bounded abort.
    sim, service = _single_shard_service(lease_window=0.0)
    policy = RetryPolicy(base=0.5, cap=2.0, jitter=0.0, deadline=5.0)
    service.retry = policy
    view = service.views[0]
    for site in range(5):
        view.crash(site)
    request = service.acquire(client=0, key="k", hold=0.1)
    sim.run(until=100.0)
    assert request.aborted
    assert not request.granted
    assert service.stats.aborted == 1
