"""Tests for crash-recovery (rejoin) support and the churn experiment."""

from __future__ import annotations

import pytest

from repro.core.faults import FaultTolerantSite
from repro.errors import ConfigurationError
from repro.experiments.churn import run_churn
from repro.ft.recovery import ChurnPlan
from repro.metrics.collector import MetricsCollector
from repro.quorums.registry import make_quorum_system
from repro.sim.network import ConstantDelay, ExponentialDelay
from repro.sim.simulator import Simulator
from repro.verify.invariants import check_mutual_exclusion


def build(quorum="tree", n=7, seed=0, delay=None, rps=5):
    qs = make_quorum_system(quorum, n)
    sim = Simulator(seed=seed, delay_model=delay or ConstantDelay(1.0))
    col = MetricsCollector()
    sites = [FaultTolerantSite(i, qs, cs_duration=0.2, listener=col) for i in range(n)]
    for s in sites:
        sim.add_node(s)
        for _ in range(rps):
            sim.schedule(0.0, s.submit_request)
    return sim, sites, col


def test_churn_plan_validation():
    with pytest.raises(ConfigurationError):
        ChurnPlan().churn(0, crash_at=5.0, recover_at=5.0)
    with pytest.raises(ConfigurationError):
        ChurnPlan().churn(0, crash_at=1.0, recover_at=2.0, detection_delay=-1)
    sim, sites, _ = build()
    with pytest.raises(ConfigurationError):
        ChurnPlan().churn(99, 1.0, 2.0).install(sim, sites)


def test_recovered_site_serves_again():
    sim, sites, col = build()
    ChurnPlan().churn(0, crash_at=4.0, recover_at=15.0, detection_delay=1.0).install(
        sim, sites
    )
    sim.start()
    sim.run(until=500_000)
    check_mutual_exclusion(col.records)
    assert sim.pending_events() == 0
    # The recovered site finishes its backlog too (nothing stuck anywhere).
    assert all(not s.has_work for s in sites)
    assert sites[0].completed > 0
    assert not sites[0].rejoining


def test_reset_clears_protocol_state():
    sim, sites, col = build()
    sim.start()
    sim.run(until=3.0)  # mid-flight
    site = sites[2]
    site.reset_after_recovery(known_failed={5})
    assert site.arbiter.is_free
    assert len(site.arbiter.req_queue) == 0
    assert site.req.priority is None
    assert site.known_failed == {5}
    assert site.rejoining
    # Requests stay deferred until readmission.
    before = site.completed
    site.submit_request()
    assert site.state.value == "idle"
    site.complete_rejoin()
    sim.run(until=500_000)
    assert site.completed > before


def test_notify_recovery_forces_cleanup_first():
    """A recovery notice racing ahead of the failure notice must still
    purge the recovered site's pre-crash residue."""
    sim, sites, _ = build()
    sim.start()
    arbiter = sites[3]
    from repro.common import Priority
    from repro.core.messages import Request

    arbiter._handle_request(Request(Priority(1, 0)))  # site 0 locks 3
    assert arbiter.arbiter.lock == Priority(1, 0)
    # No failure notice was ever delivered; recovery arrives first.
    arbiter.notify_recovery(0)
    assert 0 not in arbiter.known_failed
    assert arbiter.arbiter.is_free  # the stale lock was cleaned


def test_abandoned_request_closes_metrics_record():
    sim, sites, col = build()
    sim.start()
    sim.run(until=1.0)
    requesting = [s for s in sites if s.state.value == "requesting"]
    site = requesting[0]
    site.reset_after_recovery()
    # The open record is closed; a fresh request may start later without
    # tripping the collector's double-request guard.
    site.complete_rejoin()
    sim.run(until=500_000)
    check_mutual_exclusion(col.records)


def test_churn_experiment_report():
    report = run_churn(n_sites=7, constructions=("tree",), requests_per_site=5)
    row = report.rows[0]
    assert row[4] == 0  # no stuck live sites
    assert 0 < row[3] <= 1.2
