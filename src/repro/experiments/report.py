"""Shared result container for the experiment harness.

Every experiment returns an :class:`ExperimentReport`: a titled table plus
free-form notes recording how the measurement relates to the paper's
claim. Benchmarks print reports; EXPERIMENTS.md archives them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.metrics.tables import render_csv, render_table


@dataclass
class ExperimentReport:
    """One table/figure reproduction result."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one table row."""
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        """Append a free-form observation."""
        self.notes.append(note)

    def render(self) -> str:
        """Full text report: table plus notes."""
        out = render_table(
            self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}"
        )
        if self.notes:
            out += "\n" + "\n".join(f"  * {n}" for n in self.notes) + "\n"
        return out

    def to_csv(self) -> str:
        """Rows as CSV (headers included)."""
        return render_csv(self.headers, self.rows)

    def to_dict(self) -> dict:
        """JSON-ready representation (for machine pipelines)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize the report as JSON."""
        import json

        return json.dumps(self.to_dict(), indent=indent, default=str)
