"""Experiment E1 — reproduce the paper's Table 1 (measured).

For every algorithm in the comparison, run the simulator under light and
heavy load and report messages per CS execution and the contended
synchronization delay, next to the paper's analytical values. The paper's
claims to check:

* proposed: ``3(K-1)`` light, ``5(K-1)``–``6(K-1)`` heavy, delay ``T``;
* Maekawa: same message family but delay ``2T``;
* Lamport / Ricart–Agrawala / dynamic: delay ``T`` at ``O(N)`` messages;
* token algorithms: cheap messages, delay ``T`` (broadcast) or
  ``O(log N) T`` (tree).
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.table1 import analytic_table1
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import RunConfig, run_many
from repro.sim.network import ConstantDelay
from repro.workload.driver import SaturationWorkload
from repro.workload.scenarios import light_load

#: (algorithm, quorum construction or None)
TABLE1_ENTRIES = [
    ("lamport", None),
    ("ricart-agrawala", None),
    ("roucairol-carvalho", None),
    ("maekawa", "grid"),
    ("suzuki-kasami", None),
    ("singhal-heuristic", None),
    ("raymond", None),
    ("centralized", None),
    ("cao-singhal", "grid"),
    ("cao-singhal", "tree"),
]


def run_table1(
    n_sites: int = 25,
    seed: int = 1,
    requests_per_site: int = 15,
    workers: Optional[int] = None,
    cache=None,
) -> ExperimentReport:
    """Measured Table 1 for ``n_sites`` sites.

    The 2×|entries| run grid goes through
    :func:`~repro.experiments.runner.run_many`, so rows can be produced
    by parallel workers and reused from the trial cache; the table is
    identical either way (the engine merges in grid order).
    """
    report = ExperimentReport(
        experiment_id="E1",
        title=f"Table 1 measured, N={n_sites} "
        "(heavy load; light-load messages in parentheses column)",
        headers=[
            "algorithm",
            "quorum",
            "K",
            "msgs/CS light",
            "msgs/CS heavy",
            "sync delay (T)",
            "paper delay",
        ],
    )
    analytic = {c.name: c for c in analytic_table1(n_sites)}

    grid: List[RunConfig] = []
    for algorithm, quorum in TABLE1_ENTRIES:
        grid.append(
            RunConfig(
                algorithm=algorithm,
                n_sites=n_sites,
                quorum=quorum,
                seed=seed,
                delay_model=ConstantDelay(1.0),
                # E = T: long enough for the reply pipeline to warm up, so
                # measured delays sit exactly at the paper's T / 2T values.
                cs_duration=1.0,
                workload=SaturationWorkload(requests_per_site),
            )
        )
        grid.append(
            RunConfig(
                algorithm=algorithm,
                n_sites=n_sites,
                quorum=quorum,
                seed=seed,
                delay_model=ConstantDelay(1.0),
                cs_duration=0.05,
                workload=light_load(horizon=3000.0, rate=0.001),
            )
        )
    summaries = run_many(grid, workers=workers, cache=cache)

    for row, (algorithm, quorum) in enumerate(TABLE1_ENTRIES):
        heavy, light = summaries[2 * row], summaries[2 * row + 1]
        key = "cao-singhal (tree)" if (algorithm, quorum) == ("cao-singhal", "tree") else algorithm
        paper = analytic.get(key)
        report.add_row(
            algorithm,
            quorum or "-",
            heavy.mean_quorum_size if heavy.mean_quorum_size is not None else float("nan"),
            light.messages_per_cs,
            heavy.messages_per_cs,
            heavy.sync_delay_in_t,
            f"{paper.sync_delay_t:.0f}T" if paper else "-",
        )
    report.add_note(
        "Sync delay is measured over contended handoffs only; the paper's "
        "light-load delay is undefined (depends on arrivals)."
    )
    report.add_note(
        "The proposed algorithm should show ~1T against Maekawa's ~2T at "
        "equal quorums — the paper's headline claim."
    )
    return report
