"""Experiment E14 — lock-service scale sweep (lock count x client count).

The sharded service's promise is that protocol cost per acquire stays
flat as the *name space* grows: 10^6 named locks cost no more per
acquire than 10^3, because keys hash onto a fixed pool of K mutex
instances and only contention — driven by the client population and
arrival rate, not the key count — generates protocol work. This sweep
pins that: messages per acquire varies with clients (more contention →
more batching/coalescing, fewer rounds per acquire) and is essentially
independent of the key count.

Trials fan out through :class:`repro.parallel.TrialPool`, so the grid
parallelizes across cores while the report stays byte-identical to a
serial run.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.report import ExperimentReport
from repro.locks.runner import LockRunConfig, run_lock_configs

DEFAULT_KEY_COUNTS = (100, 1_000, 10_000)
DEFAULT_CLIENT_COUNTS = (8, 32, 128)


def run_lock_sweep(
    key_counts: Sequence[int] = DEFAULT_KEY_COUNTS,
    client_counts: Sequence[int] = DEFAULT_CLIENT_COUNTS,
    algorithm: str = "cao-singhal",
    shards: int = 4,
    n_sites: int = 9,
    n_requests: int = 400,
    rate_per_client: float = 0.125,
    seed: int = 23,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Lock-count x client-count grid over the sharded service.

    Open-loop population: each client submits at ``rate_per_client``, so
    the total acquire rate — and with it the contention — scales with
    the client count while the key count only widens the name space.
    """
    report = ExperimentReport(
        experiment_id="E14",
        title=f"Lock service scale sweep, {algorithm}, "
        f"{shards} shards x {n_sites} sites, {n_requests} acquires",
        headers=[
            "locks",
            "clients",
            "msgs/acquire",
            "quorum rounds",
            "lease hit %",
            "mean wait",
            "p95 wait",
            "shard hotspot",
        ],
    )
    grid = [
        LockRunConfig(
            algorithm=algorithm,
            shards=shards,
            n_sites=n_sites,
            n_keys=n_keys,
            n_clients=n_clients,
            n_requests=n_requests,
            arrival_rate=rate_per_client * n_clients,
            key_skew=1.1,
            seed=seed,
        )
        for n_keys in key_counts
        for n_clients in client_counts
    ]
    for summary in run_lock_configs(grid, workers=workers):
        report.add_row(
            summary.n_keys,
            summary.n_clients,
            round(summary.messages_per_acquire, 2),
            summary.quorum_rounds,
            round(100 * summary.lease_hit_rate, 1),
            round(summary.mean_wait, 3),
            round(summary.p95_wait, 3),
            round(summary.hotspot_factor, 2),
        )
    report.add_note(
        "Protocol cost per acquire tracks the client population (each "
        "client adds open-loop load, so more clients means more "
        "batching/coalescing per quorum round), while the key count only "
        "widens the name space: rows with equal clients stay close as "
        "locks grow 100x, because keys select a shard without adding "
        "protocol state."
    )
    return report
