"""Datagram wire format for the UDP backend.

One datagram carries one frame: either a protocol message (raw mode), a
reliable-channel :class:`~repro.sim.transport.Segment` wrapping a
protocol message, or a pure :class:`~repro.sim.transport.AckSegment`.
Frames are JSON objects (UTF-8), reusing the tagged detail encoding of
the ``repro-trace/1`` schema (:func:`repro.obs.export.encode_value`) for
the protocol payload — so the wire, the trace files, and the
counterexample corpus all speak one message codec, and every message
class the trace layer can round-trip is transmissible as-is.

Layout (short keys; a typical segment datagram is ~150 bytes):

* ``{"v": 1, "s": src, "r": dst, "tn": type_name, "d": <detail>}`` —
  a bare protocol message;
* ``... , "seg": [seq, epoch, ack, ack_epoch]`` — the same, wrapped as a
  reliable-channel segment;
* ``{"v": 1, "s": src, "r": dst, "ack": [ack, epoch]}`` — a pure ack.

The decoder is strict: an unknown version or shape raises
:class:`~repro.errors.ConfigurationError`, which the receiving substrate
logs and drops (a malformed datagram must not kill a site).
"""

from __future__ import annotations

import json
from typing import Any, Tuple

from repro.errors import ConfigurationError
from repro.obs.export import decode_value, encode_value
from repro.sim.transport import AckSegment, Segment
from repro.substrate import SiteId

#: Wire protocol version; bumped on any incompatible layout change.
WIRE_VERSION = 1

#: Generous ceiling for one datagram (localhost loopback MTU is 64 KiB).
MAX_DATAGRAM = 60_000


def encode_frame(src: SiteId, dst: SiteId, frame: Any, type_name: str) -> bytes:
    """Serialize one outbound frame to datagram bytes."""
    row: dict = {"v": WIRE_VERSION, "s": src, "r": dst}
    if isinstance(frame, AckSegment):
        row["ack"] = [frame.ack, frame.epoch]
    elif isinstance(frame, Segment):
        row["tn"] = frame.type_name
        row["d"] = encode_value(frame.payload)
        row["seg"] = [frame.seq, frame.epoch, frame.ack, frame.ack_epoch]
    else:
        row["tn"] = type_name
        row["d"] = encode_value(frame)
    data = json.dumps(row, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_DATAGRAM:
        raise ConfigurationError(
            f"frame {type_name!r} serializes to {len(data)} bytes, over the "
            f"{MAX_DATAGRAM}-byte datagram ceiling"
        )
    return data


def decode_frame(data: bytes) -> Tuple[SiteId, SiteId, Any, str]:
    """Deserialize datagram bytes to ``(src, dst, frame, type_name)``.

    ``frame`` is a protocol message, a :class:`Segment`, or an
    :class:`AckSegment` — exactly what
    :meth:`~repro.sim.transport.ReliableTransport.on_network_deliver`
    (or a raw delivery path) expects.
    """
    try:
        row = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"undecodable datagram: {exc}") from exc
    if not isinstance(row, dict) or row.get("v") != WIRE_VERSION:
        raise ConfigurationError(
            f"unsupported wire version {row.get('v') if isinstance(row, dict) else row!r}"
        )
    try:
        src = row["s"]
        dst = row["r"]
        if "ack" in row:
            ack, epoch = row["ack"]
            return src, dst, AckSegment(ack, epoch), AckSegment.type_name
        payload = decode_value(row["d"]) if "d" in row else None
        type_name = row["tn"]
        if "seg" in row:
            seq, epoch, ack, ack_epoch = row["seg"]
            return (
                src,
                dst,
                Segment(
                    seq=seq,
                    epoch=epoch,
                    ack=ack,
                    ack_epoch=ack_epoch,
                    payload=payload,
                    type_name=type_name,
                ),
                type_name,
            )
        return src, dst, payload, type_name
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed frame {row!r}: {exc}") from exc
