"""Benchmark-regression comparator: diff fresh ``BENCH_*.json`` against
committed baselines.

CI regenerates the kernel and chaos benchmarks on every push; this module
is the gate that decides whether the new numbers are still the old
numbers. Each benchmark file has an extractor that flattens its payload
into named scalar metrics, and each metric a :class:`MetricSpec` saying
which direction is bad and how much drift the noise floor allows:

* ``sim_kernel`` — ``events_per_sec`` (higher is better; the PR-2
  refactor's headline), ``events_processed`` (exact: a changed event
  count means the kernel's determinism contract broke, not noise),
  ``message_complexity_c`` (lower is better **and** bounded to the
  paper's Section 5 claim ``3 <= c <= 6`` — an absolute check, so a
  protocol change that silently blows the message complexity fails even
  against a freshly regenerated baseline).
* ``chaos_resilience`` — per ``(loss, algorithm)`` row: response time,
  messages/CS and retransmits/CS (lower), throughput (higher).
* ``parallel_engine`` — ``sync_delay_mean_t`` only (the timing fields
  measure the host, not the code).
* ``lock_service`` — the sharded named-lock acceptance run:
  ``completed`` is exact and ``violations`` bounded to zero (per-key
  mutual exclusion is a theorem, not a trend), messages/acquire lower
  is better, and ``lease_reduction_pct`` must stay positive — the
  hot-key lease cache beating its lease-off control is part of the
  layer's contract, checked absolutely so it holds even against a
  freshly regenerated baseline.

Timing metrics default to a generous threshold (CI containers are noisy);
exact and bounded metrics ignore the threshold entirely.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common import slotted_dataclass

#: Default allowed drift for thresholded metrics, percent.
DEFAULT_THRESHOLD_PCT = 25.0


@slotted_dataclass(frozen=True)
class MetricSpec:
    """How one metric is judged.

    ``direction`` is ``"higher"`` (bigger is better), ``"lower"``
    (smaller is better), or ``"exact"`` (any change fails).
    ``threshold_pct`` overrides the run-wide threshold; ``bounds`` adds
    an absolute ``lo <= value <= hi`` check on the *current* value.
    """

    direction: str = "lower"
    threshold_pct: Optional[float] = None
    bounds: Optional[Tuple[float, float]] = None


@dataclass
class MetricResult:
    """Outcome of judging one metric of one benchmark."""

    benchmark: str
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    #: ok | improved | regression | bound-violation | exact-mismatch |
    #: missing | new | no-spec
    status: str = "ok"
    delta_pct: Optional[float] = None
    allowed: str = ""
    note: str = ""

    @property
    def failed(self) -> bool:
        return self.status in ("regression", "bound-violation", "exact-mismatch")


@dataclass
class RegressionReport:
    """All metric judgements for one baseline/current comparison."""

    results: List[MetricResult] = field(default_factory=list)
    threshold_pct: float = DEFAULT_THRESHOLD_PCT

    @property
    def failures(self) -> List[MetricResult]:
        return [r for r in self.results if r.failed]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_markdown(self) -> str:
        """The report CI writes to ``$GITHUB_STEP_SUMMARY``."""
        lines = ["# Benchmark regression report", ""]
        failures = self.failures
        if failures:
            names = ", ".join(f"`{r.benchmark}:{r.metric}`" for r in failures)
            lines.append(
                f"**FAIL** — {len(failures)} metric(s) regressed: {names}"
            )
        else:
            judged = sum(1 for r in self.results if r.status != "no-spec")
            lines.append(
                f"**PASS** — {judged} metric(s) within thresholds "
                f"(±{self.threshold_pct:g}% where thresholded)"
            )
        lines += [
            "",
            "| benchmark | metric | baseline | current | Δ | allowed | status |",
            "|---|---|---:|---:|---:|---|---|",
        ]
        for r in self.results:
            delta = "" if r.delta_pct is None else f"{r.delta_pct:+.1f}%"
            status = f"**{r.status}**" if r.failed else r.status
            lines.append(
                f"| {r.benchmark} | {r.metric} | {_fmt(r.baseline)} "
                f"| {_fmt(r.current)} | {delta} | {r.allowed} | {status} |"
            )
        notes = [r for r in self.results if r.note]
        if notes:
            lines.append("")
            for r in notes:
                lines.append(f"- `{r.benchmark}:{r.metric}` — {r.note}")
        return "\n".join(lines)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "—"
    if value == int(value) and abs(value) >= 1:
        return f"{int(value):,}"
    return f"{value:g}"


# -- per-benchmark extractors ---------------------------------------------
# Each maps a parsed payload to {metric_name: value} and is paired with
# the spec table for its metrics.

def _extract_sim_kernel(payload: Dict[str, Any]) -> Dict[str, float]:
    out = {
        "events_per_sec": float(payload["events_per_sec"]),
        "events_processed": float(payload["events_processed"]),
    }
    if "message_complexity_c" in payload:
        out["message_complexity_c"] = float(payload["message_complexity_c"])
    return out


def _extract_chaos(payload: Dict[str, Any]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for row in payload["rows"]:
        loss, algorithm, resp, msgs, rtx, thrpt = row
        key = f"loss={loss:g}/{algorithm}"
        out[f"{key}/resp_t"] = float(resp)
        out[f"{key}/msgs_per_cs"] = float(msgs)
        out[f"{key}/rtx_per_cs"] = float(rtx)
        out[f"{key}/throughput"] = float(thrpt)
    return out


def _extract_parallel(payload: Dict[str, Any]) -> Dict[str, float]:
    return {"sync_delay_mean_t": float(payload["sync_delay_mean_t"])}


def _extract_lock_service(payload: Dict[str, Any]) -> Dict[str, float]:
    return {
        "completed": float(payload["completed"]),
        "violations": float(payload["violations"]),
        "messages_per_acquire_lease_on": float(
            payload["messages_per_acquire_lease_on"]
        ),
        "messages_per_acquire_lease_off": float(
            payload["messages_per_acquire_lease_off"]
        ),
        "lease_reduction_pct": float(payload["lease_reduction_pct"]),
        "shard_hotspot": float(payload["shard_hotspot"]),
    }


def _extract_lock_chaos(payload: Dict[str, Any]) -> Dict[str, float]:
    return {
        "completed": float(payload["completed"]),
        "violations": float(payload["violations"]),
        "crashes": float(payload["crashes"]),
        "failovers": float(payload["failovers"]),
        "orphaned": float(payload["orphaned"]),
        "aborted": float(payload["aborted"]),
        "availability": float(payload["availability"]),
        "messages_per_acquire": float(payload["messages_per_acquire"]),
        "p99_wait": float(payload["p99_wait"]),
    }


def _chaos_spec(metric: str) -> MetricSpec:
    if metric.endswith("/throughput"):
        return MetricSpec(direction="higher")
    return MetricSpec(direction="lower")


Extractor = Callable[[Dict[str, Any]], Dict[str, float]]

#: benchmark name (the ``BENCH_<name>.json`` stem) -> (extractor, specs).
#: ``specs`` may be a dict or a callable for row-keyed benchmarks.
BENCHMARKS: Dict[str, Tuple[Extractor, Any]] = {
    "sim_kernel": (
        _extract_sim_kernel,
        {
            "events_per_sec": MetricSpec(direction="higher"),
            "events_processed": MetricSpec(direction="exact"),
            "message_complexity_c": MetricSpec(
                direction="lower", bounds=(3.0, 6.0)
            ),
        },
    ),
    "chaos_resilience": (_extract_chaos, _chaos_spec),
    "parallel_engine": (
        _extract_parallel,
        {"sync_delay_mean_t": MetricSpec(direction="lower")},
    ),
    "lock_service": (
        _extract_lock_service,
        {
            # Deterministic for the pinned seed: any change is a changed
            # schedule, not noise.
            "completed": MetricSpec(direction="exact"),
            "violations": MetricSpec(direction="exact", bounds=(0.0, 0.0)),
            "messages_per_acquire_lease_on": MetricSpec(direction="lower"),
            "messages_per_acquire_lease_off": MetricSpec(direction="lower"),
            # Absolute floor: the lease cache must keep beating the
            # lease-off control by a measurable margin.
            "lease_reduction_pct": MetricSpec(
                direction="higher", bounds=(5.0, 100.0)
            ),
            "shard_hotspot": MetricSpec(direction="lower"),
        },
    ),
    "lock_chaos": (
        _extract_lock_chaos,
        {
            # Crash schedules draw from shard-qualified RNG streams, so
            # every counter is deterministic for the pinned seed: exact,
            # with absolute bounds where the failure model promises one.
            "completed": MetricSpec(direction="exact"),
            "violations": MetricSpec(direction="exact", bounds=(0.0, 0.0)),
            "crashes": MetricSpec(direction="exact"),
            # Failover must actually be exercised, not vacuously green.
            "failovers": MetricSpec(
                direction="exact", bounds=(1.0, float("inf"))
            ),
            "orphaned": MetricSpec(direction="exact"),
            "aborted": MetricSpec(direction="exact"),
            # Degraded windows are real but bounded: the service stays
            # mostly up across the seeded crash cycles.
            "availability": MetricSpec(
                direction="higher", bounds=(0.25, 1.0)
            ),
            "messages_per_acquire": MetricSpec(direction="lower"),
            "p99_wait": MetricSpec(direction="lower"),
        },
    ),
}


def _spec_for(specs: Any, metric: str) -> Optional[MetricSpec]:
    if callable(specs):
        return specs(metric)
    return specs.get(metric)


def _judge(
    benchmark: str,
    metric: str,
    spec: MetricSpec,
    baseline: Optional[float],
    current: Optional[float],
    threshold_pct: float,
) -> MetricResult:
    result = MetricResult(
        benchmark=benchmark, metric=metric, baseline=baseline, current=current
    )
    if spec.bounds is not None:
        lo, hi = spec.bounds
        result.allowed = f"∈ [{lo:g}, {hi:g}]"
    elif spec.direction == "exact":
        result.allowed = "exact"
    else:
        pct = spec.threshold_pct if spec.threshold_pct is not None else threshold_pct
        worse = "-" if spec.direction == "higher" else "+"
        result.allowed = f"{worse}{pct:g}%"
    if current is None:
        # Baseline-only metric: the CI run regenerates a subset of the
        # benchmarks, so absence is reported, never failed on.
        result.status = "missing"
        return result
    if baseline is None:
        result.status = "new"
        if spec.bounds is not None:
            lo, hi = spec.bounds
            if not (lo <= current <= hi):
                result.status = "bound-violation"
                result.note = (
                    f"{current:g} outside the required [{lo:g}, {hi:g}]"
                )
        return result
    if baseline:
        result.delta_pct = (current - baseline) / abs(baseline) * 100.0
    if spec.bounds is not None:
        lo, hi = spec.bounds
        if not (lo <= current <= hi):
            result.status = "bound-violation"
            result.note = f"{current:g} outside the required [{lo:g}, {hi:g}]"
            return result
    if spec.direction == "exact":
        if current != baseline:
            result.status = "exact-mismatch"
            result.note = (
                "deterministic value changed — the event history is "
                "different, not slower"
            )
        else:
            result.status = "ok"
        return result
    pct = spec.threshold_pct if spec.threshold_pct is not None else threshold_pct
    delta = result.delta_pct if result.delta_pct is not None else 0.0
    if spec.direction == "higher":
        regressed = delta < -pct
        improved = delta > pct
    else:
        regressed = delta > pct
        improved = delta < -pct
    result.status = (
        "regression" if regressed else "improved" if improved else "ok"
    )
    return result


def load_results(directory: str) -> Dict[str, Dict[str, Any]]:
    """Parse every ``BENCH_*.json`` under ``directory``, keyed by stem."""
    out: Dict[str, Dict[str, Any]] = {}
    if not os.path.isdir(directory):
        return out
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        stem = name[len("BENCH_"):-len(".json")]
        with open(os.path.join(directory, name), "r", encoding="utf-8") as fh:
            out[stem] = json.load(fh)
    return out


def compare(
    baseline: Dict[str, Dict[str, Any]],
    current: Dict[str, Dict[str, Any]],
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
) -> RegressionReport:
    """Judge every known metric of every benchmark present on either side."""
    report = RegressionReport(threshold_pct=threshold_pct)
    for name in sorted(set(baseline) | set(current)):
        known = BENCHMARKS.get(name)
        if known is None:
            report.results.append(
                MetricResult(
                    benchmark=name,
                    metric="-",
                    baseline=None,
                    current=None,
                    status="no-spec",
                    note="no extractor registered; not judged",
                )
            )
            continue
        extractor, specs = known
        base_metrics = extractor(baseline[name]) if name in baseline else {}
        cur_metrics = extractor(current[name]) if name in current else {}
        for metric in sorted(set(base_metrics) | set(cur_metrics)):
            spec = _spec_for(specs, metric)
            if spec is None:
                continue
            report.results.append(
                _judge(
                    name,
                    metric,
                    spec,
                    base_metrics.get(metric),
                    cur_metrics.get(metric),
                    threshold_pct,
                )
            )
    return report


def check(
    baseline_dir: str,
    current_dir: str,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
) -> RegressionReport:
    """Directory-level entry point used by ``repro.cli regress``."""
    return compare(
        load_results(baseline_dir), load_results(current_dir), threshold_pct
    )
