"""Structured event tracing for debugging and for the verification layer.

A :class:`Trace` is an append-only log of :class:`TraceRecord` rows. The
simulator writes message sends/deliveries and node lifecycle transitions;
algorithms may add protocol-level annotations (CS enter/exit, yields,
transfers honored). The verification layer replays the trace to check the
paper's theorems; tests use :meth:`Trace.filter` to assert on specific
protocol behaviours without poking at private algorithm state.

Tracing every message of a long benchmark run would dominate memory, so
benchmarks run with tracing off. Disabled tracing must cost (close to)
nothing on the kernel hot path, which is handled at two levels:

* :class:`NullTrace` — the disabled implementation installed by default;
  its :meth:`~NullTrace.record` is a no-op, so *any* call site can call
  ``sim.trace.record(...)`` unconditionally and stay correct.
* The :attr:`Trace.enabled` flag — the kernel's per-message call sites
  additionally guard with ``if trace.enabled:`` so a disabled trace costs
  one attribute load instead of a four-argument method call per event.

Either a :class:`Trace` or a :class:`NullTrace` can be handed to
:class:`~repro.sim.simulator.Simulator` at construction; they are
interchangeable everywhere a trace is read.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional

from repro.common import slotted_dataclass


@slotted_dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    ``kind`` is a short machine-friendly tag (``send``, ``deliver``,
    ``cs_enter``, ``cs_exit``, ``crash``, ...); ``site`` is the acting site;
    ``detail`` carries kind-specific payload (usually the message).
    """

    time: float
    kind: str
    site: int
    detail: Any = None

    def __str__(self) -> str:  # pragma: no cover - debug convenience
        return f"[{self.time:10.4f}] {self.kind:<10} site={self.site} {self.detail}"


class Trace:
    """Append-only in-memory trace with simple query helpers."""

    __slots__ = ("enabled", "_capacity", "_records", "dropped")

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self._capacity = capacity
        self._records: List[TraceRecord] = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def record(self, time: float, kind: str, site: int, detail: Any = None) -> None:
        """Append a record (no-op when tracing is disabled or full)."""
        if not self.enabled:
            return
        if self._capacity is not None and len(self._records) >= self._capacity:
            self.dropped += 1
            return
        self._records.append(TraceRecord(time=time, kind=kind, site=site, detail=detail))

    def filter(
        self,
        kind: Optional[str] = None,
        site: Optional[int] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Return records matching all provided criteria, in time order."""
        out = []
        for rec in self._records:
            if kind is not None and rec.kind != kind:
                continue
            if site is not None and rec.site != site:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def dump(self, limit: Optional[int] = None) -> str:
        """Render the trace (or its tail) as text for failure diagnostics."""
        records = self._records if limit is None else self._records[-limit:]
        return "\n".join(str(r) for r in records)


class NullTrace(Trace):
    """Tracing disabled, as a type: recording is a hard no-op.

    Readers (``len``, ``filter``, ``dump``) behave exactly like an empty
    :class:`Trace`, so code that inspects a trace after a run needs no
    special-casing. ``enabled`` is always ``False``, which is what the
    kernel's guarded hot paths check.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def record(self, time: float, kind: str, site: int, detail: Any = None) -> None:
        """Drop the record unconditionally."""
