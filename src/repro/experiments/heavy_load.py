"""Experiment E3 — Section 5.2: heavy-load message cost.

Paper claim: at heavy load the proposed algorithm spends between
``5(K-1)`` and ``6(K-1)`` messages per CS execution (the ``6(K-1)`` only
in case 4.2, a failed-then-yield cascade). We saturate the system and
report measured messages/CS against those bounds, plus the per-type
message breakdown that shows which control messages dominate.

Note the bounds are *worst-case within the contended cases*: executions
that find an arbiter free, or that skip the inquire cascade, cost less, so
the measured mean may sit below ``5(K-1)``. The claim checked here is the
band: light-load cost ``3(K-1)`` <= measured <= worst case ``6(K-1)``.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.closed_form import (
    heavy_load_message_bounds,
    light_load_messages,
)
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import RunConfig, run_mutex
from repro.sim.network import ConstantDelay
from repro.workload.driver import SaturationWorkload

DEFAULT_QUORUMS = ("grid", "tree")


def run_heavy_load(
    n_sites: int = 25,
    quorums: Sequence[str] = DEFAULT_QUORUMS,
    seed: int = 3,
    requests_per_site: int = 25,
) -> ExperimentReport:
    """Heavy-load message cost over quorum constructions."""
    report = ExperimentReport(
        experiment_id="E3",
        title=f"Section 5.2 heavy load, N={n_sites}",
        headers=[
            "quorum",
            "K",
            "msgs/CS measured",
            "3(K-1) floor",
            "5(K-1)",
            "6(K-1) ceiling",
            "breakdown",
        ],
    )
    for quorum in quorums:
        result = run_mutex(
            RunConfig(
                algorithm="cao-singhal",
                n_sites=n_sites,
                quorum=quorum,
                seed=seed,
                delay_model=ConstantDelay(1.0),
                cs_duration=0.05,
                workload=SaturationWorkload(requests_per_site),
            )
        )
        summary = result.summary
        k = summary.mean_quorum_size or float("nan")
        low, high = heavy_load_message_bounds(k)
        done = max(1, summary.completed)
        top = sorted(
            summary.messages_by_type.items(), key=lambda kv: -kv[1]
        )[:4]
        breakdown = " ".join(f"{name}={count / done:.1f}" for name, count in top)
        report.add_row(
            quorum,
            k,
            summary.messages_per_cs,
            light_load_messages(k),
            low,
            high,
            breakdown,
        )
    report.add_note(
        "Piggybacked bundles (e.g. inquire+transfer) count as one message, "
        "matching the paper's costing rule."
    )
    return report
