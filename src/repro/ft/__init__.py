"""Fault tolerance: failure detection and the Section 6 recovery protocol."""

from repro.ft.detector import Heartbeat, HeartbeatMonitor
from repro.ft.recovery import ChurnPlan, CrashPlan, MonitoredSite

__all__ = ["ChurnPlan", "CrashPlan", "Heartbeat", "HeartbeatMonitor", "MonitoredSite"]
