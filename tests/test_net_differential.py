"""Differential sim-vs-real harness (the tentpole's acceptance gate).

The same protocol configuration runs on both substrates:

* a seeded discrete-event simulation, traced and replayed through the
  :class:`~repro.obs.monitor.ProtocolMonitor`;
* a real localhost UDP run (one OS process per site), whose merged
  per-site shards replay through the *same* monitor, zero changes.

Both must reach identical safety verdicts (clean), and the real
backend's measured message complexity must satisfy the paper's
``3 <= c <= 6`` bound per quorum member (Section 5) just like the
simulated one. A chaos variant injects datagram loss under the reliable
layer and must stay clean too.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import RunConfig, run_mutex
from repro.net import NetRunConfig, run_net
from repro.obs.monitor import ProtocolMonitor
from repro.sim.network import ConstantDelay
from repro.workload.driver import SaturationWorkload

N_SITES = 5
REQUESTS = 4
SEED = 7


def sim_side():
    result = run_mutex(
        RunConfig(
            algorithm="cao-singhal",
            n_sites=N_SITES,
            seed=SEED,
            delay_model=ConstantDelay(1.0),
            cs_duration=0.05,
            workload=SaturationWorkload(REQUESTS),
            trace=True,
        )
    )
    monitor = ProtocolMonitor(strict=False)
    violations = monitor.replay(result.sim.trace)
    summary = result.summary
    c = summary.messages_per_cs / summary.mean_quorum_size
    return [str(v) for v in violations], c, summary


@pytest.fixture(scope="module")
def net_report(tmp_path_factory):
    """One process-per-site UDP run shared by the differential asserts."""
    config = NetRunConfig(
        algorithm="cao-singhal",
        n_sites=N_SITES,
        requests_per_site=REQUESTS,
        seed=SEED,
        deadline=60.0,
    )
    return run_net(
        config, run_dir=tmp_path_factory.mktemp("net-run"), spawn="process"
    )


def test_differential_same_safety_verdicts(net_report):
    sim_violations, _, _ = sim_side()
    assert sim_violations == [], "seeded sim run must be clean"
    assert net_report.violations == [], "real UDP run must be clean"
    # Identical verdicts: both executions satisfy every monitored
    # invariant (mutual exclusion, single-grant arbiters,
    # transfer-honoured, quorum consistency).
    assert net_report.completed == net_report.submitted == N_SITES * REQUESTS


def test_differential_message_complexity_comparable(net_report):
    _, sim_c, _ = sim_side()
    net_c = net_report.message_complexity_c
    assert net_c is not None
    # The paper's Section 5 bound holds on both substrates ...
    assert 3.0 <= sim_c <= 6.0, f"sim c={sim_c}"
    assert 3.0 <= net_c <= 6.0, f"net c={net_c}"
    # ... and the two measurements are comparable, not wildly apart
    # (timing differs, so counts need not match exactly).
    assert abs(net_c - sim_c) <= 1.5, f"sim c={sim_c} vs net c={net_c}"


def test_chaos_udp_run_stays_clean():
    # Datagram loss + duplication injected below the reliable layer:
    # the transport must rebuild exactly-once FIFO, and the monitor
    # verdicts must stay clean end to end.
    config = NetRunConfig(
        algorithm="cao-singhal",
        n_sites=3,
        requests_per_site=3,
        seed=11,
        loss=0.15,
        duplicate=0.05,
        chaos_seed=3,
        deadline=60.0,
    )
    report = run_net(config, spawn="inproc")
    assert report.completed == report.submitted == 9
    assert report.violations == []
    dropped = sum(s["chaos_dropped"] for s in report.site_summaries)
    healed = sum(
        s.get("transport", {}).get("retransmitted", 0)
        for s in report.site_summaries
    )
    assert dropped > 0, "chaos must actually have dropped datagrams"
    assert healed > 0, "losses must have been healed by retransmission"
