"""Wheel coterie: a hub plus spokes.

Quorums are ``{hub, spoke}`` for every spoke, plus the set of all spokes
(which keeps the system available when the hub fails). Quorum size is 2 in
the common case — the cheapest non-trivial coterie — at the cost of heavy
load on the hub. A classic construction from the coterie literature,
included as a size/load extreme point for the quorum-scaling experiment.
"""

from __future__ import annotations

from typing import AbstractSet, Optional

from repro.errors import ConfigurationError
from repro.quorums.coterie import Coterie, Quorum, QuorumSystem, SiteId


class WheelQuorumSystem(QuorumSystem):
    """Hub-and-spoke quorums; needs ``n >= 2``."""

    name = "wheel"

    def __init__(self, n: int, hub: SiteId = 0) -> None:
        super().__init__(n)
        if n < 2:
            raise ConfigurationError("wheel coterie needs at least 2 sites")
        if not 0 <= hub < n:
            raise ConfigurationError(f"hub {hub} outside 0..{n - 1}")
        self.hub = hub

    @property
    def rim(self) -> Quorum:
        """All non-hub sites."""
        return frozenset(s for s in self.sites if s != self.hub)

    def quorum_for(self, site: SiteId) -> Quorum:
        if site == self.hub:
            # The hub pairs with its smallest spoke.
            return frozenset({self.hub, min(self.rim)})
        return frozenset({self.hub, site})

    def quorum_avoiding(
        self, site: SiteId, failed: AbstractSet[SiteId]
    ) -> Optional[Quorum]:
        if self.hub not in failed:
            spokes = [s for s in self.rim if s not in failed]
            preferred = site if site in spokes else (min(spokes) if spokes else None)
            if preferred is not None:
                return frozenset({self.hub, preferred})
            # Hub alive but every spoke dead: the all-spokes quorum is dead
            # too, and {hub} alone is not a quorum of this coterie.
            return None
        if self.rim & failed:
            return None
        return self.rim

    def coterie(self) -> Coterie:
        """The full wheel coterie including the hub-failure quorum."""
        quorums = [frozenset({self.hub, s}) for s in self.rim]
        if len(self.rim) > 1:
            quorums.append(self.rim)
        return Coterie(
            quorums, universe=frozenset(self.sites), require_minimality=False
        )
