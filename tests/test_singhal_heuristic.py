"""Unit tests for Singhal's heuristic token algorithm."""

from __future__ import annotations

import pytest

from repro.experiments.runner import RunConfig, run_mutex
from repro.mutex.singhal_heuristic import PeerState, SinghalHeuristicSite
from repro.sim.network import ConstantDelay, ExponentialDelay
from repro.sim.simulator import Simulator
from repro.workload.arrivals import PoissonArrivals
from repro.workload.driver import (
    OpenLoopWorkload,
    SaturationWorkload,
    StaggeredSingleShot,
)


def run(workload, n=8, seed=0, delay=None, cs=0.1):
    return run_mutex(
        RunConfig(
            algorithm="singhal-heuristic",
            n_sites=n,
            seed=seed,
            delay_model=delay or ConstantDelay(1.0),
            cs_duration=cs,
            workload=workload,
        )
    )


def test_staircase_initialization():
    sim = Simulator()
    site = SinghalHeuristicSite(3, 6)
    sim.add_node(site)
    assert [p.value for p in site.sv] == ["R", "R", "R", "N", "N", "N"]
    holder = SinghalHeuristicSite(0, 6)
    assert holder.has_token
    assert holder.sv[0] is PeerState.HOLDING


def test_token_holder_requests_for_free():
    result = run(StaggeredSingleShot({0: 1.0}))
    assert result.summary.completed == 1
    assert result.sim.network.stats.messages_sent == 0


def test_first_remote_request_costs_at_most_site_id_plus_token():
    # Site 3's initial request set is sites 0..2 (staircase), so the first
    # acquisition costs at most 3 requests + 1 token message.
    result = run(StaggeredSingleShot({3: 1.0}))
    assert result.summary.completed == 1
    assert result.sim.network.stats.messages_sent <= 4


def test_heavy_load_messages_bounded_by_n():
    summary = run(SaturationWorkload(10), n=9).summary
    assert summary.completed == 90
    assert summary.messages_per_cs <= 9.0  # paper: between 0 and N
    assert summary.sync_delay_in_t == pytest.approx(1.0, abs=0.05)


def test_cheaper_than_suzuki_kasami_at_heavy_load():
    sh = run(SaturationWorkload(10), n=9).summary
    sk = run_mutex(
        RunConfig(
            algorithm="suzuki-kasami",
            n_sites=9,
            seed=0,
            delay_model=ConstantDelay(1.0),
            cs_duration=0.1,
            workload=SaturationWorkload(10),
        )
    ).summary
    assert sh.messages_per_cs < sk.messages_per_cs


def test_light_load_liveness_with_moving_token():
    """The regime that strands the published heuristic (see module
    docstring): sparse arrivals after substantial token movement."""
    result = run(
        OpenLoopWorkload(PoissonArrivals(0.08), 120.0),
        delay=ExponentialDelay(1.0),
        seed=13,
    )
    assert result.summary.unserved == 0


def test_backstop_not_needed_on_normal_runs():
    result = run(SaturationWorkload(8), n=8, delay=ExponentialDelay(1.0))
    assert sum(s.retries for s in result.sites) == 0


def test_stale_request_numbers_ignored():
    sim = Simulator()
    site = SinghalHeuristicSite(2, 4)
    sim.add_node(site)
    sim.start()
    from repro.mutex.singhal_heuristic import SHRequest

    site.on_message(1, SHRequest(1, 5))
    assert site.sn[1] == 5
    assert site.sv[1] is PeerState.REQUESTING
    site.sv[1] = PeerState.NOT_REQUESTING
    site.on_message(1, SHRequest(1, 4))  # stale
    assert site.sv[1] is PeerState.NOT_REQUESTING
