"""The sharded multi-resource lock service.

:class:`LockService` turns the repo's single-resource mutual-exclusion
kernel into a named-lock service: string keys (thousands to millions)
hash onto ``K`` *independent* mutex instances — one per shard, each
running unmodified registry algorithms over a
:class:`~repro.locks.substrate.ShardView` of one shared simulator — and
every acquire is multiplexed onto one of the shard's ``N`` protocol
sites through a :class:`~repro.locks.frontend.ShardFrontEnd` (batching,
coalescing, lease cache).

Routing policies for picking the front-end site:

* ``"affinity"`` (default) — the key's stable home site
  (:meth:`~repro.locks.router.ShardRouter.home_site`), so repeat
  acquires of a hot key land where the authorization already lives and
  hit the lease cache;
* ``"client"`` — ``client % N``, the classic proxy placement: each
  client talks to one site regardless of key. Spreads load evenly but
  makes hot keys ping-pong the shard CS between sites.

Either way a crashed site is skipped: routing deterministically probes
the next live site of the shard, so new acquires never land on a dead
front end.

Failure handling (DESIGN.md §10). The service registers crash/recover
hooks on every shard view. When a site crashes, its front end hands
back the work split two ways: *orphaned* holds (granted, unreleased)
are fenced off — ``orphan_time`` stamps the request, and the online
checker bumps the key's fencing epoch so stale pre-crash grants are
refused — while *stranded* acquires (queued, never granted) fail over:
after a seeded exponential backoff (:class:`~repro.locks.faults.
RetryPolicy`), each is re-submitted to a surviving site of the same
shard under its original idempotent ``request_id``, so a duplicated
submission can never double-grant. Retries stop at ``max_attempts`` or
the per-request deadline, aborting the acquire. Per-shard degraded
windows (any site down) accumulate into the availability number the
summary reports.

Layering: the service owns routing, retry/failover, per-key accounting,
and online conformance (:class:`~repro.locks.conformance.
KeyConformanceChecker`); the front ends own the CS-hold discipline; the
mutex sites stay exactly the paper's protocols — with
:class:`~repro.core.faults.FaultTolerantSite` (the paper's Section 6
recovery) as the shard arbiter when crash faults are enabled.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.locks.conformance import (
    KeyConformanceChecker,
    check_key_mutual_exclusion,
)
from repro.locks.faults import RetryPolicy
from repro.locks.frontend import LockRequest, ShardFrontEnd
from repro.locks.router import ShardRouter
from repro.locks.substrate import ShardView
from repro.metrics.collector import MetricsCollector
from repro.mutex.base import RunListener
from repro.mutex.registry import get_algorithm_spec
from repro.quorums.registry import make_quorum_system
from repro.sim.simulator import Simulator
from repro.substrate import SiteId

__all__ = ["LockService", "LockStats"]

ROUTING_POLICIES = ("affinity", "client")


class LockStats:
    """Service-level counters (protocol work vs. lease/batch savings,
    plus the degraded-mode ledger under crash faults)."""

    __slots__ = (
        "acquires",
        "grants",
        "releases",
        "quorum_rounds",
        "lease_hits",
        "lease_expiries",
        "batches",
        "coalesced_batches",
        "crashes",
        "failovers",
        "retries",
        "aborted",
        "orphaned",
        "duplicate_drops",
    )

    def __init__(self) -> None:
        self.acquires = 0
        self.grants = 0
        self.releases = 0
        #: Mutex requests actually submitted to shard protocol sites —
        #: each one costs a full quorum round of messages.
        self.quorum_rounds = 0
        #: Acquires served under a retained authorization (zero messages).
        self.lease_hits = 0
        self.lease_expiries = 0
        self.batches = 0
        #: Follow-on batches served under one grant (no extra protocol).
        self.coalesced_batches = 0
        #: Site crashes observed through the shard views.
        self.crashes = 0
        #: Stranded acquires successfully re-homed to a surviving site.
        self.failovers = 0
        #: Retry submissions scheduled (with backoff) after a crash.
        self.retries = 0
        #: Acquires abandoned at max_attempts / deadline, never granted.
        self.aborted = 0
        #: Granted holds cut short by their front end's crash (fenced).
        self.orphaned = 0
        #: Duplicate submissions dropped by request-id idempotence.
        self.duplicate_drops = 0

    def to_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class _ShardListener(RunListener):
    """Per-shard mutex listener: metrics plus grant dispatch.

    Records the shard's CS lifecycle into a plain
    :class:`MetricsCollector` (so the standard single-resource
    mutual-exclusion checker can audit each shard's intervals) and
    forwards every ``on_enter`` to the granted site's front end, which
    is what hands the authorization to the batching layer.
    """

    def __init__(self, collector: MetricsCollector) -> None:
        self.collector = collector
        self.front_ends: Dict[SiteId, ShardFrontEnd] = {}

    def on_request(self, site: SiteId, time: float) -> None:
        self.collector.on_request(site, time)

    def on_enter(self, site: SiteId, time: float) -> None:
        self.collector.on_enter(site, time)
        self.front_ends[site].on_granted()

    def on_exit(self, site: SiteId, time: float) -> None:
        self.collector.on_exit(site, time)

    def on_abandon(self, site: SiteId, time: float) -> None:
        self.collector.on_abandon(site, time)


class LockService:
    """Named locks over ``shards`` independent mutex instances."""

    def __init__(
        self,
        sim: Simulator,
        algorithm: str = "cao-singhal",
        shards: int = 4,
        n_sites: int = 9,
        quorum: Optional[str] = None,
        batch_max: int = 8,
        lease_window: float = 0.0,
        routing: str = "affinity",
        fault_tolerant: bool = False,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if batch_max < 1:
            raise ConfigurationError(f"batch_max must be >= 1, got {batch_max}")
        if lease_window < 0:
            raise ConfigurationError(
                f"lease_window must be >= 0, got {lease_window}"
            )
        if routing not in ROUTING_POLICIES:
            raise ConfigurationError(
                f"unknown routing policy {routing!r}; "
                f"known: {', '.join(ROUTING_POLICIES)}"
            )
        if fault_tolerant and algorithm != "cao-singhal":
            raise ConfigurationError(
                "crash-fault tolerance uses the paper's Section 6 recovery "
                "protocol, which extends cao-singhal; got "
                f"algorithm={algorithm!r}"
            )
        spec = get_algorithm_spec(algorithm)
        if spec.needs_quorum:
            quorum_name: Optional[str] = quorum or "grid"
        elif quorum is not None:
            raise ConfigurationError(
                f"algorithm {algorithm!r} does not take a quorum"
            )
        else:
            quorum_name = None
        # One quorum system shared by every shard: the construction is a
        # pure function of n_sites, and sites only read from it.
        quorum_system = (
            make_quorum_system(quorum_name, n_sites) if quorum_name else None
        )
        if quorum_system is not None:
            quorum_system.validate()

        self.sim = sim
        self.algorithm = algorithm
        self.routing = routing
        self.fault_tolerant = fault_tolerant
        self.retry = retry or RetryPolicy()
        self.router = ShardRouter(shards, n_sites)
        self.stats = LockStats()
        self.checker = KeyConformanceChecker()
        #: Every acquire ever routed, in submission order.
        self.requests: List[LockRequest] = []
        #: Per-shard completed-acquire counts (load-balance signal).
        self.shard_loads: List[int] = [0] * shards
        #: request_ids currently enqueued at some front end — the
        #: idempotence filter duplicated submissions bounce off.
        self._pending: set = set()
        self._next_request_id = 0
        self._retry_rng = sim.rng("locks/retry")
        #: Per-shard degraded-mode ledger: which sites are down, when the
        #: current degraded window opened, and the accumulated total.
        self._down: List[set] = [set() for _ in range(shards)]
        self._degraded_since: List[Optional[float]] = [None] * shards
        self.degraded_time: List[float] = [0.0] * shards
        self.views: List[ShardView] = []
        self.collectors: List[MetricsCollector] = []
        self.front_ends: List[List[ShardFrontEnd]] = []
        for index in range(shards):
            view = ShardView(sim, index, n_sites)
            collector = MetricsCollector()
            listener = _ShardListener(collector)
            fronts: List[ShardFrontEnd] = []
            for site_id in range(n_sites):
                if fault_tolerant:
                    from repro.core.faults import FaultTolerantSite

                    assert quorum_system is not None
                    site = FaultTolerantSite(
                        site_id, quorum_system, None, listener
                    )
                else:
                    site = spec.factory(
                        site_id, n_sites, quorum_system, None, listener
                    )
                view.add_node(site)
                front = ShardFrontEnd(self, view, site, batch_max, lease_window)
                fronts.append(front)
                listener.front_ends[site_id] = front
            view.crash_hooks.append(
                lambda site, shard=index: self._on_site_crash(shard, site)
            )
            view.recover_hooks.append(
                lambda site, shard=index: self._on_site_recover(shard, site)
            )
            self.views.append(view)
            self.collectors.append(collector)
            self.front_ends.append(fronts)

    # -- client API ------------------------------------------------------------

    def acquire(self, client: int, key: str, hold: float) -> LockRequest:
        """Route one client's acquire of named lock ``key``.

        Returns the live :class:`LockRequest`; its ``grant_time`` /
        ``release_time`` fill in as the simulation serves it.
        """
        shard = self.router.shard_of(key)
        if self.routing == "affinity":
            preferred = self.router.home_site(key)
        else:
            preferred = client % self.router.n_sites
        request = LockRequest(
            client, key, shard, preferred, hold, self.sim.now,
            request_id=self._next_request_id,
        )
        self._next_request_id += 1
        self.stats.acquires += 1
        self.requests.append(request)
        site = self._pick_live_site(shard, preferred)
        if site is None:
            # Whole shard down at submit time: enter the retry path.
            self._schedule_retry(request)
            return request
        request.site = site
        self.submit(request)
        return request

    def submit(self, request: LockRequest) -> bool:
        """Idempotent submission: enqueue unless already live or done.

        The request id is the dedup token — a duplicated or retried
        submission of an acquire that is already enqueued, granted, or
        finished is dropped (counted in ``duplicate_drops``), which is
        what makes failover retries safe against double grants.
        """
        if (
            request.request_id in self._pending
            or request.granted
            or request.finished
        ):
            self.stats.duplicate_drops += 1
            return False
        self._pending.add(request.request_id)
        self.front_ends[request.shard][request.site].enqueue(request)
        return True

    # -- failover machinery -------------------------------------------------------

    def _pick_live_site(self, shard: int, preferred: int) -> Optional[int]:
        """``preferred`` if alive, else the next live site round-robin."""
        nodes = self.views[shard].nodes
        n = self.router.n_sites
        for step in range(n):
            site = (preferred + step) % n
            if not nodes[site].crashed:
                return site
        return None

    def _on_site_crash(self, shard: int, site: int) -> None:
        """A shard arbiter died: fence its holds, fail over its queue."""
        now = self.sim.now
        self.stats.crashes += 1
        down = self._down[shard]
        if not down:
            self._degraded_since[shard] = now
        down.add(site)
        stranded, orphaned = self.front_ends[shard][site].on_site_crashed()
        for request in orphaned:
            request.orphan_time = now
            self._pending.discard(request.request_id)
            self.checker.on_holder_crashed(request)
            self.stats.orphaned += 1
        for request in stranded:
            self._pending.discard(request.request_id)
            self._schedule_retry(request)

    def _on_site_recover(self, shard: int, site: int) -> None:
        now = self.sim.now
        self.front_ends[shard][site].on_site_recovered()
        down = self._down[shard]
        down.discard(site)
        since = self._degraded_since[shard]
        if not down and since is not None:
            self.degraded_time[shard] += now - since
            self._degraded_since[shard] = None

    def _schedule_retry(self, request: LockRequest) -> None:
        """Queue one backoff-delayed re-submission, or abort the acquire."""
        policy = self.retry
        now = self.sim.now
        if request.attempts >= policy.max_attempts:
            self._abort(request)
            return
        delay = policy.backoff(request.attempts, self._retry_rng)
        if policy.deadline > 0 and (
            now + delay > request.submit_time + policy.deadline
        ):
            self._abort(request)
            return
        request.attempts += 1
        self.stats.retries += 1
        self.sim.schedule_call(delay, self._resubmit, (request,), "lock-retry")

    def _abort(self, request: LockRequest) -> None:
        request.abort_time = self.sim.now
        self.stats.aborted += 1

    def _resubmit(self, request: LockRequest) -> None:
        """Backoff expired: re-home the acquire on a live site."""
        if request.finished or request.granted:
            return  # resolved while the retry was in flight
        site = self._pick_live_site(request.shard, request.site)
        if site is None:
            self._schedule_retry(request)
            return
        request.site = site
        if self.submit(request):
            self.stats.failovers += 1

    def finalize_degraded(self) -> None:
        """Close any still-open degraded windows at the current time."""
        now = self.sim.now
        for shard, since in enumerate(self._degraded_since):
            if since is not None:
                self.degraded_time[shard] += now - since
                self._degraded_since[shard] = now

    def availability(self, duration: float) -> float:
        """Mean fraction of the run each shard had all sites up."""
        if duration <= 0:
            return 1.0
        shards = len(self.degraded_time)
        degraded = sum(
            min(d, duration) / duration for d in self.degraded_time
        )
        return 1.0 - degraded / shards

    # -- front-end callbacks -----------------------------------------------------

    def on_grant(self, request: LockRequest) -> None:
        self.checker.on_grant(request)
        self._pending.discard(request.request_id)
        self.stats.grants += 1

    def on_release(self, request: LockRequest) -> None:
        self.checker.on_release(request)
        self.stats.releases += 1
        self.shard_loads[request.shard] += 1

    # -- post-run accounting -------------------------------------------------------

    @property
    def completed(self) -> List[LockRequest]:
        """Acquires that were granted and released, in submission order."""
        return [r for r in self.requests if r.complete]

    @property
    def orphaned(self) -> List[LockRequest]:
        """Acquires granted but cut short by a front-end crash."""
        return [r for r in self.requests if r.orphaned]

    @property
    def aborted(self) -> List[LockRequest]:
        """Acquires abandoned by the retry layer, never granted."""
        return [r for r in self.requests if r.aborted]

    def messages_sent(self) -> int:
        """Protocol messages the shards put on the shared network."""
        return self.sim.network.stats.messages_sent

    def hotspot_factor(self) -> float:
        """``max / mean`` of per-shard completed load (1.0 = perfectly flat)."""
        total = sum(self.shard_loads)
        if total == 0:
            return 0.0
        mean = total / len(self.shard_loads)
        return max(self.shard_loads) / mean

    def verify(self) -> int:
        """Audit the finished run; returns the distinct-key overlap count.

        Three independent layers: the per-shard CS intervals through the
        standard single-resource checker, the per-key intervals through
        the post-hoc key checker (which excuses crash-orphaned holds at
        their orphan instant), and the online checker's holding set
        (must be empty once the run drains — orphaned holds were already
        evicted when their site crashed).
        """
        from repro.verify.invariants import check_mutual_exclusion

        for collector in self.collectors:
            check_mutual_exclusion(collector.records)
        overlaps = check_key_mutual_exclusion(self.requests)
        if self.checker.holding:
            raise ConfigurationError(
                f"run ended with {len(self.checker.holding)} keys still "
                "held; the workload did not drain"
            )
        return overlaps
