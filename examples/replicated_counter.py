#!/usr/bin/env python3
"""Lost updates, and how the paper's mutex prevents them.

The paper's conclusion proposes pairing the delay-optimal mutex with
quorum replica control. This example makes the pairing concrete on the
textbook workload — a replicated counter everyone increments:

1. **Unguarded** quorum read-modify-writes race: two sites both read
   version ``v``, both write ``v+1``, and one increment vanishes
   (last-writer-wins). We count the lost updates.
2. **Guarded** by :class:`~repro.replication.LockedRegisterSite`, every
   read-modify-write runs inside the distributed critical section
   (acquired with the T-handoff algorithm over tree quorums, while the
   *data* lives on majority quorums) and nothing is ever lost.

Also prints the CS timeline of the guarded run so the serialized
handoffs are visible.

Run: ``python examples/replicated_counter.py``
"""

from __future__ import annotations

from repro.metrics.collector import MetricsCollector
from repro.metrics.timeline import render_timeline
from repro.quorums import MajorityQuorumSystem, TreeQuorumSystem
from repro.replication import LockedRegisterSite, ReplicaSite
from repro.sim import Simulator, UniformDelay

N_SITES = 7
INCREMENTS_PER_SITE = 3
TOTAL = N_SITES * INCREMENTS_PER_SITE


def unguarded() -> int:
    """Everyone fires concurrent read-modify-writes; return final value."""
    data = MajorityQuorumSystem(N_SITES)
    sim = Simulator(seed=21, delay_model=UniformDelay(0.5, 1.5))
    sites = [
        ReplicaSite(i, data.quorum_for(i), initial_value=0) for i in range(N_SITES)
    ]
    for s in sites:
        sim.add_node(s)
    sim.start()

    def increment(site: ReplicaSite, remaining: int) -> None:
        if remaining == 0:
            return
        site.read(
            lambda value, version: site.write(
                value + 1, lambda v: increment(site, remaining - 1)
            )
        )

    for s in sites:
        increment(s, INCREMENTS_PER_SITE)
    sim.run()

    final = []
    sites[0].read(lambda value, version: final.append(value))
    sim.run()
    return final[0]


def guarded():
    """The same increments, serialized by the delay-optimal mutex."""
    lock = TreeQuorumSystem(N_SITES)     # cheap K = log N lock quorums
    data = MajorityQuorumSystem(N_SITES)  # highly available data quorums
    sim = Simulator(seed=21, delay_model=UniformDelay(0.5, 1.5))
    metrics = MetricsCollector()
    sites = [
        LockedRegisterSite(
            i,
            lock_quorum=lock.quorum_for(i),
            data_quorum=data.quorum_for(i),
            initial_value=0,
            listener=metrics,
        )
        for i in range(N_SITES)
    ]
    for s in sites:
        sim.add_node(s)
        for _ in range(INCREMENTS_PER_SITE):
            s.submit_update(lambda v: v + 1)
    sim.start()
    sim.run()

    final = []
    sites[0].read(lambda value, version: final.append(value))
    sim.run()
    return final[0], metrics


def main() -> None:
    lost_run = unguarded()
    print(f"unguarded RMW increments : {TOTAL} issued -> counter = {lost_run} "
          f"({TOTAL - lost_run} updates LOST to write-write races)")

    value, metrics = guarded()
    print(f"mutex-guarded increments : {TOTAL} issued -> counter = {value} "
          f"(nothing lost)")
    assert value == TOTAL

    print("\nCS timeline of the guarded run (each # block = one guarded "
          "read-modify-write):\n")
    print(render_timeline(metrics.records, width=70))


if __name__ == "__main__":
    main()
