"""The sharded multi-resource lock service.

:class:`LockService` turns the repo's single-resource mutual-exclusion
kernel into a named-lock service: string keys (thousands to millions)
hash onto ``K`` *independent* mutex instances — one per shard, each
running unmodified registry algorithms over a
:class:`~repro.locks.substrate.ShardView` of one shared simulator — and
every acquire is multiplexed onto one of the shard's ``N`` protocol
sites through a :class:`~repro.locks.frontend.ShardFrontEnd` (batching,
coalescing, lease cache).

Routing policies for picking the front-end site:

* ``"affinity"`` (default) — the key's stable home site
  (:meth:`~repro.locks.router.ShardRouter.home_site`), so repeat
  acquires of a hot key land where the authorization already lives and
  hit the lease cache;
* ``"client"`` — ``client % N``, the classic proxy placement: each
  client talks to one site regardless of key. Spreads load evenly but
  makes hot keys ping-pong the shard CS between sites.

Layering: the service owns routing, per-key accounting, and online
conformance (:class:`~repro.locks.conformance.KeyConformanceChecker`);
the front ends own the CS-hold discipline; the mutex sites stay exactly
the paper's protocols.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.locks.conformance import (
    KeyConformanceChecker,
    check_key_mutual_exclusion,
)
from repro.locks.frontend import LockRequest, ShardFrontEnd
from repro.locks.router import ShardRouter
from repro.locks.substrate import ShardView
from repro.metrics.collector import MetricsCollector
from repro.mutex.base import RunListener
from repro.mutex.registry import get_algorithm_spec
from repro.quorums.registry import make_quorum_system
from repro.sim.simulator import Simulator
from repro.substrate import SiteId

__all__ = ["LockService", "LockStats"]

ROUTING_POLICIES = ("affinity", "client")


class LockStats:
    """Service-level counters (protocol work vs. lease/batch savings)."""

    __slots__ = (
        "acquires",
        "grants",
        "releases",
        "quorum_rounds",
        "lease_hits",
        "lease_expiries",
        "batches",
        "coalesced_batches",
    )

    def __init__(self) -> None:
        self.acquires = 0
        self.grants = 0
        self.releases = 0
        #: Mutex requests actually submitted to shard protocol sites —
        #: each one costs a full quorum round of messages.
        self.quorum_rounds = 0
        #: Acquires served under a retained authorization (zero messages).
        self.lease_hits = 0
        self.lease_expiries = 0
        self.batches = 0
        #: Follow-on batches served under one grant (no extra protocol).
        self.coalesced_batches = 0

    def to_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class _ShardListener(RunListener):
    """Per-shard mutex listener: metrics plus grant dispatch.

    Records the shard's CS lifecycle into a plain
    :class:`MetricsCollector` (so the standard single-resource
    mutual-exclusion checker can audit each shard's intervals) and
    forwards every ``on_enter`` to the granted site's front end, which
    is what hands the authorization to the batching layer.
    """

    def __init__(self, collector: MetricsCollector) -> None:
        self.collector = collector
        self.front_ends: Dict[SiteId, ShardFrontEnd] = {}

    def on_request(self, site: SiteId, time: float) -> None:
        self.collector.on_request(site, time)

    def on_enter(self, site: SiteId, time: float) -> None:
        self.collector.on_enter(site, time)
        self.front_ends[site].on_granted()

    def on_exit(self, site: SiteId, time: float) -> None:
        self.collector.on_exit(site, time)

    def on_abandon(self, site: SiteId, time: float) -> None:
        self.collector.on_abandon(site, time)


class LockService:
    """Named locks over ``shards`` independent mutex instances."""

    def __init__(
        self,
        sim: Simulator,
        algorithm: str = "cao-singhal",
        shards: int = 4,
        n_sites: int = 9,
        quorum: Optional[str] = None,
        batch_max: int = 8,
        lease_window: float = 0.0,
        routing: str = "affinity",
    ) -> None:
        if batch_max < 1:
            raise ConfigurationError(f"batch_max must be >= 1, got {batch_max}")
        if lease_window < 0:
            raise ConfigurationError(
                f"lease_window must be >= 0, got {lease_window}"
            )
        if routing not in ROUTING_POLICIES:
            raise ConfigurationError(
                f"unknown routing policy {routing!r}; "
                f"known: {', '.join(ROUTING_POLICIES)}"
            )
        spec = get_algorithm_spec(algorithm)
        if spec.needs_quorum:
            quorum_name: Optional[str] = quorum or "grid"
        elif quorum is not None:
            raise ConfigurationError(
                f"algorithm {algorithm!r} does not take a quorum"
            )
        else:
            quorum_name = None
        # One quorum system shared by every shard: the construction is a
        # pure function of n_sites, and sites only read from it.
        quorum_system = (
            make_quorum_system(quorum_name, n_sites) if quorum_name else None
        )
        if quorum_system is not None:
            quorum_system.validate()

        self.sim = sim
        self.algorithm = algorithm
        self.routing = routing
        self.router = ShardRouter(shards, n_sites)
        self.stats = LockStats()
        self.checker = KeyConformanceChecker()
        #: Every acquire ever routed, in submission order.
        self.requests: List[LockRequest] = []
        #: Per-shard completed-acquire counts (load-balance signal).
        self.shard_loads: List[int] = [0] * shards
        self.views: List[ShardView] = []
        self.collectors: List[MetricsCollector] = []
        self.front_ends: List[List[ShardFrontEnd]] = []
        for index in range(shards):
            view = ShardView(sim, index, n_sites)
            collector = MetricsCollector()
            listener = _ShardListener(collector)
            fronts: List[ShardFrontEnd] = []
            for site_id in range(n_sites):
                site = spec.factory(
                    site_id, n_sites, quorum_system, None, listener
                )
                view.add_node(site)
                front = ShardFrontEnd(self, view, site, batch_max, lease_window)
                fronts.append(front)
                listener.front_ends[site_id] = front
            self.views.append(view)
            self.collectors.append(collector)
            self.front_ends.append(fronts)

    # -- client API ------------------------------------------------------------

    def acquire(self, client: int, key: str, hold: float) -> LockRequest:
        """Route one client's acquire of named lock ``key``.

        Returns the live :class:`LockRequest`; its ``grant_time`` /
        ``release_time`` fill in as the simulation serves it.
        """
        shard = self.router.shard_of(key)
        if self.routing == "affinity":
            site = self.router.home_site(key)
        else:
            site = client % self.router.n_sites
        request = LockRequest(client, key, shard, site, hold, self.sim.now)
        self.stats.acquires += 1
        self.requests.append(request)
        self.front_ends[shard][site].enqueue(request)
        return request

    # -- front-end callbacks -----------------------------------------------------

    def on_grant(self, request: LockRequest) -> None:
        self.checker.on_grant(request)
        self.stats.grants += 1

    def on_release(self, request: LockRequest) -> None:
        self.checker.on_release(request)
        self.stats.releases += 1
        self.shard_loads[request.shard] += 1

    # -- post-run accounting -------------------------------------------------------

    @property
    def completed(self) -> List[LockRequest]:
        """Acquires that were granted and released, in submission order."""
        return [r for r in self.requests if r.complete]

    def messages_sent(self) -> int:
        """Protocol messages the shards put on the shared network."""
        return self.sim.network.stats.messages_sent

    def hotspot_factor(self) -> float:
        """``max / mean`` of per-shard completed load (1.0 = perfectly flat)."""
        total = sum(self.shard_loads)
        if total == 0:
            return 0.0
        mean = total / len(self.shard_loads)
        return max(self.shard_loads) / mean

    def verify(self) -> int:
        """Audit the finished run; returns the distinct-key overlap count.

        Three independent layers: the per-shard CS intervals through the
        standard single-resource checker, the per-key intervals through
        the post-hoc key checker, and the online checker's holding set
        (must be empty once the run drains).
        """
        from repro.verify.invariants import check_mutual_exclusion

        for collector in self.collectors:
            check_mutual_exclusion(collector.records)
        overlaps = check_key_mutual_exclusion(self.requests)
        if self.checker.holding:
            raise ConfigurationError(
                f"run ended with {len(self.checker.holding)} keys still "
                "held; the workload did not drain"
            )
        return overlaps
