"""The paper's Section 5.2 case analysis, validated case by case.

Section 5.2 enumerates the arbiter situations a request can arrive into
and the exact control messages each produces. These tests drive an
arbiter's handlers directly (no network noise) through every case and
assert precisely the messages the paper's analysis counts:

=========  ====================================================  =================================
paper case arbiter state on arrival of (sn,i)                    messages
=========  ====================================================  =================================
(grant)    lock free                                             reply to i
case 1     queue empty, (sn,i) > lock                            fail to i, transfer to holder
case 2     queue empty, (sn,i) < lock                            inquire+transfer to holder
case 3     queue nonempty, (sn,i) > head                         fail to i
case 4     (sn,i) < head < lock                                  fail to old head, transfer to holder
case 5     lock < (sn,i) < head                                  fail to i, fail? no — transfer to holder, fail to i
=========  ====================================================  =================================

(see DESIGN.md §3 for why the fail recipients are pinned down this way).
"""

from __future__ import annotations

import pytest

from repro.common import Bundle, Priority
from repro.core.messages import Fail, Inquire, Reply, Request, Transfer
from repro.core.site import CaoSinghalSite
from repro.sim.network import ConstantDelay
from repro.sim.simulator import Simulator


class RecordingSite(CaoSinghalSite):
    """CaoSinghalSite with a ``__dict__`` so tests can monkeypatch ``send``.

    The production class is fully slotted; a plain subclass restores the
    instance dict without touching protocol behaviour.
    """


class Outbox:
    """Captures every (dst, part) a site sends, with bundles flattened."""

    def __init__(self, site):
        self.sent = []
        original = site.send

        def capture(dst, message, piggybacked=False):
            for part in getattr(message, "parts", (message,)):
                self.sent.append((dst, part))
            original(dst, message, piggybacked)

        site.send = capture

    def of_type(self, cls):
        return [(dst, m) for dst, m in self.sent if isinstance(m, cls)]

    def clear(self):
        self.sent.clear()


def make_arbiter():
    sim = Simulator(seed=0, delay_model=ConstantDelay(1.0))
    sites = [RecordingSite(i, {0}, cs_duration=1.0) for i in range(8)]
    for s in sites:
        sim.add_node(s)
    sim.start()
    arbiter = sites[0]
    return arbiter, Outbox(arbiter)


def p(seq, site):
    return Priority(seq, site)


def test_free_arbiter_grants_directly():
    arbiter, out = make_arbiter()
    arbiter._handle_request(Request(p(1, 3)))
    assert out.of_type(Reply) == [
        (3, Reply(arbiter=0, grantee=p(1, 3), epoch=1))
    ]
    assert arbiter.arbiter.lock == p(1, 3)
    assert arbiter.arbiter.epoch == 1  # first tenure


def test_case1_empty_queue_lower_priority_newcomer():
    """(queue empty) and (sn,i) > lock: fail to i + transfer to holder.

    Section 5.2 case 1 counts request/fail/transfer/reply/release — the
    fail goes to the newcomer (nobody else exists to receive it)."""
    arbiter, out = make_arbiter()
    arbiter._handle_request(Request(p(1, 2)))  # holder
    out.clear()
    arbiter._handle_request(Request(p(2, 4)))  # lower priority newcomer
    fails = out.of_type(Fail)
    transfers = out.of_type(Transfer)
    assert fails == [(4, Fail(arbiter=0, target=p(2, 4)))]
    assert transfers == [
        (2, Transfer(beneficiary=p(2, 4), arbiter=0, holder=p(1, 2),
                     holder_epoch=1))
    ]
    assert out.of_type(Inquire) == []


def test_case2_empty_queue_higher_priority_newcomer():
    """(queue empty) and (sn,i) < lock: inquire piggybacked with transfer
    to the holder; no fail (the newcomer is winning)."""
    arbiter, out = make_arbiter()
    arbiter._handle_request(Request(p(5, 2)))
    out.clear()
    arbiter._handle_request(Request(p(1, 4)))
    assert out.of_type(Fail) == []
    assert out.of_type(Inquire) == [
        (2, Inquire(arbiter=0, target=p(5, 2), epoch=1))
    ]
    assert out.of_type(Transfer) == [
        (2, Transfer(beneficiary=p(1, 4), arbiter=0, holder=p(5, 2),
                     holder_epoch=1))
    ]


def test_case2_is_piggybacked_as_one_message():
    arbiter, out = make_arbiter()
    arbiter._handle_request(Request(p(5, 2)))
    arbiter._handle_request(Request(p(1, 4)))
    sim = arbiter.sim
    assert sim.network.stats.by_type.get("transfer+inquire", 0) == 1


def test_case3_newcomer_behind_the_head():
    """(queue nonempty) and (sn,i) > head: just a fail to the newcomer —
    the head's transfer/inquire arrangements stand."""
    arbiter, out = make_arbiter()
    arbiter._handle_request(Request(p(5, 2)))   # holder
    arbiter._handle_request(Request(p(1, 4)))   # head (outranks holder)
    out.clear()
    arbiter._handle_request(Request(p(3, 5)))   # between head and holder
    assert out.of_type(Fail) == [(5, Fail(arbiter=0, target=p(3, 5)))]
    assert out.of_type(Transfer) == []
    assert out.of_type(Inquire) == []


def test_case4_new_head_above_old_head_above_it_all():
    """(sn,i) < head < lock: fail to the displaced head + fresh transfer;
    NO new inquire (one is already outstanding for the old head)."""
    arbiter, out = make_arbiter()
    arbiter._handle_request(Request(p(9, 2)))   # holder (lowest priority)
    arbiter._handle_request(Request(p(5, 4)))   # head, outranks holder
    out.clear()
    arbiter._handle_request(Request(p(1, 5)))   # new head, outranks all
    assert out.of_type(Fail) == [(4, Fail(arbiter=0, target=p(5, 4)))]
    assert out.of_type(Transfer) == [
        (2, Transfer(beneficiary=p(1, 5), arbiter=0, holder=p(9, 2),
                     holder_epoch=1))
    ]
    assert out.of_type(Inquire) == []  # already outstanding


def test_case5_new_head_still_behind_holder():
    """lock < (sn,i) < head: the newcomer becomes head but is behind the
    holder — it gets a fail (Section 5.2 case 5 counts one), plus the
    fresh transfer to the holder; no inquire (the holder outranks it)."""
    arbiter, out = make_arbiter()
    arbiter._handle_request(Request(p(1, 2)))   # holder (highest priority)
    arbiter._handle_request(Request(p(9, 4)))   # head, behind holder
    out.clear()
    arbiter._handle_request(Request(p(5, 5)))   # new head, behind holder
    fails = out.of_type(Fail)
    assert (5, Fail(arbiter=0, target=p(5, 5))) in fails
    # The displaced old head (9,4) already failed at its own arrival.
    assert all(dst != 4 for dst, _ in fails)
    assert out.of_type(Transfer) == [
        (2, Transfer(beneficiary=p(5, 5), arbiter=0, holder=p(1, 2),
                     holder_epoch=1))
    ]
    assert out.of_type(Inquire) == []


def test_at_most_one_inquire_per_tenure():
    """Successively better requests must not trigger duplicate inquires."""
    arbiter, out = make_arbiter()
    arbiter._handle_request(Request(p(9, 2)))
    out.clear()
    arbiter._handle_request(Request(p(5, 4)))   # -> inquire
    arbiter._handle_request(Request(p(3, 5)))   # better, but outstanding
    arbiter._handle_request(Request(p(1, 6)))   # better still
    assert len(out.of_type(Inquire)) == 1


def test_queue_ends_up_priority_ordered():
    arbiter, out = make_arbiter()
    arbiter._handle_request(Request(p(4, 2)))
    for seq, site in ((9, 3), (2, 4), (7, 5), (5, 6)):
        arbiter._handle_request(Request(p(seq, site)))
    assert list(arbiter.arbiter.req_queue) == [
        p(2, 4), p(5, 6), p(7, 5), p(9, 3)
    ]


def test_cross_tenure_transfer_is_rejected():
    """The tenure-epoch rule (reconstruction extension): a transfer from
    an earlier tenure of the same permission must not be honoured after a
    yield-and-reacquire cycle. Found by the interleaving explorer; see
    DESIGN.md 'Cross-tenure relics need tenure epochs'."""
    from repro.core.messages import Reply as CReply

    sim = Simulator(seed=0, delay_model=ConstantDelay(1.0))
    # Quorum {1,2}: arbiter 2 never replies, so the site stays
    # REQUESTING throughout (entering the CS would end the scenario).
    sites = [CaoSinghalSite(i, {1, 2}, cs_duration=5.0) for i in range(3)]
    for s in sites:
        sim.add_node(s)
    sim.start()
    requester = sites[0]
    requester.submit_request()
    pri = requester.req.priority
    # Tenure 1 grant, then a tenure-1 transfer arrives late — but the
    # requester meanwhile yielded and was re-granted (tenure 3).
    requester._record_reply(CReply(arbiter=1, grantee=pri, epoch=1))
    requester.req.failed = True
    requester._consider_inquire(1, epoch=1)      # yields tenure 1
    assert requester.req.replied[1] is False
    requester._record_reply(CReply(arbiter=1, grantee=pri, epoch=3))
    stale = Transfer(
        beneficiary=Priority(9, 2), arbiter=1, holder=pri, holder_epoch=1
    )
    requester._record_transfer(stale)
    assert len(requester.req.tran_stack) == 0    # relic rejected
    fresh = Transfer(
        beneficiary=Priority(9, 2), arbiter=1, holder=pri, holder_epoch=3
    )
    requester._record_transfer(fresh)
    assert len(requester.req.tran_stack) == 1    # current tenure accepted
