"""Agrawal–El Abbadi tree quorums: ``K = log N`` best case.

Reference [1] of the paper. The ``N`` sites are the nodes of a
heap-shaped (complete) binary tree. In the failure-free case a quorum is
any root-to-leaf path, so ``K = O(log N)``; when sites fail, an
unavailable node is substituted by *two* paths, one through each of its
children, degrading gracefully toward ``O(N^0.63)`` and ultimately
requiring a majority of leaves.

The recursive construction below is the paper's algorithm verbatim::

    quorum(v):
        if v is a leaf: {v} if v alive else FAIL
        if v alive:     {v} + quorum(either child), preferring one that works
        else:           quorum(left) + quorum(right), both must succeed

Every returned set intersects every other constructible set, whatever the
failure pattern (Agrawal & El Abbadi 1991, Theorem 1).
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, List, Optional, Set

from repro.quorums.coterie import Quorum, QuorumSystem, SiteId


class TreeQuorumSystem(QuorumSystem):
    """Tree quorums over the heap layout (children of ``i``: ``2i+1, 2i+2``)."""

    name = "tree"

    # -- tree geometry ---------------------------------------------------------

    def children(self, site: SiteId) -> List[SiteId]:
        """Existing children of ``site`` in the heap layout."""
        return [c for c in (2 * site + 1, 2 * site + 2) if c < self.n]

    def is_leaf(self, site: SiteId) -> bool:
        """True when ``site`` has no children."""
        return 2 * site + 1 >= self.n

    def path_to_root(self, site: SiteId) -> List[SiteId]:
        """Sites from the root down to ``site`` inclusive."""
        path = [site]
        while site != 0:
            site = (site - 1) // 2
            path.append(site)
        return list(reversed(path))

    def descend_to_leaf(self, site: SiteId) -> List[SiteId]:
        """Path from ``site`` to a leaf, alternating sides for load spread."""
        path = [site]
        step = site  # deterministic per-site zig-zag
        while not self.is_leaf(path[-1]):
            kids = self.children(path[-1])
            path.append(kids[step % len(kids)])
            step //= 2
        return path

    # -- QuorumSystem interface ----------------------------------------------

    def quorum_for(self, site: SiteId) -> Quorum:
        """Failure-free quorum: the root-to-leaf path through ``site``.

        Routing the path through the requesting site spreads arbitration
        load over the tree while every pair of paths still shares the root.
        """
        up = self.path_to_root(site)
        down = self.descend_to_leaf(site)
        return frozenset(up) | frozenset(down)

    def quorum_avoiding(
        self, site: SiteId, failed: AbstractSet[SiteId]
    ) -> Optional[Quorum]:
        """The Agrawal–El Abbadi substitution algorithm."""
        return self._collect(0, frozenset(failed))

    def _collect(self, node: SiteId, failed: FrozenSet[SiteId]) -> Optional[Quorum]:
        alive = node not in failed
        if self.is_leaf(node):
            return frozenset({node}) if alive else None
        kids = self.children(node)
        if alive:
            # Prefer the smaller child-quorum; any single child path works.
            options = [self._collect(c, failed) for c in kids]
            viable = [q for q in options if q is not None]
            if viable:
                best = min(viable, key=lambda q: (len(q), sorted(q)))
                return frozenset({node}) | best
            return None
        # Failed interior node: need quorums from *all* children.
        parts: Set[SiteId] = set()
        for c in kids:
            sub = self._collect(c, failed)
            if sub is None:
                return None
            parts |= sub
        return frozenset(parts)
