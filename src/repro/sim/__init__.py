"""Discrete-event simulation substrate.

Implements the paper's system model (Section 2): ``N`` fully connected
sites communicating asynchronously over reliable FIFO channels with
unpredictable but positive message delays, no shared memory, no global
clock. The fault-tolerance experiments extend the model with fail-stop
crashes and severed links; the robustness experiments drop the
reliable-channel assumption entirely (:class:`FaultModel` makes the raw
network lossy/duplicating/reordering, :class:`ReliableTransport`
rebuilds exactly-once FIFO delivery on top).
"""

from repro.sim.event import Event, EventQueue
from repro.sim.network import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    FaultModel,
    GilbertElliott,
    LogNormalDelay,
    Network,
    NetworkStats,
    ParetoDelay,
    UniformDelay,
)
from repro.sim.node import Node
from repro.sim.rng import SeedSequence
from repro.sim.simulator import Simulator
from repro.sim.trace import NullTrace, Trace, TraceRecord
from repro.sim.transport import ReliableConfig, ReliableTransport, TransportStats

__all__ = [
    "ConstantDelay",
    "DelayModel",
    "Event",
    "EventQueue",
    "ExponentialDelay",
    "FaultModel",
    "GilbertElliott",
    "LogNormalDelay",
    "Network",
    "NetworkStats",
    "Node",
    "NullTrace",
    "ParetoDelay",
    "ReliableConfig",
    "ReliableTransport",
    "SeedSequence",
    "Simulator",
    "Trace",
    "TraceRecord",
    "TransportStats",
    "UniformDelay",
]
