"""Multi-seed replication of simulation measurements.

A single seeded run is deterministic but still one sample of the
stochastic delay/arrival processes. :func:`replicate` re-runs a
configuration across seeds and reports mean and a normal-approximation
95 % confidence interval for any scalar extracted from the summaries —
used by the stochastic-network variants of the delay/throughput
experiments and available to library users for their own studies.

Trials are executed through :class:`repro.parallel.TrialPool`, so a
replication can fan out over worker processes (``workers``) and reuse
prior results from an on-disk cache (``cache``) without changing a
single sample: the engine merges summaries in seed order regardless of
completion order, and every trial is hermetic — its own simulator, RNG
streams, and metrics collector, nothing shared across seeds. The
``metric`` callable is applied *after* the merge, in seed order, in the
calling process, so it can be an unpicklable closure and can never leak
state between trials.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.experiments.runner import RunConfig
from repro.metrics.summary import RunSummary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.parallel.cache import RunCache

#: Extracts the scalar of interest from one run's summary.
Metric = Callable[[RunSummary], float]


@dataclass(frozen=True)
class Replication:
    """Mean and spread of one metric across seeds."""

    metric: str
    samples: List[float]

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / self.n

    @property
    def stdev(self) -> float:
        if self.n < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((x - m) ** 2 for x in self.samples) / (self.n - 1))

    @property
    def ci95(self) -> float:
        """Half-width of the ~95 % confidence interval (normal approx)."""
        if self.n < 2:
            return float("nan")
        return 1.96 * self.stdev / math.sqrt(self.n)

    def __str__(self) -> str:
        return f"{self.metric}: {self.mean:.4f} ± {self.ci95:.4f} (n={self.n})"


def replicate(
    config: RunConfig,
    metric: Metric,
    seeds: Sequence[int] = range(10),
    metric_name: str = "metric",
    workers: Optional[int] = None,
    cache: Optional["RunCache"] = None,
    chunk_size: Optional[int] = None,
    dispatch: Optional[str] = None,
) -> Replication:
    """Run ``config`` once per seed and aggregate ``metric``.

    The config's workload object is shared across runs (workloads are
    stateless descriptors), but each run gets its own simulator and RNG
    streams derived from the seed. ``workers``, ``cache``,
    ``chunk_size``, and ``dispatch`` are passed straight to
    :class:`~repro.parallel.TrialPool`; none affects the samples, only
    how fast they are produced.
    """
    if not seeds:
        raise ConfigurationError("need at least one seed")
    from repro.parallel.pool import TrialPool

    summaries = TrialPool(
        workers=workers, cache=cache, chunk_size=chunk_size, dispatch=dispatch
    ).run_seeds(config, seeds)
    return Replication(
        metric=metric_name, samples=[metric(s) for s in summaries]
    )


def sync_delay_ci(
    algorithm: str,
    n_sites: int,
    quorum: str = "grid",
    seeds: Sequence[int] = range(10),
    workers: Optional[int] = None,
    cache: Optional["RunCache"] = None,
    **config_kwargs,
) -> Replication:
    """Convenience: the sync-delay metric across seeds."""
    config = RunConfig(
        algorithm=algorithm, n_sites=n_sites, quorum=quorum, **config_kwargs
    )
    return replicate(
        config,
        metric=lambda s: s.sync_delay_in_t,
        seeds=seeds,
        metric_name=f"{algorithm} sync delay (T)",
        workers=workers,
        cache=cache,
    )
