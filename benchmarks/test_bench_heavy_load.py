"""E3 — Section 5.2: heavy-load message cost within [5(K-1), 6(K-1)]."""

from __future__ import annotations

from repro.experiments.heavy_load import run_heavy_load


def test_bench_heavy_load(run_experiment):
    report = run_experiment(
        run_heavy_load,
        n_sites=25,
        quorums=("grid", "tree"),
        requests_per_site=25,
    )
    for row in report.rows:
        quorum, measured, floor, ceiling = row[0], row[2], row[3], row[5]
        # The paper's 5(K-1)/6(K-1) are the fully-contended cases; the
        # measured mean must sit inside the [3(K-1), 6(K-1)] band.
        assert floor - 1e-9 <= measured <= ceiling + 1e-9, quorum
