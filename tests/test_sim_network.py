"""Unit tests for delay models and the FIFO network."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.network import (
    ConstantDelay,
    ExponentialDelay,
    UniformDelay,
)
from repro.sim.simulator import Simulator
from repro.sim.node import Node


class Sink(Node):
    """Records every delivered payload with its arrival time."""

    def __init__(self, site_id):
        super().__init__(site_id)
        self.received = []

    def on_message(self, src, message):
        self.received.append((self.now, src, message))


def make_pair(delay_model, seed=0):
    sim = Simulator(seed=seed, delay_model=delay_model)
    a, b = Sink(0), Sink(1)
    sim.add_node(a)
    sim.add_node(b)
    sim.start()
    return sim, a, b


# -- delay models -------------------------------------------------------------


def test_constant_delay_mean_and_sample():
    model = ConstantDelay(2.5)
    assert model.mean == 2.5
    assert model.sample(random.Random(0), 0, 1) == 2.5


@pytest.mark.parametrize("bad", [0.0, -1.0])
def test_constant_delay_rejects_nonpositive(bad):
    with pytest.raises(ConfigurationError):
        ConstantDelay(bad)


def test_uniform_delay_bounds_and_mean():
    model = UniformDelay(0.5, 1.5)
    rng = random.Random(1)
    samples = [model.sample(rng, 0, 1) for _ in range(200)]
    assert all(0.5 <= s <= 1.5 for s in samples)
    assert model.mean == 1.0


def test_uniform_delay_rejects_bad_bounds():
    with pytest.raises(ConfigurationError):
        UniformDelay(2.0, 1.0)
    with pytest.raises(ConfigurationError):
        UniformDelay(0.0, 1.0)


def test_exponential_delay_floor_and_mean():
    model = ExponentialDelay(mean=1.0, floor=0.1)
    rng = random.Random(2)
    samples = [model.sample(rng, 0, 1) for _ in range(2000)]
    assert all(s >= 0.1 for s in samples)
    assert abs(sum(samples) / len(samples) - 1.0) < 0.1
    assert model.mean == 1.0


def test_exponential_delay_rejects_mean_below_floor():
    with pytest.raises(ConfigurationError):
        ExponentialDelay(mean=0.01, floor=0.05)


# -- network behaviour --------------------------------------------------------


def test_basic_delivery_and_latency():
    sim, a, b = make_pair(ConstantDelay(1.0))
    a.send(1, "hello")
    sim.run()
    assert b.received == [(1.0, 0, "hello")]
    assert sim.network.stats.messages_sent == 1
    assert sim.network.stats.messages_delivered == 1


def test_fifo_per_channel_even_with_random_delays():
    sim, a, b = make_pair(ExponentialDelay(1.0), seed=5)
    for i in range(50):
        a.send(1, i)
    sim.run()
    assert [payload for (_, _, payload) in b.received] == list(range(50))


def test_self_send_is_free_and_local():
    sim, a, b = make_pair(ConstantDelay(1.0))
    a.send(0, "me")
    sim.run()
    assert a.received[0][1:] == (0, "me")
    assert sim.network.stats.messages_sent == 0  # no network charge


def test_per_type_counting():
    class Typed:
        type_name = "probe"

    sim, a, b = make_pair(ConstantDelay(1.0))
    a.send(1, Typed())
    a.send(1, Typed())
    sim.run()
    assert sim.network.stats.by_type == {"probe": 2}


def test_crashed_destination_drops():
    sim, a, b = make_pair(ConstantDelay(1.0))
    sim.crash(1)
    a.send(1, "lost")
    sim.run()
    assert b.received == []
    assert sim.network.stats.messages_dropped == 1


def test_in_flight_message_dropped_when_destination_crashes():
    sim, a, b = make_pair(ConstantDelay(1.0))
    a.send(1, "doomed")
    sim.schedule(0.5, lambda: sim.crash(1))
    sim.run()
    assert b.received == []


def test_in_flight_message_from_crashed_source_never_arrives():
    """Fail-stop contract: a crashed site's in-flight messages are dropped
    at delivery time — they must not arrive late, not even after the
    sender recovers."""
    sim, a, b = make_pair(ConstantDelay(1.0))
    a.send(1, "pre-crash")
    sim.schedule(0.5, lambda: sim.crash(0))
    sim.schedule(0.7, lambda: sim.recover(0))
    sim.schedule(1.5, lambda: a.send(1, "post-recovery"))
    sim.run()
    assert [p for (_, _, p) in b.received] == ["post-recovery"]
    assert sim.network.stats.messages_dropped == 1


def test_severed_link_drops_both_directions():
    sim, a, b = make_pair(ConstantDelay(1.0))
    sim.network.sever(0, 1)
    a.send(1, "x")
    b.send(0, "y")
    sim.run()
    assert a.received == [] and b.received == []
    sim.network.heal(0, 1)
    a.send(1, "again")
    sim.run()
    assert [p for (_, _, p) in b.received] == ["again"]


def test_recovered_site_receives_again():
    sim, a, b = make_pair(ConstantDelay(1.0))
    sim.crash(1)
    sim.recover(1)
    a.send(1, "back")
    sim.run()
    assert [p for (_, _, p) in b.received] == ["back"]


def test_mean_delay_exposed():
    sim, _, _ = make_pair(UniformDelay(1.0, 3.0))
    assert sim.network.mean_delay == 2.0
