"""Unit tests for hierarchical, majority, singleton, wheel, grid-set, RST."""

from __future__ import annotations

import itertools

import pytest

from repro.errors import ConfigurationError
from repro.quorums.gridset import GridSetQuorumSystem
from repro.quorums.hierarchical import HierarchicalQuorumSystem
from repro.quorums.majority import MajorityQuorumSystem
from repro.quorums.rst import RSTQuorumSystem
from repro.quorums.singleton import SingletonQuorumSystem
from repro.quorums.wheel import WheelQuorumSystem

ALL_N = [3, 4, 5, 7, 9, 12, 16, 20, 27]


# -- hierarchical ---------------------------------------------------------------


@pytest.mark.parametrize("n", ALL_N)
def test_hierarchical_intersection(n):
    HierarchicalQuorumSystem(n).validate()


def test_hierarchical_sublinear_size():
    hq = HierarchicalQuorumSystem(81)
    k = hq.mean_quorum_size()
    assert k < 81 / 2 + 1  # beats majority
    assert k >= 81 ** 0.5  # but costs more than a grid (N^0.63 > N^0.5)


def test_hierarchical_even_branching_rejected():
    with pytest.raises(ConfigurationError):
        HierarchicalQuorumSystem(9, branching=2)


def test_hierarchical_tolerates_minorities():
    hq = HierarchicalQuorumSystem(9)
    q = hq.quorum_avoiding(0, frozenset({1, 4}))
    assert q is not None and not (q & {1, 4})


def test_hierarchical_prefers_own_site():
    hq = HierarchicalQuorumSystem(27)
    for s in (0, 13, 26):
        assert s in hq.quorum_for(s)


# -- majority ------------------------------------------------------------------


@pytest.mark.parametrize("n", ALL_N)
def test_majority_intersection_and_size(n):
    m = MajorityQuorumSystem(n)
    m.validate()
    assert m.quorum_size == n // 2 + 1
    for s in m.sites:
        assert len(m.quorum_for(s)) == m.quorum_size
        assert s in m.quorum_for(s)


def test_majority_is_maximally_resilient():
    m = MajorityQuorumSystem(7)
    assert m.quorum_avoiding(0, frozenset({1, 2, 3})) is not None
    assert m.quorum_avoiding(0, frozenset({1, 2, 3, 4})) is None


def test_majority_balanced_load():
    m = MajorityQuorumSystem(8)
    degrees = [m.coterie().degree_of(s) for s in m.sites]
    # Ring construction: every site carries similar load.
    assert max(degrees) - min(degrees) <= 1 or len(set(degrees)) <= 2


# -- singleton -----------------------------------------------------------------


def test_singleton_quorums():
    s = SingletonQuorumSystem(5, arbiter=2)
    s.validate()
    for site in s.sites:
        assert s.quorum_for(site) == {2}
    assert s.quorum_avoiding(0, frozenset({2})) is None
    assert s.quorum_avoiding(0, frozenset({1})) == {2}


def test_singleton_arbiter_bounds():
    with pytest.raises(ConfigurationError):
        SingletonQuorumSystem(3, arbiter=3)


# -- wheel ---------------------------------------------------------------------


@pytest.mark.parametrize("n", [2, 3, 5, 9])
def test_wheel_intersection(n):
    WheelQuorumSystem(n).validate()


def test_wheel_small_quorums_with_hub():
    w = WheelQuorumSystem(9)
    for s in w.sites:
        q = w.quorum_for(s)
        assert w.hub in q
        assert len(q) == 2


def test_wheel_hub_failure_falls_back_to_rim():
    w = WheelQuorumSystem(5)
    q = w.quorum_avoiding(1, frozenset({0}))
    assert q == {1, 2, 3, 4}
    # A rim failure alongside the hub kills the fallback quorum.
    assert w.quorum_avoiding(1, frozenset({0, 2})) is None


def test_wheel_coterie_includes_rim_quorum():
    w = WheelQuorumSystem(4)
    assert frozenset({1, 2, 3}) in w.coterie().quorums


def test_wheel_needs_two_sites():
    with pytest.raises(ConfigurationError):
        WheelQuorumSystem(1)


# -- grid-set and RST (Section 6 two-level constructions) ------------------------


@pytest.mark.parametrize("n", [4, 6, 9, 12, 16, 20, 25])
def test_gridset_intersection(n):
    GridSetQuorumSystem(n).validate()


@pytest.mark.parametrize("n", [4, 6, 9, 12, 16, 20, 25])
def test_rst_intersection(n):
    RSTQuorumSystem(n).validate()


def test_gridset_masks_group_minority_failures():
    gs = GridSetQuorumSystem(16, group_size=4)
    # Kill one whole group: a majority of the other groups still works.
    q = gs.quorum_avoiding(12, frozenset({0, 1, 2, 3}))
    assert q is not None and not (q & {0, 1, 2, 3})


def test_rst_masks_subgroup_minorities_without_recovery():
    rst = RSTQuorumSystem(12, subgroup_size=3)
    # One failure in each subgroup is a minority everywhere.
    failed = frozenset({0, 3, 6, 9})
    q = rst.quorum_avoiding(1, failed)
    assert q is not None and not (q & failed)


def test_two_level_cross_intersection_under_failures():
    """Quorums computed under *different* failure views still intersect."""
    for system in (GridSetQuorumSystem(12, 3), RSTQuorumSystem(12, 3)):
        views = [frozenset(), frozenset({0}), frozenset({5}), frozenset({0, 7})]
        quorums = []
        for site in (1, 4, 8, 11):
            for view in views:
                q = system.quorum_avoiding(site, view)
                if q is not None:
                    quorums.append(q)
        for a, b in itertools.combinations(quorums, 2):
            assert a & b


def test_group_size_validation():
    with pytest.raises(ConfigurationError):
        GridSetQuorumSystem(9, group_size=0)
    with pytest.raises(ConfigurationError):
        RSTQuorumSystem(9, subgroup_size=-1)
