"""Profiling and snapshots are strictly additive over the hot path.

``profiled_run`` drives the identical event history through the
instrumented loop — same summary digest, same event count — and the
snapshot helper freezes kernel counters without perturbing the run.
The byte-level proof that the *disabled* path is untouched lives in
``tests/test_kernel_equivalence.py``; these tests pin the *enabled*
path's equivalence.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import RunConfig, run_mutex
from repro.obs.profile import LoopProfiler, profiled_run, snapshot
from repro.sim.network import FaultModel, UniformDelay
from repro.sim.transport import ReliableConfig
from repro.workload.driver import SaturationWorkload


def scenario(**kwargs) -> RunConfig:
    return RunConfig(
        algorithm="cao-singhal",
        n_sites=9,
        seed=3,
        delay_model=UniformDelay(0.5, 1.5),
        workload=SaturationWorkload(4),
        **kwargs,
    )


def test_profiled_run_matches_plain_run():
    plain = run_mutex(scenario())
    profiled, profiler = profiled_run(scenario())
    assert profiled.summary == plain.summary
    assert profiled.sim.events_processed == plain.sim.events_processed
    assert profiler.events == plain.sim.events_processed
    assert profiler.total_seconds > 0.0


def test_profiler_rows_and_report():
    _, profiler = profiled_run(scenario())
    rows = profiler.rows()
    assert rows, "a saturation run must exercise some labels"
    # Heaviest-total first, shares sum to 1.
    totals = [row[2] for row in rows]
    assert totals == sorted(totals, reverse=True)
    assert sum(row[5] for row in rows) == pytest.approx(1.0)
    assert sum(row[1] for row in rows) == profiler.events
    labels = {row[0] for row in rows}
    assert "cs-hold" in labels

    report = profiler.report()
    assert "event-loop profile" in report
    assert "cs-hold" in report


def test_profiler_observe_accumulates_per_label():
    profiler = LoopProfiler()
    profiler.observe("deliver", 0.002)
    profiler.observe("deliver", 0.004)
    profiler.observe("", 0.001)
    rows = {row[0]: row for row in profiler.rows()}
    label, count, total, mean_us, max_us, share = rows["deliver"]
    assert count == 2
    assert total == 0.006
    assert mean_us == 3000.0
    assert max_us == 4000.0
    assert rows["<unlabelled>"][1] == 1
    assert profiler.events == 3


def test_snapshot_exposes_kernel_counters():
    result = run_mutex(scenario())
    snap = snapshot(result.sim, sites=result.sites)
    assert snap["time"] == result.sim.now
    assert snap["events_processed"] == result.sim.events_processed
    assert snap["pending_events"] == 0
    assert snap["network"]["messages_sent"] > 0
    assert "transport" not in snap  # no reliable layer installed
    per_site = snap["sites"]
    assert set(per_site) == {site.site_id for site in result.sites}
    assert all(entry["completed"] == 4 for entry in per_site.values())
    assert all(not entry["crashed"] for entry in per_site.values())


def test_snapshot_includes_transport_when_installed():
    result = run_mutex(
        scenario(fault_model=FaultModel(loss=0.2), reliable=ReliableConfig())
    )
    snap = snapshot(result.sim)
    assert snap["transport"]["retransmitted"] > 0
    assert isinstance(snap["channels"], dict)
    # Quiescent after a drained run: no channel should hold unacked data.
    for channel in snap["channels"].values():
        assert channel.get("unacked", 0) == 0


def test_snapshots_are_copies_not_views():
    result = run_mutex(scenario())
    first = snapshot(result.sim)
    first["network"]["messages_sent"] = -1
    second = snapshot(result.sim)
    assert second["network"]["messages_sent"] > 0
