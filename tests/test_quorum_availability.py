"""Unit tests for availability analysis."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.quorums.availability import (
    availability_curve,
    exact_availability,
    monte_carlo_availability,
    node_resilience,
)
from repro.quorums.grid import GridQuorumSystem
from repro.quorums.majority import MajorityQuorumSystem
from repro.quorums.singleton import SingletonQuorumSystem
from repro.quorums.tree import TreeQuorumSystem


def test_singleton_availability_is_p():
    s = SingletonQuorumSystem(3)
    for p in (0.0, 0.3, 0.9, 1.0):
        assert exact_availability(s, p) == pytest.approx(p)


def test_majority_availability_closed_form():
    # 3-site majority: p^3 + 3 p^2 (1-p).
    m = MajorityQuorumSystem(3)
    for p in (0.5, 0.8):
        expected = p**3 + 3 * p**2 * (1 - p)
        assert exact_availability(m, p) == pytest.approx(expected)


def test_availability_edges():
    g = GridQuorumSystem(4)
    assert exact_availability(g, 1.0) == pytest.approx(1.0)
    assert exact_availability(g, 0.0) == pytest.approx(0.0)


def test_availability_monotone_in_p():
    t = TreeQuorumSystem(7)
    values = [exact_availability(t, p) for p in (0.3, 0.5, 0.7, 0.9)]
    assert values == sorted(values)


def test_majority_beats_singleton_at_high_p():
    n = 5
    m = MajorityQuorumSystem(n)
    s = SingletonQuorumSystem(n)
    assert exact_availability(m, 0.9) > exact_availability(s, 0.9)


def test_monte_carlo_close_to_exact():
    m = MajorityQuorumSystem(5)
    exact = exact_availability(m, 0.8)
    estimate = monte_carlo_availability(m, 0.8, samples=4000, seed=1)
    assert estimate == pytest.approx(exact, abs=0.03)


def test_monte_carlo_deterministic_for_seed():
    g = GridQuorumSystem(9)
    a = monte_carlo_availability(g, 0.7, samples=500, seed=9)
    b = monte_carlo_availability(g, 0.7, samples=500, seed=9)
    assert a == b


def test_curve_switches_estimators():
    small = availability_curve(MajorityQuorumSystem(5), [0.5, 0.9])
    assert [pt.p for pt in small] == [0.5, 0.9]
    large = availability_curve(
        MajorityQuorumSystem(25), [0.9], samples=200, seed=3
    )
    assert 0.0 <= large[0].availability <= 1.0


def test_parameter_validation():
    m = MajorityQuorumSystem(3)
    with pytest.raises(ConfigurationError):
        exact_availability(m, 1.5)
    with pytest.raises(ConfigurationError):
        monte_carlo_availability(m, 0.5, samples=0)
    with pytest.raises(ConfigurationError):
        exact_availability(MajorityQuorumSystem(21), 0.5)  # too large for exact


def test_node_resilience_values():
    assert node_resilience(MajorityQuorumSystem(5)) == 2
    assert node_resilience(SingletonQuorumSystem(3)) == 0
    # 2x2 grid: any single failure still leaves a (row, col) pair.
    assert node_resilience(GridQuorumSystem(4)) >= 1
