"""E13 — chaos resilience: degradation vs packet-loss rate."""

from __future__ import annotations

from conftest import archive_json

from repro.experiments.chaos_sweep import run_chaos_resilience


def test_bench_chaos_resilience(run_experiment):
    report = run_experiment(
        run_chaos_resilience,
        loss_rates=(0.0, 0.1, 0.2),
        seeds=(0, 1),
        requests_per_site=4,
    )
    by_cell = {(row[0], row[1]): row for row in report.rows}
    algorithms = sorted({row[1] for row in report.rows})
    for algorithm in algorithms:
        clean = by_cell[(0.0, algorithm)]
        worst = by_cell[(0.2, algorithm)]
        # The reliability layer must visibly work on a lossy network
        # (at loss=0 the residual rtx comes from dup/reorder jitter only).
        assert worst[4] > 0.0, f"{algorithm}: no retransmits at 20% loss"
        assert worst[4] > clean[4], f"{algorithm}: loss did not cost retransmits"
        # Loss costs latency, never correctness: resp(T) grows, and the
        # run only reached this assertion because verification passed.
        assert worst[2] > clean[2], f"{algorithm}: loss did not slow handoffs"
    archive_json("chaos_resilience", report.to_dict())
