#!/usr/bin/env python3
"""Quickstart: run the delay-optimal algorithm and read its vitals.

Builds a 16-site system with Maekawa grid quorums, saturates it (the
paper's heavy-load regime), and prints the measured message complexity and
synchronization delay next to the paper's predictions:

* messages/CS within ``[5(K-1), 6(K-1)]`` under contention;
* synchronization delay ``T`` (Maekawa-type algorithms need ``2T``).

Run: ``python examples/quickstart.py``
"""

from repro import ConstantDelay, RunConfig, run_mutex
from repro.analysis import heavy_load_message_bounds
from repro.workload import SaturationWorkload


def main() -> None:
    config = RunConfig(
        algorithm="cao-singhal",
        n_sites=16,
        quorum="grid",
        seed=42,
        delay_model=ConstantDelay(1.0),  # T = 1 time unit
        cs_duration=1.0,                 # E = T
        workload=SaturationWorkload(20),  # heavy load: 20 requests/site
    )
    result = run_mutex(config)  # runs, then verifies Theorems 1-3
    summary = result.summary

    print(summary.describe())
    print()
    k = summary.mean_quorum_size
    low, high = heavy_load_message_bounds(k)
    print(f"paper, heavy load : {low:.1f} .. {high:.1f} messages/CS "
          f"(5(K-1)..6(K-1), K={k:.1f})")
    print(f"paper, sync delay : 1.0 T (Maekawa: 2.0 T)")

    # The same API runs any of the baselines:
    maekawa = run_mutex(
        RunConfig(
            algorithm="maekawa",
            n_sites=16,
            quorum="grid",
            seed=42,
            delay_model=ConstantDelay(1.0),
            cs_duration=1.0,
            workload=SaturationWorkload(20),
        )
    ).summary
    speedup = maekawa.waiting_time.mean / summary.waiting_time.mean
    print(f"\nvs Maekawa        : sync delay {summary.sync_delay_in_t:.2f}T "
          f"vs {maekawa.sync_delay_in_t:.2f}T, waiting time {speedup:.2f}x lower")


if __name__ == "__main__":
    main()
