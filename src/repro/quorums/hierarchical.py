"""Hierarchical quorum consensus (HQC), reference [4] of the paper.

Sites are the leaves of a logical multi-level hierarchy; a quorum is formed
by taking a *majority of subgroups* at every level, recursing until the
leaves. With branching factor 3 the quorum size is ``N^(log3 2) ~= N^0.63``
and the construction tolerates minority failures at every level without any
reconfiguration.

This implementation splits the site list recursively into ``branching``
nearly equal groups, so any ``N`` is supported (the classic presentation
assumes ``N = 3^d``; unequal group sizes preserve the intersection proof
because majorities of the same partition always intersect in at least one
subgroup, recursively down to a common leaf).
"""

from __future__ import annotations

from typing import AbstractSet, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.quorums.coterie import Quorum, QuorumSystem, SiteId


def _split(items: Sequence[SiteId], parts: int) -> List[Sequence[SiteId]]:
    """Split ``items`` into ``parts`` contiguous, nearly equal chunks."""
    n = len(items)
    parts = min(parts, n)
    base, extra = divmod(n, parts)
    out: List[Sequence[SiteId]] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        out.append(items[start : start + size])
        start += size
    return out


class HierarchicalQuorumSystem(QuorumSystem):
    """Recursive majority-of-majorities quorums.

    Parameters
    ----------
    n:
        Number of sites.
    branching:
        Number of subgroups at each level (3 in the classic HQC paper; must
        be odd so every level has a strict majority).
    leaf_size:
        Groups at or below this size stop recursing and use a plain
        majority of their members.
    """

    name = "hierarchical"

    def __init__(self, n: int, branching: int = 3, leaf_size: int = 3) -> None:
        super().__init__(n)
        if branching < 2:
            raise ConfigurationError(f"branching must be >= 2, got {branching}")
        if branching % 2 == 0:
            raise ConfigurationError(
                f"branching must be odd for strict majorities, got {branching}"
            )
        if leaf_size < 1:
            raise ConfigurationError(f"leaf_size must be >= 1, got {leaf_size}")
        self.branching = branching
        self.leaf_size = leaf_size

    # -- recursive construction ------------------------------------------------

    def _quorum(
        self,
        group: Sequence[SiteId],
        preferred: Optional[SiteId],
        failed: AbstractSet[SiteId],
    ) -> Optional[Quorum]:
        """A quorum within ``group`` avoiding ``failed``.

        ``preferred`` biases selection toward subgroups containing the
        requesting site so its own vote is used when possible, spreading
        load the way the HQC paper intends.
        """
        if len(group) <= self.leaf_size:
            alive = [s for s in group if s not in failed]
            need = len(group) // 2 + 1
            if len(alive) < need:
                return None
            alive.sort(key=lambda s: (s != preferred, s))
            return frozenset(alive[:need])

        subgroups = _split(group, self.branching)
        need = len(subgroups) // 2 + 1
        # Try subgroups in deterministic preference order.
        order = sorted(
            range(len(subgroups)),
            key=lambda i: (preferred not in subgroups[i] if preferred is not None else False, i),
        )
        chosen: List[Quorum] = []
        for idx in order:
            sub = self._quorum(subgroups[idx], preferred, failed)
            if sub is not None:
                chosen.append(sub)
                if len(chosen) == need:
                    return frozenset().union(*chosen)
        return None

    # -- QuorumSystem interface ---------------------------------------------

    def quorum_for(self, site: SiteId) -> Quorum:
        quorum = self._quorum(list(self.sites), site, frozenset())
        assert quorum is not None  # failure-free construction always succeeds
        return quorum

    def quorum_avoiding(
        self, site: SiteId, failed: AbstractSet[SiteId]
    ) -> Optional[Quorum]:
        return self._quorum(list(self.sites), site, frozenset(failed))
