"""One-stop simulation runner used by experiments, benchmarks, and the CLI.

:func:`run_mutex` wires together a simulator, one site per process for the
chosen algorithm, a workload, the metrics collector, and the verification
layer, then returns a :class:`~repro.metrics.summary.RunSummary`. Every
run is verified: mutual exclusion over the recorded intervals, progress
(no deadlock/starvation), and per-site sequentiality. A run that violates
the paper's theorems raises instead of returning numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.site import CaoSinghalSite
from repro.errors import ConfigurationError
from repro.metrics.collector import MetricsCollector
from repro.metrics.summary import RunSummary, summarize
from repro.mutex.base import DurationSpec, MutexSite
from repro.mutex.registry import get_algorithm_spec
from repro.quorums.registry import make_quorum_system
from repro.sim.network import ConstantDelay, DelayModel, UniformDelay
from repro.sim.simulator import Simulator
from repro.verify.checker import check_quiescent
from repro.verify.invariants import (
    check_mutual_exclusion,
    check_progress,
    check_sequential_per_site,
)
from repro.workload.driver import SaturationWorkload, Workload


@dataclass
class RunConfig:
    """Declarative description of one simulation run."""

    algorithm: str = "cao-singhal"
    n_sites: int = 9
    quorum: Optional[str] = None  # defaulted per-algorithm
    seed: int = 0
    delay_model: Optional[DelayModel] = None  # default UniformDelay(0.5, 1.5)
    cs_duration: DurationSpec = 0.05
    workload: Optional[Workload] = None  # default SaturationWorkload(20)
    #: Hard safety caps so a protocol bug cannot hang the harness.
    max_time: float = 1_000_000.0
    max_events: int = 20_000_000
    trace: bool = False
    verify: bool = True

    def resolved_quorum(self) -> Optional[str]:
        """The quorum construction to use, or ``None`` for non-quorum
        algorithms."""
        spec = get_algorithm_spec(self.algorithm)
        if not spec.needs_quorum:
            if self.quorum is not None:
                raise ConfigurationError(
                    f"algorithm {self.algorithm!r} does not take a quorum"
                )
            return None
        return self.quorum or "grid"


@dataclass
class RunResult:
    """Summary plus the raw artifacts a test may want to poke at."""

    summary: RunSummary
    sim: Simulator
    sites: List[MutexSite] = field(default_factory=list)
    collector: Optional[MetricsCollector] = None


def build_run(config: RunConfig):
    """Construct (simulator, sites, collector, workload size) for a config."""
    spec = get_algorithm_spec(config.algorithm)
    quorum_name = config.resolved_quorum()
    quorum_system = (
        make_quorum_system(quorum_name, config.n_sites) if quorum_name else None
    )
    if quorum_system is not None:
        quorum_system.validate()

    sim = Simulator(
        seed=config.seed,
        delay_model=config.delay_model or UniformDelay(0.5, 1.5),
        trace=config.trace,
    )
    collector = MetricsCollector()
    sites = [
        spec.factory(i, config.n_sites, quorum_system, config.cs_duration, collector)
        for i in range(config.n_sites)
    ]
    for site in sites:
        sim.add_node(site)
    workload = config.workload or SaturationWorkload(20)
    submitted = workload.install(sim, sites)
    return sim, sites, collector, quorum_system, submitted


def run_mutex(config: RunConfig) -> RunResult:
    """Run one configured simulation to completion and verify it."""
    sim, sites, collector, quorum_system, _ = build_run(config)
    sim.start()
    sim.run(until=config.max_time, max_events=config.max_events)

    duration = sim.last_event_time
    if config.verify:
        check_mutual_exclusion(collector.records)
        check_sequential_per_site(collector.records)
        if sim.pending_events() == 0:
            # The run drained: everything submitted must have been served.
            check_progress(collector.records, context=config.algorithm)
            cs_sites = [s for s in sites if isinstance(s, CaoSinghalSite)]
            if cs_sites:
                check_quiescent(cs_sites)
        else:
            raise ConfigurationError(
                f"run hit its safety cap (time={sim.now:.1f}, "
                f"events={sim.events_processed}); raise max_time/max_events "
                "or shrink the workload"
            )

    quorum_name = config.resolved_quorum()
    summary = summarize(
        algorithm=config.algorithm,
        n_sites=config.n_sites,
        records=collector.records,
        messages_sent=sim.network.stats.messages_sent,
        messages_by_type=sim.network.stats.by_type,
        duration=duration,
        mean_delay_t=sim.network.mean_delay,
        seed=config.seed,
        quorum_name=quorum_name,
        mean_quorum_size=(
            quorum_system.mean_quorum_size() if quorum_system else None
        ),
    )
    return RunResult(summary=summary, sim=sim, sites=sites, collector=collector)


def run_many(
    configs: "List[RunConfig]",
    workers: Optional[int] = None,
    cache=None,
) -> List[RunSummary]:
    """Run a grid of configs through the parallel trial engine.

    Summaries come back in input order whatever the worker count, so a
    sweep built as a list comprehension reads its results positionally.
    ``workers``/``cache`` are :class:`~repro.parallel.TrialPool` options;
    a failing trial re-raises with its seed attached.
    """
    from repro.parallel.pool import TrialPool

    return TrialPool(workers=workers, cache=cache).run_configs(configs)


def quick_run(
    algorithm: str = "cao-singhal",
    n_sites: int = 9,
    seed: int = 0,
    requests_per_site: int = 20,
    quorum: Optional[str] = None,
    delay: Optional[DelayModel] = None,
) -> RunSummary:
    """Convenience wrapper: heavy-load run, return just the summary."""
    config = RunConfig(
        algorithm=algorithm,
        n_sites=n_sites,
        quorum=quorum,
        seed=seed,
        delay_model=delay or ConstantDelay(1.0),
        workload=SaturationWorkload(requests_per_site),
    )
    return run_mutex(config).summary
