"""Behavioural tests shared by every baseline algorithm, plus
algorithm-specific message-count and ordering checks."""

from __future__ import annotations

import pytest

from repro.experiments.runner import RunConfig, run_mutex
from repro.mutex.registry import algorithm_names, get_algorithm_spec, make_site
from repro.sim.network import ConstantDelay
from repro.workload.driver import SaturationWorkload, StaggeredSingleShot

ALL_ALGORITHMS = algorithm_names()
QUORUM_ALGOS = {"cao-singhal", "cao-singhal-no-transfer", "maekawa"}


def run(algorithm, n_sites=7, workload=None, seed=0, cs_duration=0.2):
    return run_mutex(
        RunConfig(
            algorithm=algorithm,
            n_sites=n_sites,
            quorum="grid" if algorithm in QUORUM_ALGOS else None,
            seed=seed,
            delay_model=ConstantDelay(1.0),
            cs_duration=cs_duration,
            workload=workload or SaturationWorkload(5),
        )
    ).summary


# -- generic conformance across every algorithm -----------------------------------


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_heavy_load_serves_everything(algorithm):
    summary = run(algorithm)
    assert summary.completed == 7 * 5
    assert summary.unserved == 0


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_single_request_completes(algorithm):
    summary = run(algorithm, workload=StaggeredSingleShot({3: 1.0}))
    assert summary.completed == 1


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_fairness_under_symmetric_load(algorithm):
    summary = run(algorithm, workload=SaturationWorkload(6))
    assert summary.fairness > 0.95


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_registry_builds_sites(algorithm):
    spec = get_algorithm_spec(algorithm)
    from repro.quorums.registry import make_quorum_system

    qs = make_quorum_system("grid", 9) if spec.needs_quorum else None
    site = make_site(algorithm, 4, 9, qs)
    assert site.site_id == 4
    assert spec.description


def test_unknown_algorithm_raises():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        get_algorithm_spec("zookeeper")


# -- message complexity against the paper's Table 1 -------------------------------


def test_lamport_message_count_exact():
    # 3(N-1) per execution, always.
    summary = run("lamport", n_sites=6, workload=SaturationWorkload(4))
    assert summary.messages_per_cs == pytest.approx(3 * 5, abs=1e-9)


def test_ricart_agrawala_message_count_exact():
    summary = run("ricart-agrawala", n_sites=6, workload=SaturationWorkload(4))
    assert summary.messages_per_cs == pytest.approx(2 * 5, abs=1e-9)


def test_roucairol_carvalho_bounded_by_ra():
    n = 6
    rc = run("roucairol-carvalho", n_sites=n, workload=SaturationWorkload(6))
    assert n - 1 - 1e-9 <= rc.messages_per_cs <= 2 * (n - 1) + 1.5


def test_roucairol_carvalho_repeated_requester_free():
    # One site requesting over and over reuses its standing permissions.
    result = run_mutex(
        RunConfig(
            algorithm="roucairol-carvalho",
            n_sites=5,
            seed=0,
            delay_model=ConstantDelay(1.0),
            cs_duration=0.1,
            workload=StaggeredSingleShot({2: 1.0}),
        )
    )
    first_cost = result.sim.network.stats.messages_sent
    # Re-run with the same site requesting three times.
    sim2 = run_mutex(
        RunConfig(
            algorithm="roucairol-carvalho",
            n_sites=5,
            seed=0,
            delay_model=ConstantDelay(1.0),
            cs_duration=0.1,
            workload=type(
                "W",
                (),
                {
                    "install": lambda self, sim, sites: (
                        [sim.schedule(t, sites[2].submit_request) for t in (1.0, 10.0, 20.0)],
                        3,
                    )[1]
                },
            )(),
        )
    ).sim
    # Executions 2 and 3 cost nothing: permissions are retained.
    assert sim2.network.stats.messages_sent == first_cost


def test_suzuki_kasami_holder_requests_are_free():
    result = run_mutex(
        RunConfig(
            algorithm="suzuki-kasami",
            n_sites=5,
            seed=0,
            delay_model=ConstantDelay(1.0),
            cs_duration=0.1,
            workload=StaggeredSingleShot({0: 1.0}),  # site 0 holds the token
        )
    )
    assert result.sim.network.stats.messages_sent == 0


def test_suzuki_kasami_non_holder_costs_n():
    result = run_mutex(
        RunConfig(
            algorithm="suzuki-kasami",
            n_sites=5,
            seed=0,
            delay_model=ConstantDelay(1.0),
            cs_duration=0.1,
            workload=StaggeredSingleShot({3: 1.0}),
        )
    )
    # N-1 broadcast requests + 1 token message.
    assert result.sim.network.stats.messages_sent == 5


def test_raymond_uses_few_messages_at_heavy_load():
    summary = run("raymond", n_sites=15, workload=SaturationWorkload(6))
    assert summary.messages_per_cs < 6  # paper: ~4 at heavy load


def test_centralized_three_messages():
    summary = run("centralized", n_sites=6, workload=SaturationWorkload(4))
    # Coordinator's own requests are free, others cost 3.
    assert summary.messages_per_cs <= 3.0


def test_maekawa_vs_proposed_delay_ordering():
    proposed = run("cao-singhal", n_sites=9, cs_duration=1.0,
                   workload=SaturationWorkload(8))
    maekawa = run("maekawa", n_sites=9, cs_duration=1.0,
                  workload=SaturationWorkload(8))
    assert proposed.sync_delay_in_t == pytest.approx(1.0, abs=0.15)
    assert maekawa.sync_delay_in_t == pytest.approx(2.0, abs=0.15)


def test_no_transfer_ablation_equals_maekawa_counts():
    ablated = run("cao-singhal-no-transfer", n_sites=9, workload=SaturationWorkload(6))
    maekawa = run("maekawa", n_sites=9, workload=SaturationWorkload(6))
    assert ablated.sync_delay_in_t == pytest.approx(maekawa.sync_delay_in_t, rel=0.05)
    assert ablated.messages_per_cs == pytest.approx(maekawa.messages_per_cs, rel=0.05)


def test_priority_order_respected_on_equal_timestamps():
    # All sites request simultaneously; ties break by site id everywhere.
    for algorithm in ("lamport", "ricart-agrawala", "cao-singhal"):
        result = run_mutex(
            RunConfig(
                algorithm=algorithm,
                n_sites=4,
                quorum="grid" if algorithm == "cao-singhal" else None,
                seed=1,
                delay_model=ConstantDelay(1.0),
                cs_duration=0.2,
                workload=StaggeredSingleShot({0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0}),
            )
        )
        order = [
            r.site
            for r in sorted(result.collector.completed, key=lambda r: r.enter_time)
        ]
        assert order == [0, 1, 2, 3], f"{algorithm}: {order}"
