"""Experiment E5 — Section 5.2's two implications of halving the delay.

"First, at heavy loads, the rate of CS execution (i.e., throughput) is
doubled. Second, at heavy loads, the waiting time of requests is nearly
reduced to half."

We saturate proposed and Maekawa over identical quorums and report
throughput and mean waiting time, plus the ratios. With CS execution time
``E`` non-negligible the ideal ratio is ``(2T + E) / (T + E)`` rather than
exactly 2 — the cycle time per CS execution is (sync delay + E) — so the
report includes that corrected ideal.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.report import ExperimentReport
from repro.experiments.runner import RunConfig, run_mutex
from repro.sim.network import ConstantDelay
from repro.workload.driver import SaturationWorkload


def run_throughput(
    n_sites: int = 25,
    seed: int = 5,
    requests_per_site: int = 25,
    cs_duration: float = 0.1,
    quorum: str = "grid",
) -> ExperimentReport:
    """Throughput and waiting-time comparison at heavy load."""
    report = ExperimentReport(
        experiment_id="E5",
        title=f"Throughput & waiting time at heavy load, N={n_sites}, "
        f"E={cs_duration}, T=1",
        headers=[
            "algorithm",
            "throughput (CS/T)",
            "mean wait (T)",
            "p95 wait (T)",
        ],
    )
    summaries = {}
    for algorithm in ("cao-singhal", "maekawa"):
        summary = run_mutex(
            RunConfig(
                algorithm=algorithm,
                n_sites=n_sites,
                quorum=quorum,
                seed=seed,
                delay_model=ConstantDelay(1.0),
                cs_duration=cs_duration,
                workload=SaturationWorkload(requests_per_site),
            )
        ).summary
        summaries[algorithm] = summary
        report.add_row(
            algorithm,
            summary.throughput,
            summary.waiting_time.mean,
            summary.waiting_time.p95,
        )
    proposed = summaries["cao-singhal"]
    maekawa = summaries["maekawa"]
    ideal = (2.0 + cs_duration) / (1.0 + cs_duration)
    report.add_note(
        f"throughput ratio proposed/maekawa = "
        f"{proposed.throughput / maekawa.throughput:.2f} "
        f"(ideal {(ideal):.2f} = (2T+E)/(T+E); paper says ~2 for E<<T)"
    )
    report.add_note(
        f"waiting-time ratio maekawa/proposed = "
        f"{maekawa.waiting_time.mean / proposed.waiting_time.mean:.2f} "
        "(paper: waiting time nearly halved)"
    )
    return report
