"""The real-network substrate: one protocol site on an asyncio UDP socket.

A :class:`NetSubstrate` is the second implementation of the
:class:`~repro.substrate.Substrate` interface. Where the discrete-event
:class:`~repro.sim.simulator.Simulator` hosts every site and advances a
virtual clock, a ``NetSubstrate`` hosts (normally) *one* site inside one
OS process, reads the wall clock, maps timers onto the asyncio event
loop, and exchanges real datagrams with its peers. Protocol sites, the
reliable-channel layer, the workload drivers, and the trace schema run
unchanged on either substrate — that is the point of the split.

Correspondence with the simulator:

* **Clock** — ``now`` is ``(wall - epoch) / unit`` simulation units. The
  launcher distributes one shared epoch, so timestamps from different
  site processes on the same host are mutually comparable and the merged
  trace sorts into a single coherent history.
* **Timers** — :meth:`schedule_call` maps unit delays onto
  ``loop.call_later``; the returned :class:`asyncio.TimerHandle` has a
  ``cancel()`` and therefore *is* a substrate timer handle.
* **Send path** — :meth:`send` counts one protocol message (matching the
  simulator's per-protocol-message accounting, the figure the paper's
  3–6 messages-per-CS bound is stated over) and routes via the reliable
  transport when installed; :meth:`raw_send` serializes one frame with
  :mod:`repro.net.wire` and writes a datagram. Retransmissions and pure
  acks are datagram overhead, visible in the transport/datagram counters
  but never in ``messages_sent`` — same layering as the paper's costing.
* **Faults** — optional seeded loss/duplication applied where the
  simulated :class:`~repro.sim.network.FaultModel` applies them: on the
  wire, below the reliable layer, which then has to earn the exactly-once
  FIFO contract the protocols assume.
* **Trace** — a :class:`JsonlTraceWriter` mirrors every record to a
  per-site ``repro-trace/1`` shard, write-through and line-buffered so a
  ``SIGTERM``-stopped process loses nothing.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.net.config import NetRunConfig
from repro.net.wire import decode_frame, encode_frame
from repro.obs.export import SCHEMA, encode_record
from repro.sim.node import Node
from repro.sim.rng import SeedSequence
from repro.sim.trace import Trace, TraceRecord
from repro.sim.transport import ReliableTransport
from repro.substrate import SiteId, TimerHandle

import json


class JsonlTraceWriter(Trace):
    """A :class:`Trace` that also appends every record to a JSONL shard.

    The shard is a complete ``repro-trace/1`` file (header included) at
    every instant: the file handle is line-buffered and each record is
    written as it happens, so whatever stops the process — a clean exit,
    the launcher's ``SIGTERM``, a crash — the shard on disk is valid up
    to the last event. Records are *also* kept in memory, so in-process
    uses (tests, the in-process launcher mode) can read them back without
    touching the filesystem.
    """

    __slots__ = ("_fh",)

    def __init__(self, path, meta: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(enabled=True)
        self._fh = open(path, "w", encoding="utf-8", buffering=1)
        header: Dict[str, Any] = {"schema": SCHEMA}
        if meta:
            header["meta"] = meta
        self._fh.write(json.dumps(header, separators=(",", ":")) + "\n")

    def record(self, time: float, kind: str, site: int, detail: Any = None) -> None:
        if not self.enabled:
            return
        rec = TraceRecord(time=time, kind=kind, site=site, detail=detail)
        self._records.append(rec)
        self._fh.write(encode_record(rec) + "\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()


@dataclass
class NetStats:
    """Counters one site's substrate keeps, reported in its done-file."""

    #: Protocol messages this site paid for (the paper's unit of cost).
    messages_sent: int = 0
    by_type: Dict[str, int] = field(default_factory=dict)
    #: Raw datagrams actually written to the socket.
    datagrams_sent: int = 0
    datagrams_received: int = 0
    #: Datagrams suppressed/duplicated by injected chaos.
    chaos_dropped: int = 0
    chaos_duplicated: int = 0
    #: Inbound datagrams that failed to decode (logged and dropped).
    decode_errors: int = 0


class _UdpProtocol(asyncio.DatagramProtocol):
    """Thin adapter: hands received datagrams to the substrate."""

    def __init__(self, substrate: "NetSubstrate") -> None:
        self._substrate = substrate

    def datagram_received(self, data: bytes, addr) -> None:
        self._substrate.datagram_received(data)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        # ICMP errors (peer socket gone) are indistinguishable from loss
        # as far as the protocol stack cares; the reliable layer heals.
        pass


class NetSubstrate:
    """Substrate implementation over one asyncio UDP endpoint.

    Lifecycle: construct → :meth:`add_node` → ``await`` :meth:`start`
    (binds the socket; the port is then readable) → :meth:`configure`
    with the address book and shared epoch → :meth:`start_nodes` →
    exchange traffic → :meth:`close`.
    """

    def __init__(
        self,
        site_id: SiteId,
        config: NetRunConfig,
        trace: Optional[Trace] = None,
    ) -> None:
        self.site_id = site_id
        self.config = config
        self.nodes: Dict[SiteId, Node] = {}
        self.trace: Trace = trace if trace is not None else Trace(enabled=True)
        #: Deterministic streams for protocol-level consumers (same
        #: derivation tree as the simulator's, rooted at the run seed).
        self.seeds = SeedSequence(config.seed)
        self.stats = NetStats()
        self.transport: Optional[ReliableTransport] = None
        self._unit = config.unit
        self._epoch_wall = time.time()
        self._addresses: Dict[SiteId, Tuple[str, int]] = {}
        self._endpoint = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.port: Optional[int] = None
        # Chaos streams are rooted at chaos_seed and derived per sender
        # site, so every process draws from its own reproducible stream
        # no matter how wall-clock time interleaves them.
        self._chaos_rng = (
            SeedSequence(config.chaos_seed).derive(f"udp-chaos:{site_id}")
            if (config.loss or config.duplicate)
            else None
        )

    # -- construction ------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Host ``node`` on this substrate (normally exactly one)."""
        if node.site_id in self.nodes:
            raise ConfigurationError(
                f"site {node.site_id} already hosted on this substrate"
            )
        self.nodes[node.site_id] = node
        node.bind(self)
        return node

    def install_transport(self, config=None) -> ReliableTransport:
        """Install the reliable-channel layer (the simulator's, reused)."""
        self.transport = ReliableTransport(self, config)
        return self.transport

    async def start(self) -> int:
        """Bind the UDP socket; returns the chosen port."""
        self._loop = asyncio.get_running_loop()
        transport, _ = await self._loop.create_datagram_endpoint(
            lambda: _UdpProtocol(self), local_addr=(self.config.host, 0)
        )
        self._endpoint = transport
        self.port = self._endpoint.get_extra_info("sockname")[1]
        return self.port

    def configure(
        self, addresses: Dict[SiteId, Tuple[str, int]], epoch_wall: float
    ) -> None:
        """Install the peer address book and the shared clock epoch."""
        self._addresses = dict(addresses)
        self._epoch_wall = epoch_wall

    def start_nodes(self) -> None:
        """Fire every hosted node's ``on_start`` hook."""
        for node in self.nodes.values():
            node.on_start()

    def close(self) -> None:
        """Tear down the socket (idempotent)."""
        if self._endpoint is not None:
            self._endpoint.close()
            self._endpoint = None

    # -- substrate interface: clock and timers -----------------------------

    @property
    def now(self) -> float:
        """Current time in simulation units since the shared epoch."""
        return (time.time() - self._epoch_wall) / self._unit

    def schedule_call(
        self,
        delay: float,
        fn: Callable[..., None],
        args: Tuple[Any, ...] = (),
        label: str = "",
    ) -> TimerHandle:
        """Run ``fn(*args)`` after ``delay`` units (wall-clock mapped)."""
        if self._loop is None:
            raise ConfigurationError(
                "substrate not started: schedule_call before start()"
            )
        return self._loop.call_later(max(delay, 0.0) * self._unit, fn, *args)

    # -- substrate interface: messaging ------------------------------------

    def send(
        self,
        src: SiteId,
        dst: SiteId,
        message: Any,
        type_name: str,
        piggybacked: bool = False,
    ) -> None:
        """Accept one protocol message from a hosted node.

        Counted here, at the protocol layer — one count per message the
        algorithm pays for, a piggyback bundle counted once under its
        combined name — which is the same accounting the simulator's
        network applies and the figure messages-per-CS is computed over.
        """
        self.stats.messages_sent += 1
        by_type = self.stats.by_type
        by_type[type_name] = by_type.get(type_name, 0) + 1
        transport = self.transport
        if transport is not None:
            transport.send(src, dst, message, type_name, piggybacked)
            return
        self.raw_send(src, dst, message, type_name, piggybacked)

    def raw_send(
        self,
        src: SiteId,
        dst: SiteId,
        frame: Any,
        type_name: str,
        piggybacked: bool = False,
    ) -> None:
        """Write one frame to the wire (the transport's down-call).

        Injected chaos happens here — below the reliable layer, exactly
        where the simulated ``FaultModel`` drops and duplicates — so the
        transport has to *earn* the FIFO exactly-once contract on the
        real network too.
        """
        addr = self._addresses.get(dst)
        if addr is None:
            raise ConfigurationError(
                f"site {dst} has no known address (address book incomplete)"
            )
        data = encode_frame(src, dst, frame, type_name)
        copies = 1
        rng = self._chaos_rng
        if rng is not None:
            if rng.random() < self.config.loss:
                self.stats.chaos_dropped += 1
                copies = 0
            elif rng.random() < self.config.duplicate:
                self.stats.chaos_duplicated += 1
                copies = 2
        if self._endpoint is None:
            raise ConfigurationError("substrate not started: raw_send on a closed socket")
        for _ in range(copies):
            self._endpoint.sendto(data, addr)
            self.stats.datagrams_sent += 1

    def datagram_received(self, data: bytes) -> None:
        """Inbound datagram: decode, gate, and hand up the stack."""
        self.stats.datagrams_received += 1
        try:
            src, dst, frame, _type_name = decode_frame(data)
        except ConfigurationError:
            self.stats.decode_errors += 1
            return
        node = self.nodes.get(dst)
        if node is None:
            # Misaddressed (stray traffic on a reused port): drop.
            self.stats.decode_errors += 1
            return
        if node.crashed:
            return
        transport = self.transport
        if transport is not None:
            transport.on_network_deliver(src, dst, frame)
            return
        self.deliver_protocol(src, dst, frame)

    def deliver_protocol(self, src: SiteId, dst: SiteId, message: Any) -> None:
        """Deliver an unwrapped protocol message (transport layer exit)."""
        node = self.nodes[dst]
        if node.crashed:
            return
        trace = self.trace
        if trace.enabled:
            trace.record(self.now, "deliver", dst, message)
        node.on_message(src, message)

    def deliver_local(self, site: SiteId, message: Any) -> None:
        """Deliver a self-addressed message (no network, no cost)."""
        node = self.nodes[site]
        if node.crashed:
            return
        trace = self.trace
        if trace.enabled:
            trace.record(self.now, "deliver-local", site, message)
        node.on_message(site, message)

    # -- failure injection -------------------------------------------------

    def crash(self, site: SiteId) -> None:
        """Fail-stop a hosted ``site`` (mirrors ``Simulator.crash``)."""
        node = self.nodes[site]
        if node.crashed:
            return
        node.crashed = True
        if self.transport is not None:
            self.transport.reset_site(site)
        self.trace.record(self.now, "crash", site)
        node.on_crash()

    def recover(self, site: SiteId) -> None:
        """Bring a crashed hosted ``site`` back."""
        node = self.nodes[site]
        if not node.crashed:
            return
        node.crashed = False
        self.trace.record(self.now, "recover", site)
        node.on_recover()

    # -- substrate interface: misc ----------------------------------------

    def is_crashed(self, site: SiteId) -> bool:
        """Local liveness only: a remote site's health is unknowable here
        (that is what failure detectors are for), so non-hosted sites
        report not-crashed."""
        node = self.nodes.get(site)
        return node.crashed if node is not None else False

    def rng(self, name: str):
        """Named deterministic RNG stream derived from the run seed."""
        return self.seeds.derive(name)

    # -- quiescence --------------------------------------------------------

    def idle(self) -> bool:
        """True when every hosted node is drained and no channel this
        substrate sends on still has unacked traffic in flight."""
        for node in self.nodes.values():
            if getattr(node, "has_work", False):
                return False
        if self.transport is not None and self.transport.unacked_counts():
            return False
        return True
