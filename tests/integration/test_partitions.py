"""Integration: network partitions — quorum safety and detector healing.

The quorum intersection property gives partition *safety* for free: two
disconnected halves cannot both assemble quorums, so at most one side
keeps serving. The heartbeat detector turns the silent links into
(symmetric) suspicions; when the partition heals, the first messages
through the restored links refute the suspicions and both sides
re-integrate — without any site having crashed.
"""

from __future__ import annotations

import pytest

from repro.ft.recovery import MonitoredSite
from repro.metrics.collector import MetricsCollector
from repro.quorums.registry import make_quorum_system
from repro.sim.network import ConstantDelay
from repro.sim.simulator import Simulator
from repro.verify.invariants import check_mutual_exclusion


def build(n=9, quorum="majority", seed=0, cs=0.2):
    qs = make_quorum_system(quorum, n)
    sim = Simulator(seed=seed, delay_model=ConstantDelay(1.0))
    col = MetricsCollector()
    sites = [
        MonitoredSite(
            i, qs, cs_duration=cs, listener=col,
            hb_interval=2.0, hb_timeout=6.0, hb_lifetime=400.0,
        )
        for i in range(n)
    ]
    for s in sites:
        sim.add_node(s)
    return sim, sites, col


def partition(sim, side_a, side_b):
    for a in side_a:
        for b in side_b:
            sim.network.sever(a, b)


def heal(sim, side_a, side_b):
    for a in side_a:
        for b in side_b:
            sim.network.heal(a, b)


def test_minority_side_blocks_majority_side_serves():
    sim, sites, col = build(n=9, quorum="majority", seed=1)
    majority_side = [0, 1, 2, 3, 4]
    minority_side = [5, 6, 7, 8]
    sim.schedule(0.0, lambda: partition(sim, majority_side, minority_side))
    # Both sides request after the split is detected.
    for s in sites:
        sim.schedule(30.0, s.submit_request)
    sim.start()
    sim.run(until=120.0)
    check_mutual_exclusion(col.records)
    served = {r.site for r in col.records if r.complete}
    assert set(majority_side) <= served
    assert not (served & set(minority_side))
    # The minority knows it is blocked rather than hanging silently.
    for m in minority_side:
        assert sites[m].inaccessible


def test_partition_heals_and_minority_recovers():
    sim, sites, col = build(n=9, quorum="majority", seed=2)
    side_a = [0, 1, 2, 3, 4]
    side_b = [5, 6, 7, 8]
    sim.schedule(0.0, lambda: partition(sim, side_a, side_b))
    for s in sites:
        sim.schedule(30.0, s.submit_request)
    sim.schedule(120.0, lambda: heal(sim, side_a, side_b))
    sim.start()
    sim.run(until=500.0)
    check_mutual_exclusion(col.records)
    # After healing, every request (including the minority's parked ones)
    # completes and all suspicions are withdrawn.
    assert all(r.complete for r in col.records), [
        r.site for r in col.records if not r.complete
    ]
    for s in sites:
        assert not s.monitor.suspected
        assert not s.known_failed


def test_tree_quorums_at_most_one_side_constructs():
    """With tree quorums the serving side is whichever can still build a
    root-substituted path structure — never both (AA intersection)."""
    sim, sites, col = build(n=7, quorum="tree", seed=3)
    side_a = [0, 1, 3, 4]  # root's left subtree plus root
    side_b = [2, 5, 6]     # right subtree
    sim.schedule(0.0, lambda: partition(sim, side_a, side_b))
    for s in sites:
        sim.schedule(30.0, s.submit_request)
    sim.start()
    sim.run(until=150.0)
    check_mutual_exclusion(col.records)
    served_sides = {
        ("a" if r.site in side_a else "b")
        for r in col.records
        if r.complete and r.request_time >= 30.0
    }
    assert len(served_sides) <= 1
