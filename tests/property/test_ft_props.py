"""Property test: the fault-tolerant algorithm under arbitrary crash
schedules.

Hypothesis picks the quorum construction, system size, delays, workload,
victims, and crash/detection times; the run must preserve mutual exclusion
throughout, and every live site's request must either complete or the site
must explicitly know it is inaccessible (no silent starvation).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.faults import FaultTolerantSite
from repro.ft.recovery import CrashPlan
from repro.metrics.collector import MetricsCollector
from repro.quorums.registry import make_quorum_system
from repro.sim.network import ConstantDelay, ExponentialDelay
from repro.sim.simulator import Simulator
from repro.verify.invariants import check_mutual_exclusion

scenarios = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 2**32 - 1),
        "n": st.integers(4, 12),
        "quorum": st.sampled_from(
            ["tree", "majority", "hierarchical", "grid-set", "rst"]
        ),
        "constant_delay": st.booleans(),
        "victims": st.integers(1, 2),
    }
)


@given(scenario=scenarios, data=st.data())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_crashes_never_violate_safety_or_strand_silently(scenario, data):
    n = scenario["n"]
    system = make_quorum_system(scenario["quorum"], n)
    delay = (
        ConstantDelay(1.0) if scenario["constant_delay"] else ExponentialDelay(1.0)
    )
    sim = Simulator(seed=scenario["seed"], delay_model=delay)
    collector = MetricsCollector()
    sites = [
        FaultTolerantSite(i, system, cs_duration=0.15, listener=collector)
        for i in range(n)
    ]
    for site in sites:
        sim.add_node(site)
        for _ in range(3):
            sim.schedule(0.0, site.submit_request)

    victims = data.draw(
        st.lists(
            st.integers(0, n - 1),
            min_size=scenario["victims"],
            max_size=scenario["victims"],
            unique=True,
        ),
        label="victims",
    )
    plan = CrashPlan()
    for v in victims:
        at = data.draw(st.floats(1.0, 20.0), label=f"crash-time[{v}]")
        detect = data.draw(st.floats(0.1, 4.0), label=f"detect-delay[{v}]")
        plan.crash(v, at_time=at, detection_delay=detect)
    plan.install(sim, sites)

    sim.start()
    sim.run(until=1_000_000.0, max_events=3_000_000)
    assert sim.pending_events() == 0, "run hit the safety cap"

    # Safety: Theorem 1 holds through crashes and recovery.
    check_mutual_exclusion(collector.records)

    # Liveness: a live site's unserved request is only acceptable when the
    # site knows it cannot assemble a quorum (inaccessible).
    victims_set = set(victims)
    starved = {
        r.site
        for r in collector.records
        if not r.complete and r.site not in victims_set
    }
    inaccessible = {
        s.site_id
        for s in sites
        if s.site_id not in victims_set and (s.inaccessible or s.has_work)
    }
    silently_starved = {
        s for s in starved if not sites[s].inaccessible
    }
    assert not silently_starved, (
        f"sites {sorted(silently_starved)} starved without knowing why "
        f"(victims {sorted(victims_set)})"
    )
