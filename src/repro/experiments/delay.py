"""Experiment E4 — the headline claim: synchronization delay ``T`` vs ``2T``.

At heavy load the contended exit-to-entry gap should be about one message
latency for the proposed algorithm and about two for Maekawa (and for the
transfer-disabled ablation, which degenerates to Maekawa's release path).
Measured across system sizes with a constant-delay network so the ideal
values are exact.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.report import ExperimentReport
from repro.experiments.runner import RunConfig, run_mutex
from repro.sim.network import ConstantDelay
from repro.workload.driver import SaturationWorkload

DEFAULT_SIZES = (9, 16, 25)
ALGORITHMS = ("cao-singhal", "cao-singhal-no-transfer", "maekawa")


def run_delay(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seed: int = 4,
    requests_per_site: int = 20,
    quorum: str = "grid",
    cs_duration: float = 1.0,
) -> ExperimentReport:
    """Sync delay of proposed vs Maekawa vs ablation, across N.

    ``cs_duration`` defaults to ``T``: the paper's argument that "a site
    waiting to execute the CS has enough time to obtain all reply messages
    except the reply from the site in the CS" needs the CS tenure to cover
    the inquire/yield pipeline; with ``E >= T`` the measured delays are
    exactly ``1T`` and ``2T``. Shorter CS times push the proposed
    algorithm's mean toward ~1.3T (the median stays at ``T``) because some
    handoffs catch the pipeline cold.
    """
    report = ExperimentReport(
        experiment_id="E4",
        title=f"Synchronization delay at heavy load, E={cs_duration}T "
        "(paper: proposed = 1T, Maekawa = 2T)",
        headers=["N"]
        + [f"{a} mean" for a in ALGORITHMS]
        + [f"{a} p50" for a in ALGORITHMS],
    )
    for n in sizes:
        means = []
        medians = []
        for algorithm in ALGORITHMS:
            summary = run_mutex(
                RunConfig(
                    algorithm=algorithm,
                    n_sites=n,
                    quorum=quorum,
                    seed=seed,
                    delay_model=ConstantDelay(1.0),
                    cs_duration=cs_duration,
                    workload=SaturationWorkload(requests_per_site),
                )
            ).summary
            means.append(summary.sync_delay_in_t)
            medians.append(summary.sync_delay.p50)
        report.add_row(n, *means, *medians)
    report.add_note(
        "cao-singhal-no-transfer is the E9 ablation: disabling direct "
        "forwarding restores Maekawa's release->arbiter->reply relay, and "
        "its delay should match Maekawa's."
    )
    return report
