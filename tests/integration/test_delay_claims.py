"""Integration: the paper's headline delay and message claims, end to end.

With a constant-delay network and CS duration >= T, the claims are exact:

* proposed algorithm: contended handoffs take exactly 1T (median & p95);
* Maekawa: exactly 2T;
* light load: exactly 3(K-1) messages, response exactly 2T + E;
* heavy load: messages within [3(K-1), 6(K-1)].
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import RunConfig, run_mutex
from repro.sim.network import ConstantDelay
from repro.workload.driver import SaturationWorkload
from repro.workload.scenarios import light_load


def heavy(algorithm, n=16, cs=1.0, seed=2, quorum="grid", rps=15):
    return run_mutex(
        RunConfig(
            algorithm=algorithm,
            n_sites=n,
            quorum=quorum,
            seed=seed,
            delay_model=ConstantDelay(1.0),
            cs_duration=cs,
            workload=SaturationWorkload(rps),
        )
    ).summary


def test_proposed_sync_delay_is_exactly_one_t():
    summary = heavy("cao-singhal")
    assert summary.sync_delay.p50 == pytest.approx(1.0, abs=1e-6)
    assert summary.sync_delay_in_t == pytest.approx(1.0, abs=0.05)


def test_maekawa_sync_delay_is_exactly_two_t():
    summary = heavy("maekawa")
    assert summary.sync_delay.p50 == pytest.approx(2.0, abs=1e-6)
    assert summary.sync_delay_in_t == pytest.approx(2.0, abs=0.05)


def test_ablation_matches_maekawa_exactly():
    ablated = heavy("cao-singhal-no-transfer")
    maekawa = heavy("maekawa")
    assert ablated.sync_delay_in_t == pytest.approx(maekawa.sync_delay_in_t, abs=1e-9)
    assert ablated.messages_per_cs == pytest.approx(maekawa.messages_per_cs, abs=1e-9)


def test_delay_optimality_floor():
    """No permission-based algorithm can beat 1T: the proposed algorithm
    achieves the floor (the paper's optimality claim)."""
    for algorithm in ("lamport", "ricart-agrawala", "cao-singhal"):
        summary = heavy(algorithm, quorum="grid" if algorithm == "cao-singhal" else None)
        assert summary.sync_delay_in_t >= 1.0 - 1e-9


def test_light_load_exact_cost_and_response():
    summary = run_mutex(
        RunConfig(
            algorithm="cao-singhal",
            n_sites=25,
            quorum="grid",
            seed=4,
            delay_model=ConstantDelay(1.0),
            cs_duration=0.5,
            workload=light_load(horizon=2500.0, rate=0.0008),
        )
    ).summary
    k = summary.mean_quorum_size
    # Contention is rare but not impossible; the mean gets a whisker, the
    # median is exact (an uncontended execution is exactly 2T + E).
    assert summary.messages_per_cs == pytest.approx(3 * (k - 1), rel=0.03)
    assert summary.response_time.p50 == pytest.approx(2.0 + 0.5, abs=1e-9)
    assert summary.response_time_in_t == pytest.approx(2.0 + 0.5, rel=0.10)


def test_heavy_load_messages_within_paper_band():
    summary = heavy("cao-singhal", n=25, cs=0.05, rps=25)
    k = summary.mean_quorum_size
    assert 3 * (k - 1) - 1e-9 <= summary.messages_per_cs <= 6 * (k - 1) + 1e-9


def test_throughput_improvement_with_small_cs():
    proposed = heavy("cao-singhal", cs=0.05)
    maekawa = heavy("maekawa", cs=0.05)
    ratio = proposed.throughput / maekawa.throughput
    assert ratio > 1.4  # paper: -> 2 as E -> 0
    wait_ratio = maekawa.waiting_time.mean / proposed.waiting_time.mean
    assert wait_ratio > 1.4  # paper: waiting time nearly halved
