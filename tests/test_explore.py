"""Tests for the exhaustive interleaving explorer.

These are the strongest correctness statements in the suite: for the
configurations below, the paper's Theorems 1-3 hold on *every* possible
message/timer interleaving, not just sampled schedules.
"""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError
from repro.verify.explore import ExplorationResult, build_world, explore


def test_single_site_self_quorum():
    result = explore([{0}], [2])
    assert result.complete
    assert result.terminal_states >= 1


def test_two_requesters_shared_arbiter_all_interleavings():
    result = explore([{2}, {2}, {2}], [1, 1, 0])
    assert result.complete
    assert result.states_explored > 50  # genuinely many distinct states


def test_three_requesters_shared_arbiter():
    result = explore([{3}, {3}, {3}, {3}], [1, 1, 1, 0], max_states=200_000)
    assert result.complete


def test_two_sites_mutual_arbiters():
    """Both sites arbitrate for each other: the inquire/yield machinery is
    fully exercised across every interleaving."""
    result = explore([{0, 1}, {0, 1}], max_states=200_000)
    assert result.complete


def test_back_to_back_requests_every_interleaving():
    result = explore([{2}, {2}, {2}], [2, 2, 0], max_states=300_000)
    assert result.complete


def test_no_transfer_variant_also_safe():
    result = explore(
        [{0, 1}, {0, 1}], enable_transfer=False, max_states=200_000
    )
    assert result.complete


def test_state_budget_is_exact():
    """``max_states`` is a hard, exact cap: the search expands exactly
    that many distinct states before giving up (the first-generation
    explorer overshot by one — the check ran after the increment)."""
    result = explore([{0, 1}, {0, 1}], max_states=50)
    assert not result.complete
    assert result.states_explored == 50


def test_build_world_validates_request_vector():
    from repro.errors import ProtocolError

    with pytest.raises(ProtocolError):
        build_world([{0}], requests_per_site=[1, 2])


def test_explorer_catches_seeded_deadlock():
    """Sanity for the harness itself: a site whose quorum nobody serves
    (an arbiter that is never part of the world... simulated by a quorum
    pointing at a site that never grants because it never receives the
    request channel's delivery) must be reported.

    We simulate a broken protocol by giving site 0 a quorum containing a
    site that is in the world but to which we never deliver anything —
    impossible via explore() itself (it delivers everything), so instead
    we check the terminal checker directly on a hand-built world.
    """
    world = build_world([{1}, {1}], requests_per_site=[1, 0])
    # Don't run anything: the pending request makes this non-terminal
    # state fail the terminal check.
    from repro.verify.explore import _check_terminal

    with pytest.raises(DeadlockError):
        _check_terminal(world, expected=1)


def test_two_requesters_two_arbiters():
    """The smallest topology with cross-arbiter forwarding chains (the
    shape both machine-found paper gaps live in)."""
    result = explore([{2, 3}, {2, 3}, {2}, {3}], [1, 1, 0, 0],
                     max_states=300_000)
    assert result.complete


import os


@pytest.mark.skipif(
    not os.environ.get("REPRO_SLOW"),
    reason="~40s exhaustive exploration; set REPRO_SLOW=1 to run",
)
def test_two_requesters_two_arbiters_two_requests():
    result = explore([{2, 3}, {2, 3}, {2}, {3}], [2, 1, 0, 0],
                     max_states=500_000)
    assert result.complete
