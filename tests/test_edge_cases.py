"""Edge-case and error-path tests across modules."""

from __future__ import annotations

import math

import pytest

from repro.common import Priority
from repro.core.site import CaoSinghalSite
from repro.errors import ConfigurationError, ProtocolError
from repro.experiments.runner import RunConfig, run_mutex
from repro.metrics.summary import summarize
from repro.mutex.base import MutexSite, SiteState
from repro.sim.network import ConstantDelay
from repro.sim.simulator import Simulator
from repro.workload.driver import SaturationWorkload


def make_site(quorum={0}):
    sim = Simulator(seed=0, delay_model=ConstantDelay(1.0))
    site = CaoSinghalSite(0, quorum)
    sim.add_node(site)
    sim.start()
    return sim, site


# -- core protocol error paths -------------------------------------------------


def test_unknown_message_type_raises():
    sim, site = make_site()
    with pytest.raises(ProtocolError):
        site.on_message(1, object())


def test_reply_from_non_quorum_arbiter_raises():
    from repro.core.messages import Reply

    sim = Simulator(seed=0, delay_model=ConstantDelay(1.0))
    site = CaoSinghalSite(0, {0, 1})
    sim.add_node(site)
    sim.start()
    site.submit_request()
    priority = site.req.priority
    with pytest.raises(ProtocolError):
        site._record_reply(Reply(arbiter=7, grantee=priority))


def test_empty_quorum_rejected():
    with pytest.raises(ProtocolError):
        CaoSinghalSite(0, set())


def test_free_arbiter_with_queue_is_invariant_violation():
    from repro.core.messages import Request

    sim, site = make_site()
    site.arbiter.req_queue.push(Priority(1, 1))  # corrupt by hand
    with pytest.raises(ProtocolError):
        site._handle_request(Request(Priority(2, 2)))


def test_yield_without_better_waiter_is_protocol_error():
    from repro.core.messages import Request, Yield

    sim, site = make_site()
    site._handle_request(Request(Priority(1, 1)))
    with pytest.raises(ProtocolError):
        site._handle_yield(
            Yield(yielder=Priority(1, 1), epoch=site.arbiter.epoch)
        )


def test_stale_yield_is_ignored():
    from repro.core.messages import Request, Yield

    sim, site = make_site()
    site._handle_request(Request(Priority(1, 1)))
    site._handle_yield(Yield(yielder=Priority(9, 9), epoch=1))  # not lock
    site._handle_yield(Yield(yielder=Priority(1, 1), epoch=99))  # old tenure
    assert site.arbiter.lock == Priority(1, 1)


# -- base lifecycle error paths ----------------------------------------------------


def test_release_cs_outside_cs_raises():
    class Manual(MutexSite):
        def _begin_request(self):
            self._enter_cs()

        def _exit_protocol(self):
            pass

    sim = Simulator(seed=0)
    site = Manual(0, cs_duration=None)
    sim.add_node(site)
    sim.start()
    with pytest.raises(ProtocolError):
        site.release_cs()
    site.submit_request()
    assert site.state is SiteState.IN_CS
    site.release_cs()
    assert site.state is SiteState.IDLE


# -- runner configuration errors -----------------------------------------------------


def test_quorum_for_non_quorum_algorithm_rejected():
    config = RunConfig(algorithm="lamport", quorum="grid")
    with pytest.raises(ConfigurationError):
        run_mutex(config)


def test_safety_cap_raises_instead_of_hanging():
    config = RunConfig(
        algorithm="cao-singhal",
        n_sites=9,
        quorum="grid",
        workload=SaturationWorkload(50),
        max_events=100,  # absurdly small: must trip the cap
    )
    with pytest.raises(ConfigurationError):
        run_mutex(config)


def test_unverified_run_skips_checks():
    config = RunConfig(
        algorithm="cao-singhal",
        n_sites=4,
        quorum="grid",
        workload=SaturationWorkload(2),
        max_events=100,
        verify=False,  # cap hit, but no verification -> no raise
    )
    result = run_mutex(config)
    assert result.summary.completed >= 0


# -- summaries of degenerate runs ---------------------------------------------------


def test_summary_of_empty_run_is_nan_safe():
    summary = summarize(
        algorithm="x",
        n_sites=3,
        records=[],
        messages_sent=0,
        messages_by_type={},
        duration=0.0,
        mean_delay_t=1.0,
        seed=0,
    )
    assert summary.completed == 0
    assert math.isnan(summary.messages_per_cs)
    assert math.isnan(summary.throughput)
    text = summary.describe()  # must not blow up on NaNs
    assert "completed" in text


def test_priority_sentinel_not_in_queue_operations():
    from repro.core.state import RequestQueue

    q = RequestQueue()
    q.push(Priority.maximum())
    assert q.head().is_max
