"""The fault-aware stateless model checker (second-generation explorer).

The first-generation explorer was a single module doing deep-copy DFS
over failure-free worlds. This package keeps its public contract —
``explore`` raises on any safety/liveness failure, ``build_world``
constructs an initial world, ``_ExploreSite`` is the monkeypatchable
default site class — and extends it along three axes (DESIGN.md,
"A fault-aware stateless model checker"):

* :mod:`.search` — sleep-set dynamic partial-order reduction with state
  caching, exact state budgets, and counterexample paths;
* :mod:`.world` — copy-on-apply worlds with incremental fingerprints
  and a fault-oracle alphabet (crash/detect/recover/readmit, cut/heal)
  bounded by a :class:`~repro.ft.chaos.FaultBudget`;
* :mod:`.counterexample` — shrinking and the JSONL round-trip into
  :class:`~repro.obs.monitor.ProtocolMonitor`.

``from repro.verify.explore import ...`` exposes everything the tests
and the CLI use; ``repro.verify`` re-exports the stable core.
"""

from repro.ft.chaos import FaultBudget
from repro.verify.explore.actions import (
    Action,
    decode_action,
    decode_path,
    encode_action,
    encode_path,
    independent,
)
from repro.verify.explore.counterexample import (
    COUNTEREXAMPLE_KIND,
    counterexample_records,
    export_counterexample,
    load_counterexample,
    replay_counterexample,
    replay_path,
    shrink_path,
)
from repro.verify.explore.search import (
    CounterexampleFound,
    ExplorationResult,
    explore,
)
from repro.verify.explore.world import (
    _check_terminal,
    _ExploreFTSite,
    _ExploreSite,
    _World,
    build_world,
)

__all__ = [
    "Action",
    "COUNTEREXAMPLE_KIND",
    "CounterexampleFound",
    "ExplorationResult",
    "FaultBudget",
    "build_world",
    "counterexample_records",
    "decode_action",
    "decode_path",
    "encode_action",
    "encode_path",
    "explore",
    "export_counterexample",
    "independent",
    "load_counterexample",
    "replay_counterexample",
    "replay_path",
    "shrink_path",
]
