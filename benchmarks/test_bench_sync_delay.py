"""E4 — the headline claim: synchronization delay T vs 2T across N."""

from __future__ import annotations

import pytest

from repro.experiments.delay import run_delay


def test_bench_sync_delay(run_experiment):
    report = run_experiment(
        run_delay, sizes=(9, 16, 25), requests_per_site=20, cs_duration=1.0
    )
    for row in report.rows:
        n, proposed, ablation, maekawa = row[0], row[1], row[2], row[3]
        assert proposed == pytest.approx(1.0, abs=0.1), f"N={n}"
        assert maekawa == pytest.approx(2.0, abs=0.1), f"N={n}"
        assert ablation == pytest.approx(maekawa, rel=0.02), f"N={n}"
        # Medians are exact.
        assert row[4] == pytest.approx(1.0, abs=1e-6)
        assert row[6] == pytest.approx(2.0, abs=1e-6)
