"""Failure injection and the full monitored fault-tolerant site.

Two ways to drive the Section 6 recovery protocol:

* :class:`MonitoredSite` — a
  :class:`~repro.core.faults.FaultTolerantSite` with an embedded
  :class:`~repro.ft.detector.HeartbeatMonitor`; on suspicion it broadcasts
  the paper's ``failure(i)`` notice. Fully message-driven, end-to-end
  realistic.
* :class:`CrashPlan` — an oracle injector for deterministic experiments:
  crashes a site at a chosen time and delivers ``failure(i)`` notices to
  every live site after a fixed detection latency, without heartbeat
  traffic polluting the message counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.core.faults import FaultTolerantSite
from repro.core.messages import FailureNotice
from repro.errors import ConfigurationError
from repro.ft.detector import Heartbeat, HeartbeatMonitor
from repro.mutex.base import DurationSpec, RunListener
from repro.quorums.coterie import QuorumSystem
from repro.substrate import SiteId
from repro.sim.simulator import Simulator


class MonitoredSite(FaultTolerantSite):
    """Fault-tolerant site with heartbeat failure detection built in."""

    algorithm_name = "cao-singhal-ft-monitored"

    def __init__(
        self,
        site_id: SiteId,
        quorum_system: QuorumSystem,
        cs_duration: DurationSpec = 0.1,
        listener: Optional[RunListener] = None,
        hb_interval: float = 5.0,
        hb_timeout: float = 12.0,
        hb_lifetime: float = 10_000.0,
    ) -> None:
        super().__init__(site_id, quorum_system, cs_duration, listener)
        self.monitor = HeartbeatMonitor(
            node=self,
            peers=range(quorum_system.n),
            interval=hb_interval,
            timeout=hb_timeout,
            lifetime=hb_lifetime,
            on_suspect=self._on_suspect,
        )

    def on_start(self) -> None:
        self.monitor.start()

    def _on_suspect(self, suspect: SiteId) -> None:
        """Broadcast the paper's ``failure(i)`` and apply it locally."""
        notice = FailureNotice(failed_site=suspect)
        for peer in range(self.quorum_system.n):
            if peer not in (self.site_id, suspect) and peer not in self.known_failed:
                self.send(peer, notice)
        self.notify_failure(suspect)

    def on_message(self, src: SiteId, message: object) -> None:
        refuted = self.monitor.observe(src)
        if refuted is not None:
            # A presumed-dead site spoke: it survived (partition, not a
            # crash) or has rejoined. Withdraw the suspicion and re-admit
            # it — notify_recovery cleans any residue and unblocks
            # inaccessible requests.
            self.notify_recovery(refuted)
        if isinstance(message, Heartbeat):
            return
        super().on_message(src, message)


@dataclass
class ChurnPlan:
    """Crash *and recovery* schedule (rejoin extension, not in the paper).

    Each entry crashes a site at ``crash_at``, delivers ``failure``
    notices ``detection_delay`` later, recovers the site at
    ``recover_at`` (its volatile state is reset — fail-stop recovery),
    and delivers recovery notices ``detection_delay`` after that. Sound
    under the oracle ordering the injector enforces: a site's recovery
    notice reaches every live peer only after its failure cleanup ran
    there (``notify_recovery`` forces the cleanup when notices race).
    """

    @dataclass(frozen=True)
    class Entry:
        site: SiteId
        crash_at: float
        recover_at: float
        detection_delay: float = 2.0

    entries: List["ChurnPlan.Entry"] = field(default_factory=list)

    def churn(
        self,
        site: SiteId,
        crash_at: float,
        recover_at: float,
        detection_delay: float = 2.0,
    ) -> "ChurnPlan":
        """Add one crash/recover cycle (chainable)."""
        if not 0 <= crash_at < recover_at:
            raise ConfigurationError(
                f"need 0 <= crash_at < recover_at, got {crash_at}, {recover_at}"
            )
        if detection_delay < 0:
            raise ConfigurationError("detection_delay must be >= 0")
        self.entries.append(self.Entry(site, crash_at, recover_at, detection_delay))
        return self

    def install(self, sim: Simulator, sites: Sequence[FaultTolerantSite]) -> None:
        """Schedule every cycle's crash, detection, recovery, readmission."""
        by_id = {s.site_id: s for s in sites}
        for entry in self.entries:
            if entry.site not in by_id:
                raise ConfigurationError(f"no site {entry.site} in this run")

            def crash(e=entry):
                sim.crash(e.site)

            def detect(e=entry):
                for s in sites:
                    if s.site_id != e.site and not s.crashed:
                        s.notify_failure(e.site)

            def recover(e=entry):
                sim.recover(e.site)
                alive_view = set()
                for s in sites:
                    if s.crashed:
                        alive_view.add(s.site_id)
                by_id[e.site].reset_after_recovery(known_failed=alive_view)

            def readmit(e=entry):
                for s in sites:
                    if s.site_id != e.site and not s.crashed:
                        s.notify_recovery(e.site)
                by_id[e.site].complete_rejoin()

            sim.schedule(entry.crash_at, crash, label=f"crash:{entry.site}")
            sim.schedule(
                entry.crash_at + entry.detection_delay,
                detect,
                label=f"detect:{entry.site}",
            )
            sim.schedule(entry.recover_at, recover, label=f"recover:{entry.site}")
            sim.schedule(
                entry.recover_at + entry.detection_delay,
                readmit,
                label=f"readmit:{entry.site}",
            )


@dataclass
class CrashPlan:
    """Deterministic crash schedule for experiments.

    Each entry crashes ``site`` at ``at_time``; every live site receives a
    ``failure(site)`` notice ``detection_delay`` later (modelling a perfect
    detector with fixed latency, so recovery behaviour is measured without
    heartbeat noise).
    """

    @dataclass(frozen=True)
    class Entry:
        site: SiteId
        at_time: float
        detection_delay: float = 2.0

    entries: List["CrashPlan.Entry"] = field(default_factory=list)

    def crash(self, site: SiteId, at_time: float, detection_delay: float = 2.0) -> "CrashPlan":
        """Add a crash entry (chainable)."""
        if at_time < 0 or detection_delay < 0:
            raise ConfigurationError("crash times must be non-negative")
        self.entries.append(self.Entry(site, at_time, detection_delay))
        return self

    def install(self, sim: Simulator, sites: Sequence[FaultTolerantSite]) -> None:
        """Schedule all crashes and their detection notices."""
        by_id = {s.site_id: s for s in sites}
        for entry in self.entries:
            if entry.site not in by_id:
                raise ConfigurationError(f"no site {entry.site} in this run")

            def make_crash(e: "CrashPlan.Entry"):
                def do_crash() -> None:
                    sim.crash(e.site)

                return do_crash

            def make_detect(e: "CrashPlan.Entry"):
                def do_detect() -> None:
                    for s in sites:
                        if s.site_id != e.site and not s.crashed:
                            s.notify_failure(e.site)

                return do_detect

            sim.schedule(entry.at_time, make_crash(entry), label=f"crash:{entry.site}")
            sim.schedule(
                entry.at_time + entry.detection_delay,
                make_detect(entry),
                label=f"detect:{entry.site}",
            )
