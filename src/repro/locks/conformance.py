"""Per-key conformance checking for the sharded lock service.

The single-resource verifier (:mod:`repro.verify.invariants`) checks that
one mutex instance never admits two sites at once. The lock service adds
a second safety surface on top: *per-key* mutual exclusion across the
whole population — no two clients hold the same named lock
simultaneously — while *distinct* keys must be free to proceed
concurrently (that concurrency is the entire point of sharding).

:class:`KeyConformanceChecker` watches grants and releases online and
raises :class:`~repro.errors.MutualExclusionViolation` the instant a key
is double-granted, so a violating schedule fails at the offending event
with both holders identified, not at the end of the run with a pile of
intervals. It also witnesses the concurrency side: the peak number of
distinct keys held at one instant, which conformance tests assert is
``> 1`` (a service that accidentally serialized everything through one
global lock would pass the safety check and fail this one).

:func:`check_key_mutual_exclusion` is the post-hoc flavour over recorded
:class:`~repro.locks.frontend.LockRequest` rows — an independent
re-derivation from the (grant, release) intervals, used by tests to
cross-check the online verdict.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.errors import MutualExclusionViolation
from repro.locks.frontend import LockRequest

__all__ = ["KeyConformanceChecker", "check_key_mutual_exclusion"]


class KeyConformanceChecker:
    """Online per-key mutual-exclusion monitor.

    The service calls :meth:`on_grant` / :meth:`on_release` for every
    lock transition; the checker maintains the set of currently held
    keys and fails fast on a double grant.
    """

    __slots__ = ("holding", "peak_concurrent_keys", "grants")

    def __init__(self) -> None:
        #: Currently held keys → the request holding each.
        self.holding: Dict[str, LockRequest] = {}
        #: High-water mark of distinct keys held at one instant — the
        #: concurrency witness (must exceed 1 under a parallel workload).
        self.peak_concurrent_keys = 0
        self.grants = 0

    def on_grant(self, request: LockRequest) -> None:
        holder = self.holding.get(request.key)
        if holder is not None:
            raise MutualExclusionViolation(
                f"key {request.key!r} granted to client {request.client} "
                f"(shard {request.shard}, site {request.site}) at "
                f"t={request.grant_time:.4f} while held by client "
                f"{holder.client} (granted t={holder.grant_time:.4f})"
            )
        self.holding[request.key] = request
        self.grants += 1
        if len(self.holding) > self.peak_concurrent_keys:
            self.peak_concurrent_keys = len(self.holding)

    def on_release(self, request: LockRequest) -> None:
        holder = self.holding.get(request.key)
        if holder is not request:
            raise MutualExclusionViolation(
                f"key {request.key!r} released by client {request.client} "
                f"at t={request.release_time:.4f} without holding it"
            )
        del self.holding[request.key]


def check_key_mutual_exclusion(requests: Iterable[LockRequest]) -> int:
    """Post-hoc per-key overlap check over completed lock requests.

    Sorts each key's (grant, release) intervals and raises
    :class:`~repro.errors.MutualExclusionViolation` on any overlap —
    strictly: a grant at exactly the previous holder's release instant
    is legal (the front end releases and re-grants in one event).
    Returns the number of *distinct-key* overlapping pairs witnessed
    (adjacent in global grant order), so callers can assert the service
    actually ran keys concurrently. Incomplete requests are ignored.
    """
    by_key: Dict[str, List[LockRequest]] = {}
    completed: List[LockRequest] = []
    for request in requests:
        if not request.complete:
            continue
        by_key.setdefault(request.key, []).append(request)
        completed.append(request)

    for key, rows in by_key.items():
        rows.sort(key=lambda r: r.grant_time)  # type: ignore[arg-type, return-value]
        for prev, cur in zip(rows, rows[1:]):
            if cur.grant_time < prev.release_time:  # type: ignore[operator]
                raise MutualExclusionViolation(
                    f"key {key!r}: client {cur.client} granted at "
                    f"t={cur.grant_time:.4f} overlaps client {prev.client} "
                    f"held until t={prev.release_time:.4f}"
                )

    # Concurrency witness: count adjacent grant pairs (global grant
    # order) whose hold intervals overlap — necessarily distinct keys,
    # since same-key overlaps were just excluded.
    completed.sort(key=lambda r: (r.grant_time, r.key))  # type: ignore[arg-type, return-value]
    overlaps = 0
    for prev, cur in zip(completed, completed[1:]):
        if cur.grant_time < prev.release_time:  # type: ignore[operator]
            overlaps += 1
    return overlaps
