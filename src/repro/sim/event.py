"""Event primitives for the discrete-event simulation kernel.

The kernel is a classic calendar queue: an :class:`Event` is a callback
bound to a simulated time, and ties are broken deterministically by a
monotonically increasing sequence number assigned at scheduling time. That
tie-break makes every simulation run a pure function of its seed, which the
test suite and the benchmark harness rely on.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.errors import SimulationError

#: Type alias for event callbacks. Callbacks take no arguments; bind any
#: context with a closure or :func:`functools.partial`.
Action = Callable[[], None]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, seq)``. ``seq`` is assigned by the queue so two
    events scheduled for the same instant fire in scheduling order, keeping
    runs deterministic without relying on heap internals.
    """

    time: float
    seq: int
    action: Action = field(compare=False)
    #: Human-readable tag used by traces and error messages.
    label: str = field(compare=False, default="")
    #: Cancelled events stay in the heap but are skipped on pop.
    cancelled: bool = field(compare=False, default=False)
    #: Owning queue, set on push; lets cancel() keep the live count exact.
    _queue: Optional["EventQueue"] = field(
        compare=False, default=None, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the queue drops it instead of firing it.

        Idempotent; the owning queue's live count drops immediately, so
        ``len(queue)`` never counts cancelled timers.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects.

    The queue never exposes heap order beyond the strict ``(time, seq)``
    contract. Cancellation is lazy: cancelled events are skipped when
    popped, which keeps :meth:`push` and :meth:`Event.cancel` O(log n) and
    O(1) respectively.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter: Iterator[int] = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, action: Action, label: str = "") -> Event:
        """Schedule ``action`` at ``time`` and return the event handle.

        The handle supports :meth:`Event.cancel` for timers that may be
        disarmed (for example heartbeat timeouts refreshed by a new
        heartbeat).
        """
        event = Event(
            time=time,
            seq=next(self._counter),
            action=action,
            label=label,
            _queue=self,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` to keep the live count exact."""
        self._live -= 1

    def pop(self) -> Optional[Event]:
        """Return the earliest live event, or ``None`` if the queue is empty.

        Cancelled events encountered on the way are discarded silently.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        if self._live:
            # Every live event must be reachable; a mismatch means the
            # cancellation bookkeeping broke.
            raise SimulationError("event queue accounting is corrupt")
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
