"""Merge per-site trace shards into one monitor-replayable stream.

Each site process writes its own ``repro-trace/1`` shard. The runtime
monitor, though, checks *global* invariants (mutual exclusion across
sites, per-arbiter single grant, quorum consistency), so it needs one
totally-ordered record stream. The merge is deliberately simple:

* concatenate all shards' records,
* stable-sort by timestamp.

Timestamps come from one shared wall-clock epoch on one host, so they
are mutually comparable; the *stable* sort preserves each shard's own
append order among equal timestamps, which keeps intra-site causality
(a site's ``cs_enter`` never jumps before the ``deliver`` that caused
it, even when a fast handler runs inside one clock tick).

That ordering is exactly as trustworthy as the clock: with one epoch on
one host it is a linearization of the real execution for any two events
further apart than the clock resolution. The monitor's invariants are
interval-based (CS occupancy, grant/release matching), with durations
of many milliseconds against a microsecond clock, so sort order is a
sound witness — the same argument real distributed tracing systems make
when they merge per-process spans.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs.export import TraceFile, export_jsonl, import_jsonl
from repro.sim.trace import TraceRecord


def merge_records(
    shards: Iterable[Iterable[TraceRecord]],
) -> List[TraceRecord]:
    """Merge record iterables into one time-ordered list (stable)."""
    merged: List[TraceRecord] = []
    for shard in shards:
        merged.extend(shard)
    merged.sort(key=lambda rec: rec.time)
    return merged


def merge_shard_files(
    paths: Sequence[Any],
    out_path: Optional[Any] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> TraceFile:
    """Merge shard files; optionally write the merged stream back out.

    Returns the merged :class:`~repro.obs.export.TraceFile`. The merged
    header starts from the first shard's metadata, records the shard
    count, and applies any ``meta`` overrides on top.
    """
    if not paths:
        raise ConfigurationError("no trace shards to merge")
    shards = [import_jsonl(str(path)) for path in paths]
    records = merge_records(shard.records for shard in shards)
    merged_meta: Dict[str, Any] = dict(shards[0].meta)
    merged_meta["merged_shards"] = len(shards)
    if meta:
        merged_meta.update(meta)
    merged = TraceFile(schema=shards[0].schema, meta=merged_meta, records=records)
    if out_path is not None:
        export_jsonl(records, out_path, meta=merged_meta)
    return merged
