"""ASCII timeline rendering of CS executions.

Turns a run's :class:`~repro.metrics.collector.CSRecord` rows into a
per-site Gantt chart — one lane per site, ``.`` while waiting, ``#``
inside the CS — which makes handoff behaviour visible at a glance:

```
site 0 |--##....................
site 1 |..…####..................
site 2 |.......####..............
```

Used by the examples and invaluable when debugging protocol traces (a 2T
algorithm shows a one-character gap between consecutive ``#`` runs at
T=char width; a delay-optimal one shows them nearly touching).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.metrics.collector import CSRecord


def render_timeline(
    records: Sequence[CSRecord],
    width: int = 72,
    t_start: Optional[float] = None,
    t_end: Optional[float] = None,
) -> str:
    """Render completed CS records as one ASCII lane per site.

    ``width`` is the number of character cells the time axis is divided
    into; a cell shows ``#`` if the site was in the CS during any part of
    that cell, else ``.`` if it had a request outstanding, else space.
    """
    done = [r for r in records if r.complete]
    if not done:
        return "(no completed executions)"
    lo = t_start if t_start is not None else min(r.request_time for r in done)
    hi = t_end if t_end is not None else max(r.exit_time for r in done)
    if hi <= lo:
        hi = lo + 1.0
    scale = width / (hi - lo)

    def cell_range(a: float, b: float) -> range:
        first = max(0, int((a - lo) * scale))
        last = min(width - 1, int((b - lo) * scale))
        return range(first, last + 1)

    sites = sorted({r.site for r in done})
    lanes = {s: [" "] * width for s in sites}
    for r in done:
        for c in cell_range(r.request_time, r.exit_time):
            if lanes[r.site][c] == " ":
                lanes[r.site][c] = "."
        for c in cell_range(r.enter_time, r.exit_time):
            lanes[r.site][c] = "#"

    label_w = max(len(f"site {s}") for s in sites)
    lines: List[str] = [
        f"{'':>{label_w}} |{lo:<10.2f}{'time':^{max(0, width - 20)}}{hi:>8.2f}"
    ]
    for s in sites:
        lines.append(f"{f'site {s}':>{label_w}} |" + "".join(lanes[s]))
    lines.append(f"{'':>{label_w}} |" + "-" * width)
    return "\n".join(lines)
