"""Orchestrate one real-network run and verify it like a simulated one.

:func:`run_net` supports two spawn modes:

* ``"process"`` — one OS process per site (``repro.net.site_proc``),
  coordinated through files in a shared run directory. This is the
  honest distributed deployment: separate interpreters, separate GILs,
  real scheduling noise, real datagrams.
* ``"inproc"`` — every site gets its own :class:`NetSubstrate` and UDP
  socket inside one asyncio loop in *this* process. Same wire format,
  same substrate code, no fork/exec overhead: the mode CI smoke tests
  use to cover every algorithm quickly.

Either way the output is the same: per-site ``repro-trace/1`` shards,
merged into one stream and replayed through the runtime
:class:`~repro.obs.monitor.ProtocolMonitor` — the *identical* checker the
simulator uses, with zero changes — so mutual exclusion, per-arbiter
single grant, transfer-honoured, and quorum consistency are verified on
real executions too. The :class:`NetRunReport` carries the verdicts plus
the paper's headline metric: messages per CS over the mean quorum size
(``message_complexity_c``), which Section 5 bounds to ``3 <= c <= 6``.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import SimulationError
from repro.net import config as layout
from repro.net.config import NetRunConfig
from repro.net.merge import merge_shard_files
from repro.obs.monitor import ProtocolMonitor
from repro.quorums.registry import make_quorum_system
from repro.workload.driver import SaturationWorkload

#: Poll interval for the file rendezvous (wall seconds).
POLL = 0.02
#: How far in the future the shared epoch is set: every site must have
#: read the address book and be waiting before time zero.
EPOCH_LEAD = {"process": 0.3, "inproc": 0.05}


class NetRunError(SimulationError):
    """A real-network run failed to complete (timeout, dead site, ...)."""


@dataclass
class NetRunReport:
    """Everything a verified real-network run produced."""

    algorithm: str
    n_sites: int
    spawn: str
    submitted: int
    completed: int
    #: Protocol messages summed over sites (acks/retransmits excluded).
    messages_sent: int
    by_type: Dict[str, int]
    messages_per_cs: Optional[float]
    mean_quorum_size: Optional[float]
    #: ``messages_per_cs / mean_quorum_size`` — the paper's ``c``.
    message_complexity_c: Optional[float]
    violations: List[str]
    monitor: Dict[str, Any]
    run_dir: str
    merged_path: str
    wall_seconds: float
    site_summaries: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the monitor found no invariant violations."""
        return not self.violations


# -- process mode ------------------------------------------------------------


def _abort(procs: List[subprocess.Popen], run_dir: Path, why: str) -> "NetRunError":
    """Kill every child and build an error carrying their stderr tails."""
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
    for proc in procs:
        if proc.poll() is None:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                pass
    tails = []
    for i in range(len(procs)):
        log = run_dir / f"stderr-{i}.log"
        if log.exists():
            tail = log.read_text(encoding="utf-8").strip()[-500:]
            if tail:
                tails.append(f"--- site {i} stderr ---\n{tail}")
    detail = "\n".join(tails)
    return NetRunError(why + ("\n" + detail if detail else ""))


def _wait_for_files(
    paths: List[Path],
    procs: List[subprocess.Popen],
    run_dir: Path,
    deadline_wall: float,
    what: str,
    tolerate: bool = False,
) -> "set[int]":
    """Wait for one file per site; returns the sites that never produced one.

    Strict mode (the default) aborts the whole run the moment a site dies
    or the deadline passes — the answer would not be trustworthy. Tolerant
    mode is the crash-harvest path: a dead site merely stops being waited
    on, a deadline stops the wait for whoever is left (survivors stuck
    retrying toward a dead quorum member), and the caller salvages what
    the remaining sites produced.
    """
    expected = {i: path for i, path in enumerate(paths)}
    lost: "set[int]" = set()
    while True:
        for i in [i for i, path in expected.items() if path.exists()]:
            del expected[i]
        if not expected:
            return lost
        for i, proc in enumerate(procs):
            code = proc.poll()
            if code not in (None, 0):
                if not tolerate:
                    raise _abort(
                        procs, run_dir, f"site {i} exited {code} before {what}"
                    )
                if i in expected:
                    lost.add(i)
                    del expected[i]
        if not expected:
            return lost
        if time.time() > deadline_wall:
            if tolerate:
                lost.update(expected)
                return lost
            raise _abort(
                procs,
                run_dir,
                f"timed out waiting for {what} "
                f"({len(expected)}/{len(paths)} missing)",
            )
        time.sleep(POLL)


def _run_process_mode(
    config: NetRunConfig, run_dir: Path, tolerate_crashes: bool = False
) -> List[Dict[str, Any]]:
    layout.config_path(run_dir).write_text(config.to_json(), encoding="utf-8")
    env = os.environ.copy()
    # The children must import repro from the same tree as this process.
    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    parts = [src_dir] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))

    procs: List[subprocess.Popen] = []
    deadline_wall = time.time() + config.deadline
    try:
        for i in range(config.n_sites):
            stderr = open(run_dir / f"stderr-{i}.log", "w", encoding="utf-8")
            with stderr:
                procs.append(
                    subprocess.Popen(
                        [
                            sys.executable,
                            "-m",
                            "repro.net.site_proc",
                            "--run-dir",
                            str(run_dir),
                            "--site",
                            str(i),
                        ],
                        stdout=subprocess.DEVNULL,
                        stderr=stderr,
                        env=env,
                    )
                )
            layout.pid_path(run_dir, i).write_text(
                str(procs[-1].pid), encoding="utf-8"
            )
        sites = range(config.n_sites)
        # The rendezvous phase is always strict: a site lost before the
        # address book exists is a setup failure, not a mid-run crash.
        _wait_for_files(
            [layout.port_path(run_dir, i) for i in sites],
            procs,
            run_dir,
            deadline_wall,
            "port files",
        )
        addresses = {
            str(i): [
                config.host,
                int(layout.port_path(run_dir, i).read_text(encoding="utf-8")),
            ]
            for i in sites
        }
        book = {"epoch": time.time() + EPOCH_LEAD["process"], "addresses": addresses}
        tmp = run_dir / "addrbook.json.tmp"
        tmp.write_text(json.dumps(book), encoding="utf-8")
        os.replace(tmp, layout.addrbook_path(run_dir))

        lost = _wait_for_files(
            [layout.done_path(run_dir, i) for i in sites],
            procs,
            run_dir,
            deadline_wall,
            "done files",
            tolerate=tolerate_crashes,
        )
        # Let trailing acks/releases settle before stopping arbiters.
        time.sleep(max(0.2, 4 * config.ack_delay * config.unit))
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for i, proc in enumerate(procs):
            try:
                code = proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                if tolerate_crashes:
                    proc.kill()
                    proc.wait(timeout=5)
                    continue
                raise _abort(procs, run_dir, f"site {i} ignored SIGTERM")
            if code != 0 and not tolerate_crashes:
                raise _abort(procs, run_dir, f"site {i} exited {code}")
    except BaseException:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
        raise
    # Harvest every summary that exists; in tolerant mode crashed (or
    # crash-stranded) sites simply have none — their trace shards, line
    # buffered and write-through, still carry everything up to the kill.
    summaries = []
    for i in range(config.n_sites):
        done = layout.done_path(run_dir, i)
        if done.exists():
            summaries.append(json.loads(done.read_text(encoding="utf-8")))
        elif not tolerate_crashes:  # pragma: no cover - guarded above
            raise _abort(procs, run_dir, f"site {i} left no summary")
    if not summaries:
        raise _abort(procs, run_dir, "no site produced a summary")
    return summaries


# -- inproc mode -------------------------------------------------------------


async def _run_inproc_async(
    config: NetRunConfig, run_dir: Path
) -> List[Dict[str, Any]]:
    # Reuse the site process's own builder: inproc mode exercises the
    # exact construction path the real deployment uses.
    from repro.net.site_proc import _summary, build_substrate

    built = [
        build_substrate(config, i, run_dir) for i in range(config.n_sites)
    ]
    try:
        addresses = {}
        for substrate, _site, _collector in built:
            port = await substrate.start()
            addresses[substrate.site_id] = (config.host, port)
        epoch = time.time() + EPOCH_LEAD["inproc"]
        for substrate, _site, _collector in built:
            substrate.configure(addresses, epoch)
        await asyncio.sleep(EPOCH_LEAD["inproc"])
        for substrate, site, _collector in built:
            substrate.start_nodes()
            SaturationWorkload(config.requests_per_site).install(
                substrate, [site]
            )
        deadline_wall = time.time() + config.deadline
        while True:
            drained = all(
                len(collector.completed) >= config.requests_per_site
                and substrate.idle()
                for substrate, _site, collector in built
            )
            if drained:
                break
            if time.time() > deadline_wall:
                stuck = [
                    substrate.site_id
                    for substrate, _site, collector in built
                    if len(collector.completed) < config.requests_per_site
                ]
                raise NetRunError(
                    f"inproc run timed out; sites not drained: {stuck}"
                )
            await asyncio.sleep(POLL)
        # Trailing acks: give delayed-ack timers one window to fire so
        # the transport counters settle deterministically enough.
        await asyncio.sleep(2 * config.ack_delay * config.unit)
    finally:
        for substrate, _site, _collector in built:
            substrate.close()
    summaries = []
    for substrate, _site, collector in built:
        summaries.append(_summary(substrate.site_id, config, substrate, collector))
        trace = substrate.trace
        close = getattr(trace, "close", None)
        if close is not None:
            close()
    return summaries


# -- shared verification/aggregation ------------------------------------------


def _truncate_torn_tail(path: Path) -> None:
    """Drop a torn trailing line a SIGKILL may have left in a shard.

    The shard writer is line buffered, so every completed record ends in
    a newline; a file ending without one was killed mid-write and the
    partial record is unrecoverable (and would fail strict import).
    """
    data = path.read_bytes()
    if not data or data.endswith(b"\n"):
        return
    cut = data.rfind(b"\n")
    path.write_bytes(data[: cut + 1] if cut >= 0 else b"")


def run_net(
    config: NetRunConfig,
    run_dir=None,
    spawn: str = "process",
    tolerate_crashes: bool = False,
) -> NetRunReport:
    """Execute one real-network run end to end and verify its trace.

    Raises :class:`NetRunError` if the run cannot complete (site death,
    deadline). Invariant violations do *not* raise — they are reported in
    :attr:`NetRunReport.violations` for the caller to judge.

    With ``tolerate_crashes`` (process mode) a site dying mid-run — e.g.
    SIGKILLed by a fault-injection harness — does not abort the run:
    survivors run to completion or to the deadline (whichever comes
    first; a survivor can be stuck retrying toward the dead quorum
    member until the reliable layer gives up), and whatever trace shards
    exist are merged and replayed through the monitor as usual. The
    report then covers the survivors' view of the degraded run.
    """
    if spawn not in ("process", "inproc"):
        raise NetRunError(f"unknown spawn mode {spawn!r}")
    if tolerate_crashes and spawn != "process":
        raise NetRunError("tolerate_crashes requires process mode")
    run_dir = Path(
        run_dir
        if run_dir is not None
        else tempfile.mkdtemp(prefix="repro-net-")
    )
    run_dir.mkdir(parents=True, exist_ok=True)
    started = time.time()
    if spawn == "process":
        summaries = _run_process_mode(config, run_dir, tolerate_crashes)
    else:
        summaries = asyncio.run(_run_inproc_async(config, run_dir))
    wall = time.time() - started

    shard_paths = [
        path
        for path in (
            layout.trace_path(run_dir, i) for i in range(config.n_sites)
        )
        if not tolerate_crashes or path.exists()
    ]
    if tolerate_crashes:
        for path in shard_paths:
            _truncate_torn_tail(path)
    merged_out = layout.merged_path(run_dir)
    merged = merge_shard_files(
        shard_paths,
        out_path=merged_out,
        meta={"spawn": spawn, "merged": True, "site": None},
    )

    monitor = ProtocolMonitor(strict=False)
    violations = monitor.replay(merged.records)

    completed = sum(s["completed"] for s in summaries)
    submitted = sum(s["submitted"] for s in summaries)
    messages_sent = sum(s["messages_sent"] for s in summaries)
    by_type: Dict[str, int] = {}
    for s in summaries:
        for name, count in s["by_type"].items():
            by_type[name] = by_type.get(name, 0) + count

    quorum_name = config.resolved_quorum()
    mean_quorum = (
        make_quorum_system(quorum_name, config.n_sites).mean_quorum_size()
        if quorum_name is not None
        else None
    )
    per_cs = messages_sent / completed if completed else None
    complexity = (
        per_cs / mean_quorum if per_cs is not None and mean_quorum else None
    )

    return NetRunReport(
        algorithm=config.algorithm,
        n_sites=config.n_sites,
        spawn=spawn,
        submitted=submitted,
        completed=completed,
        messages_sent=messages_sent,
        by_type=by_type,
        messages_per_cs=per_cs,
        mean_quorum_size=mean_quorum,
        message_complexity_c=complexity,
        violations=[str(v) for v in violations],
        monitor=monitor.report(),
        run_dir=str(run_dir),
        merged_path=str(merged_out),
        wall_seconds=wall,
        site_summaries=summaries,
    )
