"""Unit tests for the simulator loop, timers, and failure hooks."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.network import ConstantDelay
from repro.sim.node import Node
from repro.sim.simulator import Simulator


class Probe(Node):
    def __init__(self, site_id):
        super().__init__(site_id)
        self.started = False
        self.crashes = 0
        self.recoveries = 0
        self.inbox = []

    def on_start(self):
        self.started = True

    def on_message(self, src, message):
        self.inbox.append((src, message))

    def on_crash(self):
        self.crashes += 1

    def on_recover(self):
        self.recoveries += 1


def test_duplicate_site_id_rejected():
    sim = Simulator()
    sim.add_node(Probe(0))
    with pytest.raises(SimulationError):
        sim.add_node(Probe(0))


def test_add_after_start_rejected():
    sim = Simulator()
    sim.add_node(Probe(0))
    sim.start()
    with pytest.raises(SimulationError):
        sim.add_node(Probe(1))


def test_start_is_idempotent_and_calls_hook():
    sim = Simulator()
    node = sim.add_node(Probe(0))
    sim.start()
    sim.start()
    assert node.started


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_run_until_is_inclusive_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append("at5"))
    sim.schedule(7.0, lambda: fired.append("at7"))
    sim.run(until=5.0)
    assert fired == ["at5"]
    assert sim.now == 5.0
    sim.run(until=10.0)
    assert fired == ["at5", "at7"]


def test_run_until_advances_clock_when_next_event_is_beyond():
    """Stop path 1: the next live event lies beyond ``until``."""
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.schedule(9.0, lambda: None)
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert sim.last_event_time == 2.0
    assert sim.pending_events() == 1  # the t=9 event is untouched


def test_run_until_advances_clock_when_queue_drains():
    """Stop path 2: the queue drains before ``until``; the clock still
    catches up to the bound, so both stop paths agree on ``sim.now``."""
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run(until=100.0)
    assert sim.now == 100.0
    assert sim.last_event_time == 2.0
    sim.run(until=100.0)  # idempotent: already caught up
    assert sim.now == 100.0


def test_run_until_never_moves_clock_backwards():
    sim = Simulator()
    sim.schedule(7.0, lambda: None)
    sim.run()  # drain, no bound: now == last event
    assert sim.now == 7.0
    sim.run(until=3.0)  # bound in the past must not rewind the clock
    assert sim.now == 7.0


def test_run_max_events_budget():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i), lambda i=i: fired.append(i))
    sim.run(max_events=3)
    assert fired == [0, 1, 2]
    assert sim.pending_events() == 7


def test_run_max_events_exhaustion_leaves_clock_mid_flight():
    """When the budget runs out the run is mid-flight: the clock stays at
    the last processed event instead of jumping to ``until``."""
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i), lambda: None)
    sim.run(until=50.0, max_events=3)
    assert sim.now == 2.0
    assert sim.last_event_time == 2.0
    sim.run(until=50.0)  # finishing the run catches the clock up
    assert sim.now == 50.0
    assert sim.last_event_time == 9.0


def test_last_event_time_tracks_activity_not_bound():
    sim = Simulator()
    assert sim.last_event_time == 0.0
    sim.schedule(4.0, lambda: None)
    sim.run(until=1_000.0)
    assert sim.last_event_time == 4.0
    sim.run(until=2_000.0)  # nothing processed: unchanged
    assert sim.last_event_time == 4.0


def test_timer_cancellation_via_handle():
    sim = Simulator()
    node = sim.add_node(Probe(0))
    sim.start()
    fired = []
    handle = node.set_timer(1.0, lambda: fired.append("x"))
    handle.cancel()
    sim.run()
    assert fired == []


def test_timers_suppressed_while_crashed():
    sim = Simulator()
    node = sim.add_node(Probe(0))
    sim.start()
    fired = []
    node.set_timer(1.0, lambda: fired.append("x"))
    sim.crash(0)
    sim.run()
    assert fired == []
    assert node.crashes == 1


def test_crash_and_recover_hooks_fire_once():
    sim = Simulator()
    node = sim.add_node(Probe(0))
    sim.start()
    sim.crash(0)
    sim.crash(0)  # idempotent
    sim.recover(0)
    sim.recover(0)
    assert node.crashes == 1
    assert node.recoveries == 1


def test_crashed_sender_sends_nothing():
    sim = Simulator(delay_model=ConstantDelay(1.0))
    a, b = Probe(0), Probe(1)
    sim.add_node(a)
    sim.add_node(b)
    sim.start()
    sim.crash(0)
    a.send(1, "nope")
    sim.run()
    assert b.inbox == []


def test_unknown_destination_raises():
    sim = Simulator(delay_model=ConstantDelay(1.0))
    a = sim.add_node(Probe(0))
    sim.start()
    sim.network.send(0, 99, "ghost", "probe")
    with pytest.raises(SimulationError):
        sim.run()


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_until_bound_executes_the_whole_cohort_at_the_bound():
    # ``until`` is inclusive: a cohort sitting exactly on the bound runs
    # to completion, never partially.
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(5.0, lambda i=i: fired.append(i))
    sim.schedule(5.000001, lambda: fired.append("beyond"))
    sim.run(until=5.0)
    assert fired == [0, 1, 2, 3, 4]
    assert sim.now == 5.0
    assert sim.pending_events() == 1


def test_same_instant_followup_fires_within_the_bound():
    # An event at t == until that schedules a zero-delay follow-up: the
    # follow-up lands at the same instant (<= until) and must also run
    # before the bound stops the loop.
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(0.0, lambda: fired.append("follow-up"))

    sim.schedule(5.0, first)
    sim.run(until=5.0)
    assert fired == ["first", "follow-up"]
    assert sim.now == 5.0


def test_cancel_inside_a_cohort_skips_the_later_member():
    # Lazy cancellation across a popped cohort: an earlier member
    # cancelling a later one must suppress its callback even though both
    # were removed from the heap in the same pass.
    sim = Simulator()
    fired = []
    handles = {}

    def first():
        fired.append("first")
        handles["second"].cancel()

    sim.schedule(5.0, first)
    handles["second"] = sim.schedule(5.0, lambda: fired.append("second"))
    sim.schedule(5.0, lambda: fired.append("third"))
    sim.run()
    assert fired == ["first", "third"]


def test_max_events_exhaustion_mid_cohort_requeues_remainder():
    # The event budget can run out in the middle of a cohort; the
    # unexecuted tail must survive (under its original order) so a later
    # run continues exactly where the one-at-a-time loop would have.
    sim = Simulator()
    fired = []
    for i in range(6):
        sim.schedule(5.0, lambda i=i: fired.append(i))
    sim.run(max_events=3)
    assert fired == [0, 1, 2]
    assert sim.pending_events() == 3
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.events_processed == 6


def test_deterministic_replay_same_seed():
    def transcript(seed):
        sim = Simulator(seed=seed)
        a, b = Probe(0), Probe(1)
        sim.add_node(a)
        sim.add_node(b)
        sim.start()
        for i in range(20):
            a.send(1, i)
        sim.run()
        return [(round(t, 12) if isinstance(t, float) else t) for t in [sim.now]], b.inbox

    assert transcript(11) == transcript(11)
    assert transcript(11) != transcript(12)
