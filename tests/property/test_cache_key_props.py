"""Property tests for the trial-cache fingerprint.

The cache is only sound if the fingerprint is (1) a pure function of the
config's *values* — stable across processes, hash randomization, and
dict insertion order — and (2) injective over distinct values, so two
different trials can never alias one record. Hypothesis drives both
directions over the interesting RunConfig fields.
"""

from __future__ import annotations

import dataclasses
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import RunConfig
from repro.parallel.cache import PROTOCOL_VERSION, fingerprint
from repro.sim.network import ConstantDelay, UniformDelay
from repro.workload.driver import SaturationWorkload

configs = st.builds(
    RunConfig,
    algorithm=st.sampled_from(["cao-singhal", "maekawa", "lamport"]),
    n_sites=st.integers(3, 60),
    seed=st.integers(0, 2**31),
    cs_duration=st.floats(0.01, 5.0, allow_nan=False),
    max_time=st.floats(1e3, 1e7, allow_nan=False),
    max_events=st.integers(1_000, 10**8),
    trace=st.booleans(),
    verify=st.booleans(),
)


@given(config=configs)
def test_fingerprint_is_deterministic(config):
    assert fingerprint(config) == fingerprint(config)
    clone = dataclasses.replace(config)
    assert fingerprint(clone) == fingerprint(config)


@given(config=configs, other=configs)
def test_fingerprint_injective_over_field_values(config, other):
    if config == other:
        assert fingerprint(config) == fingerprint(other)
    else:
        assert fingerprint(config) != fingerprint(other)


@given(config=configs, seed_a=st.integers(0, 999), seed_b=st.integers(0, 999))
def test_seed_is_part_of_the_key(config, seed_a, seed_b):
    a = fingerprint(dataclasses.replace(config, seed=seed_a))
    b = fingerprint(dataclasses.replace(config, seed=seed_b))
    assert (a == b) == (seed_a == seed_b)


@given(config=configs, salt=st.text(min_size=1, max_size=20))
def test_salt_changes_every_key(config, salt):
    salted = fingerprint(config, salt=salt)
    default = fingerprint(config)
    assert (salted == default) == (salt == PROTOCOL_VERSION)


@given(
    low=st.floats(0.1, 1.0, allow_nan=False),
    spread=st.floats(0.0, 2.0, allow_nan=False),
)
def test_delay_model_attributes_are_keyed(low, spread):
    base = RunConfig(delay_model=UniformDelay(low, low + spread))
    same = RunConfig(delay_model=UniformDelay(low, low + spread))
    other = RunConfig(delay_model=UniformDelay(low, low + spread + 0.5))
    constant = RunConfig(delay_model=ConstantDelay(low))
    assert fingerprint(base) == fingerprint(same)
    assert fingerprint(base) != fingerprint(other)
    assert fingerprint(base) != fingerprint(constant)


@given(budget_a=st.integers(1, 50), budget_b=st.integers(1, 50))
def test_workload_attributes_are_keyed(budget_a, budget_b):
    a = fingerprint(RunConfig(workload=SaturationWorkload(budget_a)))
    b = fingerprint(RunConfig(workload=SaturationWorkload(budget_b)))
    assert (a == b) == (budget_a == budget_b)


@given(
    entries=st.dictionaries(
        st.integers(0, 20), st.floats(0.0, 50.0, allow_nan=False),
        min_size=2, max_size=8,
    )
)
def test_dict_insertion_order_never_changes_the_key(entries):
    from repro.workload.driver import StaggeredSingleShot

    forward = RunConfig(workload=StaggeredSingleShot(dict(entries)))
    backward = RunConfig(
        workload=StaggeredSingleShot(dict(reversed(list(entries.items()))))
    )
    assert fingerprint(forward) == fingerprint(backward)


@settings(max_examples=5, deadline=None)
@given(config=configs)
def test_fingerprint_stable_across_process_restart(config):
    """The key must not depend on PYTHONHASHSEED or interpreter state."""
    code = (
        "import sys; sys.path.insert(0, 'src')\n"
        "from repro.experiments.runner import RunConfig\n"
        "from repro.parallel.cache import fingerprint\n"
        f"print(fingerprint(RunConfig("
        f"algorithm={config.algorithm!r}, n_sites={config.n_sites}, "
        f"seed={config.seed}, cs_duration={config.cs_duration!r}, "
        f"max_time={config.max_time!r}, max_events={config.max_events}, "
        f"trace={config.trace}, verify={config.verify})))"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
        cwd=str(__import__("pathlib").Path(__file__).resolve().parents[2]),
    )
    assert out.stdout.strip() == fingerprint(config)
