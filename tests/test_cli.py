"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, _delay_model, build_parser, main
from repro.sim.network import ConstantDelay, ExponentialDelay, UniformDelay


def test_delay_model_parsing():
    assert isinstance(_delay_model("constant"), ConstantDelay)
    assert _delay_model("constant:2.5").mean == 2.5
    model = _delay_model("uniform:1:3")
    assert isinstance(model, UniformDelay) and model.mean == 2.0
    assert isinstance(_delay_model("exp:1.5"), ExponentialDelay)
    with pytest.raises(Exception):
        _delay_model("warp")


def test_parser_defaults():
    args = build_parser().parse_args(["run"])
    assert args.algorithm == "cao-singhal"
    assert args.sites == 9


def test_run_command_prints_summary(capsys):
    code = main(
        [
            "run",
            "-a",
            "cao-singhal",
            "-n",
            "4",
            "-q",
            "grid",
            "--saturate",
            "3",
            "--delay",
            "constant:1",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "cao-singhal" in out
    assert "messages/CS" in out


def test_run_command_poisson(capsys):
    code = main(
        ["run", "-a", "ricart-agrawala", "-n", "3", "--poisson", "0.05",
         "--horizon", "100"]
    )
    assert code == 0
    assert "ricart-agrawala" in capsys.readouterr().out


def test_run_command_with_fault_flags(capsys):
    code = main(
        ["run", "-a", "cao-singhal", "--saturate", "3", "--delay",
         "constant:1", "--loss", "0.2", "--dup", "0.05", "--reorder", "0.1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    # Fault flags auto-enable the reliable layer and surface its counters.
    assert "channel" in out
    assert "retransmitted" in out


def test_run_command_with_fault_plan(capsys):
    code = main(
        ["run", "-a", "maekawa", "--saturate", "3", "--delay", "constant:1",
         "--fault-plan", "loss-burst", "--chaos-seed", "5"]
    )
    assert code == 0
    assert "maekawa" in capsys.readouterr().out


def test_clean_run_keeps_reliable_layer_off(capsys):
    code = main(
        ["run", "-a", "cao-singhal", "--saturate", "3", "--delay", "constant:1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "channel" not in out


def test_experiment_ids_registered():
    for exp_id in ("E1", "E2", "E3", "E4", "E5", "E6", "E7a", "E7b", "E8",
                   "E9", "E13", "E14", "E15", "E16"):
        assert exp_id in EXPERIMENTS


def test_experiment_command_csv(capsys):
    code = main(["experiment", "E6", "--csv"])
    out = capsys.readouterr().out
    assert code == 0
    assert out.startswith("N,")


def test_invalid_algorithm_rejected_by_parser():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "-a", "not-an-algorithm"])


def test_trace_command_exports_monitored_trace(tmp_path, capsys):
    out_path = tmp_path / "run.jsonl"
    code = main(
        [
            "trace",
            "-a",
            "cao-singhal",
            "-n",
            "9",
            "--saturate",
            "2",
            "--seed",
            "1",
            "-o",
            str(out_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "monitor: all invariants held" in out
    assert "handoff sync delay" in out

    from repro.obs.export import import_jsonl

    trace_file = import_jsonl(str(out_path))
    assert len(trace_file) > 0
    assert trace_file.meta["algorithm"] == "cao-singhal"
    assert trace_file.meta["monitor"]["violations"] == []


def test_run_profile_prints_event_loop_table(capsys):
    code = main(
        ["run", "-a", "cao-singhal", "-n", "4", "--saturate", "2", "--profile"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "event-loop profile" in out
    assert "cs-hold" in out


def test_run_profile_rejects_multiple_trials():
    with pytest.raises(SystemExit):
        main(["run", "-a", "cao-singhal", "--trials", "2", "--profile"])


def _write_bench(directory, events_per_sec):
    import json

    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "benchmark": "sim_kernel",
        "events_processed": 63_507,
        "events_per_sec": events_per_sec,
        "message_complexity_c": 4.5,
    }
    (directory / "BENCH_sim_kernel.json").write_text(json.dumps(payload))


def test_regress_command_passes_on_identical_results(tmp_path, capsys):
    _write_bench(tmp_path / "base", 150_000)
    _write_bench(tmp_path / "cur", 150_000)
    code = main(
        [
            "regress",
            "--baseline",
            str(tmp_path / "base"),
            "--current",
            str(tmp_path / "cur"),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "**PASS**" in out


def test_regress_command_gate_bites_on_slowdown(tmp_path, capsys):
    _write_bench(tmp_path / "base", 150_000)
    _write_bench(tmp_path / "cur", 105_000)  # -30%, past the 25% floor
    report_path = tmp_path / "report.md"
    code = main(
        [
            "regress",
            "--baseline",
            str(tmp_path / "base"),
            "--current",
            str(tmp_path / "cur"),
            "--threshold-pct",
            "25",
            "--report",
            str(report_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "`sim_kernel:events_per_sec`" in out
    assert "**regression**" in report_path.read_text()


def test_regress_command_errors_without_results(tmp_path):
    code = main(
        [
            "regress",
            "--baseline",
            str(tmp_path / "nope"),
            "--current",
            str(tmp_path / "nothing"),
        ]
    )
    assert code == 2


def test_explore_command_clean_complete(capsys):
    code = main(
        ["explore", "--quorums", "2;2;2", "--requests", "1,1,0"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "complete, no violation" in out


def test_explore_command_budget_exhausted_exit_code(capsys):
    code = main(
        [
            "explore", "--quorums", "2;2;2", "--requests", "1,1,0",
            "--max-states", "30",
        ]
    )
    out = capsys.readouterr().out
    assert code == 3
    assert "explored 30 states" in out
    assert "budget exhausted" in out


def test_explore_command_with_fault_budget(capsys):
    code = main(
        [
            "explore", "--quorums", "2;2;2", "--requests", "1,1,0",
            "--crashes", "1", "--recoveries", "1",
            "--max-states", "500000",
        ]
    )
    assert code == 0
    assert "no violation" in capsys.readouterr().out


def test_explore_command_registered_quorum_construction(capsys):
    code = main(
        [
            "explore", "--quorum", "majority", "-n", "3",
            "--requests", "1,1,0",
        ]
    )
    assert code == 0


def test_explore_command_counterexample_export(tmp_path, capsys, monkeypatch):
    """A protocol mutant drives the full CLI pipeline: find, shrink,
    export, and the exported file replays to the monitor verdict."""
    from _explore_mutants import PaperLiteralSite

    import repro.verify.explore as ex

    monkeypatch.setattr(
        ex,
        "_ExploreSite",
        type("CliMutant", (ex._ExploreSite, PaperLiteralSite), {}),
    )
    out_path = tmp_path / "cex.jsonl"
    code = main(
        [
            "explore", "--quorums", "3,4;3,4;3,4;3;4",
            "--requests", "1,1,1,0,0", "--max-states", "3000000",
            "--out", str(out_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "counterexample: DeadlockError" in out
    violations = ex.replay_counterexample(str(out_path))
    assert [v.invariant for v in violations] == ["deadlock"]


def test_net_run_parser_defaults_and_alias():
    args = build_parser().parse_args(["net", "run", "--algo", "cao"])
    assert args.command == "net"
    assert args.net_command == "run"
    assert args.algorithm == "cao-singhal"  # alias resolved
    assert args.spawn == "process"
    assert args.reliable is True


def test_net_run_rejects_unknown_algorithm():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["net", "run", "--algo", "not-real"])


def test_net_run_command_inproc(tmp_path, capsys):
    code = main(
        [
            "net", "run", "--algo", "cao", "--sites", "3",
            "--requests", "2", "--seed", "1", "--spawn", "inproc",
            "--run-dir", str(tmp_path / "run"),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "6/6 CS completions" in out
    assert "monitor verdict: clean" in out
    assert (tmp_path / "run" / "merged.jsonl").exists()


def test_net_run_command_json_output(tmp_path, capsys):
    import json

    code = main(
        [
            "net", "run", "-a", "ricart-agrawala", "--sites", "3",
            "--requests", "1", "--spawn", "inproc", "--json",
            "--run-dir", str(tmp_path / "run"),
        ]
    )
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["completed"] == 3
    assert report["violations"] == []
    assert report["message_complexity_c"] is None  # non-quorum algorithm
