"""E1 — regenerate the paper's Table 1 (measured vs analytical)."""

from __future__ import annotations

import pytest

from repro.analysis.table1 import render_analytic_table1
from repro.experiments.table1 import run_table1

N_SITES = 25


def test_bench_table1(run_experiment):
    report = run_experiment(
        run_table1, n_sites=N_SITES, seed=1, requests_per_site=12
    )
    print(render_analytic_table1(N_SITES))

    rows = {(r[0], r[1]): r for r in report.rows}
    proposed = rows[("cao-singhal", "grid")]
    maekawa = rows[("maekawa", "grid")]
    lamport = rows[("lamport", "-")]
    ra = rows[("ricart-agrawala", "-")]

    # Sync delay: the headline T vs 2T separation.
    assert proposed[5] == pytest.approx(1.0, abs=0.15)
    assert maekawa[5] == pytest.approx(2.0, abs=0.15)
    # Message complexity families: O(K) quorum algorithms beat O(N)
    # broadcast algorithms at N=25 under both loads.
    assert proposed[3] < ra[3] < lamport[3]
    # Light-load cost matches 3(K-1) closely.
    k = proposed[2]
    assert proposed[3] == pytest.approx(3 * (k - 1), rel=0.05)
