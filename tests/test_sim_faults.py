"""Tests for the adversarial network: FaultModel, Gilbert–Elliott bursts,
and the fault counters surfaced through RunSummary."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.experiments.runner import RunConfig, run_mutex
from repro.sim.network import ConstantDelay, FaultModel, GilbertElliott
from repro.sim.node import Node
from repro.sim.simulator import Simulator
from repro.sim.transport import ReliableConfig
from repro.workload.driver import SaturationWorkload


class Sink(Node):
    def __init__(self, site_id):
        super().__init__(site_id)
        self.received = []

    def on_message(self, src, message):
        self.received.append((self.now, src, message))


def make_pair(fault_model, seed=0, delay=None):
    sim = Simulator(
        seed=seed,
        delay_model=delay or ConstantDelay(1.0),
        fault_model=fault_model,
    )
    a, b = Sink(0), Sink(1)
    sim.add_node(a)
    sim.add_node(b)
    sim.start()
    return sim, a, b


# -- validation ---------------------------------------------------------------


@pytest.mark.parametrize("kwargs", [
    dict(loss=1.5),
    dict(loss=-0.1),
    dict(duplicate=2.0),
    dict(reorder=-1.0),
    dict(reorder_spread=-0.5),
    dict(burst="not-a-chain"),
])
def test_fault_model_rejects_bad_parameters(kwargs):
    with pytest.raises(ConfigurationError):
        FaultModel(**kwargs)


@pytest.mark.parametrize("kwargs", [
    dict(p_enter=1.5),
    dict(p_exit=0.0),
    dict(loss=-0.1),
])
def test_gilbert_elliott_rejects_bad_parameters(kwargs):
    with pytest.raises(ConfigurationError):
        GilbertElliott(**kwargs)


def test_chaos_overlays_require_fault_model():
    sim, _, _ = make_pair(None)
    with pytest.raises(SimulationError):
        sim.network.set_loss_override(0.5)
    with pytest.raises(SimulationError):
        sim.network.set_delay_factor(2.0)


# -- fault behaviour ----------------------------------------------------------


def test_loss_one_drops_everything():
    sim, a, b = make_pair(FaultModel(loss=1.0))
    for i in range(20):
        a.send(1, i)
    sim.run()
    assert b.received == []
    assert sim.network.stats.messages_lost == 20
    # Lost messages still count as sent (the sender paid for them).
    assert sim.network.stats.messages_sent == 20


def test_duplicate_one_delivers_twice():
    sim, a, b = make_pair(FaultModel(duplicate=1.0))
    for i in range(10):
        a.send(1, i)
    sim.run()
    payloads = sorted(p for (_, _, p) in b.received)
    assert payloads == sorted(list(range(10)) * 2)
    assert sim.network.stats.messages_duplicated == 10


def test_reorder_breaks_channel_fifo():
    sim, a, b = make_pair(FaultModel(reorder=0.5), seed=3)
    for i in range(60):
        a.send(1, i)
    sim.run()
    payloads = [p for (_, _, p) in b.received]
    assert sorted(payloads) == list(range(60))  # nothing lost
    assert payloads != list(range(60))  # but not in order
    assert sim.network.stats.messages_reordered > 0


def test_gilbert_elliott_losses_cluster():
    burst = GilbertElliott(p_enter=0.05, p_exit=0.2, loss=1.0)
    sim, a, b = make_pair(FaultModel(burst=burst), seed=1)
    n = 1000
    for i in range(n):
        a.send(1, i)
    sim.run()
    got = {p for (_, _, p) in b.received}
    lost = [i for i in range(n) if i not in got]
    assert lost, "burst chain never entered its bad state"
    assert sim.network.stats.messages_lost == len(lost)
    # Bursty, not independent: the bad state persists ~1/p_exit sends, so
    # runs of consecutive losses must appear.
    longest = run = 1
    for prev, nxt in zip(lost, lost[1:]):
        run = run + 1 if nxt == prev + 1 else 1
        longest = max(longest, run)
    assert longest >= 3


def test_fault_pattern_is_deterministic():
    def receive(seed):
        sim, a, b = make_pair(
            FaultModel(loss=0.3, duplicate=0.2, reorder=0.3), seed=seed
        )
        for i in range(50):
            a.send(1, i)
        sim.run()
        return b.received

    assert receive(7) == receive(7)
    assert receive(7) != receive(8)


def test_chaos_seed_varies_faults_without_touching_delays():
    def lost_set(chaos_seed):
        sim, a, b = make_pair(
            FaultModel(loss=0.3, chaos_seed=chaos_seed), seed=7
        )
        for i in range(100):
            a.send(1, i)
        sim.run()
        return {p for (_, _, p) in b.received}

    assert lost_set(0) != lost_set(1)


# -- surfacing through runs ---------------------------------------------------


def test_channel_stats_in_run_summary():
    summary = run_mutex(
        RunConfig(
            algorithm="cao-singhal",
            n_sites=9,
            seed=0,
            fault_model=FaultModel(loss=0.15, duplicate=0.05, reorder=0.1),
            reliable=ReliableConfig(),
            workload=SaturationWorkload(3),
        )
    ).summary
    assert summary.unserved == 0
    assert summary.channel_stats["messages_lost"] > 0
    assert summary.channel_stats["retransmitted"] > 0
    assert "channel_stats" in summary.to_dict()
    assert "channel" in summary.describe()


def test_clean_run_omits_channel_stats():
    summary = run_mutex(
        RunConfig(algorithm="cao-singhal", workload=SaturationWorkload(2))
    ).summary
    assert summary.channel_stats == {}
    # Golden fingerprints hash this dict: a clean run must serialize
    # exactly as it did before the fault layer existed.
    assert "channel_stats" not in summary.to_dict()


def test_fault_config_threads_into_cache_fingerprint():
    from repro.parallel.cache import fingerprint

    base = RunConfig(algorithm="cao-singhal", seed=0)
    faulty = RunConfig(
        algorithm="cao-singhal",
        seed=0,
        fault_model=FaultModel(loss=0.2),
        reliable=ReliableConfig(),
    )
    other_loss = RunConfig(
        algorithm="cao-singhal",
        seed=0,
        fault_model=FaultModel(loss=0.3),
        reliable=ReliableConfig(),
    )
    prints = {fingerprint(base), fingerprint(faulty), fingerprint(other_loss)}
    assert None not in prints
    assert len(prints) == 3
