"""Tests for coterie theory: transversals, domination, composition."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.quorums.coterie import Coterie
from repro.quorums.majority import MajorityQuorumSystem
from repro.quorums.theory import (
    compose,
    coterie_degree_profile,
    dominating_extension,
    is_nondominated,
    minimal_transversals,
)


def C(*quorums, **kw):
    return Coterie([set(q) for q in quorums], require_minimality=False, **kw)


# -- transversals -----------------------------------------------------------------


def test_transversals_of_singleton():
    assert minimal_transversals(C({0})) == [frozenset({0})]


def test_transversals_of_paper_example():
    # C = {{a,b},{b,c}}: minimal hitting sets are {b} and {a,c}.
    trs = minimal_transversals(C({0, 1}, {1, 2}))
    assert trs == [frozenset({1}), frozenset({0, 2})]


def test_transversals_of_majority_3():
    # 2-of-3 majority is self-dual: transversals are the quorums.
    coterie = C({0, 1}, {0, 2}, {1, 2})
    trs = minimal_transversals(coterie)
    assert set(trs) == set(coterie.quorums)


def test_transversals_are_minimal_and_hitting():
    coterie = MajorityQuorumSystem(5).coterie()
    for t in minimal_transversals(coterie):
        assert all(t & q for q in coterie.quorums)
        for site in t:
            smaller = t - {site}
            assert not all(smaller & q for q in coterie.quorums)


# -- non-domination ----------------------------------------------------------------


def test_majority_is_nondominated():
    assert is_nondominated(C({0, 1}, {0, 2}, {1, 2}))


def test_singleton_is_nondominated():
    assert is_nondominated(C({0}, universe={0, 1, 2}))


def test_paper_example_is_dominated():
    # {{a,b},{b,c}}: transversal {b} contains no quorum -> dominated.
    assert not is_nondominated(C({0, 1}, {1, 2}))


def test_dominating_extension_improves_availability():
    original = C({0, 1}, {1, 2})
    better = dominating_extension(original)
    assert better is not None
    assert better.dominates(original)
    # The classic dominating coterie: {{b}, ...}.
    assert frozenset({1}) in better.quorums
    # A non-dominated coterie has no extension.
    assert dominating_extension(C({0, 1}, {0, 2}, {1, 2})) is None


def test_wheel_coterie_is_nondominated():
    from repro.quorums.wheel import WheelQuorumSystem

    assert is_nondominated(WheelQuorumSystem(5).coterie())


# -- composition -------------------------------------------------------------------


def test_compose_replaces_site_with_subcoterie():
    outer = C({0, 1}, {0, 2}, {1, 2})          # majority over {0,1,2}
    inner = C({10, 11}, {10, 12}, {11, 12})    # majority over {10,11,12}
    composed = compose(outer, at_site=0, inner=inner)
    # Every old quorum through 0 now goes through a majority of the
    # sub-coterie; intersection still holds (validated on construction).
    assert frozenset({1, 2}) in composed.quorums
    assert frozenset({1, 10, 11}) in composed.quorums
    assert composed.universe == frozenset({1, 2, 10, 11, 12})


def test_compose_preserves_nondomination():
    nd = C({0, 1}, {0, 2}, {1, 2})
    inner = C({10, 11}, {10, 12}, {11, 12})
    assert is_nondominated(compose(nd, 0, inner))


def test_compose_validations():
    outer = C({0, 1}, {1, 2})
    overlapping = C({1, 5})
    with pytest.raises(ConfigurationError):
        compose(outer, 0, overlapping)  # inner universe overlaps outer
    with pytest.raises(ConfigurationError):
        compose(outer, 9, C({10}))  # site not in outer universe


def test_degree_profile():
    profile = coterie_degree_profile(C({0, 1}, {1, 2}, universe={0, 1, 2, 3}))
    assert profile == [2, 1, 1, 0]
