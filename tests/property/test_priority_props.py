"""Property tests: the priority order is total and matches the paper rule."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.common import Priority

priorities = st.builds(
    Priority,
    seq=st.integers(min_value=0, max_value=10**6),
    site=st.integers(min_value=0, max_value=10**4),
)


@given(priorities, priorities)
def test_total_order(a, b):
    assert (a < b) + (b < a) + (a == b) == 1


@given(priorities, priorities, priorities)
def test_transitivity(a, b, c):
    if a < b and b < c:
        assert a < c


@given(priorities, priorities)
def test_paper_rule(a, b):
    """Smaller sequence number wins; ties break on smaller site id."""
    if a.seq != b.seq:
        assert (a < b) == (a.seq < b.seq)
    else:
        assert (a < b) == (a.site < b.site)


@given(priorities)
def test_max_sentinel_dominates_everything(p):
    assert p < Priority.maximum()
    assert not p.is_max


@given(st.lists(priorities, min_size=1, max_size=50))
def test_sorting_is_stable_under_min(ps):
    assert sorted(ps)[0] == min(ps)
