"""Unit tests for the verification layer (Theorems 1-3 checkers)."""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError, MutualExclusionViolation
from repro.metrics.collector import CSRecord
from repro.verify.invariants import (
    check_mutual_exclusion,
    check_progress,
    check_sequential_per_site,
)


def rec(site, request, enter=None, exit_=None):
    return CSRecord(site=site, request_time=request, enter_time=enter, exit_time=exit_)


def test_mutual_exclusion_accepts_disjoint_intervals():
    check_mutual_exclusion([rec(0, 0, 1, 2), rec(1, 0, 3, 4)])


def test_mutual_exclusion_flags_overlap():
    with pytest.raises(MutualExclusionViolation):
        check_mutual_exclusion([rec(0, 0, 1, 3), rec(1, 0, 2, 4)])


def test_mutual_exclusion_allows_zero_gap_boundary():
    # enter == previous exit is legal (strict overlap is required).
    check_mutual_exclusion([rec(0, 0, 1, 2), rec(1, 0, 2, 3)])


def test_mutual_exclusion_ignores_incomplete():
    check_mutual_exclusion([rec(0, 0, 1, 3), rec(1, 0)])


def test_progress_flags_unserved():
    with pytest.raises(DeadlockError):
        check_progress([rec(0, 0)])


def test_progress_respects_horizon():
    # A late request may legitimately still be in flight.
    check_progress([rec(0, 90)], horizon=50.0)
    with pytest.raises(DeadlockError):
        check_progress([rec(0, 10)], horizon=50.0)


def test_progress_context_in_message():
    with pytest.raises(DeadlockError) as err:
        check_progress([rec(2, 0)], context="maekawa")
    assert "maekawa" in str(err.value)
    assert "2" in str(err.value)


def test_sequential_per_site_flags_self_overlap():
    with pytest.raises(MutualExclusionViolation):
        check_sequential_per_site(
            [rec(0, 0, 1, 5), rec(0, 2, 6, 7)]  # re-requested inside own CS
        )


def test_sequential_per_site_accepts_back_to_back():
    check_sequential_per_site([rec(0, 0, 1, 2), rec(0, 2, 3, 4)])
