"""Common lifecycle for every mutual-exclusion algorithm.

The paper's model has a site execute its CS requests "sequentially one by
one": requests submitted while a request is outstanding queue locally.
:class:`MutexSite` owns that local queue and the
idle → requesting → in-CS → idle state machine, and reports transitions to
a :class:`RunListener` (the metrics layer). Algorithm subclasses implement
just two hooks — start the protocol, run the exit protocol — plus their
message handlers, so they read like the paper's pseudo-code.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional, Union

from repro.errors import ProtocolError
from repro.sim.node import Node
from repro.substrate import SiteId

#: CS hold time: a constant, a zero-argument sampler, or ``None`` for a
#: manual hold (the application calls :meth:`MutexSite.release_cs` itself,
#: e.g. after finishing a guarded multi-message operation).
DurationSpec = Optional[Union[float, Callable[[], float]]]


class RunListener:
    """Observer for CS lifecycle events; the metrics layer implements this.

    The default implementation ignores everything so algorithms are usable
    without a metrics pipeline (e.g. in unit tests).
    """

    def on_request(self, site: SiteId, time: float) -> None:
        """A site started working on a CS request (protocol messages go out)."""

    def on_enter(self, site: SiteId, time: float) -> None:
        """A site entered the critical section."""

    def on_exit(self, site: SiteId, time: float) -> None:
        """A site exited the critical section."""

    def on_abandon(self, site: SiteId, time: float) -> None:
        """A site abandoned its in-flight request (it crashed)."""


class SiteState(enum.Enum):
    """The coarse request lifecycle of a site."""

    IDLE = "idle"
    REQUESTING = "requesting"
    IN_CS = "in_cs"


class MutexSite(Node):
    """Base class for mutual-exclusion sites.

    Subclass contract:

    * ``_begin_request()`` — the site has a fresh CS request; send whatever
      the protocol sends. Call :meth:`_enter_cs` once all permissions are
      held (it is safe to call it synchronously from ``_begin_request`` if
      no permission is needed, e.g. a token already held).
    * ``_exit_protocol()`` — the site has just left the CS; send releases /
      pass tokens. The base class flips state and schedules the next local
      request *after* this returns.
    * ``on_message(src, message)`` — protocol message handlers.
    """

    __slots__ = ("_cs_duration", "listener", "state", "backlog", "completed")

    def __init__(
        self,
        site_id: SiteId,
        cs_duration: DurationSpec = 0.1,
        listener: Optional[RunListener] = None,
    ) -> None:
        super().__init__(site_id)
        self._cs_duration = cs_duration
        self.listener = listener or RunListener()
        self.state = SiteState.IDLE
        #: CS requests submitted but not yet started (local FIFO backlog).
        self.backlog = 0
        #: Completed CS executions.
        self.completed = 0

    # -- public API used by workload drivers ------------------------------------

    def submit_request(self) -> None:
        """Enqueue one CS request; starts immediately if the site is idle."""
        self.backlog += 1
        self._maybe_start()

    @property
    def has_work(self) -> bool:
        """True while a request is queued, in flight, or executing."""
        return self.backlog > 0 or self.state is not SiteState.IDLE

    # -- lifecycle internals ---------------------------------------------------

    def _maybe_start(self) -> None:
        if self.state is not SiteState.IDLE or self.backlog == 0 or self.crashed:
            return
        self.backlog -= 1
        self.state = SiteState.REQUESTING
        now = self.now
        self.listener.on_request(self.site_id, now)
        trace = self.sim.trace
        if trace.enabled:
            trace.record(now, "request", self.site_id)
        self._begin_request()

    def _enter_cs(self) -> None:
        """Called by the subclass when every needed permission is held."""
        if self.state is not SiteState.REQUESTING:
            raise ProtocolError(
                f"site {self.site_id} entered CS from state {self.state}"
            )
        self.state = SiteState.IN_CS
        now = self.now
        self.listener.on_enter(self.site_id, now)
        trace = self.sim.trace
        if trace.enabled:
            trace.record(now, "cs_enter", self.site_id)
        if self._cs_duration is None:
            return  # manual hold: the application calls release_cs()
        duration = (
            self._cs_duration() if callable(self._cs_duration) else self._cs_duration
        )
        self.set_timer(duration, self._leave_cs, label="cs-hold")

    def release_cs(self) -> None:
        """Manually leave the CS (only valid with ``cs_duration=None``)."""
        if self.state is not SiteState.IN_CS:
            raise ProtocolError(
                f"site {self.site_id} released the CS from state {self.state}"
            )
        self._leave_cs()

    def _leave_cs(self) -> None:
        if self.state is not SiteState.IN_CS:
            raise ProtocolError(
                f"site {self.site_id} left CS from state {self.state}"
            )
        now = self.now
        trace = self.sim.trace
        if trace.enabled:
            trace.record(now, "cs_exit", self.site_id)
        self.listener.on_exit(self.site_id, now)
        self.completed += 1
        self._exit_protocol()
        self.state = SiteState.IDLE
        self._maybe_start()

    # -- subclass hooks ----------------------------------------------------------

    def _begin_request(self) -> None:
        raise NotImplementedError

    def _exit_protocol(self) -> None:
        raise NotImplementedError
