"""Suzuki–Kasami broadcast token algorithm (1985).

A single token carries the permission; a requester broadcasts a numbered
request (``N-1`` messages) and the token travels directly to the next user
(one more message). Message cost is 0 when the requester already holds the
token and ``N`` otherwise; synchronization delay is ``T``. Included as the
token-side representative in Table 1 (the family Singhal's heuristic
algorithm belongs to).

The token carries ``LN`` (the sequence number of each site's last served
request) and a FIFO queue of sites with outstanding requests; each site
tracks ``RN`` (the highest request number heard per site).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.mutex.base import DurationSpec, MutexSite, RunListener, SiteState
from repro.substrate import SiteId


@dataclass(frozen=True)
class SKRequest:
    """Broadcast request: ``(site, request number)``."""

    site: SiteId
    number: int

    type_name = "request"


@dataclass(frozen=True)
class SKToken:
    """The travelling token: last-served numbers plus the waiting queue."""

    ln: Tuple[int, ...]
    queue: Tuple[SiteId, ...]

    type_name = "token"


class SuzukiKasamiSite(MutexSite):
    """One site of the Suzuki–Kasami algorithm; site 0 starts with the token."""

    algorithm_name = "suzuki-kasami"

    def __init__(
        self,
        site_id: SiteId,
        n: int,
        cs_duration: DurationSpec = 0.1,
        listener: Optional[RunListener] = None,
        token_holder: SiteId = 0,
    ) -> None:
        super().__init__(site_id, cs_duration, listener)
        self.n = n
        self.rn: List[int] = [0] * n
        self.has_token = site_id == token_holder
        self.token_ln: List[int] = [0] * n if self.has_token else []
        self.token_queue: List[SiteId] = []

    # -- MutexSite hooks ------------------------------------------------------

    def _begin_request(self) -> None:
        if self.has_token:
            self._enter_cs()
            return
        self.rn[self.site_id] += 1
        request = SKRequest(self.site_id, self.rn[self.site_id])
        for j in range(self.n):
            if j != self.site_id:
                self.send(j, request)

    def _exit_protocol(self) -> None:
        """Update the token bookkeeping and pass it on if anyone waits."""
        self.token_ln[self.site_id] = self.rn[self.site_id]
        for j in range(self.n):
            if (
                j != self.site_id
                and self.rn[j] == self.token_ln[j] + 1
                and j not in self.token_queue
            ):
                self.token_queue.append(j)
        if self.token_queue:
            self._pass_token(self.token_queue.pop(0))

    def _pass_token(self, dst: SiteId) -> None:
        token = SKToken(ln=tuple(self.token_ln), queue=tuple(self.token_queue))
        self.has_token = False
        self.token_ln = []
        self.token_queue = []
        self.send(dst, token)

    # -- message handlers ---------------------------------------------------

    def on_message(self, src: SiteId, message: object) -> None:
        if isinstance(message, SKRequest):
            self._handle_request(message)
        elif isinstance(message, SKToken):
            self._handle_token(message)
        else:
            raise TypeError(f"unexpected message {message!r}")

    def _handle_request(self, msg: SKRequest) -> None:
        self.rn[msg.site] = max(self.rn[msg.site], msg.number)
        # An idle token holder forwards the token straight away.
        if (
            self.has_token
            and self.state is SiteState.IDLE
            and self.rn[msg.site] == self.token_ln[msg.site] + 1
        ):
            self._pass_token(msg.site)

    def _handle_token(self, msg: SKToken) -> None:
        self.has_token = True
        self.token_ln = list(msg.ln)
        self.token_queue = list(msg.queue)
        if self.state is SiteState.REQUESTING:
            self._enter_cs()
