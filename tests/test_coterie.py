"""Unit tests for coterie validation and operations (paper Section 2)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, CoterieError
from repro.quorums.coterie import Coterie, ExplicitQuorumSystem


def test_paper_example_coterie():
    # The paper's own example: C = {{a,b},{b,c}} over U = {a,b,c}.
    c = Coterie([{0, 1}, {1, 2}], universe={0, 1, 2})
    assert len(c) == 2
    assert frozenset({0, 1}) in c
    assert c.universe == {0, 1, 2}


def test_empty_coterie_rejected():
    with pytest.raises(CoterieError):
        Coterie([])


def test_empty_quorum_rejected():
    with pytest.raises(CoterieError):
        Coterie([set(), {1}])


def test_quorum_outside_universe_rejected():
    with pytest.raises(CoterieError):
        Coterie([{0, 5}], universe={0, 1})


def test_intersection_violation_rejected():
    with pytest.raises(CoterieError):
        Coterie([{0, 1}, {2, 3}])


def test_minimality_violation_rejected_by_default():
    with pytest.raises(CoterieError):
        Coterie([{0}, {0, 1}])


def test_minimality_can_be_waived_and_reduced():
    c = Coterie([{0}, {0, 1}], require_minimality=False)
    assert not c.is_minimal
    reduced = c.reduce()
    assert reduced.is_minimal
    assert reduced.quorums == (frozenset({0}),)


def test_duplicates_collapse():
    c = Coterie([{0, 1}, {1, 0}])
    assert len(c) == 1


def test_equality_and_hash_order_independent():
    a = Coterie([{0, 1}, {1, 2}])
    b = Coterie([{1, 2}, {0, 1}])
    assert a == b
    assert hash(a) == hash(b)


def test_degree_counts_arbitration_load():
    c = Coterie([{0, 1}, {1, 2}])
    assert c.degree_of(1) == 2
    assert c.degree_of(0) == 1
    assert c.degree_of(99) == 0


def test_quorum_sizes_sorted():
    c = Coterie([{0, 1, 2}, {2, 3}], require_minimality=False)
    assert c.quorum_sizes() == [2, 3]


def test_domination():
    # {{0}} dominates {{0,1},{0,2}}: every quorum of the latter contains {0}.
    small = Coterie([{0}])
    big = Coterie([{0, 1}, {0, 2}])
    assert small.dominates(big)
    assert not big.dominates(small)
    assert not small.dominates(small)


def test_is_quorum_alive():
    c = Coterie([{0, 1}, {1, 2}])
    assert c.is_quorum_alive(frozenset())
    assert c.is_quorum_alive(frozenset({0}))  # {1,2} survives
    assert not c.is_quorum_alive(frozenset({1}))  # site 1 is in every quorum


# -- ExplicitQuorumSystem -------------------------------------------------------


def test_explicit_system_roundtrip():
    table = [{0, 1}, {1, 2}, {1, 2}]
    qs = ExplicitQuorumSystem(3, table)
    assert qs.quorum_for(0) == {0, 1}
    assert qs.mean_quorum_size() == 2.0
    assert qs.max_quorum_size() == 2
    qs.validate()  # all pairwise intersect through site 1


def test_explicit_system_validations():
    with pytest.raises(ConfigurationError):
        ExplicitQuorumSystem(2, [{0}])  # wrong arity
    with pytest.raises(ConfigurationError):
        ExplicitQuorumSystem(2, [{0}, set()])  # empty quorum
    with pytest.raises(ConfigurationError):
        ExplicitQuorumSystem(2, [{0}, {7}])  # unknown site


def test_explicit_system_detects_disjoint_quorums():
    qs = ExplicitQuorumSystem(4, [{0, 1}, {0, 1}, {2, 3}, {2, 3}])
    with pytest.raises(CoterieError):
        qs.validate()


def test_quorum_avoiding_default_searches_coterie():
    qs = ExplicitQuorumSystem(3, [{0, 1}, {1, 2}, {1, 2}])
    assert qs.quorum_avoiding(0, frozenset()) == {0, 1}
    assert qs.quorum_avoiding(0, frozenset({0})) == {1, 2}
    assert qs.quorum_avoiding(0, frozenset({1})) is None


def test_zero_sites_rejected():
    with pytest.raises(ConfigurationError):
        ExplicitQuorumSystem(0, [])
