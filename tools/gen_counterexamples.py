#!/usr/bin/env python
"""Regenerate the counterexample corpus in ``tests/data/counterexamples/``.

Each corpus entry is a historical bug kept executable: the model checker
re-finds the bug in the matching protocol mutant
(``tests/_explore_mutants.py``), shrinks the schedule to a 1-minimal
action path, and exports it as monitor-replayable ``repro-trace/1``
JSONL. The committed files are regression pins —
``tests/test_explore_counterexamples.py`` replays them through
:class:`~repro.obs.monitor.ProtocolMonitor` and asserts the expected
invariant verdict — so regenerate only when the explorer's action
vocabulary or the trace schema changes, and re-run that test after.

Usage::

    PYTHONPATH=src:tests python tools/gen_counterexamples.py [outdir]

Exploration is deterministic (the action menu is sorted, the search
order fixed), so repeated runs produce identical files.
"""

from __future__ import annotations

import sys
from pathlib import Path

from _explore_mutants import EpochBlindSite, PaperLiteralSite

import repro.verify.explore as ex

#: The counterexample topology both historical bugs live in: three
#: requesters sharing two single-site arbiters (the smallest shape with
#: cross-arbiter forwarding chains).
QUORUMS = [{3, 4}, {3, 4}, {3, 4}, {3}, {4}]
REQUESTS = [1, 1, 1, 0, 0]

CORPUS = [
    {
        "name": "c2_handover_deadlock",
        "mutant": PaperLiteralSite,
        "expected_cause": "DeadlockError",
        "expected_invariant": "deadlock",
    },
    {
        "name": "cross_tenure_transfer",
        "mutant": EpochBlindSite,
        "expected_cause": "ProtocolError",
        "expected_invariant": "transfer-not-honoured",
    },
]


def generate(entry: dict, outdir: Path) -> Path:
    site_cls = type(
        f"Explore{entry['mutant'].__name__}",
        (ex._ExploreSite, entry["mutant"]),
        {},
    )
    try:
        ex.explore(
            QUORUMS,
            REQUESTS,
            max_states=3_000_000,
            keep_paths=True,
            site_cls=site_cls,
        )
    except ex.CounterexampleFound as cex:
        cause = cex.cause
        path = cex.path
    else:
        raise SystemExit(
            f"{entry['name']}: the mutant explored clean — the bug this "
            "corpus entry pins no longer reproduces"
        )
    if type(cause).__name__ != entry["expected_cause"]:
        raise SystemExit(
            f"{entry['name']}: expected {entry['expected_cause']}, "
            f"explorer raised {type(cause).__name__}: {cause}"
        )
    out = outdir / f"{entry['name']}.jsonl"
    count = ex.export_counterexample(
        str(out),
        QUORUMS,
        path,
        cause,
        REQUESTS,
        site_cls=site_cls,
        shrink=True,
    )
    verdicts = [v.invariant for v in ex.replay_counterexample(str(out))]
    if entry["expected_invariant"] not in verdicts:
        raise SystemExit(
            f"{entry['name']}: monitor replay found {verdicts}, "
            f"expected {entry['expected_invariant']}"
        )
    meta = ex.load_counterexample(str(out)).meta
    print(
        f"{out.name}: {count} records, {len(meta['path'])}-action shrunk "
        f"path, cause {meta['cause']}, monitor verdict {verdicts}"
    )
    return out


def main() -> None:
    default = Path(__file__).resolve().parent.parent / (
        "tests/data/counterexamples"
    )
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else default
    outdir.mkdir(parents=True, exist_ok=True)
    for entry in CORPUS:
        generate(entry, outdir)


if __name__ == "__main__":
    main()
