"""Property tests for the tuple-heap event queue's kernel contract.

The refactored queue stores ``(time, seq, event)`` tuples and cancels
lazily, so two invariants carry the whole kernel's determinism and are
easy to break silently:

* ``len(queue)`` equals the number of live (pushed, not yet popped, not
  cancelled) events at every point of any interleaving — lazy
  cancellation must never leak into the accounting.
* Events pop in exactly ``(time, seq)`` order: non-decreasing time, and
  scheduling order within a tie — never heap order, never approximation.

Both are checked under random interleavings of push / cancel / pop /
peek driven by a Hypothesis rule machine.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.sim.event import EventQueue


@given(
    times=st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=200),
)
def test_pop_order_is_exactly_time_then_seq(times):
    q = EventQueue()
    handles = [q.push(t, lambda: None) for t in times]
    expected = sorted(range(len(times)), key=lambda i: (times[i], handles[i].seq))
    popped = []
    while (event := q.pop()) is not None:
        popped.append(event.seq)
    assert popped == [handles[i].seq for i in expected]


class EventQueueMachine(RuleBasedStateMachine):
    """Random push/cancel/pop/peek interleavings against a model.

    The model is just the set of live handles; after every rule the
    queue's length must match it, and every popped event must be the
    ``(time, seq)``-minimum of the model at the moment of the pop.
    """

    def __init__(self):
        super().__init__()
        self.queue = EventQueue()
        self.live = {}  # seq -> handle

    @rule(time=st.floats(0.0, 100.0, allow_nan=False))
    def push(self, time):
        handle = self.queue.push(time, lambda: None)
        self.live[handle.seq] = handle

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def cancel_one(self, data):
        seq = data.draw(st.sampled_from(sorted(self.live)))
        self.live.pop(seq).cancel()

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def cancel_is_idempotent(self, data):
        seq = data.draw(st.sampled_from(sorted(self.live)))
        handle = self.live.pop(seq)
        handle.cancel()
        handle.cancel()  # double-cancel must not corrupt the live count

    @rule()
    def pop_min(self):
        expected = min(
            ((h.time, h.seq) for h in self.live.values()), default=None
        )
        event = self.queue.pop()
        if expected is None:
            assert event is None
        else:
            assert (event.time, event.seq) == expected
            del self.live[event.seq]

    @rule(bound=st.one_of(st.none(), st.floats(0.0, 100.0, allow_nan=False)))
    def pop_cohort_drains_earliest_timestamp(self, bound):
        # The cohort must be exactly the model's live events at the
        # minimum live time <= bound, in seq order — and nothing else.
        live = self.live.values()
        min_time = min((h.time for h in live), default=None)
        if min_time is None or (bound is not None and min_time > bound):
            expected = []
        else:
            expected = sorted(
                (h.seq for h in live if h.time == min_time)
            )
        cohort = self.queue.pop_cohort(limit=bound)
        assert [e.seq for e in cohort] == expected
        for e in cohort:
            del self.live[e.seq]

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def pop_cohort_then_requeue_tail(self, data):
        # Mid-cohort interruption: execute a prefix, requeue the rest.
        # The requeued tail keeps its (time, seq) identity, so later
        # rules must see it exactly where the model says it is.
        cohort = self.queue.pop_cohort()
        if not cohort:
            return
        cut = data.draw(st.integers(0, len(cohort)))
        for e in cohort[:cut]:
            del self.live[e.seq]
        self.queue.requeue(cohort[cut:])

    @rule()
    def peek_matches_min_live_time(self):
        expected = min((h.time for h in self.live.values()), default=None)
        assert self.queue.peek_time() == expected

    @invariant()
    def len_counts_live_events_exactly(self):
        assert len(self.queue) == len(self.live)
        assert bool(self.queue) == bool(self.live)


TestEventQueueMachine = EventQueueMachine.TestCase
TestEventQueueMachine.settings = settings(max_examples=60, stateful_step_count=40)
