"""Per-key conformance checking for the sharded lock service.

The single-resource verifier (:mod:`repro.verify.invariants`) checks that
one mutex instance never admits two sites at once. The lock service adds
a second safety surface on top: *per-key* mutual exclusion across the
whole population — no two clients hold the same named lock
simultaneously — while *distinct* keys must be free to proceed
concurrently (that concurrency is the entire point of sharding).

:class:`KeyConformanceChecker` watches grants and releases online and
raises :class:`~repro.errors.MutualExclusionViolation` the instant a key
is double-granted, so a violating schedule fails at the offending event
with both holders identified, not at the end of the run with a pile of
intervals. It also witnesses the concurrency side: the peak number of
distinct keys held at one instant, which conformance tests assert is
``> 1`` (a service that accidentally serialized everything through one
global lock would pass the safety check and fail this one).

Under crash faults the checker additionally owns the **fencing epochs**
(DESIGN.md §10): each key has a monotonically increasing epoch, bumped
by :meth:`KeyConformanceChecker.on_holder_crashed` whenever a lease
holder's front end is declared failed. Grants are stamped with the
epoch their key group was formed under, and :meth:`on_grant` refuses a
stale token — a front end resuming from pre-crash state cannot serve a
grant against a lease the service already revoked.

:func:`check_key_mutual_exclusion` is the post-hoc flavour over recorded
:class:`~repro.locks.frontend.LockRequest` rows — an independent
re-derivation from the (grant, end) intervals, used by tests to
cross-check the online verdict. A request's hold interval ends at its
``release_time``, at its ``orphan_time`` when the holding front end
crashed (a crash-orphaned hold is excused, not mis-reported as a
violation), or extends to the end of time when the run stopped with the
grant still live (explicitly, not via a ``None`` comparison).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

from repro.errors import MutualExclusionViolation
from repro.locks.frontend import LockRequest

__all__ = ["KeyConformanceChecker", "check_key_mutual_exclusion"]


class KeyConformanceChecker:
    """Online per-key mutual-exclusion and lease-fencing monitor.

    The service calls :meth:`on_grant` / :meth:`on_release` for every
    lock transition and :meth:`on_holder_crashed` when a holder's front
    end dies; the checker maintains the set of currently held keys plus
    the per-key fencing epochs and fails fast on a double grant or a
    stale fencing token.
    """

    __slots__ = ("holding", "peak_concurrent_keys", "grants", "fences")

    def __init__(self) -> None:
        #: Currently held keys → the request holding each.
        self.holding: Dict[str, LockRequest] = {}
        #: High-water mark of distinct keys held at one instant — the
        #: concurrency witness (must exceed 1 under a parallel workload).
        self.peak_concurrent_keys = 0
        self.grants = 0
        #: Per-key fencing epoch; absent means 0 (never revoked).
        self.fences: Dict[str, int] = {}

    def fence_of(self, key: str) -> int:
        """Current fencing epoch for ``key`` (0 until first revocation)."""
        return self.fences.get(key, 0)

    def on_grant(self, request: LockRequest) -> None:
        expected = self.fences.get(request.key, 0)
        if request.fence != expected:
            raise MutualExclusionViolation(
                f"key {request.key!r} granted to client {request.client} "
                f"under stale fencing epoch {request.fence} (current "
                f"{expected}): a crashed front end served a revoked lease"
            )
        holder = self.holding.get(request.key)
        if holder is not None:
            raise MutualExclusionViolation(
                f"key {request.key!r} granted to client {request.client} "
                f"(shard {request.shard}, site {request.site}) at "
                f"t={request.grant_time:.4f} while held by client "
                f"{holder.client} (granted t={holder.grant_time:.4f})"
            )
        self.holding[request.key] = request
        self.grants += 1
        if len(self.holding) > self.peak_concurrent_keys:
            self.peak_concurrent_keys = len(self.holding)

    def on_release(self, request: LockRequest) -> None:
        holder = self.holding.get(request.key)
        if holder is not request:
            raise MutualExclusionViolation(
                f"key {request.key!r} released by client {request.client} "
                f"at t={request.release_time:.4f} without holding it"
            )
        del self.holding[request.key]

    def on_holder_crashed(self, request: LockRequest) -> None:
        """Revoke ``request``'s live hold: its front end died.

        Removes the orphaned hold from the holding set (the key is
        grantable again once the shard CS recovers) and bumps the key's
        fencing epoch, so any grant still carrying the pre-crash token
        is refused by :meth:`on_grant`.
        """
        holder = self.holding.get(request.key)
        if holder is request:
            del self.holding[request.key]
        self.fences[request.key] = self.fences.get(request.key, 0) + 1


def _hold_interval(request: LockRequest) -> Tuple[float, float]:
    """(grant, end) of a granted request's hold, with the end explicit.

    ``release_time`` when the hold completed; ``orphan_time`` when the
    granting front end crashed mid-hold (the lease was fenced off at
    that instant, so the hold verifiably ended there); ``+inf`` when the
    run stopped with the grant still live (an unreleased hold conflicts
    with every later grant of its key).
    """
    assert request.grant_time is not None
    if request.release_time is not None:
        return request.grant_time, request.release_time
    if request.orphan_time is not None:
        return request.grant_time, request.orphan_time
    return request.grant_time, math.inf


def check_key_mutual_exclusion(requests: Iterable[LockRequest]) -> int:
    """Post-hoc per-key overlap check over recorded lock requests.

    Sorts each key's (grant, end) hold intervals and raises
    :class:`~repro.errors.MutualExclusionViolation` on any overlap —
    strictly: a grant at exactly the previous holder's end instant is
    legal (the front end releases and re-grants in one event). Requests
    that were never granted (still queued, or aborted by the retry
    layer) hold nothing and are skipped; granted requests participate
    with the explicit interval end of :func:`_hold_interval`, so
    crash-orphaned holds are excused at their orphan instant rather than
    mis-reported as violations. Returns the number of *distinct-key*
    overlapping pairs witnessed among *completed* requests (adjacent in
    global grant order), so callers can assert the service actually ran
    keys concurrently.
    """
    by_key: Dict[str, List[Tuple[float, float, LockRequest]]] = {}
    completed: List[Tuple[float, float, str]] = []
    for request in requests:
        if not request.granted:
            continue
        grant, end = _hold_interval(request)
        by_key.setdefault(request.key, []).append((grant, end, request))
        if request.complete:
            completed.append((grant, end, request.key))

    for key, rows in by_key.items():
        rows.sort(key=lambda row: row[0])
        for (_, prev_end, prev), (cur_grant, _, cur) in zip(rows, rows[1:]):
            if cur_grant < prev_end:
                raise MutualExclusionViolation(
                    f"key {key!r}: client {cur.client} granted at "
                    f"t={cur_grant:.4f} overlaps client {prev.client} "
                    f"held until t={prev_end:.4f}"
                )

    # Concurrency witness: count adjacent grant pairs (global grant
    # order) whose hold intervals overlap — necessarily distinct keys,
    # since same-key overlaps were just excluded.
    completed.sort()
    overlaps = 0
    for (_, prev_end, _), (cur_grant, _, _) in zip(completed, completed[1:]):
        if cur_grant < prev_end:
            overlaps += 1
    return overlaps
