"""Command-line interface.

Two subcommands::

    repro run  --algorithm cao-singhal --sites 25 --quorum grid ...
    repro run  --trials 30 --workers 4 --cache   # seed fan-out, cached
    repro experiment E1 [--workers 4] [options]  # regenerate a table/figure
    repro experiment all                         # everything, EXPERIMENTS.md style

(Invoke as ``python -m repro.cli`` when the console script is not on
PATH.)
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    run_ablation,
    run_chaos_resilience,
    run_churn,
    run_load_balance,
    run_availability,
    run_delay,
    run_heavy_load,
    run_light_load,
    run_load_sweep,
    run_queueing,
    run_quorum_scaling,
    run_recovery,
    run_table1,
    run_throughput,
)
from repro.experiments.report import ExperimentReport
from repro.experiments.replicate import Replication
from repro.experiments.runner import RunConfig
from repro.metrics.tables import render_table
from repro.mutex.registry import algorithm_names
from repro.parallel import RunCache, TrialPool, WORKERS_ENV
from repro.quorums.registry import quorum_system_names
from repro.ft.chaos import CHAOS_PRESETS, chaos_preset
from repro.sim.network import (
    ConstantDelay,
    ExponentialDelay,
    FaultModel,
    UniformDelay,
)
from repro.sim.transport import ReliableConfig
from repro.workload.arrivals import PoissonArrivals
from repro.workload.driver import OpenLoopWorkload, SaturationWorkload

EXPERIMENTS: Dict[str, Callable[[], ExperimentReport]] = {
    "E1": run_table1,
    "E2": run_light_load,
    "E3": run_heavy_load,
    "E4": run_delay,
    "E5": run_throughput,
    "E6": run_quorum_scaling,
    "E7a": run_availability,
    "E7b": run_recovery,
    "E8": run_load_sweep,
    "E9": run_ablation,
    "E10": run_load_balance,
    "E11": run_churn,
    "E12": run_queueing,
    "E13": run_chaos_resilience,
}


def _delay_model(spec: str):
    """Parse ``constant[:T]``, ``uniform[:lo:hi]``, ``exp[:mean]``."""
    parts = spec.split(":")
    kind = parts[0]
    args = [float(p) for p in parts[1:]]
    if kind == "constant":
        return ConstantDelay(*(args or [1.0]))
    if kind == "uniform":
        return UniformDelay(*(args or [0.5, 1.5]))
    if kind in ("exp", "exponential"):
        return ExponentialDelay(*(args or [1.0]))
    raise argparse.ArgumentTypeError(f"unknown delay model {spec!r}")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Delay-optimal quorum-based mutual exclusion "
        "(Cao & Singhal, ICDCS 1998): simulator and evaluation harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one simulation and print its summary")
    run_p.add_argument(
        "--algorithm", "-a", default="cao-singhal", choices=algorithm_names()
    )
    run_p.add_argument("--sites", "-n", type=int, default=9)
    run_p.add_argument(
        "--quorum", "-q", default=None, choices=quorum_system_names()
    )
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--delay", type=_delay_model, default=None,
        help="constant[:T] | uniform[:lo:hi] | exp[:mean] (default uniform)",
    )
    run_p.add_argument("--cs-duration", type=float, default=0.1)
    load = run_p.add_mutually_exclusive_group()
    load.add_argument(
        "--saturate", type=int, metavar="R",
        help="heavy load: R back-to-back requests per site",
    )
    load.add_argument(
        "--poisson", type=float, metavar="RATE",
        help="open loop: Poisson arrivals at RATE per site",
    )
    run_p.add_argument(
        "--horizon", type=float, default=500.0,
        help="arrival horizon for --poisson",
    )
    run_p.add_argument(
        "--trials", type=int, default=1, metavar="K",
        help="replicate over seeds seed..seed+K-1 through the trial engine",
    )
    run_p.add_argument(
        "--workers", type=int, default=None, metavar="W",
        help="worker processes for --trials (default: $REPRO_WORKERS or "
        "CPU count; 1 = in-process)",
    )
    run_p.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="reuse/record trial results in the on-disk run cache",
    )
    run_p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/trials)",
    )
    _add_fault_args(run_p)
    run_p.add_argument(
        "--fault-plan", default=None, choices=sorted(CHAOS_PRESETS),
        help="seeded chaos schedule to overlay on the run",
    )
    run_p.add_argument(
        "--reliable", action=argparse.BooleanOptionalAction, default=None,
        help="reliable-channel layer (default: on iff any fault flag is set)",
    )

    exp_p = sub.add_parser(
        "experiment", help="regenerate a paper table/figure (or 'all')"
    )
    exp_p.add_argument(
        "id", choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id from DESIGN.md",
    )
    exp_p.add_argument(
        "--workers", type=int, default=None, metavar="W",
        help="worker processes for engine-backed experiments "
        "(sets REPRO_WORKERS for the run)",
    )
    fmt = exp_p.add_mutually_exclusive_group()
    fmt.add_argument(
        "--csv", action="store_true", help="emit CSV instead of a table"
    )
    fmt.add_argument(
        "--json", action="store_true", help="emit JSON instead of a table"
    )
    exp_p.add_argument(
        "--loss", default=None, metavar="R[,R...]",
        help="E13 only: comma-separated loss rates to sweep",
    )
    exp_p.add_argument("--dup", type=float, default=None, help="E13 only")
    exp_p.add_argument("--reorder", type=float, default=None, help="E13 only")
    exp_p.add_argument("--chaos-seed", type=int, default=None, help="E13 only")
    return parser


def _add_fault_args(run_p: argparse.ArgumentParser) -> None:
    run_p.add_argument(
        "--loss", type=float, default=0.0, metavar="P",
        help="per-message drop probability (adversarial network)",
    )
    run_p.add_argument(
        "--dup", type=float, default=0.0, metavar="P",
        help="per-message duplication probability",
    )
    run_p.add_argument(
        "--reorder", type=float, default=0.0, metavar="P",
        help="per-message reordering probability (breaks channel FIFO)",
    )
    run_p.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for the fault RNG stream and --fault-plan schedule",
    )


def _fault_setup(args: argparse.Namespace):
    """(fault_model, reliable_config, chaos) from the run subcommand flags."""
    fault_model = None
    if args.loss or args.dup or args.reorder:
        fault_model = FaultModel(
            loss=args.loss,
            duplicate=args.dup,
            reorder=args.reorder,
            chaos_seed=args.chaos_seed,
        )
    chaos = (
        chaos_preset(args.fault_plan, seed=args.chaos_seed)
        if args.fault_plan
        else None
    )
    reliable = args.reliable
    if reliable is None:
        reliable = fault_model is not None or chaos is not None
    return fault_model, (ReliableConfig() if reliable else None), chaos


def cmd_run(args: argparse.Namespace) -> int:
    if args.saturate is not None:
        workload = SaturationWorkload(args.saturate)
    elif args.poisson is not None:
        workload = OpenLoopWorkload(PoissonArrivals(args.poisson), args.horizon)
    else:
        workload = SaturationWorkload(20)
    fault_model, reliable, chaos = _fault_setup(args)
    config = RunConfig(
        algorithm=args.algorithm,
        n_sites=args.sites,
        quorum=args.quorum,
        seed=args.seed,
        delay_model=args.delay,
        cs_duration=args.cs_duration,
        workload=workload,
        fault_model=fault_model,
        reliable=reliable,
        chaos=chaos,
    )
    if args.trials < 1:
        raise SystemExit("--trials must be >= 1")
    cache = RunCache(args.cache_dir) if args.cache else None
    seeds = range(args.seed, args.seed + args.trials)
    summaries = TrialPool(workers=args.workers, cache=cache).run_seeds(
        config, seeds
    )
    if args.trials == 1:
        print(summaries[0].describe())
    else:
        print(
            render_table(
                ["seed", "msgs/CS", "sync delay (T)", "response (T)",
                 "throughput"],
                [
                    [s.seed, s.messages_per_cs, s.sync_delay_in_t,
                     s.response_time_in_t, s.throughput]
                    for s in summaries
                ],
                title=f"{config.algorithm} x {args.trials} trials "
                f"(N={config.n_sites})",
            )
        )
        delays = Replication(
            metric="sync delay (T)",
            samples=[s.sync_delay_in_t for s in summaries],
        )
        print(f"  {delays}")
    if cache is not None:
        print(f"  {cache.stats}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    ids = sorted(EXPERIMENTS) if args.id == "all" else [args.id]
    env_workers = os.environ.get(WORKERS_ENV)
    if args.workers is not None:
        os.environ[WORKERS_ENV] = str(args.workers)
    chaos_flags = {
        "loss_rates": (
            tuple(float(x) for x in args.loss.split(","))
            if args.loss is not None
            else None
        ),
        "duplicate": args.dup,
        "reorder": args.reorder,
        "chaos_seed": args.chaos_seed,
    }
    chaos_flags = {k: v for k, v in chaos_flags.items() if v is not None}
    try:
        for exp_id in ids:
            kwargs = chaos_flags if exp_id == "E13" else {}
            if chaos_flags and exp_id != "E13" and args.id != "all":
                print(
                    f"warning: --loss/--dup/--reorder/--chaos-seed only "
                    f"apply to E13, ignored for {exp_id}",
                    file=sys.stderr,
                )
            report = EXPERIMENTS[exp_id](**kwargs)
            if args.csv:
                print(report.to_csv())
            elif args.json:
                print(report.to_json())
            else:
                print(report.render())
    finally:
        if args.workers is not None:
            if env_workers is None:
                os.environ.pop(WORKERS_ENV, None)
            else:
                os.environ[WORKERS_ENV] = env_workers
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "experiment":
        return cmd_experiment(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())
