"""Model-checker throughput and partial-order-reduction benchmark.

Not a paper experiment — a performance benchmark of the stateless model
checker (``repro.verify.explore``), guarding the explorer rewrite
(copy-on-apply worlds, incremental fingerprints, sleep-set DPOR). Four
measurements, archived together in ``BENCH_explore.json``:

* **Throughput** — states/sec of a complete cached-DPOR exploration of
  a 2-requesters-sharing-3-arbiters config (transfers on): 21,565
  reachable states, the largest config that completes in
  benchmark-friendly time.
* **Reduction ratio** — transitions executed by the fully unreduced
  interleaving enumeration (``dpor=False, dedupe=False`` — the tree
  every naive explorer walks) over the cached sleep-set DPOR search, on
  a reference config small enough for the tree to be enumerable at all.
  Transition counts are pure functions of the config, so the ratio is
  asserted hard (``>= 5``), not soft-warned.
* **Branch-cost ratio** — copy-on-apply ``clone()`` vs the
  ``copy.deepcopy`` the old explorer used per transition, measured on a
  mid-exploration world. This is the documented "reach" multiplier: per
  wall-clock second the new checker executes that many times more
  transitions than the old engine could (~20× on the reference
  container), which is how the 3×3-grid N=9 coterie (307,071 states,
  see DESIGN.md §9) became checkable at all.
* **Fault-budget reach** — a budgeted N=9 grid exploration under a
  one-crash/one-recovery budget: the fault alphabet at paper scale,
  archived as states/sec with its (exact) state budget.

Wall-clock targets are asserted softly (warn, don't fail) because CI
containers vary; the archived JSON is the artifact reviewers check.
"""

from __future__ import annotations

import copy
import time
import warnings

from conftest import archive_json

from repro.ft.chaos import FaultBudget
from repro.quorums import make_quorum_system
from repro.verify.explore import explore

#: Throughput config: 2 requesters sharing 3 arbiters, transfers on —
#: large enough to exercise the transfer/inquire machinery, small
#: enough to complete in seconds.
THROUGHPUT_QUORUMS = [{2, 3, 4}, {2, 3, 4}, {2}, {3}, {4}]
THROUGHPUT_REQUESTS = [1, 1, 0, 0, 0]
THROUGHPUT_STATES = 21_565  # determinism guard: reachable-state count

#: Reduction-ratio reference config: the unreduced interleaving tree
#: must be fully enumerable, which caps the config size hard (one extra
#: arbiter already pushes the tree past minutes).
REDUCTION_QUORUMS = [{2}, {2}, {2}]
REDUCTION_REQUESTS = [1, 1, 0]

REPS = 3

#: Old-explorer per-transition cost proxy: it branched worlds with
#: ``copy.deepcopy``; the rewrite clones mutable containers one level
#: deep and shares immutables. Measured 19.6× on the reference
#: container; soft target ≥10× (the documented reach multiplier).
BRANCH_COST_TARGET = 10.0

REDUCTION_TARGET = 5.0

#: States/sec soft floor for the throughput config (measured ~7,000 on
#: the reference container).
THROUGHPUT_TARGET = 2_000.0

#: Exact state budget for the N=9 fault-budget run. The failure-free
#: N=9 exploration completes at 307,071 states (84 s); adding the
#: crash/recover alphabet multiplies the space past completion range,
#: so this leg documents budgeted reach instead (ISSUE 6 acceptance).
FAULT_GRID_BUDGET = 20_000


def test_bench_explore(benchmark) -> None:
    payload: dict = {}

    # --- throughput: complete cached-DPOR search, timed -------------
    samples = []

    def one_rep():
        start = time.perf_counter()
        result = explore(
            THROUGHPUT_QUORUMS,
            THROUGHPUT_REQUESTS,
            max_states=1_000_000,
        )
        samples.append(time.perf_counter() - start)
        return result

    result = benchmark.pedantic(one_rep, rounds=REPS, iterations=1)
    assert result.complete
    assert result.states_explored == THROUGHPUT_STATES
    best = min(samples)
    states_per_sec = THROUGHPUT_STATES / best
    payload["throughput"] = {
        "quorums": [sorted(q) for q in THROUGHPUT_QUORUMS],
        "requests": THROUGHPUT_REQUESTS,
        "states": result.states_explored,
        "transitions": result.transitions,
        "best_seconds": round(best, 3),
        "states_per_sec": round(states_per_sec, 1),
    }

    # --- reduction ratio: unreduced tree vs cached sleep-set DPOR ---
    tree = explore(
        REDUCTION_QUORUMS,
        REDUCTION_REQUESTS,
        max_states=10_000_000,
        dpor=False,
        dedupe=False,
    )
    stateless = explore(
        REDUCTION_QUORUMS,
        REDUCTION_REQUESTS,
        max_states=10_000_000,
        dpor=True,
        dedupe=False,
    )
    reduced = explore(
        REDUCTION_QUORUMS, REDUCTION_REQUESTS, max_states=10_000_000
    )
    assert tree.complete and stateless.complete and reduced.complete
    ratio = tree.transitions / reduced.transitions
    payload["reduction"] = {
        "quorums": [sorted(q) for q in REDUCTION_QUORUMS],
        "requests": REDUCTION_REQUESTS,
        "unreduced_tree_transitions": tree.transitions,
        "stateless_dpor_transitions": stateless.transitions,
        "cached_dpor_transitions": reduced.transitions,
        "distinct_states": reduced.states_explored,
        "ratio": round(ratio, 2),
    }
    # Transition counts are deterministic — this cannot flake.
    assert ratio >= REDUCTION_TARGET, (
        f"DPOR reduction ratio {ratio:.2f}x below {REDUCTION_TARGET}x"
    )

    # --- branch cost: clone() vs the old explorer's deepcopy --------
    from repro.verify.explore.world import build_world

    world = build_world(THROUGHPUT_QUORUMS, THROUGHPUT_REQUESTS, True)
    for _ in range(6):  # walk mid-exploration so channels are populated
        actions = world.enabled_actions()
        if not actions:
            break
        world.apply(actions[0])

    def best_of(fn, reps: int = 200) -> float:
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    clone_s = best_of(world.clone)
    deepcopy_s = best_of(lambda: copy.deepcopy(world))
    branch_ratio = deepcopy_s / clone_s
    payload["branch_cost"] = {
        "clone_microseconds": round(clone_s * 1e6, 1),
        "deepcopy_microseconds": round(deepcopy_s * 1e6, 1),
        "ratio": round(branch_ratio, 1),
    }
    if branch_ratio < BRANCH_COST_TARGET:
        warnings.warn(
            f"clone/deepcopy ratio {branch_ratio:.1f}x below "
            f"{BRANCH_COST_TARGET}x target",
            stacklevel=1,
        )

    # --- fault-budget reach: N=9 grid, 1 crash + 1 recovery --------
    grid = make_quorum_system("grid", 9)
    quorums = [set(grid.quorum_for(i)) for i in range(9)]
    t0 = time.perf_counter()
    fault = explore(
        quorums,
        [1, 0, 0, 0, 0, 0, 0, 0, 1],
        max_states=FAULT_GRID_BUDGET,
        fault_budget=FaultBudget(crashes=1, recoveries=1),
    )
    fault_s = time.perf_counter() - t0
    assert fault.states_explored == FAULT_GRID_BUDGET  # budget is exact
    payload["fault_grid_n9"] = {
        "state_budget": FAULT_GRID_BUDGET,
        "states_per_sec": round(fault.states_explored / fault_s, 1),
        "transitions": fault.transitions,
        "max_depth": fault.max_depth,
        "complete": fault.complete,
        "crashes": 1,
        "recoveries": 1,
    }

    if states_per_sec < THROUGHPUT_TARGET:
        warnings.warn(
            f"explorer throughput {states_per_sec:.0f} states/s below "
            f"{THROUGHPUT_TARGET:.0f} soft floor",
            stacklevel=1,
        )

    archive_json("explore", payload)
    print()
    print(
        f"explore: {states_per_sec:,.0f} states/s | reduction "
        f"{ratio:.1f}x (tree {tree.transitions} -> dpor "
        f"{reduced.transitions}) | branch cost {branch_ratio:.1f}x "
        f"cheaper than deepcopy | N=9 fault run "
        f"{payload['fault_grid_n9']['states_per_sec']:,.0f} states/s"
    )
