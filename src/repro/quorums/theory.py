"""Coterie theory: transversals, (non)domination, and composition.

Tools from the coterie literature the paper builds on (Garcia-Molina &
Barbará's framework, cited via [3]):

* **minimal transversals** — the minimal site sets hitting every quorum;
  the transversal hypergraph characterizes a coterie completely;
* **non-domination** — a coterie ``C`` is *dominated* when another
  coterie grants strictly more access patterns while still excluding
  everything ``C`` excludes; dominated coteries waste availability.
  Test: ``C`` is non-dominated iff every minimal transversal of ``C``
  contains a quorum of ``C`` (equivalently, ``Tr(C) = C``);
* **composition** — the Neilsen–Mizuno substitution: replacing one site
  of a coterie by a whole sub-coterie yields a larger coterie (and
  preserves non-domination), the standard way to build hierarchical
  systems such as the paper's grid-set/RST from primitive ones.

All algorithms are exact and exponential in the worst case (transversal
enumeration is the hypergraph-dualization problem), intended for the
universe sizes where humans reason about coteries — tests and design
exploration, not hot paths.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterable, List, Optional, Set

from repro.errors import ConfigurationError
from repro.quorums.coterie import Coterie, Quorum


def _minimalize(sets: Iterable[FrozenSet[int]]) -> List[FrozenSet[int]]:
    """Drop every set that strictly contains another."""
    pool = sorted(set(sets), key=len)
    out: List[FrozenSet[int]] = []
    for candidate in pool:
        if not any(kept <= candidate for kept in out):
            out.append(candidate)
    return out


def minimal_transversals(coterie: Coterie) -> List[Quorum]:
    """All minimal hitting sets of the coterie's quorums (Berge's
    sequential method)."""
    transversals: List[FrozenSet[int]] = [frozenset()]
    for quorum in coterie.quorums:
        expanded = {
            t | {site}
            for t in transversals
            for site in quorum
        }
        transversals = _minimalize(expanded)
    return sorted(transversals, key=lambda t: (len(t), sorted(t)))


def is_nondominated(coterie: Coterie) -> bool:
    """Garcia-Molina & Barbará's criterion.

    ``C`` is dominated iff some transversal of ``C`` contains **no**
    quorum of ``C`` (that transversal could be added as a new quorum,
    improving availability without breaking intersection). Equivalently,
    ``C`` is non-dominated iff every minimal transversal contains a
    quorum.
    """
    quorums = set(coterie.quorums)
    for transversal in minimal_transversals(coterie):
        if not any(q <= transversal for q in quorums):
            return False
    return True


def dominating_extension(coterie: Coterie) -> Optional[Coterie]:
    """A coterie dominating ``coterie``, or ``None`` if it is ND.

    Construction from the domination proof: add a transversal that
    contains no existing quorum, then re-minimalize.
    """
    quorums = set(coterie.quorums)
    for transversal in minimal_transversals(coterie):
        if not any(q <= transversal for q in quorums):
            extended = Coterie(
                list(quorums) + [transversal],
                universe=coterie.universe,
                require_minimality=False,
            ).reduce()
            return extended
    return None


def compose(
    outer: Coterie, at_site: int, inner: Coterie
) -> Coterie:
    """Neilsen–Mizuno composition: substitute ``inner`` for one site.

    Every quorum of ``outer`` containing ``at_site`` has that site
    replaced by each quorum of ``inner``; quorums avoiding ``at_site``
    pass through. The inner universe must be disjoint from the outer
    (minus the replaced site), which is how hierarchical constructions
    keep levels separate.

    If both inputs are coteries, the result is a coterie; if both are
    non-dominated, so is the result (Neilsen & Mizuno 1992).
    """
    outer_rest = set(outer.universe) - {at_site}
    if outer_rest & set(inner.universe):
        raise ConfigurationError(
            "inner universe must be disjoint from the remaining outer sites"
        )
    if at_site not in outer.universe:
        raise ConfigurationError(f"site {at_site} is not in the outer universe")
    quorums: Set[Quorum] = set()
    for g in outer.quorums:
        if at_site in g:
            for h in inner.quorums:
                quorums.add((g - {at_site}) | h)
        else:
            quorums.add(g)
    universe = frozenset(outer_rest) | inner.universe
    return Coterie(quorums, universe=universe, require_minimality=False).reduce()


def coterie_degree_profile(coterie: Coterie) -> List[int]:
    """Arbitration degrees of every universe site, sorted descending."""
    return sorted(
        (coterie.degree_of(site) for site in coterie.universe), reverse=True
    )
