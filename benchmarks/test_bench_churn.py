"""E11 — service continuity under crash/recovery churn."""

from __future__ import annotations

from repro.experiments.churn import run_churn


def test_bench_churn(run_experiment):
    report = run_experiment(
        run_churn,
        n_sites=9,
        constructions=("tree", "majority", "rst"),
        requests_per_site=8,
    )
    for row in report.rows:
        construction, retained, stuck = row[0], row[3], row[4]
        assert stuck == 0, f"{construction}: live sites wedged under churn"
        # Churn costs some throughput but the service must stay well
        # within the same regime (no collapse).
        assert retained > 0.5, f"{construction}: throughput collapsed"
