"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (see the
experiment index in DESIGN.md), asserts its headline shape, prints the
rendered report, and archives it under ``benchmarks/results/`` so
EXPERIMENTS.md can be refreshed from actual runs.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def archive(report) -> None:
    """Print and persist an experiment report."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = report.render()
    print()
    print(text)
    path = RESULTS_DIR / f"{report.experiment_id}.txt"
    path.write_text(text)


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def _run(func, **kwargs):
        report = benchmark.pedantic(
            lambda: func(**kwargs), rounds=1, iterations=1
        )
        archive(report)
        return report

    return _run
