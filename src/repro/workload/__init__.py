"""Workload generation: arrival processes, drivers, and named scenarios."""

from repro.workload.arrivals import (
    ArrivalProcess,
    BurstArrivals,
    PeriodicArrivals,
    PoissonArrivals,
)
from repro.workload.driver import (
    OpenLoopWorkload,
    SaturationWorkload,
    StaggeredSingleShot,
    Workload,
)
from repro.workload.scenarios import heavy_load, light_load, moderate_load

__all__ = [
    "ArrivalProcess",
    "BurstArrivals",
    "OpenLoopWorkload",
    "PeriodicArrivals",
    "PoissonArrivals",
    "SaturationWorkload",
    "StaggeredSingleShot",
    "Workload",
    "heavy_load",
    "light_load",
    "moderate_load",
]
