"""The execution substrate: what a protocol site needs from its world.

The protocol layers — :class:`~repro.sim.node.Node`, the mutex
algorithms, the reliable-channel transport, the failure detectors — do
not care whether time is simulated or real, or whether a message rides a
heap event or a UDP datagram. They interact with the world through the
narrow :class:`Substrate` interface defined here:

* a **clock** (:attr:`Substrate.now`),
* **timers** (:meth:`Substrate.schedule_call`, returning a cancellable
  :class:`TimerHandle`),
* a **send path** (:meth:`Substrate.send` for protocol messages, routed
  through a reliable-channel transport when one is installed, and
  :meth:`Substrate.raw_send` for transport frames going straight to the
  wire),
* **delivery upcalls** (:meth:`Substrate.deliver_local` for self-sends,
  :meth:`Substrate.deliver_protocol` for the transport layer's exit),
* seeded **randomness** (:meth:`Substrate.rng`), and
* a **trace sink** (:attr:`Substrate.trace`) emitting the
  ``repro-trace/1`` record stream the verification stack replays.

Two implementations exist:

* :class:`repro.sim.simulator.Simulator` — the deterministic
  discrete-event kernel (virtual clock, heap-scheduled events, modelled
  network). The golden-fingerprint tests pin its behaviour byte-for-byte.
* :class:`repro.net.substrate.NetSubstrate` — real execution (wall
  clock, asyncio timers, UDP datagrams on localhost), one substrate per
  OS process hosting one site.

Because both satisfy the same interface, a :class:`~repro.sim.node.Node`
subclass written against it — every mutex algorithm in
:mod:`repro.mutex`, the fault-tolerant core in :mod:`repro.core`, the
heartbeat detector in :mod:`repro.ft.detector` — runs unchanged on
either, and the :class:`~repro.obs.monitor.ProtocolMonitor` verifies
both from the identical trace schema.

The protocol is :func:`typing.runtime_checkable` so tests can assert
``isinstance(Simulator(...), Substrate)``; structural typing means the
simulator does not import (or even know about) this module at runtime.
"""

from __future__ import annotations

import random
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.node import Node

#: A site identifier. Sites are small dense integers everywhere: quorum
#: systems, address books, and trace records all key on them.
SiteId = int


@runtime_checkable
class TimerHandle(Protocol):
    """A scheduled timer that can be cancelled.

    The simulator returns its :class:`~repro.sim.event.Event`; the net
    substrate returns asyncio's ``TimerHandle``. Both expose exactly the
    one method the protocol layers use.
    """

    def cancel(self) -> None:
        """Revoke the timer; a cancelled action never fires."""


@runtime_checkable
class Substrate(Protocol):
    """Everything a protocol site may ask of its execution environment.

    See the module docstring for the contract; the per-method notes
    below state the guarantees both implementations uphold.
    """

    #: The trace sink. Call sites guard hot-path records with
    #: ``if trace.enabled:``; a :class:`~repro.sim.trace.NullTrace`
    #: disables tracing at near-zero cost.
    trace: Trace

    #: Locally hosted nodes by site id. The simulator hosts all ``N``
    #: sites; a net substrate hosts exactly one.
    nodes: Dict[SiteId, "Node"]

    @property
    def now(self) -> float:
        """Current time in *time units* (the sim's virtual clock, or the
        net substrate's scaled wall clock). One unit is calibrated to the
        mean one-way message delay ``T`` wherever possible, so measured
        delays read against the paper's ``T``/``2T`` claims."""
        ...

    def schedule_call(
        self,
        delay: float,
        fn: Callable[..., None],
        args: Tuple[Any, ...] = (),
        label: str = "",
    ) -> TimerHandle:
        """Run ``fn(*args)`` after ``delay`` time units; ``delay >= 0``."""
        ...

    def send(
        self,
        src: SiteId,
        dst: SiteId,
        message: Any,
        type_name: str,
        piggybacked: bool = False,
    ) -> None:
        """Accept one protocol message for delivery to ``dst``.

        Routes through the reliable-channel transport when one is
        installed, else straight to the wire. ``src != dst`` (self-sends
        go through :meth:`deliver_local` and cost no message).
        """
        ...

    def raw_send(
        self,
        src: SiteId,
        dst: SiteId,
        frame: Any,
        type_name: str,
        piggybacked: bool = False,
    ) -> None:
        """Put one frame on the (possibly lossy) wire, bypassing any
        transport. This is the reliable-channel layer's down-call."""
        ...

    def deliver_local(self, site: SiteId, message: Any) -> None:
        """Deliver a self-addressed message (no network, no message
        cost); always invoked through a zero-delay timer so handler
        re-entrancy is impossible."""
        ...

    def deliver_protocol(self, src: SiteId, dst: SiteId, message: Any) -> None:
        """Deliver an unwrapped protocol message to a hosted node (the
        transport layer's exit; records the ``deliver`` trace row)."""
        ...

    def is_crashed(self, site: SiteId) -> bool:
        """True if a *hosted* ``site`` is currently crashed (fail-stop)."""
        ...

    def rng(self, name: str) -> random.Random:
        """A named deterministic RNG stream derived from the run seed."""
        ...
