"""Parallel trial engine: seed fan-out, deterministic merge, result cache.

The substrate every replicated experiment runs on:

* :class:`TrialPool` — fans ``run_mutex`` trials over a process pool and
  merges summaries in input order (parallel ≡ serial, byte for byte).
* :class:`RunCache` — content-addressed on-disk cache of trial summaries,
  keyed by a stable config fingerprint plus a protocol version salt.
"""

from repro.parallel.cache import (
    CACHE_DIR_ENV,
    PROTOCOL_VERSION,
    RunCache,
    default_cache_dir,
    describe_config,
    fingerprint,
)
from repro.parallel.pool import (
    DISPATCH_ENV,
    WORKERS_ENV,
    TrialPool,
    resolve_dispatch,
    resolve_workers,
    run_trials,
)

__all__ = [
    "CACHE_DIR_ENV",
    "DISPATCH_ENV",
    "PROTOCOL_VERSION",
    "RunCache",
    "TrialPool",
    "WORKERS_ENV",
    "default_cache_dir",
    "describe_config",
    "fingerprint",
    "resolve_dispatch",
    "resolve_workers",
    "run_trials",
]
