"""E9 — ablations: the transfer mechanism and piggyback accounting."""

from __future__ import annotations

import pytest

from repro.experiments.ablation import run_ablation


def test_bench_ablation(run_experiment):
    report = run_experiment(
        run_ablation, n_sites=25, requests_per_site=20
    )
    rows = {row[0]: row for row in report.rows}
    full = rows["full (transfer on)"]
    bare = rows["no transfer"]
    maekawa = rows["maekawa reference"]

    # Disabling the transfer mechanism regresses the delay toward 2T and
    # reproduces Maekawa exactly (both delay and message counts).
    assert full[1] < bare[1]
    assert bare[1] == pytest.approx(maekawa[1], abs=1e-9)
    assert bare[2] == pytest.approx(maekawa[2], abs=1e-9)
    # The transfer mechanism converts messages into latency: more msgs/CS,
    # higher throughput.
    assert full[2] > bare[2]
    assert full[4] > bare[4]
    # Piggyback accounting: naked counts exceed bundled counts for the
    # full protocol (inquire+transfer, reply+transfer bundles exist).
    assert full[3] > full[2]
    assert bare[3] == pytest.approx(bare[2], abs=1e-9)  # nothing to bundle
