"""Configured lock-service runs: build, drive, verify, summarize.

Mirrors :mod:`repro.experiments.runner` for the multi-resource layer.
:class:`LockRunConfig` is deliberately scalar-only (strings, ints,
floats, bools): it pickles across worker processes unchanged, and two
equal configs are guaranteed to describe byte-identical runs — the
sampler, arrival process, and delay model are constructed *inside*
:func:`run_lock_service` from named RNG streams, never passed in as
live objects.

Determinism contract (pinned by ``tests/test_lock_service.py``): the
whole client population is materialized up front from two dedicated
streams — ``locks/arrivals`` for the submission times, then
``locks/population`` for the (client, key) draws — so the schedule is a
pure function of the config and never interleaves with protocol RNG
usage during the run. Same config + seed ⇒ byte-identical summary
dict, whether the trial runs inline, in a worker process, or through
:class:`repro.parallel.TrialPool` at any worker count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.locks.service import LockService
from repro.sim.network import ConstantDelay
from repro.sim.simulator import Simulator
from repro.workload.arrivals import PoissonArrivals, UniformKeys, ZipfKeys

__all__ = [
    "LockRunConfig",
    "LockRunResult",
    "LockServiceSummary",
    "run_lock_service",
    "run_lock_configs",
]


@dataclass
class LockRunConfig:
    """Declarative description of one lock-service run (scalars only)."""

    algorithm: str = "cao-singhal"
    n_sites: int = 9
    shards: int = 4
    quorum: Optional[str] = None  # defaulted per-algorithm ("grid")
    seed: int = 0
    #: Name space: keys are ``lock-0 .. lock-{n_keys-1}``.
    n_keys: int = 1_000
    #: Open-loop client population multiplexing acquires onto the sites.
    n_clients: int = 16
    #: Total acquire rate across the population (requests per time unit).
    arrival_rate: float = 2.0
    n_requests: int = 500
    hold_duration: float = 0.05
    #: ``0`` = uniform key popularity; ``> 0`` = Zipf exponent ``s``.
    key_skew: float = 0.0
    routing: str = "affinity"
    batch_max: int = 8
    lease: bool = True
    lease_window: float = 2.0
    #: Mean one-way delay ``T`` (scalar ⇒ ConstantDelay, keeps configs
    #: picklable; richer delay models go through LockService directly).
    delay: float = 1.0
    max_time: float = 1_000_000.0
    max_events: int = 20_000_000
    verify: bool = True

    def effective_lease_window(self) -> float:
        return self.lease_window if self.lease else 0.0

    def make_sampler(self):
        """Key-popularity sampler implied by ``key_skew``."""
        if self.key_skew > 0:
            return ZipfKeys(self.n_keys, s=self.key_skew)
        return UniformKeys(self.n_keys)

    def run_trial(self) -> "LockServiceSummary":
        """Entry point :class:`repro.parallel.TrialPool` dispatches to."""
        return run_lock_service(self).summary


@dataclass
class LockServiceSummary:
    """Scalar digest of one lock-service run (stable, picklable)."""

    algorithm: str
    shards: int
    n_sites: int
    n_keys: int
    n_clients: int
    seed: int
    key_skew: float
    routing: str
    lease_window: float
    batch_max: int
    submitted: int
    completed: int
    violations: int
    duration: float
    messages_sent: int
    messages_per_acquire: float
    quorum_rounds: int
    lease_hits: int
    lease_hit_rate: float
    lease_expiries: int
    batches: int
    coalesced_batches: int
    mean_wait: float
    p95_wait: float
    peak_concurrent_keys: int
    distinct_key_overlaps: int
    hotspot_factor: float
    shard_loads: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form; byte-stable under ``json.dumps(sort_keys=True)``."""
        out: Dict[str, object] = {}
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            out[name] = list(value) if isinstance(value, list) else value
        return out

    def describe(self) -> str:
        """One-paragraph human summary for the CLI."""
        return (
            f"{self.algorithm}: {self.completed}/{self.submitted} acquires "
            f"over {self.shards} shards x {self.n_sites} sites "
            f"({self.n_keys} keys, skew={self.key_skew:g}, "
            f"routing={self.routing})\n"
            f"  messages/acquire: {self.messages_per_acquire:.2f} "
            f"({self.messages_sent} total, {self.quorum_rounds} quorum "
            f"rounds, {self.lease_hits} lease hits = "
            f"{100 * self.lease_hit_rate:.1f}%)\n"
            f"  wait: mean {self.mean_wait:.3f} / p95 {self.p95_wait:.3f}; "
            f"peak concurrent keys {self.peak_concurrent_keys}; "
            f"shard hotspot {self.hotspot_factor:.2f}; "
            f"violations {self.violations}"
        )


@dataclass
class LockRunResult:
    """Summary plus the live artifacts tests poke at."""

    summary: LockServiceSummary
    sim: Simulator
    service: LockService


def _validate(config: LockRunConfig) -> None:
    if config.n_keys < 1:
        raise ConfigurationError(f"n_keys must be >= 1, got {config.n_keys}")
    if config.n_clients < 1:
        raise ConfigurationError(
            f"n_clients must be >= 1, got {config.n_clients}"
        )
    if config.n_requests < 1:
        raise ConfigurationError(
            f"n_requests must be >= 1, got {config.n_requests}"
        )
    if config.hold_duration <= 0:
        raise ConfigurationError(
            f"hold_duration must be positive, got {config.hold_duration}"
        )
    if config.key_skew < 0:
        raise ConfigurationError(
            f"key_skew must be >= 0, got {config.key_skew}"
        )
    # arrival_rate / routing / batch_max / lease_window are validated by
    # PoissonArrivals and LockService respectively.


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(math.ceil(q * len(sorted_values))) - 1)
    return sorted_values[max(0, index)]


def run_lock_service(config: LockRunConfig) -> LockRunResult:
    """Run one configured lock-service simulation to completion.

    Builds the service, installs the open-loop client population,
    drains the simulator, verifies per-shard and per-key mutual
    exclusion (when ``config.verify``), and digests the run.
    """
    _validate(config)
    sim = Simulator(seed=config.seed, delay_model=ConstantDelay(config.delay))
    service = LockService(
        sim,
        algorithm=config.algorithm,
        shards=config.shards,
        n_sites=config.n_sites,
        quorum=config.quorum,
        batch_max=config.batch_max,
        lease_window=config.effective_lease_window(),
        routing=config.routing,
    )

    # The population is materialized up front from dedicated streams —
    # see the module docstring's determinism contract.
    arrival_rng = sim.rng("locks/arrivals")
    times = list(
        islice(
            PoissonArrivals(config.arrival_rate).times(arrival_rng, math.inf),
            config.n_requests,
        )
    )
    population_rng = sim.rng("locks/population")
    sampler = config.make_sampler()
    for when in times:
        client = population_rng.randrange(config.n_clients)
        key = f"lock-{sampler.sample(population_rng)}"
        sim.schedule_call(
            when, service.acquire, (client, key, config.hold_duration), "acquire"
        )

    sim.start()
    sim.run(until=config.max_time, max_events=config.max_events)

    overlaps = 0
    if config.verify:
        if sim.pending_events() != 0:
            raise ConfigurationError(
                f"lock run hit its safety cap (time={sim.now:.1f}, "
                f"events={sim.events_processed}); raise max_time/max_events "
                "or shrink the workload"
            )
        overlaps = service.verify()
        if len(service.completed) != config.n_requests:
            raise ConfigurationError(
                f"run drained with {len(service.completed)} of "
                f"{config.n_requests} acquires served"
            )

    stats = service.stats
    waits = sorted(r.wait_time for r in service.completed)
    completed = len(waits)
    summary = LockServiceSummary(
        algorithm=config.algorithm,
        shards=config.shards,
        n_sites=config.n_sites,
        n_keys=config.n_keys,
        n_clients=config.n_clients,
        seed=config.seed,
        key_skew=config.key_skew,
        routing=config.routing,
        lease_window=config.effective_lease_window(),
        batch_max=config.batch_max,
        submitted=stats.acquires,
        completed=completed,
        violations=0,  # verify() raises on any; a summary implies zero
        duration=sim.last_event_time,
        messages_sent=sim.network.stats.messages_sent,
        messages_per_acquire=(
            sim.network.stats.messages_sent / completed if completed else 0.0
        ),
        quorum_rounds=stats.quorum_rounds,
        lease_hits=stats.lease_hits,
        lease_hit_rate=(stats.lease_hits / completed if completed else 0.0),
        lease_expiries=stats.lease_expiries,
        batches=stats.batches,
        coalesced_batches=stats.coalesced_batches,
        mean_wait=(sum(waits) / completed if completed else 0.0),
        p95_wait=_percentile(waits, 0.95),
        peak_concurrent_keys=service.checker.peak_concurrent_keys,
        distinct_key_overlaps=overlaps,
        hotspot_factor=service.hotspot_factor(),
        shard_loads=list(service.shard_loads),
    )
    return LockRunResult(summary=summary, sim=sim, service=service)


def run_lock_configs(
    configs: "List[LockRunConfig]",
    workers: Optional[int] = None,
) -> List[LockServiceSummary]:
    """Run a grid of lock configs through the parallel trial engine.

    Summaries come back in input order whatever the worker count (the
    same merge discipline as :func:`repro.experiments.runner.run_many`).
    """
    from repro.parallel.pool import TrialPool

    return TrialPool(workers=workers).run_configs(configs)
