"""Unit tests for the heartbeat failure detector."""

from __future__ import annotations

import pytest

from repro.ft.detector import Heartbeat, HeartbeatMonitor
from repro.sim.network import ConstantDelay
from repro.sim.node import Node
from repro.sim.simulator import Simulator


class Host(Node):
    """Minimal node hosting a monitor."""

    def __init__(self, site_id, n, interval=2.0, timeout=5.0, lifetime=100.0):
        super().__init__(site_id)
        self.suspicions = []
        self.monitor = HeartbeatMonitor(
            self, range(n), interval, timeout, lifetime,
            on_suspect=self.suspicions.append,
        )

    def on_start(self):
        self.monitor.start()

    def on_message(self, src, message):
        self.monitor.observe(src)


def build(n=3, **kw):
    sim = Simulator(seed=0, delay_model=ConstantDelay(1.0))
    hosts = [sim.add_node(Host(i, n, **kw)) for i in range(n)]
    sim.start()
    return sim, hosts


def test_no_suspicions_among_healthy_sites():
    sim, hosts = build()
    sim.run(until=60.0)
    assert all(not h.suspicions for h in hosts)


def test_silent_site_is_suspected_once():
    sim, hosts = build()
    sim.schedule(10.0, lambda: sim.crash(2))
    sim.run(until=60.0)
    for h in hosts[:2]:
        assert h.suspicions == [2]
        assert 2 in h.monitor.suspected


def test_detection_latency_bounded_by_timeout_plus_interval():
    sim, hosts = build(timeout=5.0, interval=2.0)
    sim.schedule(10.0, lambda: sim.crash(2))
    suspected_at = {}

    orig = hosts[0].suspicions.append

    def stamp(site):
        suspected_at[site] = sim.now
        orig(site)

    hosts[0].monitor.on_suspect = stamp
    sim.run(until=60.0)
    # Crash at 10; last heartbeat received ~11; suspicion by ~11 + 5 + 2.
    assert 10.0 < suspected_at[2] <= 10.0 + 1.0 + 5.0 + 2.0 + 0.5


def test_observe_refutes_suspicion():
    sim, hosts = build()
    monitor = hosts[0].monitor
    monitor.suspected.add(2)
    assert monitor.observe(2) == 2
    assert 2 not in monitor.suspected
    assert monitor.observe(2) is None  # second call: nothing to refute


def test_protocol_traffic_counts_as_liveness():
    sim, hosts = build(timeout=5.0, interval=2.0)
    # Site 2 stops heartbeating (we stop its monitor) but keeps sending
    # other traffic — it must not be suspected.
    hosts[2].monitor.lifetime = 0.0  # no more heartbeats from 2

    def chatter():
        if not hosts[2].crashed:
            hosts[2].send(0, Heartbeat())  # any message works
            hosts[2].send(1, Heartbeat())
            sim.schedule(1.0, chatter)

    sim.schedule(0.5, chatter)
    sim.run(until=40.0)
    assert not hosts[0].suspicions
    assert not hosts[1].suspicions


def test_monitor_stops_at_lifetime_and_queue_drains():
    sim, hosts = build(lifetime=20.0)
    sim.run(until=500_000.0)
    assert sim.pending_events() == 0
    # Clock semantics: run(until=) advances now to the bound once the
    # queue drains; activity itself must have stopped right after the
    # lifetime, which last_event_time measures.
    assert sim.now == 500_000.0
    assert sim.last_event_time < 50.0  # nothing self-perpetuating after the lifetime
