"""Lamport's mutual exclusion algorithm (1978), reference [6] of the paper.

Every site broadcasts its timestamped request; every site keeps a replica
of the global request queue; a site enters the CS when its own request
heads its local queue *and* it has heard something later-stamped from every
other site. Releases are broadcast.

Costs (paper Table 1): ``3(N-1)`` messages per CS execution — ``N-1``
requests, ``N-1`` replies, ``N-1`` releases — and synchronization delay
``T`` (the release flies directly from the exiting site to the next
entrant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.state import RequestQueue
from repro.mutex.base import DurationSpec, MutexSite, RunListener, SiteState
from repro.common import Priority
from repro.substrate import SiteId


@dataclass(frozen=True)
class LamportRequest:
    """Broadcast CS request."""

    priority: Priority

    type_name = "request"


@dataclass(frozen=True)
class LamportReply:
    """Timestamped acknowledgement of a request."""

    seq: int

    type_name = "reply"


@dataclass(frozen=True)
class LamportRelease:
    """Broadcast CS release; removes the sender's request everywhere."""

    priority: Priority

    type_name = "release"


class LamportSite(MutexSite):
    """One site of Lamport's algorithm over ``n`` fully connected sites."""

    algorithm_name = "lamport"

    def __init__(
        self,
        site_id: SiteId,
        n: int,
        cs_duration: DurationSpec = 0.1,
        listener: Optional[RunListener] = None,
    ) -> None:
        super().__init__(site_id, cs_duration, listener)
        self.n = n
        self.clock = 0
        self.queue = RequestQueue()
        self.my_request: Optional[Priority] = None
        #: Highest sequence number heard from each other site.
        self.last_heard: Dict[SiteId, int] = {j: 0 for j in range(n) if j != site_id}

    # -- helpers -------------------------------------------------------------

    def _tick(self, seen: int = 0) -> int:
        """Advance the Lamport clock past ``seen`` and return the new value."""
        self.clock = max(self.clock, seen) + 1
        return self.clock

    def _others(self):
        return (j for j in range(self.n) if j != self.site_id)

    def _try_enter(self) -> None:
        """Lamport's entry rule (L1 and L2)."""
        if self.state is not SiteState.REQUESTING or self.my_request is None:
            return
        if self.queue.head() != self.my_request:
            return
        if all(seq > self.my_request.seq for seq in self.last_heard.values()):
            self._enter_cs()

    # -- MutexSite hooks -----------------------------------------------------

    def _begin_request(self) -> None:
        self.my_request = Priority(self._tick(), self.site_id)
        self.queue.push(self.my_request)
        for j in self._others():
            self.send(j, LamportRequest(self.my_request))
        self._try_enter()  # trivially enters when n == 1

    def _exit_protocol(self) -> None:
        assert self.my_request is not None
        self.queue.remove(self.my_request)
        release = LamportRelease(self.my_request)
        self.my_request = None
        self._tick()
        for j in self._others():
            self.send(j, release)

    # -- message handlers -----------------------------------------------------

    def on_message(self, src: SiteId, message: object) -> None:
        if isinstance(message, LamportRequest):
            self._tick(message.priority.seq)
            self.queue.push(message.priority)
            self.last_heard[src] = max(self.last_heard[src], message.priority.seq)
            self.send(src, LamportReply(seq=self._tick()))
        elif isinstance(message, LamportReply):
            self._tick(message.seq)
            self.last_heard[src] = max(self.last_heard[src], message.seq)
        elif isinstance(message, LamportRelease):
            self._tick(message.priority.seq)
            self.queue.remove(message.priority)
            self.last_heard[src] = max(self.last_heard[src], message.priority.seq)
        else:
            raise TypeError(f"unexpected message {message!r}")
        self._try_enter()
