"""Maekawa-style grid quorums: ``K = O(sqrt N)``.

Maekawa's original construction uses finite projective planes, which only
exist for special ``N``; the grid is the standard practical stand-in with
the same asymptotics and is what the paper's ``K = sqrt(N)`` rows assume.

Sites ``0 .. n-1`` are laid out row-major in a ``rows x cols`` grid whose
last row may be partial. The quorum of a site is its full row plus its full
column. Intersection holds for partial grids too: for sites ``i`` and
``j``, cell ``(row_j, col_i)`` or cell ``(row_i, col_j)`` exists unless both
sites share the (partial) last row — in which case their rows coincide.
"""

from __future__ import annotations

import math
from typing import AbstractSet, FrozenSet, Optional

from repro.errors import ConfigurationError
from repro.quorums.coterie import Quorum, QuorumSystem, SiteId


class GridQuorumSystem(QuorumSystem):
    """Row-plus-column quorums over a near-square grid.

    Parameters
    ----------
    n:
        Number of sites.
    cols:
        Grid width; defaults to ``ceil(sqrt(n))``, which minimizes
        ``rows + cols`` and hence the quorum size.
    """

    name = "grid"

    def __init__(self, n: int, cols: Optional[int] = None) -> None:
        super().__init__(n)
        self.cols = cols if cols is not None else max(1, math.isqrt(n - 1) + 1)
        if self.cols < 1:
            raise ConfigurationError(f"cols must be >= 1, got {self.cols}")
        self.rows = (n + self.cols - 1) // self.cols

    # -- grid geometry -------------------------------------------------------

    def position(self, site: SiteId) -> tuple:
        """(row, column) of ``site`` in the row-major layout."""
        if not 0 <= site < self.n:
            raise ConfigurationError(f"site {site} outside 0..{self.n - 1}")
        return divmod(site, self.cols)

    def row_members(self, row: int) -> FrozenSet[SiteId]:
        """All sites in ``row`` (the last row may be shorter)."""
        start = row * self.cols
        return frozenset(range(start, min(start + self.cols, self.n)))

    def col_members(self, col: int) -> FrozenSet[SiteId]:
        """All sites in column ``col``."""
        return frozenset(
            r * self.cols + col
            for r in range(self.rows)
            if r * self.cols + col < self.n
        )

    # -- QuorumSystem interface ------------------------------------------------

    def quorum_for(self, site: SiteId) -> Quorum:
        row, col = self.position(site)
        return self.row_members(row) | self.col_members(col)

    def quorum_avoiding(
        self, site: SiteId, failed: AbstractSet[SiteId]
    ) -> Optional[Quorum]:
        """Try every (row, column) pair avoiding the failed sites.

        The grid construction has limited fault tolerance — any full row or
        column loss kills many quorums — which is exactly the motivation the
        paper gives for the fault-tolerant constructions of Section 6.
        """
        if not failed:
            return self.quorum_for(site)
        for row in range(self.rows):
            row_set = self.row_members(row)
            if row_set & failed:
                continue
            for col in range(self.cols):
                col_set = self.col_members(col)
                if col_set and not (col_set & failed):
                    return row_set | col_set
        return None
