"""The delay-optimal quorum-based mutual exclusion algorithm (Section 3).

Every site plays two roles at once:

* **requester** — runs steps A.1 (send requests), B (enter the CS when all
  replies are held), and C (exit: honour transfers by forwarding replies
  directly to the next sites, then release every arbiter);
* **arbiter** — manages one permission (its ``lock``), a priority queue of
  waiting requests, and the inquire/fail/yield/transfer traffic (A.2–A.5).

The paper's formal pseudo-code is OCR-damaged in the source scan; the rules
below are reconstructed from the prose of Section 3.2 and pinned down by
the per-case message counts of Section 5.2 (see DESIGN.md, "Protocol
reconstruction notes"). The resulting arbiter rule on a ``request(sn,i)``
arriving while locked is:

1. the newcomer is sent ``fail`` unless it beats **both** the lock holder
   and every queued request (Section 5.2 counts a ``fail`` in cases 1, 3,
   and 5 — including case 1 where the queue is empty, so the newcomer
   itself must be the recipient);
2. if the newcomer becomes the new queue head, the displaced head is sent
   ``fail`` if it had not already been failed (it had not iff it beat the
   lock holder — case 4);
3. if the newcomer becomes the new queue head, the lock holder is sent
   ``transfer(i, j)`` so it can forward the permission directly on exit —
   piggybacked with ``inquire(j)`` iff the newcomer also beats the lock
   holder and no inquire is already outstanding (one is outstanding iff
   the old head beat the lock holder).

The delay optimality comes from step C: the exiting site sends the
``reply`` *directly* to each arbiter's next-in-line (one message delay,
``T``) instead of the Maekawa route release→arbiter→reply (``2T``).

Setting ``enable_transfer=False`` disables the forwarding machinery
entirely (no transfers, releases carry ``max``), which degenerates the
protocol to a Maekawa-style ``2T`` path — the E9 ablation.

**Tenure epochs (reconstruction extension).** The paper relies on FIFO
channels and request timestamps to discard stale control traffic. Once
replies travel through proxies, that is insufficient: the exhaustive
interleaving explorer (``repro.verify.explore``) produced a run where a
``transfer`` sent during a holder's first tenure at an arbiter is
delivered after the holder yielded and *re-acquired* the same arbiter —
same request timestamp, same holder, different tenure — and honouring it
releases a permission to a request that was already served. Every grant
therefore carries the arbiter's tenure number (``epoch``), transfers and
inquires carry the tenure they belong to, and holders honour only
current-tenure instructions. See DESIGN.md, "Reproduction findings".
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.messages import (
    Fail,
    Inquire,
    Release,
    Reply,
    Request,
    Transfer,
    Yield,
)
from repro.core.messages import pool as _pool
from repro.core.state import ArbiterState, RequesterState
from repro.errors import ProtocolError
from repro.mutex.base import DurationSpec, MutexSite, RunListener, SiteState
from repro.common import Priority, bundle_or_single
from repro.substrate import SiteId


class CaoSinghalSite(MutexSite):
    """One site of the delay-optimal algorithm.

    Parameters
    ----------
    site_id:
        This site's identifier.
    quorum:
        The site's ``req_set`` (from any intersecting quorum system).
    cs_duration:
        CS hold time (constant or sampler), the paper's ``E``.
    listener:
        Metrics observer.
    enable_transfer:
        Ablation switch; ``False`` disables direct forwarding (see module
        docstring).
    """

    algorithm_name = "cao-singhal"

    __slots__ = (
        "quorum",
        "_quorum_sorted",
        "enable_transfer",
        "arbiter",
        "req",
        "_pending_releases",
        "max_seq_seen",
    )

    def __init__(
        self,
        site_id: SiteId,
        quorum: Iterable[SiteId],
        cs_duration: DurationSpec = 0.1,
        listener: Optional[RunListener] = None,
        enable_transfer: bool = True,
    ) -> None:
        super().__init__(site_id, cs_duration, listener)
        self.quorum = frozenset(quorum)
        if not self.quorum:
            raise ProtocolError(f"site {site_id} has an empty quorum")
        #: The quorum in its canonical (sorted) broadcast order, interned
        #: once — the request/release fanouts iterate it every CS cycle.
        #: Must be refreshed wherever ``quorum`` is reassigned (see
        #: FaultTolerantSite._adopt_new_quorum).
        self._quorum_sorted = tuple(sorted(self.quorum))
        self.enable_transfer = enable_transfer
        self.arbiter = ArbiterState()
        self.req = RequesterState()
        #: Out-of-order releases, keyed by the releasing request.
        #: With direct forwarding a beneficiary can enter and exit the CS
        #: so fast that its release overtakes the proxy's release (which is
        #: what installs the beneficiary as this arbiter's lock holder).
        #: Such a release is buffered and applied the moment the lock
        #: catches up. The paper does not discuss this race; buffering is
        #: the standard remedy and preserves all protocol invariants.
        self._pending_releases: dict = {}
        #: Lamport-style clock: highest sequence number sent, received,
        #: or observed (Section 3.1).
        self.max_seq_seen = 0

    # ------------------------------------------------------------------
    # Requester role
    # ------------------------------------------------------------------

    def _begin_request(self) -> None:
        """Step A.1: timestamp the request and ask every quorum member."""
        self.max_seq_seen += 1
        priority = Priority(self.max_seq_seen, self.site_id)
        self.req.reset_for(priority, self.quorum)
        # One frozen Request shared across the whole fanout: the message
        # is an immutable value object, so every member can receive the
        # same instance (saves |quorum|-1 allocations per CS cycle).
        self.send_fanout(self._quorum_sorted, Request(priority))

    def _record_reply(self, msg: Reply) -> None:
        """Step A.6 plus the entry check of step B."""
        if self.req.priority is None or msg.grantee != self.req.priority:
            return  # reply for a finished request (late forwarded reply)
        if self.state is not SiteState.REQUESTING:
            return
        if msg.arbiter not in self.req.replied:
            raise ProtocolError(
                f"site {self.site_id} got reply on behalf of non-quorum "
                f"arbiter {msg.arbiter}"
            )
        self.req.replied[msg.arbiter] = True
        self.req.grant_epoch[msg.arbiter] = msg.epoch
        if self.req.all_replied:
            # Entering answers any deferred inquires implicitly: the
            # releases sent at exit resolve them at the arbiters.
            self._enter_cs()
            return
        if msg.arbiter in self.req.inq_pending:
            epoch = self.req.inq_pending.pop(msg.arbiter)
            self._consider_inquire(msg.arbiter, epoch)

    def _record_fail(self, msg: Fail) -> None:
        """Step A.7: mark failed and answer deferred inquires with yields."""
        if self.req.priority is None or msg.target != self.req.priority:
            return  # stale fail for a previous request
        if self.state is not SiteState.REQUESTING:
            return  # we already hold everything; the fail is obsolete
        self.req.failed = True
        for arbiter in sorted(self.req.inq_pending):
            if self.req.replied.get(arbiter):
                epoch = self.req.inq_pending.pop(arbiter)
                if epoch == self.req.grant_epoch.get(arbiter):
                    self._yield_to(arbiter)
                # An inquire from another tenure is dead either way.

    def _record_inquire(self, msg: Inquire) -> None:
        """Step A.3 entry point."""
        if self.req.priority is None or msg.target != self.req.priority:
            return  # stale inquire ("arrives after release": ignore)
        if self.state is not SiteState.REQUESTING:
            return  # in the CS; the release will answer the arbiter
        self._consider_inquire(msg.arbiter, msg.epoch)

    def _consider_inquire(self, arbiter: SiteId, epoch: int) -> None:
        """Step A.3 body: yield now, defer, or drop a cross-tenure relic."""
        if self.req.replied.get(arbiter):
            if epoch != self.req.grant_epoch.get(arbiter):
                return  # inquire about another tenure of this permission
            if self.req.failed:
                self._yield_to(arbiter)
                return
        # Either the reply has not arrived yet (it may be travelling via a
        # proxy on a different channel), or we have not failed and may
        # still enter the CS. Defer, remembering the inquired tenure.
        self.req.inq_pending[arbiter] = epoch

    def _yield_to(self, arbiter: SiteId) -> None:
        """Give an arbiter's permission back (and stop acting as its proxy)."""
        assert self.req.priority is not None
        self.req.replied[arbiter] = False
        self.req.failed = True
        self.req.tran_stack.drop_arbiter(arbiter)
        epoch = self.req.grant_epoch.get(arbiter, 0)
        msg = (
            _pool.new_yield(self.req.priority, epoch)
            if _pool.enabled
            else Yield(self.req.priority, epoch)
        )
        self.send(arbiter, msg)

    def _record_transfer(self, msg: Transfer) -> None:
        """Step A.5: accept a forwarding instruction if still relevant."""
        if self.req.priority is None or msg.holder != self.req.priority:
            return  # outdated transfer (we already released this arbiter)
        if not self.req.replied.get(msg.arbiter):
            return  # outdated: we yielded (or never got) this permission
        if msg.holder_epoch != self.req.grant_epoch.get(msg.arbiter):
            # A relic of an earlier tenure of this very permission
            # (yield-and-reacquire); honouring it would hand the arbiter's
            # permission to a request of the previous tenure's queue.
            return
        self.req.tran_stack.push(msg)

    def _exit_protocol(self) -> None:
        """Step C: forward replies directly, then release every arbiter."""
        assert self.req.priority is not None
        honoured = {}
        if self.enable_transfer:
            while self.req.tran_stack:
                transfer = self.req.tran_stack.pop()
                self.req.tran_stack.drop_arbiter(transfer.arbiter)
                honoured[transfer.arbiter] = transfer.beneficiary
                # Forwarding opens the beneficiary's tenure: one past the
                # tenure the transfer was issued in.
                self.send(
                    transfer.beneficiary.site,
                    Reply(
                        transfer.arbiter,
                        transfer.beneficiary,
                        self.site_id,
                        transfer.holder_epoch + 1,
                    ),
                )
        priority = self.req.priority
        grant_epoch = self.req.grant_epoch
        honoured_get = honoured.get
        for member in self._quorum_sorted:
            self.send(
                member,
                Release(priority, honoured_get(member), grant_epoch.get(member, 0)),
            )
        self.req.priority = None
        self.req.inq_pending.clear()

    # ------------------------------------------------------------------
    # Arbiter role
    # ------------------------------------------------------------------

    def _handle_request(self, msg: Request) -> None:
        """Step A.2."""
        seq = msg.priority.seq
        if seq > self.max_seq_seen:
            self.max_seq_seen = seq
        arb = self.arbiter
        if arb.is_free:
            if arb.req_queue:
                raise ProtocolError(
                    f"arbiter {self.site_id} is free with a non-empty queue"
                )
            arb.install(msg.priority)
            reply = (
                _pool.new_reply(self.site_id, msg.priority, None, arb.epoch)
                if _pool.enabled
                else Reply(self.site_id, msg.priority, None, arb.epoch)
            )
            self.send(msg.priority.site, reply)
            return

        newcomer = msg.priority
        old_head = arb.req_queue.head()
        becomes_head = old_head is None or newcomer < old_head

        # Rule 1: fail the newcomer unless it beats both lock and queue.
        if newcomer > arb.lock or (old_head is not None and newcomer > old_head):
            fail = (
                _pool.new_fail(self.site_id, newcomer)
                if _pool.enabled
                else Fail(self.site_id, newcomer)
            )
            self.send(newcomer.site, fail)

        if becomes_head:
            # Rule 2: the displaced head learns it is no longer next —
            # unless it already failed on arrival (it beat nothing then).
            if old_head is not None and old_head < arb.lock:
                fail = (
                    _pool.new_fail(self.site_id, old_head)
                    if _pool.enabled
                    else Fail(self.site_id, old_head)
                )
                self.send(old_head.site, fail)
            # Rule 3: instruct the lock holder, maybe asking it to yield.
            parts: List[object] = []
            if self.enable_transfer:
                parts.append(
                    Transfer(newcomer, self.site_id, arb.lock, arb.epoch)
                )
            inquire_outstanding = old_head is not None and old_head < arb.lock
            if newcomer < arb.lock and not inquire_outstanding:
                parts.append(
                    _pool.new_inquire(self.site_id, arb.lock, arb.epoch)
                    if _pool.enabled
                    else Inquire(self.site_id, arb.lock, arb.epoch)
                )
            if parts:
                self.send(
                    arb.lock.site, bundle_or_single(*parts), piggybacked=len(parts) > 1
                )

        arb.req_queue.push(newcomer)

    def _handle_yield(self, msg: Yield) -> None:
        """Step A.4: reassign the lock to the best waiting request."""
        arb = self.arbiter
        if msg.yielder != arb.lock or msg.epoch != arb.epoch:
            return  # stale yield for a lock tenure that already ended
        arb.req_queue.push(arb.lock)
        new_lock = arb.req_queue.pop_head()
        if new_lock == msg.yielder:
            raise ProtocolError(
                f"arbiter {self.site_id}: yield from {msg.yielder} but no "
                "higher-priority request is waiting"
            )
        arb.install(new_lock)
        self._grant(new_lock)

    def _grant(self, grantee: Priority) -> None:
        """Send ``reply`` to the new lock holder, piggybacking a transfer
        for the next-in-line when one exists (A.4 and C.2)."""
        arb = self.arbiter
        parts: List[object] = [
            _pool.new_reply(self.site_id, grantee, None, arb.epoch)
            if _pool.enabled
            else Reply(self.site_id, grantee, None, arb.epoch)
        ]
        head = arb.req_queue.head()
        if head is not None and self.enable_transfer:
            parts.append(Transfer(head, self.site_id, grantee, arb.epoch))
        self.send(grantee.site, bundle_or_single(*parts), piggybacked=len(parts) > 1)

    def _handle_release(self, src: SiteId, msg: Release) -> None:
        """Step C.2: account for a finished CS execution.

        A release whose sender is not (yet) the recorded lock holder is an
        out-of-order release from a forwarding chain (see
        ``_pending_releases``); it is buffered until the proxy's release
        installs the sender as lock holder, then replayed.
        """
        arb = self.arbiter
        if arb.lock != msg.releaser:
            if msg.releaser in arb.req_queue:
                # The sender is still queued here, so its permission came
                # through a forwarding chain this arbiter has not yet
                # heard about. Buffer and replay.
                self._pending_releases[msg.releaser] = msg
                return
            raise ProtocolError(
                f"arbiter {self.site_id}: release from {msg.releaser} but "
                f"lock is {arb.lock}"
            )
        if msg.transferred_to is not None:
            # The permission travelled directly to the beneficiary.
            beneficiary = msg.transferred_to
            if not arb.req_queue.remove(beneficiary):
                raise ProtocolError(
                    f"arbiter {self.site_id}: transferred-to request "
                    f"{beneficiary} is not queued"
                )
            arb.install(beneficiary)
            stashed = self._pending_releases.pop(beneficiary, None)
            if stashed is not None:
                # The beneficiary already exited; its buffered release is
                # now in order. No point sending it a transfer.
                self._handle_release(beneficiary.site, stashed)
                return
            head = arb.req_queue.head()
            if head is not None and self.enable_transfer:
                parts: List[object] = [
                    Transfer(head, self.site_id, beneficiary, arb.epoch)
                ]
                if head < beneficiary:
                    # The queue head outranks the freshly installed lock
                    # holder; any inquire sent during the previous tenure
                    # died with it, so this tenure needs its own (same
                    # rule as A.2, applied at the lock handover).
                    parts.append(Inquire(self.site_id, beneficiary, arb.epoch))
                self.send(
                    beneficiary.site,
                    bundle_or_single(*parts),
                    piggybacked=len(parts) > 1,
                )
            return
        # Permission returned to the arbiter: grant the best waiter, if any.
        if not arb.req_queue:
            arb.lock = Priority.maximum()
            return
        new_lock = arb.req_queue.pop_head()
        arb.install(new_lock)
        self._grant(new_lock)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def on_message(self, src: SiteId, message: object) -> None:
        """Route one (possibly piggybacked) protocol message.

        The seven core message classes dispatch on exact class identity
        (no per-message ``parts`` getattr, no tuple allocation, no
        isinstance chain); anything else — piggyback bundles and the
        extra message types of subclasses — falls through to
        :meth:`_dispatch_part`, which remains the extensible per-part
        entry point.
        """
        cls = message.__class__
        if cls is Request:
            self._handle_request(message)
        elif cls is Reply:
            self._record_reply(message)
            if _pool.enabled:
                _pool.recycle(message)
        elif cls is Release:
            self._handle_release(src, message)
        elif cls is Inquire:
            self._record_inquire(message)
            if _pool.enabled:
                _pool.recycle(message)
        elif cls is Fail:
            self._record_fail(message)
            if _pool.enabled:
                _pool.recycle(message)
        elif cls is Yield:
            self._handle_yield(message)
            if _pool.enabled:
                _pool.recycle(message)
        elif cls is Transfer:
            self._record_transfer(message)
        else:
            for part in getattr(message, "parts", (message,)):
                self._dispatch_part(src, part)

    def _dispatch_part(self, src: SiteId, part: object) -> None:
        if isinstance(part, Request):
            self._handle_request(part)
        elif isinstance(part, Reply):
            self._record_reply(part)
        elif isinstance(part, Release):
            self._handle_release(src, part)
        elif isinstance(part, Inquire):
            self._record_inquire(part)
        elif isinstance(part, Fail):
            self._record_fail(part)
        elif isinstance(part, Yield):
            self._handle_yield(part)
        elif isinstance(part, Transfer):
            self._record_transfer(part)
        else:
            raise ProtocolError(
                f"site {self.site_id} received unknown message {part!r}"
            )
