"""Name-based registry of quorum constructions.

The CLI, the experiment harness, and the tests all refer to constructions
by their short names (``grid``, ``tree``, ...); this module is the single
mapping from names to factories so a new construction registers once.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.quorums.coterie import QuorumSystem
from repro.quorums.fpp import FPPQuorumSystem
from repro.quorums.grid import GridQuorumSystem
from repro.quorums.gridset import GridSetQuorumSystem
from repro.quorums.hierarchical import HierarchicalQuorumSystem
from repro.quorums.majority import MajorityQuorumSystem
from repro.quorums.rst import RSTQuorumSystem
from repro.quorums.singleton import SingletonQuorumSystem
from repro.quorums.tree import TreeQuorumSystem
from repro.quorums.wheel import WheelQuorumSystem

QuorumFactory = Callable[[int], QuorumSystem]

_REGISTRY: Dict[str, QuorumFactory] = {
    FPPQuorumSystem.name: FPPQuorumSystem,
    GridQuorumSystem.name: GridQuorumSystem,
    TreeQuorumSystem.name: TreeQuorumSystem,
    HierarchicalQuorumSystem.name: HierarchicalQuorumSystem,
    MajorityQuorumSystem.name: MajorityQuorumSystem,
    SingletonQuorumSystem.name: SingletonQuorumSystem,
    WheelQuorumSystem.name: WheelQuorumSystem,
    GridSetQuorumSystem.name: GridSetQuorumSystem,
    RSTQuorumSystem.name: RSTQuorumSystem,
}


def quorum_system_names() -> List[str]:
    """Registered construction names, sorted."""
    return sorted(_REGISTRY)


def make_quorum_system(name: str, n: int, **kwargs) -> QuorumSystem:
    """Instantiate the construction registered as ``name`` for ``n`` sites."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown quorum system {name!r}; known: {', '.join(quorum_system_names())}"
        ) from None
    return factory(n, **kwargs)


def register_quorum_system(name: str, factory: QuorumFactory) -> None:
    """Register a custom construction (used by tests and extensions)."""
    if name in _REGISTRY:
        raise ConfigurationError(f"quorum system {name!r} already registered")
    _REGISTRY[name] = factory
