"""Experiment harness: one module per table/figure (see DESIGN.md index).

========  =============================================================
E1        Table 1 — algorithm comparison (messages, sync delay)
E2        Section 5.1 — light-load cost ``3(K-1)``, response ``2T+E``
E3        Section 5.2 — heavy-load cost in ``[5(K-1), 6(K-1)]``
E4        Sync delay ``T`` vs ``2T`` across system sizes
E5        Throughput doubled / waiting halved at heavy load
E6        Quorum size scaling by construction
E7        Fault tolerance: availability curves + recovery liveness
E8        Load sweep (figure-style trade-off curves)
E9        Ablations: transfer mechanism, piggybacking
E10       Arbitration load balance across constructions
E11       Service continuity under crash/recovery churn
E12       Arbiter queue dynamics across the load range
E13       Chaos resilience: degradation vs packet-loss rate
E14       Lock-service scale sweep (lock count x client count)
E15       Lock-service key skew: shard balance + lease-cache savings
E16       Lock-service crash chaos: crash rate x detection latency
========  =============================================================
"""

from repro.experiments.ablation import run_ablation
from repro.experiments.chaos_sweep import run_chaos_resilience
from repro.experiments.churn import run_churn
from repro.experiments.delay import run_delay
from repro.experiments.fault_tolerance import run_availability, run_recovery
from repro.experiments.heavy_load import run_heavy_load
from repro.experiments.light_load import run_light_load
from repro.experiments.load_balance import run_load_balance, run_lock_skew
from repro.experiments.load_sweep import run_load_sweep
from repro.experiments.lock_chaos import run_lock_chaos
from repro.experiments.lock_sweep import run_lock_sweep
from repro.experiments.queueing import run_queueing
from repro.experiments.quorum_scaling import run_quorum_scaling
from repro.experiments.replicate import Replication, replicate, sync_delay_ci
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import RunConfig, RunResult, quick_run, run_mutex
from repro.experiments.table1 import run_table1
from repro.experiments.throughput import run_throughput

__all__ = [
    "ExperimentReport",
    "RunConfig",
    "RunResult",
    "Replication",
    "quick_run",
    "replicate",
    "run_ablation",
    "run_availability",
    "run_chaos_resilience",
    "run_churn",
    "run_delay",
    "run_heavy_load",
    "run_light_load",
    "run_load_balance",
    "run_load_sweep",
    "run_lock_chaos",
    "run_lock_skew",
    "run_lock_sweep",
    "run_mutex",
    "run_queueing",
    "run_quorum_scaling",
    "run_recovery",
    "run_table1",
    "run_throughput",
    "sync_delay_ci",
]
