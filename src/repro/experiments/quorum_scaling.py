"""Experiment E6 — Section 5.3 / 6: quorum size across constructions.

The proposed algorithm's message cost is ``c*K``, so ``K``'s growth is the
whole story: ``sqrt(N)`` for grids, ``log N`` for failure-free tree paths,
``N^0.63`` for HQC, ``N/2`` for majority, and the two-level grid-set / RST
shapes in between. Measured per-site mean quorum size against the closed
forms, across system sizes.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.closed_form import (
    gridset_quorum_size,
    hierarchical_quorum_size,
    maekawa_quorum_size,
    majority_quorum_size,
    rst_quorum_size,
    tree_quorum_size,
)
from repro.experiments.report import ExperimentReport
from repro.quorums.registry import make_quorum_system

DEFAULT_SIZES = (9, 16, 25, 49, 100, 225)


def run_quorum_scaling(sizes: Sequence[int] = DEFAULT_SIZES) -> ExperimentReport:
    """Mean quorum size K by construction and N, measured vs closed form."""
    report = ExperimentReport(
        experiment_id="E6",
        title="Quorum size K by construction (measured / closed form)",
        headers=[
            "N",
            "grid",
            "sqrt(N)",
            "tree",
            "log2(N+1)",
            "hierarchical",
            "N^0.63",
            "majority",
            "N/2+1",
            "grid-set",
            "rst",
        ],
    )
    for n in sizes:
        row = [n]
        for name, closed in (
            ("grid", maekawa_quorum_size(n)),
            ("tree", tree_quorum_size(n)),
            ("hierarchical", hierarchical_quorum_size(n)),
            ("majority", majority_quorum_size(n)),
        ):
            qs = make_quorum_system(name, n)
            row.extend([qs.mean_quorum_size(), closed])
        row.append(make_quorum_system("grid-set", n).mean_quorum_size())
        row.append(make_quorum_system("rst", n).mean_quorum_size())
        report.add_row(*row)
    report.add_note(
        "grid-set / rst closed forms depend on the group size; defaults "
        f"give e.g. N=100: grid-set~{gridset_quorum_size(100, 4):.1f}, "
        f"rst~{rst_quorum_size(100, 3):.1f}."
    )
    report.add_note(
        "Every construction is validated for pairwise intersection at "
        "build time; sizes are means over per-site quorums."
    )
    return report
