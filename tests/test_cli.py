"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, _delay_model, build_parser, main
from repro.sim.network import ConstantDelay, ExponentialDelay, UniformDelay


def test_delay_model_parsing():
    assert isinstance(_delay_model("constant"), ConstantDelay)
    assert _delay_model("constant:2.5").mean == 2.5
    model = _delay_model("uniform:1:3")
    assert isinstance(model, UniformDelay) and model.mean == 2.0
    assert isinstance(_delay_model("exp:1.5"), ExponentialDelay)
    with pytest.raises(Exception):
        _delay_model("warp")


def test_parser_defaults():
    args = build_parser().parse_args(["run"])
    assert args.algorithm == "cao-singhal"
    assert args.sites == 9


def test_run_command_prints_summary(capsys):
    code = main(
        [
            "run",
            "-a",
            "cao-singhal",
            "-n",
            "4",
            "-q",
            "grid",
            "--saturate",
            "3",
            "--delay",
            "constant:1",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "cao-singhal" in out
    assert "messages/CS" in out


def test_run_command_poisson(capsys):
    code = main(
        ["run", "-a", "ricart-agrawala", "-n", "3", "--poisson", "0.05",
         "--horizon", "100"]
    )
    assert code == 0
    assert "ricart-agrawala" in capsys.readouterr().out


def test_run_command_with_fault_flags(capsys):
    code = main(
        ["run", "-a", "cao-singhal", "--saturate", "3", "--delay",
         "constant:1", "--loss", "0.2", "--dup", "0.05", "--reorder", "0.1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    # Fault flags auto-enable the reliable layer and surface its counters.
    assert "channel" in out
    assert "retransmitted" in out


def test_run_command_with_fault_plan(capsys):
    code = main(
        ["run", "-a", "maekawa", "--saturate", "3", "--delay", "constant:1",
         "--fault-plan", "loss-burst", "--chaos-seed", "5"]
    )
    assert code == 0
    assert "maekawa" in capsys.readouterr().out


def test_clean_run_keeps_reliable_layer_off(capsys):
    code = main(
        ["run", "-a", "cao-singhal", "--saturate", "3", "--delay", "constant:1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "channel" not in out


def test_experiment_ids_registered():
    for exp_id in ("E1", "E2", "E3", "E4", "E5", "E6", "E7a", "E7b", "E8",
                   "E9", "E13"):
        assert exp_id in EXPERIMENTS


def test_experiment_command_csv(capsys):
    code = main(["experiment", "E6", "--csv"])
    out = capsys.readouterr().out
    assert code == 0
    assert out.startswith("N,")


def test_invalid_algorithm_rejected_by_parser():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "-a", "not-an-algorithm"])
