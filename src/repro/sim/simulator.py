"""The discrete-event simulator tying clock, network, and nodes together.

Usage sketch::

    sim = Simulator(seed=7, delay_model=ConstantDelay(1.0))
    for i in range(N):
        sim.add_node(MySite(i, ...))
    sim.start()
    sim.run(until=10_000)

The simulator is deliberately small: it owns the clock and the event queue,
delegates transport to :class:`repro.sim.network.Network`, and dispatches
deliveries to :meth:`repro.sim.node.Node.on_message`. Determinism comes
from the seeded RNG streams and the stable event tie-break; two simulators
built with the same seed and the same construction order replay the exact
same history.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import SimulationError
from repro.sim.event import Event, EventQueue
from repro.sim.network import DelayModel, Envelope, Network, UniformDelay
from repro.sim.node import Node
from repro.sim.rng import SeedSequence
from repro.sim.trace import Trace

SiteId = int


class Simulator:
    """Deterministic discrete-event simulator for message-passing systems."""

    def __init__(
        self,
        seed: int = 0,
        delay_model: Optional[DelayModel] = None,
        trace: bool = False,
        trace_capacity: Optional[int] = None,
    ) -> None:
        self.seeds = SeedSequence(seed)
        self._queue = EventQueue()
        self._now = 0.0
        self._started = False
        self.nodes: Dict[SiteId, Node] = {}
        self.trace = Trace(enabled=trace, capacity=trace_capacity)
        self.network = Network(
            delay_model=delay_model or UniformDelay(0.5, 1.5),
            rng=self.seeds.derive("network"),
            schedule=self._schedule_at,
            now=lambda: self._now,
        )
        self.network.on_deliver(self._dispatch)
        #: Number of events processed so far (cheap progress/health metric).
        self.events_processed = 0

    # -- construction ------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Register ``node``; its ``site_id`` must be unique."""
        if node.site_id in self.nodes:
            raise SimulationError(f"duplicate site id {node.site_id}")
        if self._started:
            raise SimulationError("cannot add nodes after start()")
        node.bind(self)
        self.nodes[node.site_id] = node
        return node

    def start(self) -> None:
        """Invoke every node's ``on_start`` hook. Idempotent."""
        if self._started:
            return
        self._started = True
        for node in self.nodes.values():
            node.on_start()

    # -- clock & scheduling --------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def schedule(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self._now + delay, action, label)

    def _schedule_at(self, time: float, action: Callable[[], None], label: str) -> Event:
        """Absolute-time scheduling used by the network layer."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        return self._queue.push(time, action, label)

    # -- delivery ------------------------------------------------------------

    def _dispatch(self, envelope: Envelope) -> None:
        """Deliver an envelope to its destination node."""
        node = self.nodes.get(envelope.dst)
        if node is None:
            raise SimulationError(f"message addressed to unknown site {envelope.dst}")
        if node.crashed:
            self.network.stats.messages_dropped += 1
            return
        self.trace.record(self._now, "deliver", envelope.dst, envelope.payload)
        node.on_message(envelope.src, envelope.payload)

    def deliver_local(self, site: SiteId, message: Any) -> None:
        """Deliver a self-addressed message (no network, no message cost)."""
        node = self.nodes[site]
        if node.crashed:
            return
        self.trace.record(self._now, "deliver-local", site, message)
        node.on_message(site, message)

    # -- failure injection -----------------------------------------------------

    def crash(self, site: SiteId) -> None:
        """Fail-stop ``site``: drop its traffic and silence its timers."""
        node = self.nodes[site]
        if node.crashed:
            return
        node.crashed = True
        self.network.crash(site)
        self.trace.record(self._now, "crash", site)
        node.on_crash()

    def recover(self, site: SiteId) -> None:
        """Bring a crashed ``site`` back (crash-recovery model)."""
        node = self.nodes[site]
        if not node.crashed:
            return
        node.crashed = False
        self.network.recover(site)
        self.trace.record(self._now, "recover", site)
        node.on_recover()

    # -- main loop -------------------------------------------------------------

    def step(self) -> bool:
        """Process one event. Returns False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now:
            raise SimulationError("time went backwards")
        self._now = event.time
        self.events_processed += 1
        event.action()
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until the event queue drains, ``until`` is reached, or
        ``max_events`` further events have been processed.

        ``until`` is inclusive: events scheduled exactly at ``until`` fire.
        """
        budget = max_events
        while True:
            next_time = self._queue.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                self._now = until
                return
            if budget is not None:
                if budget <= 0:
                    return
                budget -= 1
            self.step()

    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)
