"""Unit tests for arrival processes and workload drivers."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.mutex.base import MutexSite
from repro.sim.simulator import Simulator
from repro.workload.arrivals import BurstArrivals, PeriodicArrivals, PoissonArrivals
from repro.workload.driver import (
    OpenLoopWorkload,
    SaturationWorkload,
    StaggeredSingleShot,
)
from repro.workload.scenarios import heavy_load, light_load, moderate_load


class CountingSite(MutexSite):
    """Counts submissions without running any protocol."""

    def __init__(self, site_id):
        super().__init__(site_id, cs_duration=0.01)
        self.submissions = 0

    def submit_request(self):
        self.submissions += 1

    def _begin_request(self):
        raise AssertionError("not used")

    def _exit_protocol(self):
        raise AssertionError("not used")


def make_sites(n=3):
    sim = Simulator(seed=5)
    sites = [sim.add_node(CountingSite(i)) for i in range(n)]
    sim.start()
    return sim, sites


# -- arrival processes -----------------------------------------------------------


def test_poisson_rate_and_horizon():
    rng = random.Random(0)
    times = list(PoissonArrivals(rate=2.0).times(rng, horizon=1000.0))
    assert all(0 < t <= 1000.0 for t in times)
    assert times == sorted(times)
    # Expected ~2000 arrivals; allow generous tolerance.
    assert 1700 < len(times) < 2300


def test_poisson_rejects_nonpositive_rate():
    with pytest.raises(ConfigurationError):
        PoissonArrivals(0.0)


def test_periodic_arrivals_deterministic():
    times = list(PeriodicArrivals(2.0).times(random.Random(0), 7.0))
    assert times == [2.0, 4.0, 6.0]
    offset = list(PeriodicArrivals(2.0, offset=1.0).times(random.Random(0), 6.0))
    assert offset == [1.0, 3.0, 5.0]


def test_burst_arrivals_cluster():
    times = list(BurstArrivals(5.0, burst_size=3).times(random.Random(0), 11.0))
    assert times == [5.0, 5.0, 5.0, 10.0, 10.0, 10.0]


def test_burst_jitter_stays_in_window():
    times = list(
        BurstArrivals(5.0, burst_size=2, jitter=0.5).times(random.Random(1), 20.0)
    )
    for t in times:
        base = 5.0 * round(t / 5.0 - 0.049)
        assert 0 <= t - base <= 0.5 or t <= 20.0


# -- drivers ---------------------------------------------------------------------


def test_saturation_workload_submits_everything_at_zero():
    sim, sites = make_sites()
    total = SaturationWorkload(4).install(sim, sites)
    sim.run()
    assert total == 12
    assert all(s.submissions == 4 for s in sites)


def test_saturation_validates():
    with pytest.raises(ConfigurationError):
        SaturationWorkload(0)


def test_open_loop_workload_counts_and_installs():
    sim, sites = make_sites()
    wl = OpenLoopWorkload(PeriodicArrivals(10.0), horizon=35.0)
    total = wl.install(sim, sites)
    sim.run()
    assert total == 9  # 3 arrivals x 3 sites
    assert all(s.submissions == 3 for s in sites)


def test_open_loop_sites_get_independent_streams():
    sim, sites = make_sites()
    OpenLoopWorkload(PoissonArrivals(0.5), horizon=100.0).install(sim, sites)
    sim.run()
    counts = [s.submissions for s in sites]
    assert len(set(counts)) > 1  # overwhelmingly likely with independent RNGs


def test_staggered_single_shot():
    sim, sites = make_sites()
    StaggeredSingleShot({0: 1.0, 2: 5.0}).install(sim, sites)
    sim.run()
    assert [s.submissions for s in sites] == [1, 0, 1]


def test_staggered_unknown_site_rejected():
    sim, sites = make_sites()
    with pytest.raises(ConfigurationError):
        StaggeredSingleShot({9: 1.0}).install(sim, sites)


# -- scenarios ---------------------------------------------------------------------


def test_named_scenarios_shapes():
    assert isinstance(heavy_load(), SaturationWorkload)
    assert isinstance(light_load(), OpenLoopWorkload)
    assert isinstance(moderate_load(), OpenLoopWorkload)
