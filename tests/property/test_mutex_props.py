"""The flagship property test: under arbitrary workloads, delays, system
sizes, and quorum constructions, the proposed algorithm satisfies the
paper's three theorems — mutual exclusion, deadlock freedom, starvation
freedom — and drains to a clean quiescent state.

Hypothesis drives the randomness (and shrinks failures to minimal
schedules); every generated scenario is a complete simulation run.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.site import CaoSinghalSite
from repro.metrics.collector import MetricsCollector
from repro.quorums.registry import make_quorum_system
from repro.sim.network import ConstantDelay, ExponentialDelay, UniformDelay
from repro.sim.simulator import Simulator
from repro.verify.checker import check_quiescent
from repro.verify.invariants import (
    check_mutual_exclusion,
    check_progress,
    check_sequential_per_site,
)

delay_models = st.one_of(
    st.just(ConstantDelay(1.0)),
    st.builds(UniformDelay, st.just(0.2), st.floats(0.5, 3.0)),
    st.builds(ExponentialDelay, st.floats(0.5, 2.0)),
)

scenarios = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 2**32 - 1),
        "n": st.integers(2, 12),
        "quorum": st.sampled_from(
            ["grid", "tree", "majority", "hierarchical", "wheel", "grid-set", "rst"]
        ),
        "delay": delay_models,
        "cs": st.floats(0.01, 2.0),
        "enable_transfer": st.booleans(),
    }
)


@given(
    scenario=scenarios,
    data=st.data(),
)
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_theorems_hold_under_arbitrary_schedules(scenario, data):
    n = scenario["n"]
    system = make_quorum_system(scenario["quorum"], n)
    sim = Simulator(seed=scenario["seed"], delay_model=scenario["delay"])
    collector = MetricsCollector()
    sites = [
        CaoSinghalSite(
            i,
            system.quorum_for(i),
            cs_duration=scenario["cs"],
            listener=collector,
            enable_transfer=scenario["enable_transfer"],
        )
        for i in range(n)
    ]
    for site in sites:
        sim.add_node(site)

    # Arbitrary submission schedule: up to 4 requests per site at
    # arbitrary times within a short window (maximizing interleavings).
    for site in sites:
        count = data.draw(st.integers(0, 4), label=f"requests[{site.site_id}]")
        for _ in range(count):
            at = data.draw(st.floats(0.0, 10.0), label="submit-time")
            sim.schedule(at, site.submit_request)

    sim.start()
    sim.run(until=500_000.0, max_events=2_000_000)
    assert sim.pending_events() == 0, "run hit the safety cap"

    # Theorem 1: mutual exclusion.
    check_mutual_exclusion(collector.records)
    check_sequential_per_site(collector.records)
    # Theorems 2 & 3: every submitted request was eventually served.
    check_progress(collector.records)
    # No residue: locks free, queues empty, stacks empty.
    check_quiescent(sites)
