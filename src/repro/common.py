"""Leaf module of shared protocol primitives.

Lives at the package root with no intra-package imports so both
:mod:`repro.core` and :mod:`repro.mutex` can use these types without
import cycles. User code should import them from :mod:`repro.mutex`
(which re-exports them) — this module is plumbing.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Tuple


def slotted_dataclass(cls=None, /, **kwargs):
    """``dataclass(..., slots=True)`` where the runtime supports it.

    Protocol messages and per-site state are allocated on the simulation
    hot path; ``__slots__`` removes the per-instance ``__dict__`` (smaller
    objects, faster attribute access). ``slots=True`` needs Python 3.10+,
    so on older interpreters this degrades to a plain dataclass with
    identical semantics, ``repr`` and equality — only the memory layout
    differs, never simulation behaviour.

    Usable bare (``@slotted_dataclass``) or with dataclass keyword
    arguments (``@slotted_dataclass(frozen=True)``), like ``dataclass``.
    """
    if sys.version_info >= (3, 10):
        kwargs.setdefault("slots", True)
    if cls is None:
        return dataclass(**kwargs)
    return dataclass(**kwargs)(cls)


@slotted_dataclass(unsafe_hash=True)
class Bundle:
    """Several control messages piggybacked into one network message.

    Immutable by convention, like the message classes it carries (see
    :mod:`repro.core.messages` for why ``frozen=True`` is avoided on the
    allocation-hot message path).

    Implements the paper's costing rule (Section 5): a control message
    piggybacked onto another counts as a single message, because the cost
    is dominated by the header. The combined ``type_name`` (e.g.
    ``"inquire+transfer"``) keeps per-type counters honest about what the
    network was actually charged, while :attr:`parts` preserves the
    logical messages for the receiver and for the ablation experiment that
    counts naked messages.
    """

    parts: Tuple[Any, ...]

    @property
    def type_name(self) -> str:
        return "+".join(p.type_name for p in self.parts)

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("a bundle needs at least two parts")


#: Field value of the free-lock sentinel (``Priority.MAX_SENTINEL``),
#: hoisted to a module constant for the ``is_max`` hot check.
_MAX_FIELD = 1 << 62


def bundle_or_single(*parts: Any) -> Any:
    """Wrap ``parts`` into a :class:`Bundle`, or pass a single one through."""
    if len(parts) == 1:
        return parts[0]
    return Bundle(parts=tuple(parts))


@slotted_dataclass(frozen=True, eq=False)
class Priority:
    """A Lamport-style request priority: ``(sequence number, site id)``.

    Smaller compares as *higher* priority, exactly the paper's rule:
    smaller sequence number wins, ties broken by smaller site number.

    The comparison operators are hand-written rather than generated with
    ``order=True``: arbiters compare priorities on every request/queue
    operation, and the generated methods build two tuples per comparison.
    The manual ones compare the fields directly with identical semantics
    (including ``NotImplemented`` for foreign types), and ``__hash__``
    matches the generated field-tuple hash.
    """

    seq: int
    site: int

    MAX_SENTINEL = (1 << 62, 1 << 62)

    def __eq__(self, other: Any) -> Any:
        if other.__class__ is Priority:
            return self.seq == other.seq and self.site == other.site
        return NotImplemented

    def __lt__(self, other: "Priority") -> Any:
        if other.__class__ is Priority:
            seq = self.seq
            oseq = other.seq
            if seq != oseq:
                return seq < oseq
            return self.site < other.site
        return NotImplemented

    def __le__(self, other: "Priority") -> Any:
        if other.__class__ is Priority:
            seq = self.seq
            oseq = other.seq
            if seq != oseq:
                return seq < oseq
            return self.site <= other.site
        return NotImplemented

    def __gt__(self, other: "Priority") -> Any:
        if other.__class__ is Priority:
            seq = self.seq
            oseq = other.seq
            if seq != oseq:
                return seq > oseq
            return self.site > other.site
        return NotImplemented

    def __ge__(self, other: "Priority") -> Any:
        if other.__class__ is Priority:
            seq = self.seq
            oseq = other.seq
            if seq != oseq:
                return seq > oseq
            return self.site >= other.site
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.seq, self.site))

    @classmethod
    def maximum(cls) -> "Priority":
        """The ``(max, max)`` sentinel used for a free lock.

        Returns one shared (immutable) instance: arbiters reset their
        lock to the sentinel on every release-to-free, and the sentinel
        is a pure value — interning it saves an allocation per tenure
        without any observable difference (all comparisons are by field).
        """
        return _MAXIMUM

    @property
    def is_max(self) -> bool:
        """True for the free-lock sentinel."""
        return self.seq == _MAX_FIELD and self.site == _MAX_FIELD

    def __str__(self) -> str:
        return "(max,max)" if self.is_max else f"({self.seq},{self.site})"


#: The interned free-lock sentinel handed out by :meth:`Priority.maximum`.
_MAXIMUM = Priority(_MAX_FIELD, _MAX_FIELD)
