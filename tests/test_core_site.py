"""Scenario tests for the delay-optimal algorithm's protocol machinery.

Each test constructs a small explicit-quorum system and a deterministic
(constant-delay) schedule that forces one protocol path — direct grant,
transfer handoff, fail, inquire/yield, release relay — then asserts on the
message types that flowed and the final state.
"""

from __future__ import annotations

import pytest

from repro.common import Priority
from repro.core.messages import Release, Reply, Request, Transfer
from repro.core.site import CaoSinghalSite
from repro.metrics.collector import MetricsCollector
from repro.quorums.coterie import ExplicitQuorumSystem
from repro.sim.network import ConstantDelay
from repro.sim.simulator import Simulator
from repro.verify.checker import check_quiescent
from repro.verify.invariants import check_mutual_exclusion, check_progress


def build(quorums, cs_duration=0.5, seed=0, enable_transfer=True):
    """Build a simulator over explicit per-site quorums."""
    n = len(quorums)
    sim = Simulator(seed=seed, delay_model=ConstantDelay(1.0), trace=True)
    collector = MetricsCollector()
    sites = [
        CaoSinghalSite(
            i,
            quorums[i],
            cs_duration=cs_duration,
            listener=collector,
            enable_transfer=enable_transfer,
        )
        for i in range(n)
    ]
    for s in sites:
        sim.add_node(s)
    sim.start()
    return sim, sites, collector


def finish(sim, sites, collector, mutex_sites=None):
    """Drain and verify the run.

    ``mutex_sites`` restricts the mutual-exclusion check to the given
    sites: several scenarios below use deliberately *non-intersecting*
    quorums to steer contention onto one arbiter, and exclusion is only
    guaranteed between sites whose quorums intersect.
    """
    sim.run(until=100_000)
    assert sim.pending_events() == 0
    records = collector.records
    if mutex_sites is not None:
        records = [r for r in records if r.site in mutex_sites]
    check_mutual_exclusion(records)
    check_progress(collector.records)
    check_quiescent(sites)


# -- basic paths --------------------------------------------------------------


def test_self_quorum_enters_without_messages():
    sim, sites, collector = build([{0}])
    sites[0].submit_request()
    finish(sim, sites, collector)
    assert collector.completed[0].site == 0
    assert sim.network.stats.messages_sent == 0


def test_uncontended_execution_costs_3_messages_per_remote_member():
    # Site 0's quorum has two remote members: request/reply/release each.
    sim, sites, collector = build([{0, 1, 2}, {1}, {2}])
    sites[0].submit_request()
    finish(sim, sites, collector)
    assert sim.network.stats.by_type == {"request": 2, "reply": 2, "release": 2}


def test_uncontended_response_time_is_2t_plus_e():
    sim, sites, collector = build([{0, 1}, {1}], cs_duration=0.5)
    sites[0].submit_request()
    finish(sim, sites, collector)
    record = collector.completed[0]
    assert record.response_time == pytest.approx(2.0 + 0.5)


def test_sequential_requests_from_one_site_queue_locally():
    sim, sites, collector = build([{0, 1}, {1}])
    sites[0].submit_request()
    sites[0].submit_request()
    sites[0].submit_request()
    finish(sim, sites, collector)
    assert len(collector.completed) == 3
    # Sequential: each request starts only after the previous exit.
    recs = sorted(collector.completed, key=lambda r: r.request_time)
    for prev, nxt in zip(recs, recs[1:]):
        assert nxt.request_time >= prev.exit_time


# -- the transfer (direct forwarding) mechanism ----------------------------------


def test_contended_handoff_uses_transfer_and_forwarded_reply():
    # Both sites quorum through arbiter 2 only.
    sim, sites, collector = build([{2}, {1, 2}, {2}], cs_duration=1.0)
    sites[0].submit_request()
    sim.run(until=0.5)
    sites[1].submit_request()
    finish(sim, sites, collector)
    by_type = sim.network.stats.by_type
    assert by_type.get("transfer", 0) >= 1
    # The loser's reply must have been forwarded by the winner, not the
    # arbiter: delay-optimal handoff.
    forwarded = [
        r
        for r in sim.trace.filter(kind="deliver")
        if isinstance(r.detail, Reply) and r.detail.forwarded_by is not None
    ]
    assert forwarded, "no forwarded reply observed"
    assert forwarded[0].detail.forwarded_by == 0


def test_handoff_delay_is_exactly_one_message_latency():
    sim, sites, collector = build([{2}, {1, 2}, {2}], cs_duration=2.0)
    sites[0].submit_request()
    sim.run(until=0.5)
    sites[1].submit_request()
    finish(sim, sites, collector)
    first, second = sorted(collector.completed, key=lambda r: r.enter_time)
    assert second.enter_time - first.exit_time == pytest.approx(1.0)


def test_no_transfer_ablation_doubles_handoff():
    sim, sites, collector = build(
        [{2}, {1, 2}, {2}], cs_duration=2.0, enable_transfer=False
    )
    sites[0].submit_request()
    sim.run(until=0.5)
    sites[1].submit_request()
    finish(sim, sites, collector)
    first, second = sorted(collector.completed, key=lambda r: r.enter_time)
    assert second.enter_time - first.exit_time == pytest.approx(2.0)
    assert "transfer" not in sim.network.stats.by_type


def test_release_reports_the_honoured_transfer():
    sim, sites, collector = build([{2}, {1, 2}, {2}], cs_duration=1.0)
    sites[0].submit_request()
    sim.run(until=0.5)
    sites[1].submit_request()
    finish(sim, sites, collector)
    releases = [
        r.detail
        for r in sim.trace.filter(kind="deliver")
        if isinstance(r.detail, Release) and r.detail.transferred_to is not None
    ]
    assert releases, "winner never told the arbiter about the forwarding"
    assert releases[0].transferred_to.site == 1


# -- fail / inquire / yield ----------------------------------------------------


def test_lower_priority_newcomer_receives_fail():
    # Site 1 (smaller id -> higher priority on equal seq) takes the lock;
    # site 2 arrives second and must be failed.
    sim, sites, collector = build([{0}, {3, 4}, {3, 4}, {3}, {4}], cs_duration=4.0)
    sites[1].submit_request()
    sim.run(until=1.5)  # site 1 holds both arbiters now
    sites[2].submit_request()
    sim.run(until=4.0)  # request out (T) + fail back (T) after t=1.5
    assert sites[2].req.failed is True
    finish(sim, sites, collector, mutex_sites={1, 2})
    assert sim.network.stats.by_type.get("fail", 0) >= 1


def test_inquire_yield_preemption_lets_high_priority_win():
    """A failed lock holder yields to a higher-priority newcomer.

    Site 1 (quorum {3}) occupies arbiter 3 with a long CS. Site 2
    (quorum {3,4}) fails there but locks arbiter 4. Site 0 (quorum {4})
    then outranks site 2 at arbiter 4: the arbiter inquires, site 2 has
    failed, so it must yield, and site 0 enters before site 2.
    """
    sim, sites, collector = build(
        [{4}, {3}, {3, 4}, {3}, {4}], cs_duration=6.0
    )
    sites[1].submit_request()
    sites[2].submit_request()
    sim.run(until=2.5)  # site 1 in CS; site 2 failed at 3, holds 4
    assert sites[2].req.failed
    assert sites[2].req.replied[4] is True
    sites[0].submit_request()
    finish(sim, sites, collector, mutex_sites={0, 2})
    by_type = sim.network.stats.by_type
    assert by_type.get("yield", 0) >= 1
    assert any("inquire" in t for t in by_type)
    order = [r.site for r in sorted(collector.completed, key=lambda r: r.enter_time)]
    assert order.index(0) < order.index(2)


def test_yield_purges_yielded_arbiters_transfers():
    """After yielding an arbiter, a site must not forward its replies."""
    sim, sites, collector = build(
        [{4}, {3}, {3, 4}, {3}, {4}], cs_duration=6.0
    )
    sites[1].submit_request()
    sites[2].submit_request()
    sim.run(until=2.5)
    sites[0].submit_request()
    sim.run(until=6.0)
    # Site 2 yielded arbiter 4; no transfer from arbiter 4 may linger.
    assert all(t.arbiter != 4 for t in sites[2].req.tran_stack)
    finish(sim, sites, collector, mutex_sites={0, 2})


# -- release relay and buffered releases -----------------------------------------


def test_release_with_empty_queue_frees_arbiter():
    sim, sites, collector = build([{1}, {1}])
    sites[0].submit_request()
    finish(sim, sites, collector)
    assert sites[1].arbiter.is_free


def test_out_of_order_release_is_buffered_and_replayed():
    """Drive the arbiter handlers directly through the three-party race:
    the beneficiary's release arrives before the proxy's release."""
    sim, sites, _ = build([{0}, {0}, {0}])
    arbiter = sites[0]
    p1 = Priority(1, 1)
    p2 = Priority(2, 2)
    arbiter._handle_request(Request(p1))          # site 1 locks arbiter 0
    arbiter._handle_request(Request(p2))          # site 2 queues
    assert arbiter.arbiter.lock == p1
    # Site 2's release arrives FIRST (it got the lock via forwarding and
    # finished fast). Must be buffered, not applied and not fatal.
    arbiter._handle_release(2, Release(releaser=p2, transferred_to=None))
    assert arbiter.arbiter.lock == p1
    assert p2 in arbiter._pending_releases
    # Now the proxy's release lands, naming site 2 as beneficiary: the
    # lock hops to p2 and the buffered release immediately frees it.
    arbiter._handle_release(1, Release(releaser=p1, transferred_to=p2))
    assert arbiter.arbiter.is_free
    assert not arbiter._pending_releases


def test_unmatched_release_raises_protocol_error():
    from repro.errors import ProtocolError

    sim, sites, _ = build([{0}, {0}])
    arbiter = sites[0]
    with pytest.raises(ProtocolError):
        arbiter._handle_release(1, Release(releaser=Priority(9, 9)))


def test_stale_transfer_is_ignored():
    sim, sites, _ = build([{0}, {0}])
    requester = sites[1]
    # No current request: a transfer naming an old holder must be dropped.
    requester._record_transfer(
        Transfer(beneficiary=Priority(5, 0), arbiter=0, holder=Priority(1, 1))
    )
    assert len(requester.req.tran_stack) == 0


def test_stale_reply_is_ignored():
    sim, sites, _ = build([{0}, {0}])
    requester = sites[1]
    requester._record_reply(Reply(arbiter=0, grantee=Priority(42, 1)))
    assert requester.state.value == "idle"


# -- three-way contention, saturation sanity ---------------------------------------


def test_three_way_contention_serves_everyone_in_priority_order():
    quorums = [{3}, {3}, {3}, {3}]
    sim, sites, collector = build(quorums, cs_duration=0.5)
    for s in sites[:3]:
        s.submit_request()
    finish(sim, sites, collector)
    assert len(collector.completed) == 3
    order = [r.site for r in sorted(collector.completed, key=lambda r: r.enter_time)]
    # Equal sequence numbers: site id breaks ties (paper's priority rule).
    assert order == [0, 1, 2]
