"""Unit tests for the event queue (ordering, cancellation, accounting)."""

from __future__ import annotations

import pytest

from repro.sim.event import Event, EventQueue


def test_empty_queue_pops_none():
    q = EventQueue()
    assert q.pop() is None
    assert len(q) == 0
    assert not q


def test_orders_by_time():
    q = EventQueue()
    fired = []
    q.push(3.0, lambda: fired.append("c"))
    q.push(1.0, lambda: fired.append("a"))
    q.push(2.0, lambda: fired.append("b"))
    while (event := q.pop()) is not None:
        event.fire()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_scheduling_order():
    q = EventQueue()
    fired = []
    for tag in range(10):
        q.push(5.0, lambda t=tag: fired.append(t))
    while (event := q.pop()) is not None:
        event.fire()
    assert fired == list(range(10))


def test_len_counts_live_events():
    q = EventQueue()
    handles = [q.push(float(i), lambda: None) for i in range(4)]
    assert len(q) == 4
    handles[1].cancel()
    assert len(q) == 3  # cancellation visible immediately in accounting


def test_cancelled_event_does_not_fire():
    q = EventQueue()
    fired = []
    keep = q.push(1.0, lambda: fired.append("keep"))
    drop = q.push(0.5, lambda: fired.append("drop"))
    drop.cancel()
    while (event := q.pop()) is not None:
        event.fire()
    assert fired == ["keep"]
    assert keep.cancelled is False


def test_peek_time_skips_cancelled():
    q = EventQueue()
    first = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert q.peek_time() == 1.0
    first.cancel()
    assert q.peek_time() == 2.0


def test_peek_time_empty_queue():
    assert EventQueue().peek_time() is None


def test_event_ordering():
    a = Event(time=1.0, seq=0, fn=lambda: None)
    b = Event(time=1.0, seq=1, fn=lambda: None)
    c = Event(time=2.0, seq=0, fn=lambda: None)
    assert a < b < c


def test_fire_passes_bound_args():
    got = []
    event = Event(time=0.0, seq=0, fn=lambda *a: got.append(a), args=(1, "x"))
    event.fire()
    assert got == [(1, "x")]


def test_pop_due_respects_limit():
    q = EventQueue()
    q.push(1.0, lambda: None)
    late = q.push(5.0, lambda: None)
    assert q.pop_due(2.0).time == 1.0
    assert q.pop_due(2.0) is None  # next event is beyond the limit
    assert len(q) == 1  # ...and stays queued
    assert q.pop_due(None) is late


def test_bool_reflects_liveness():
    q = EventQueue()
    handle = q.push(1.0, lambda: None)
    assert q
    handle.cancel()
    assert not q


# -- cohort draining ----------------------------------------------------------


def test_pop_cohort_returns_whole_timestamp_in_seq_order():
    q = EventQueue()
    tags = []
    q.push(2.0, lambda: tags.append("late"))
    for tag in range(5):
        q.push(1.0, lambda t=tag: tags.append(t))
    cohort = q.pop_cohort()
    assert [e.time for e in cohort] == [1.0] * 5
    assert [e.seq for e in cohort] == sorted(e.seq for e in cohort)
    for e in cohort:
        e.fire()
    assert tags == [0, 1, 2, 3, 4]
    assert len(q) == 1  # t=2.0 untouched


def test_pop_cohort_interleaved_pushes_keep_seq_tiebreak():
    # Same-timestamp events scheduled in between other timestamps still
    # come back in scheduling (seq) order, never heap-internal order.
    q = EventQueue()
    order = []
    q.push(5.0, lambda: order.append("a"))
    q.push(3.0, lambda: order.append("early"))
    q.push(5.0, lambda: order.append("b"))
    q.push(7.0, lambda: order.append("later"))
    q.push(5.0, lambda: order.append("c"))
    for e in q.pop_cohort():
        e.fire()
    assert order == ["early"]
    for e in q.pop_cohort():
        e.fire()
    assert order == ["early", "a", "b", "c"]


def test_pop_cohort_respects_limit():
    q = EventQueue()
    q.push(5.0, lambda: None)
    q.push(5.0, lambda: None)
    assert q.pop_cohort(limit=4.0) == []
    assert len(q) == 2  # nothing removed when the cohort is out of bounds
    assert len(q.pop_cohort(limit=5.0)) == 2


def test_pop_cohort_discards_cancelled_entries():
    q = EventQueue()
    keep_a = q.push(1.0, lambda: None)
    drop = q.push(1.0, lambda: None)
    keep_b = q.push(1.0, lambda: None)
    drop.cancel()
    cohort = q.pop_cohort()
    assert cohort == [keep_a, keep_b]
    assert len(q) == 0


def test_cancel_after_pop_only_flags_the_event():
    # Popped events are detached: a late cancel (issued by an earlier
    # cohort member) must not touch the queue's live count again.
    q = EventQueue()
    q.push(1.0, lambda: None)
    q.push(1.0, lambda: None)
    survivor = q.push(2.0, lambda: None)
    cohort = q.pop_cohort()
    assert len(q) == 1
    cohort[1].cancel()
    cohort[1].cancel()  # idempotent
    assert cohort[1].cancelled
    assert len(q) == 1  # live count unchanged; only the t=2 event remains
    assert q.pop() is survivor


def test_pop_cohort_reuses_out_buffer():
    q = EventQueue()
    q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    buf: list = ["stale"]
    first = q.pop_cohort(out=buf)
    assert first is buf
    assert [e.time for e in buf] == [1.0]
    second = q.pop_cohort(out=buf)
    assert second is buf
    assert [e.time for e in buf] == [2.0]


def test_requeue_restores_original_time_seq_keys():
    q = EventQueue()
    fired = []
    for tag in range(4):
        q.push(1.0, lambda t=tag: fired.append(t))
    cohort = q.pop_cohort()
    executed, remainder = cohort[:2], cohort[2:]
    for e in executed:
        e.fire()
    remainder[0].cancel()  # cancelled events must not re-enter
    q.requeue(remainder)
    assert len(q) == 1
    for e in q.pop_cohort():
        e.fire()
    assert fired == [0, 1, 3]


def test_zero_delay_followup_lands_in_the_next_cohort():
    # An event that schedules at its own timestamp mid-cohort gets a
    # larger seq and comes back as the *next* cohort at the same time —
    # exactly the per-event (time, seq) order.
    q = EventQueue()
    fired = []

    def first():
        fired.append("first")
        q.push(1.0, lambda: fired.append("follow-up"))

    q.push(1.0, first)
    q.push(1.0, lambda: fired.append("second"))
    cohort = q.pop_cohort()
    for e in cohort:
        e.fire()
    assert fired == ["first", "second"]
    follow = q.pop_cohort()
    assert [e.time for e in follow] == [1.0]
    for e in follow:
        e.fire()
    assert fired == ["first", "second", "follow-up"]
