"""Unit tests for the event queue (ordering, cancellation, accounting)."""

from __future__ import annotations

import pytest

from repro.sim.event import Event, EventQueue


def test_empty_queue_pops_none():
    q = EventQueue()
    assert q.pop() is None
    assert len(q) == 0
    assert not q


def test_orders_by_time():
    q = EventQueue()
    fired = []
    q.push(3.0, lambda: fired.append("c"))
    q.push(1.0, lambda: fired.append("a"))
    q.push(2.0, lambda: fired.append("b"))
    while (event := q.pop()) is not None:
        event.fire()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_scheduling_order():
    q = EventQueue()
    fired = []
    for tag in range(10):
        q.push(5.0, lambda t=tag: fired.append(t))
    while (event := q.pop()) is not None:
        event.fire()
    assert fired == list(range(10))


def test_len_counts_live_events():
    q = EventQueue()
    handles = [q.push(float(i), lambda: None) for i in range(4)]
    assert len(q) == 4
    handles[1].cancel()
    assert len(q) == 3  # cancellation visible immediately in accounting


def test_cancelled_event_does_not_fire():
    q = EventQueue()
    fired = []
    keep = q.push(1.0, lambda: fired.append("keep"))
    drop = q.push(0.5, lambda: fired.append("drop"))
    drop.cancel()
    while (event := q.pop()) is not None:
        event.fire()
    assert fired == ["keep"]
    assert keep.cancelled is False


def test_peek_time_skips_cancelled():
    q = EventQueue()
    first = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert q.peek_time() == 1.0
    first.cancel()
    assert q.peek_time() == 2.0


def test_peek_time_empty_queue():
    assert EventQueue().peek_time() is None


def test_event_ordering():
    a = Event(time=1.0, seq=0, fn=lambda: None)
    b = Event(time=1.0, seq=1, fn=lambda: None)
    c = Event(time=2.0, seq=0, fn=lambda: None)
    assert a < b < c


def test_fire_passes_bound_args():
    got = []
    event = Event(time=0.0, seq=0, fn=lambda *a: got.append(a), args=(1, "x"))
    event.fire()
    assert got == [(1, "x")]


def test_pop_due_respects_limit():
    q = EventQueue()
    q.push(1.0, lambda: None)
    late = q.push(5.0, lambda: None)
    assert q.pop_due(2.0).time == 1.0
    assert q.pop_due(2.0) is None  # next event is beyond the limit
    assert len(q) == 1  # ...and stays queued
    assert q.pop_due(None) is late


def test_bool_reflects_liveness():
    q = EventQueue()
    handle = q.push(1.0, lambda: None)
    assert q
    handle.cancel()
    assert not q
