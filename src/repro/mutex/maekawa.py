"""Maekawa's quorum-based mutual exclusion (1985), reference [8].

The first ``O(sqrt N)`` algorithm and the baseline whose ``2T``
synchronization delay the paper halves. A site locks every member of its
quorum; an arbiter grants one ``locked`` at a time and queues the rest;
deadlocks are resolved with ``failed`` / ``inquire`` / ``relinquish``
messages driven by request priorities.

On exit the site sends ``release`` to its arbiters, and each arbiter then
grants its next waiting request — the release→grant relay through the
arbiter is exactly the two serial message delays (``2T``) the proposed
algorithm eliminates.

This implementation is standalone (its own message types and handlers) so
it can serve as an independent check of the shared inquire/fail/yield
machinery in :mod:`repro.core`; at heavy load it costs ``5(K-1)`` messages
per CS execution, matching the paper's Table 1 row.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.core.state import ArbiterState
from repro.errors import ProtocolError
from repro.mutex.base import DurationSpec, MutexSite, RunListener, SiteState
from repro.common import Priority, slotted_dataclass
from repro.substrate import SiteId


@slotted_dataclass(unsafe_hash=True)
class MkRequest:
    """Ask an arbiter for its lock."""

    priority: Priority

    type_name = "request"


@slotted_dataclass(unsafe_hash=True)
class MkLocked:
    """Arbiter's grant (Maekawa's ``locked``)."""

    arbiter: SiteId
    grantee: Priority

    type_name = "reply"


@slotted_dataclass(unsafe_hash=True)
class MkFailed:
    """The arbiter is held by a higher-priority request."""

    arbiter: SiteId
    target: Priority

    type_name = "fail"


@slotted_dataclass(unsafe_hash=True)
class MkInquire:
    """Arbiter asks its lock holder to relinquish for a better request."""

    arbiter: SiteId
    target: Priority

    type_name = "inquire"


@slotted_dataclass(unsafe_hash=True)
class MkRelinquish:
    """Lock holder gives the arbiter's grant back (Maekawa's yield)."""

    yielder: Priority

    type_name = "yield"


@slotted_dataclass(unsafe_hash=True)
class MkRelease:
    """CS exit notification to an arbiter."""

    releaser: Priority

    type_name = "release"


class MaekawaSite(MutexSite):
    """One site of Maekawa's algorithm (requester + arbiter roles)."""

    algorithm_name = "maekawa"

    def __init__(
        self,
        site_id: SiteId,
        quorum: Iterable[SiteId],
        cs_duration: DurationSpec = 0.1,
        listener: Optional[RunListener] = None,
    ) -> None:
        super().__init__(site_id, cs_duration, listener)
        self.quorum = frozenset(quorum)
        if not self.quorum:
            raise ProtocolError(f"site {site_id} has an empty quorum")
        #: Canonical broadcast order, interned once (fanout hot path).
        self._quorum_sorted = tuple(sorted(self.quorum))
        self.arbiter = ArbiterState()
        #: True once an inquire was sent for the current lock tenure.
        self.inquired = False
        # requester state
        self.clock = 0
        self.my_request: Optional[Priority] = None
        self.locked_from: Set[SiteId] = set()
        self.failed = False
        self.inq_pending: Set[SiteId] = set()

    # ------------------------------------------------------------------
    # Requester role
    # ------------------------------------------------------------------

    def _begin_request(self) -> None:
        self.clock += 1
        self.my_request = Priority(self.clock, self.site_id)
        self.locked_from.clear()
        self.failed = False
        self.inq_pending.clear()
        # One frozen request shared across the whole fanout.
        self.send_fanout(self._quorum_sorted, MkRequest(self.my_request))

    def _exit_protocol(self) -> None:
        assert self.my_request is not None
        release = MkRelease(self.my_request)
        self.my_request = None
        self.inq_pending.clear()
        self.send_fanout(self._quorum_sorted, release)

    def _handle_locked(self, msg: MkLocked) -> None:
        if self.my_request is None or msg.grantee != self.my_request:
            return
        if self.state is not SiteState.REQUESTING:
            return
        self.clock = max(self.clock, msg.grantee.seq)
        self.locked_from.add(msg.arbiter)
        if self.locked_from >= self.quorum:
            self._enter_cs()

    def _handle_failed(self, msg: MkFailed) -> None:
        if self.my_request is None or msg.target != self.my_request:
            return
        if self.state is not SiteState.REQUESTING:
            return
        self.failed = True
        for arbiter in sorted(self.inq_pending):
            if arbiter in self.locked_from:
                self.inq_pending.discard(arbiter)
                self._relinquish(arbiter)

    def _handle_inquire(self, msg: MkInquire) -> None:
        if self.my_request is None or msg.target != self.my_request:
            return  # stale: we already released
        if self.state is not SiteState.REQUESTING:
            return  # executing the CS; the release answers the arbiter
        if self.failed and msg.arbiter in self.locked_from:
            self._relinquish(msg.arbiter)
        else:
            # We may yet collect every lock; decide when a failed arrives.
            self.inq_pending.add(msg.arbiter)

    def _relinquish(self, arbiter: SiteId) -> None:
        assert self.my_request is not None
        self.locked_from.discard(arbiter)
        self.failed = True
        self.send(arbiter, MkRelinquish(yielder=self.my_request))

    # ------------------------------------------------------------------
    # Arbiter role
    # ------------------------------------------------------------------

    def _handle_request(self, msg: MkRequest) -> None:
        self.clock = max(self.clock, msg.priority.seq)
        arb = self.arbiter
        if arb.is_free:
            arb.lock = msg.priority
            self.inquired = False
            self.send(msg.priority.site, MkLocked(self.site_id, msg.priority))
            return
        newcomer = msg.priority
        head = arb.req_queue.head()
        if newcomer > arb.lock or (head is not None and newcomer > head):
            self.send(newcomer.site, MkFailed(self.site_id, newcomer))
        elif newcomer < arb.lock and not self.inquired:
            self.inquired = True
            self.send(arb.lock.site, MkInquire(self.site_id, arb.lock))
        if (
            head is not None
            and newcomer < head
            and head < arb.lock
        ):
            # The displaced head is no longer next in line; without this
            # failed it could defer inquires elsewhere forever believing
            # it may still win (deadlock). Same rule as the proposed
            # algorithm's A.2 (paper case 4).
            self.send(head.site, MkFailed(self.site_id, head))
        arb.req_queue.push(newcomer)

    def _grant_head(self) -> None:
        arb = self.arbiter
        if not arb.req_queue:
            arb.lock = Priority.maximum()
            self.inquired = False
            return
        new_lock = arb.req_queue.pop_head()
        arb.lock = new_lock
        self.inquired = False
        self.send(new_lock.site, MkLocked(self.site_id, new_lock))

    def _handle_relinquish(self, msg: MkRelinquish) -> None:
        arb = self.arbiter
        if msg.yielder != arb.lock:
            return  # stale relinquish
        arb.req_queue.push(arb.lock)
        self._grant_head()

    def _handle_release(self, msg: MkRelease) -> None:
        arb = self.arbiter
        if arb.lock != msg.releaser:
            raise ProtocolError(
                f"arbiter {self.site_id}: release from {msg.releaser} but "
                f"lock is {arb.lock}"
            )
        self._grant_head()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def on_message(self, src: SiteId, message: object) -> None:
        if isinstance(message, MkRequest):
            self._handle_request(message)
        elif isinstance(message, MkLocked):
            self._handle_locked(message)
        elif isinstance(message, MkFailed):
            self._handle_failed(message)
        elif isinstance(message, MkInquire):
            self._handle_inquire(message)
        elif isinstance(message, MkRelinquish):
            self._handle_relinquish(message)
        elif isinstance(message, MkRelease):
            self._handle_release(message)
        else:
            raise TypeError(f"unexpected message {message!r}")
