"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.experiments.runner import RunConfig, RunResult, run_mutex
from repro.sim.network import ConstantDelay
from repro.workload.driver import SaturationWorkload


def heavy_run(
    algorithm: str,
    n_sites: int = 9,
    quorum: str | None = None,
    seed: int = 0,
    requests_per_site: int = 8,
    cs_duration: float = 0.1,
    delay_model=None,
) -> RunResult:
    """Run a verified heavy-load simulation (shared across test modules)."""
    return run_mutex(
        RunConfig(
            algorithm=algorithm,
            n_sites=n_sites,
            quorum=quorum,
            seed=seed,
            delay_model=delay_model or ConstantDelay(1.0),
            cs_duration=cs_duration,
            workload=SaturationWorkload(requests_per_site),
        )
    )


@pytest.fixture
def run_heavy():
    """Fixture exposing :func:`heavy_run`."""
    return heavy_run
