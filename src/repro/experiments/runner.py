"""One-stop simulation runner used by experiments, benchmarks, and the CLI.

:func:`run_mutex` wires together a simulator, one site per process for the
chosen algorithm, a workload, the metrics collector, and the verification
layer, then returns a :class:`~repro.metrics.summary.RunSummary`. Every
run is verified: mutual exclusion over the recorded intervals, progress
(no deadlock/starvation), and per-site sequentiality. A run that violates
the paper's theorems raises instead of returning numbers.
"""

from __future__ import annotations

import gc
import os
import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

from repro.core.messages import pool as _message_pool
from repro.core.site import CaoSinghalSite
from repro.errors import ConfigurationError
from repro.metrics.collector import MetricsCollector
from repro.metrics.summary import RunSummary, summarize
from repro.mutex.base import DurationSpec, MutexSite
from repro.mutex.registry import get_algorithm_spec
from repro.quorums.registry import make_quorum_system
from repro.sim.network import ConstantDelay, DelayModel, FaultModel, UniformDelay
from repro.sim.simulator import Simulator
from repro.sim.trace import Trace
from repro.sim.transport import ReliableConfig
from repro.verify.checker import check_quiescent
from repro.verify.invariants import (
    check_mutual_exclusion,
    check_progress,
    check_sequential_per_site,
)
from repro.workload.driver import SaturationWorkload, Workload


@dataclass
class RunConfig:
    """Declarative description of one simulation run."""

    algorithm: str = "cao-singhal"
    n_sites: int = 9
    quorum: Optional[str] = None  # defaulted per-algorithm
    seed: int = 0
    delay_model: Optional[DelayModel] = None  # default UniformDelay(0.5, 1.5)
    cs_duration: DurationSpec = 0.05
    workload: Optional[Workload] = None  # default SaturationWorkload(20)
    #: Hard safety caps so a protocol bug cannot hang the harness.
    max_time: float = 1_000_000.0
    max_events: int = 20_000_000
    #: ``False`` (no trace), ``True`` (in-memory trace), or a ready
    #: :class:`~repro.sim.trace.Trace` instance — e.g. a
    #: :class:`~repro.obs.monitor.MonitorTrace`, which checks protocol
    #: invariants online as the run records.
    trace: Union[bool, "Trace"] = False
    verify: bool = True
    #: Adversarial-transport fault injection (loss/burst/dup/reorder);
    #: ``None`` keeps the network reliable and the kernel byte-identical.
    fault_model: Optional[FaultModel] = None
    #: Reliable-channel layer between nodes and the network. ``None``
    #: sends raw; pass a :class:`~repro.sim.transport.ReliableConfig` to
    #: get exactly-once FIFO delivery over a faulty network.
    reliable: Optional[ReliableConfig] = None
    #: Scripted/randomized fault schedule (a
    #: :class:`repro.ft.chaos.FaultPlan` or
    #: :class:`repro.ft.chaos.ChaosSchedule`) installed before the run.
    chaos: Optional[object] = None

    def resolved_quorum(self) -> Optional[str]:
        """The quorum construction to use, or ``None`` for non-quorum
        algorithms."""
        spec = get_algorithm_spec(self.algorithm)
        if not spec.needs_quorum:
            if self.quorum is not None:
                raise ConfigurationError(
                    f"algorithm {self.algorithm!r} does not take a quorum"
                )
            return None
        return self.quorum or "grid"


@dataclass
class RunResult:
    """Summary plus the raw artifacts a test may want to poke at."""

    summary: RunSummary
    sim: Simulator
    sites: List[MutexSite] = field(default_factory=list)
    collector: Optional[MetricsCollector] = None


def build_run(config: RunConfig):
    """Construct (simulator, sites, collector, workload size) for a config."""
    spec = get_algorithm_spec(config.algorithm)
    quorum_name = config.resolved_quorum()
    quorum_system = (
        make_quorum_system(quorum_name, config.n_sites) if quorum_name else None
    )
    if quorum_system is not None:
        quorum_system.validate()

    fault_model = config.fault_model
    if fault_model is None and config.chaos is not None:
        # Chaos overlays (loss bursts, delay spikes) act through the fault
        # branch of Network.send; an all-zero model turns that branch on
        # without injecting any faults of its own.
        fault_model = FaultModel()
    sim = Simulator(
        seed=config.seed,
        delay_model=config.delay_model or UniformDelay(0.5, 1.5),
        trace=config.trace,
        fault_model=fault_model,
    )
    if config.reliable is not None:
        sim.install_transport(config.reliable)
    collector = MetricsCollector()
    sites = [
        spec.factory(i, config.n_sites, quorum_system, config.cs_duration, collector)
        for i in range(config.n_sites)
    ]
    for site in sites:
        sim.add_node(site)
    if sim.transport is not None:
        sim.transport.on_give_up = _give_up_hook(sites)
    if config.chaos is not None:
        plan = config.chaos
        materialize = getattr(plan, "materialize", None)
        if materialize is not None:
            plan = materialize(config.n_sites)
        plan.install(sim, sites)
    workload = config.workload or SaturationWorkload(20)
    submitted = workload.install(sim, sites)
    return sim, sites, collector, quorum_system, submitted


def _give_up_hook(sites: List[MutexSite]):
    """Feed channel give-ups into the failure-detector path.

    When the reliable layer exhausts its retries toward a peer, the local
    site has channel-level evidence the peer is unreachable: a monitored
    site routes it through its heartbeat detector (which broadcasts the
    paper's ``failure(i)``), a plain fault-tolerant site applies the
    Section 6 cleanup directly, and any other algorithm ignores it (it
    has no failure handling to feed).
    """
    from repro.core.faults import FaultTolerantSite
    from repro.ft.recovery import MonitoredSite

    by_id = {site.site_id: site for site in sites}

    def give_up(src: int, dst: int) -> None:
        site = by_id.get(src)
        if site is None or site.crashed:
            return
        if isinstance(site, MonitoredSite):
            site.monitor.force_suspect(dst)
        elif isinstance(site, FaultTolerantSite):
            site.notify_failure(dst)

    return give_up


def run_mutex(
    config: RunConfig,
    loop: Optional[Callable[..., None]] = None,
) -> RunResult:
    """Run one configured simulation to completion and verify it.

    ``loop`` optionally replaces the kernel main loop: it is called as
    ``loop(sim, until=..., max_events=...)`` and must drain the run. The
    observability layer uses this to drive the run through the
    instrumented (timing) loop; the default is the plain hot path.
    """
    sim, sites, collector, quorum_system, _ = build_run(config)
    sim.start()
    # Opt-in message recycling (REPRO_MSG_POOL=1): only sound when every
    # delivered message is consumed on delivery — no trace retaining
    # payloads, no fault-model duplicates, no transport buffering — and
    # the pool is process-global, so never armed off the main thread
    # (the threaded trial engine runs several sims at once).
    arm_pool = (
        os.environ.get("REPRO_MSG_POOL") == "1"
        and not _message_pool.enabled
        and not sim.trace.enabled
        and config.fault_model is None
        and config.reliable is None
        and config.chaos is None
        and threading.current_thread() is threading.main_thread()
    )
    if arm_pool:
        _message_pool.arm()
    # Suppress cyclic GC for the duration of the main loop: the kernel
    # churns through short-lived events/messages that reference counting
    # reclaims on its own, and collector pauses otherwise land mid-run.
    # Restored (and swept once) in finally, so callers see no GC-state
    # change and long experiment grids don't accumulate cycles.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        if loop is None:
            sim.run(until=config.max_time, max_events=config.max_events)
        else:
            loop(sim, until=config.max_time, max_events=config.max_events)
    finally:
        if arm_pool:
            _message_pool.disarm()
        if gc_was_enabled:
            gc.enable()
            gc.collect()

    duration = sim.last_event_time
    if config.verify:
        check_mutual_exclusion(collector.records)
        check_sequential_per_site(collector.records)
        if sim.pending_events() == 0:
            # The run drained: everything submitted must have been served.
            check_progress(collector.records, context=config.algorithm)
            cs_sites = [s for s in sites if isinstance(s, CaoSinghalSite)]
            if cs_sites:
                check_quiescent(cs_sites)
        else:
            raise ConfigurationError(
                f"run hit its safety cap (time={sim.now:.1f}, "
                f"events={sim.events_processed}); raise max_time/max_events "
                "or shrink the workload"
            )

    quorum_name = config.resolved_quorum()
    summary = summarize(
        algorithm=config.algorithm,
        n_sites=config.n_sites,
        records=collector.records,
        messages_sent=sim.network.stats.messages_sent,
        messages_by_type=sim.network.stats.by_type,
        duration=duration,
        mean_delay_t=sim.network.mean_delay,
        seed=config.seed,
        quorum_name=quorum_name,
        mean_quorum_size=(
            quorum_system.mean_quorum_size() if quorum_system else None
        ),
        channel_stats=_channel_stats(sim),
    )
    return RunResult(summary=summary, sim=sim, sites=sites, collector=collector)


def _channel_stats(sim: Simulator) -> dict:
    """Non-zero reliability counters from the network and transport.

    Returns ``{}`` for a clean run over a reliable network, which keeps
    historical summary digests (golden fingerprints, cache records)
    byte-identical.
    """
    out: dict = {}
    ns = sim.network.stats
    for name in (
        "messages_dropped",
        "messages_lost",
        "messages_duplicated",
        "messages_reordered",
    ):
        value = getattr(ns, name)
        if value:
            out[name] = value
    if sim.transport is not None:
        out.update(sim.transport.stats_dict())
    return out


def run_many(
    configs: "List[RunConfig]",
    workers: Optional[int] = None,
    cache=None,
) -> List[RunSummary]:
    """Run a grid of configs through the parallel trial engine.

    Summaries come back in input order whatever the worker count, so a
    sweep built as a list comprehension reads its results positionally.
    ``workers``/``cache`` are :class:`~repro.parallel.TrialPool` options;
    a failing trial re-raises with its seed attached.
    """
    from repro.parallel.pool import TrialPool

    return TrialPool(workers=workers, cache=cache).run_configs(configs)


def quick_run(
    algorithm: str = "cao-singhal",
    n_sites: int = 9,
    seed: int = 0,
    requests_per_site: int = 20,
    quorum: Optional[str] = None,
    delay: Optional[DelayModel] = None,
) -> RunSummary:
    """Convenience wrapper: heavy-load run, return just the summary."""
    config = RunConfig(
        algorithm=algorithm,
        n_sites=n_sites,
        quorum=quorum,
        seed=seed,
        delay_model=delay or ConstantDelay(1.0),
        workload=SaturationWorkload(requests_per_site),
    )
    return run_mutex(config).summary
