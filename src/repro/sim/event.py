"""Event primitives for the discrete-event simulation kernel.

The kernel is a classic calendar queue: an :class:`Event` is a callback
bound to a simulated time, and ties are broken deterministically by a
monotonically increasing sequence number assigned at scheduling time. That
tie-break makes every simulation run a pure function of its seed, which the
test suite, the golden-fingerprint layer, and the benchmark harness rely
on.

Hot-path layout
---------------
The heap stores ``(time, seq, event)`` tuples, *not* the events
themselves: ``heapq`` then compares entries with C-level tuple/float
comparisons instead of calling a Python ``__lt__`` per sift step, and the
globally unique ``seq`` guarantees the third element is never compared.
The :class:`Event` handle is a ``__slots__`` object holding the callback
as ``(fn, args)`` — scheduling a call site this way costs one small
object, where the previous kernel paid for an ordered dataclass (with its
``__dict__``) plus a capturing closure per event.

Cohort draining
---------------
:meth:`EventQueue.pop_cohort` removes *every* live event due at the
earliest due time in one heap pass. The simulator main loop executes the
returned cohort in a tight inner loop, touching the clock once per
cohort instead of once per event. Events fired from inside a cohort that
schedule at the *same* instant (zero-delay self-sends) land in the heap
with larger sequence numbers and come back as the next cohort at the
same timestamp — execution order is exactly the per-event ``(time,
seq)`` order, so cohort execution is byte-identical to the one-at-a-time
loop by construction.

Popping (by any method) detaches the event from the queue, so a
``cancel()`` issued *after* the pop — e.g. by an earlier event of the
same cohort — only flags the event (the executor skips it) and never
touches the live-count again.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError

#: Type alias for event callbacks. Callbacks receive the ``args`` tuple
#: they were scheduled with (``()`` for the common no-argument case).
Action = Callable[..., None]


class Event:
    """A scheduled callback handle.

    Events order by ``(time, seq)`` — ``seq`` is assigned by the queue so
    two events scheduled for the same instant fire in scheduling order,
    keeping runs deterministic without relying on heap internals. Firing
    calls ``fn(*args)``; binding arguments in the event (instead of a
    closure) keeps the schedule path allocation-lean.
    """

    __slots__ = ("time", "seq", "fn", "args", "label", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Action,
        args: Tuple[Any, ...] = (),
        label: str = "",
        _queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        #: Human-readable tag used by traces and error messages.
        self.label = label
        #: Cancelled events stay in the heap but are skipped on pop, and
        #: skipped by the cohort executor when cancelled after the pop.
        self.cancelled = False
        #: Owning queue while the event sits in the heap; popping clears
        #: it, so a late cancel() never double-decrements the live count.
        self._queue = _queue

    def fire(self) -> None:
        """Invoke the scheduled callback."""
        self.fn(*self.args)

    def cancel(self) -> None:
        """Mark the event so it is never fired.

        Idempotent. While the event is still queued the owning queue's
        live count drops immediately, so ``len(queue)`` never counts
        cancelled timers; an event already popped (e.g. sitting in the
        currently executing cohort) is only flagged — the executor checks
        the flag right before firing.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()

    # Ordering mirrors the heap contract; only (time, seq) participate.

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __le__(self, other: "Event") -> bool:
        return (self.time, self.seq) <= (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time!r}, seq={self.seq}, label={self.label!r}{state})"


class EventQueue:
    """A deterministic min-heap of :class:`Event` handles.

    The queue never exposes heap order beyond the strict ``(time, seq)``
    contract. Cancellation is lazy: cancelled events are skipped when
    popped, which keeps :meth:`push` and :meth:`Event.cancel` O(log n) and
    O(1) respectively, while ``len()`` reflects live events exactly.
    """

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        #: Heap entries are ``(time, seq, event)`` — see module docstring.
        self._heap: list = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        fn: Action,
        args: Tuple[Any, ...] = (),
        label: str = "",
    ) -> Event:
        """Schedule ``fn(*args)`` at ``time`` and return the event handle.

        The handle supports :meth:`Event.cancel` for timers that may be
        disarmed (for example heartbeat timeouts refreshed by a new
        heartbeat).
        """
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, label, self)
        heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` to keep the live count exact."""
        self._live -= 1

    def pop(self) -> Optional[Event]:
        """Return the earliest live event, or ``None`` if the queue is empty.

        Cancelled events encountered on the way are discarded silently.
        """
        return self.pop_due(None)

    def pop_due(self, limit: Optional[float]) -> Optional[Event]:
        """Pop the earliest live event with ``time <= limit``.

        Returns ``None`` when the queue is empty or the next live event
        fires after ``limit`` (which is then left in place). ``limit=None``
        means no bound. One kernel call per event: peek, bound-check, and
        pop in one pass (the per-event fallback of :meth:`pop_cohort`).
        """
        heap = self._heap
        while heap:
            head = heap[0]
            event: Event = head[2]
            if event.cancelled:
                heappop(heap)
                continue
            if limit is not None and head[0] > limit:
                return None
            heappop(heap)
            event._queue = None
            self._live -= 1
            return event
        if self._live:
            # Every live event must be reachable; a mismatch means the
            # cancellation bookkeeping broke.
            raise SimulationError("event queue accounting is corrupt")
        return None

    def pop_cohort(
        self, limit: Optional[float] = None, out: Optional[List[Event]] = None
    ) -> List[Event]:
        """Drain every live event due at the earliest due time ``<= limit``.

        One heap pass removes the whole same-timestamp cohort, in ``(time,
        seq)`` order; cancelled entries encountered on the way are
        discarded. Returns the (possibly empty) cohort — empty means the
        queue is drained or the next live event lies beyond ``limit``.
        Passing ``out`` reuses the caller's list as the cohort buffer
        (cleared first), so a hot loop allocates nothing per cohort.

        Events in the returned cohort are already detached from the
        queue: the executor must re-check :attr:`Event.cancelled` before
        firing each one, because an earlier cohort member may cancel a
        later one (lazy cancellation inside a cohort).
        """
        if out is None:
            out = []
        else:
            del out[:]
        heap = self._heap
        pop = heappop
        while heap:
            head = heap[0]
            event: Event = head[2]
            if event.cancelled:
                pop(heap)
                continue
            time = head[0]
            if limit is not None and time > limit:
                return out
            pop(heap)
            event._queue = None
            out.append(event)
            drained = 1
            # Drain the rest of the cohort, discarding cancelled entries
            # lazily (regardless of their timestamp).
            while heap:
                head = heap[0]
                event = head[2]
                if event.cancelled:
                    pop(heap)
                    continue
                if head[0] != time:
                    break
                pop(heap)
                event._queue = None
                out.append(event)
                drained += 1
            self._live -= drained
            return out
        if self._live:
            raise SimulationError("event queue accounting is corrupt")
        return out

    def requeue(self, events: List[Event]) -> None:
        """Put popped-but-unfired events back, preserving their identity.

        Used by the simulator when a cohort's execution stops early (an
        event callback raised, or ``max_events`` ran out mid-cohort): the
        remaining events re-enter the heap under their *original* ``(time,
        seq)`` keys, so a later run continues exactly where the one-at-a-
        time loop would have. Cancelled events are dropped (their live
        count was already settled by :meth:`Event.cancel`).
        """
        heap = self._heap
        for event in events:
            if event.cancelled:
                continue
            heappush(heap, (event.time, event.seq, event))
            event._queue = self
            self._live += 1

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without popping it."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heappop(heap)
        return heap[0][0] if heap else None
