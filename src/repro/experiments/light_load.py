"""Experiment E2 — Section 5.1: light-load cost of the proposed algorithm.

Paper claims, per CS execution at light load:

* ``3(K-1)`` messages — one request, one reply, one release per *remote*
  quorum member (a site in its own quorum charges nothing);
* response time ``2T + E`` — the unavoidable round trip plus execution.

We run the proposed algorithm over several quorum constructions at a very
low Poisson rate and compare measured messages/CS and response time with
the closed forms.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.closed_form import light_load_messages, light_load_response_time
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import RunConfig, run_mutex
from repro.quorums.registry import make_quorum_system
from repro.sim.network import ConstantDelay
from repro.workload.scenarios import light_load

DEFAULT_QUORUMS = ("grid", "tree", "majority", "hierarchical")


def run_light_load(
    n_sites: int = 25,
    quorums: Sequence[str] = DEFAULT_QUORUMS,
    seed: int = 2,
    cs_duration: float = 0.25,
    horizon: float = 4000.0,
    rate: float = 0.001,
) -> ExperimentReport:
    """Light-load sweep over quorum constructions."""
    report = ExperimentReport(
        experiment_id="E2",
        title=f"Section 5.1 light load, N={n_sites}, E={cs_duration}, T=1",
        headers=[
            "quorum",
            "K (remote)",
            "msgs/CS measured",
            "3(K-1) paper",
            "resp time (T)",
            "2T+E paper",
        ],
    )
    for quorum in quorums:
        qs = make_quorum_system(quorum, n_sites)
        # The paper's (K-1) counts remote members: subtract each site's
        # own membership from its quorum where applicable.
        remote = sum(
            len(qs.quorum_for(s)) - (1 if s in qs.quorum_for(s) else 0)
            for s in qs.sites
        ) / n_sites
        summary = run_mutex(
            RunConfig(
                algorithm="cao-singhal",
                n_sites=n_sites,
                quorum=quorum,
                seed=seed,
                delay_model=ConstantDelay(1.0),
                cs_duration=cs_duration,
                workload=light_load(horizon=horizon, rate=rate),
            )
        ).summary
        report.add_row(
            quorum,
            remote + 1,
            summary.messages_per_cs,
            light_load_messages(remote + 1),
            summary.response_time_in_t,
            light_load_response_time(1.0, cs_duration),
        )
    report.add_note(
        "K here counts the site itself; the paper's 3(K-1) charges only "
        "remote members, which is what the simulator counts too."
    )
    return report
