"""Availability analysis of quorum systems under iid site failures.

Used by experiment E7 (Section 6): for each construction, the probability
that *some* live quorum can still be formed when every site is
independently up with probability ``p``.

Two estimators are provided:

* :func:`exact_availability` — exhaustive enumeration over all ``2^n``
  failure patterns; exact, feasible for ``n <= ~18``.
* :func:`monte_carlo_availability` — sampled estimate for larger systems,
  with a deterministic seed.

Both ask the *construction* (via :meth:`QuorumSystem.quorum_avoiding`)
whether a quorum survives, so constructions with structural substitution
rules (tree, HQC, grid-set, RST) are credited for their native recovery
ability, exactly the comparison the paper's Section 6 makes.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.quorums.coterie import QuorumSystem


def _survives(system: QuorumSystem, failed: frozenset) -> bool:
    """True when some live site can still assemble a quorum."""
    for site in system.sites:
        if site in failed:
            continue
        if system.quorum_avoiding(site, failed) is not None:
            return True
    return False


def exact_availability(system: QuorumSystem, p: float) -> float:
    """Exact availability by enumerating all failure patterns.

    ``p`` is the per-site up-probability. Complexity ``O(2^n)`` patterns,
    each requiring a quorum-search; keep ``n`` small.
    """
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")
    if system.n > 20:
        raise ConfigurationError(
            f"exact enumeration over n={system.n} sites is intractable; "
            "use monte_carlo_availability"
        )
    total = 0.0
    sites = list(system.sites)
    for r in range(system.n + 1):
        for downs in itertools.combinations(sites, r):
            failed = frozenset(downs)
            if _survives(system, failed):
                total += (1 - p) ** r * p ** (system.n - r)
    return total


def monte_carlo_availability(
    system: QuorumSystem,
    p: float,
    samples: int = 2000,
    seed: int = 0,
) -> float:
    """Sampled availability estimate with a deterministic seed."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    rng = random.Random(seed)
    hits = 0
    for _ in range(samples):
        failed = frozenset(s for s in system.sites if rng.random() > p)
        if _survives(system, failed):
            hits += 1
    return hits / samples


@dataclass(frozen=True)
class AvailabilityPoint:
    """One (p, availability) sample of an availability curve."""

    p: float
    availability: float


def availability_curve(
    system: QuorumSystem,
    ps: Sequence[float],
    exact_threshold: int = 14,
    samples: int = 2000,
    seed: int = 0,
) -> List[AvailabilityPoint]:
    """Availability across a sweep of up-probabilities.

    Uses the exact estimator when the system is small enough, Monte Carlo
    otherwise.
    """
    estimator: Callable[[QuorumSystem, float], float]
    if system.n <= exact_threshold:
        estimator = exact_availability
    else:
        estimator = lambda s, p: monte_carlo_availability(s, p, samples, seed)
    return [AvailabilityPoint(p=p, availability=estimator(system, p)) for p in ps]


def node_resilience(system: QuorumSystem) -> int:
    """Largest ``f`` such that *every* ``f``-subset of failures is survivable.

    Brute force over failure subsets, growing ``f`` until some pattern
    kills the system (or everything fails). This is the worst-case metric
    that separates, e.g., majority (``f = ceil(n/2) - 1``) from a grid
    (``f`` can be 1 for unfortunate patterns only at larger sizes —
    resilience counts the guaranteed level).
    """
    sites = list(system.sites)
    for f in range(1, system.n + 1):
        for downs in itertools.combinations(sites, f):
            if not _survives(system, frozenset(downs)):
                return f - 1
    return system.n
