"""The exploration alphabet: identity, independence, serialization.

An action is a ``(kind, arg)`` tuple (see :mod:`.world`); the tuple is
its own stable identity across worlds, which is what sleep sets and the
per-state explored-set bookkeeping key on.

**Independence relation.** Two actions are independent iff both are
protocol actions (a channel-head delivery or a timer firing) executed by
*different* sites. The executing site of a delivery is the destination:
a handler reads and writes only its own site's state, appends only to
channels whose source is itself, and never touches another site's
timers. Two deliveries to distinct destinations therefore commute even
when one's destination is the other's source — the bystander's append
lands on a channel *tail* while the delivery consumes a *head*, and
under FIFO channels those operations commute. Fault-oracle actions
(crash/detect/recover/readmit/cut/heal) are dependent with everything:
a crash rewrites channels wholesale, detection touches every live site,
and a cut flips a channel's deliverability — none of it commutes in
general, so the search never sleeps them and they clear no one's
enabledness assumptions. DESIGN.md ("A fault-aware stateless model
checker") carries the full soundness argument.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError

Action = Tuple[str, object]

#: Kinds whose executing site is ``arg`` (an int).
_SITE_KINDS = frozenset(
    {"crash", "detect", "recover", "readmit"}
)


def executing_site(action: Action) -> int:
    """The single site whose protocol state the action mutates, or -1
    for oracle actions with a global footprint."""
    kind, arg = action
    if kind == "deliver":
        return arg[1]  # type: ignore[index]
    if kind == "timer":
        return arg[0]  # type: ignore[index]
    return -1


def is_protocol_action(action: Action) -> bool:
    """Deliveries and timer firings; the commuting fragment."""
    return action[0] in ("deliver", "timer")


def independent(a: Action, b: Action) -> bool:
    """True when ``a`` and ``b`` commute from every state enabling both."""
    if a[0] not in ("deliver", "timer") or b[0] not in ("deliver", "timer"):
        return False
    return executing_site(a) != executing_site(b)


def encode_action(action: Action) -> list:
    """JSON-friendly form: ``[kind, arg]`` with tuples as lists."""
    kind, arg = action
    if isinstance(arg, tuple):
        return [kind, list(arg)]
    return [kind, arg]


def decode_action(row: Sequence) -> Action:
    """Inverse of :func:`encode_action` (strict, for counterexample files)."""
    if len(row) != 2:
        raise ConfigurationError(f"malformed action row: {row!r}")
    kind, arg = row
    if kind in ("deliver", "cut", "heal"):
        src, dst = arg
        return (kind, (int(src), int(dst)))
    if kind == "timer":
        site, method, seq = arg
        return (kind, (int(site), str(method), int(seq)))
    if kind in _SITE_KINDS:
        return (kind, int(arg))
    raise ConfigurationError(f"unknown action kind {kind!r}")


def encode_path(path: Sequence[Action]) -> List[list]:
    return [encode_action(a) for a in path]


def decode_path(rows: Sequence[Sequence]) -> List[Action]:
    return [decode_action(row) for row in rows]
