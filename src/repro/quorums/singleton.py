"""Singleton (centralized) coterie: ``C = {{c}}``.

The degenerate coterie with one one-site quorum. Minimal message cost and
the worst possible availability (the arbiter is a single point of failure).
Included because it is the coterie-world equivalent of a centralized lock
server and a useful lower-bound baseline in the message-count experiments.
"""

from __future__ import annotations

from typing import AbstractSet, Optional

from repro.errors import ConfigurationError
from repro.quorums.coterie import Quorum, QuorumSystem, SiteId


class SingletonQuorumSystem(QuorumSystem):
    """Every site's quorum is the same single arbiter site."""

    name = "singleton"

    def __init__(self, n: int, arbiter: SiteId = 0) -> None:
        super().__init__(n)
        if not 0 <= arbiter < n:
            raise ConfigurationError(f"arbiter {arbiter} outside 0..{n - 1}")
        self.arbiter = arbiter

    def quorum_for(self, site: SiteId) -> Quorum:
        return frozenset({self.arbiter})

    def quorum_avoiding(
        self, site: SiteId, failed: AbstractSet[SiteId]
    ) -> Optional[Quorum]:
        if self.arbiter in failed:
            return None
        return frozenset({self.arbiter})
