"""Centralized coordinator baseline.

The textbook reference point: one coordinator serializes the CS with a
FIFO grant queue. Three messages per CS execution (request, grant,
release) and synchronization delay ``2T`` (release to the coordinator,
grant to the next site) — the same relay pattern Maekawa generalizes and
the paper's direct-forwarding idea removes. Not in the paper's Table 1,
but a useful calibration point for the simulator's delay measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ProtocolError
from repro.mutex.base import DurationSpec, MutexSite, RunListener, SiteState
from repro.substrate import SiteId


@dataclass(frozen=True)
class CRequest:
    """Ask the coordinator for the lock."""

    type_name = "request"


@dataclass(frozen=True)
class CGrant:
    """Coordinator's grant."""

    type_name = "reply"


@dataclass(frozen=True)
class CRelease:
    """Return the lock to the coordinator."""

    type_name = "release"


class CentralizedSite(MutexSite):
    """One site of the centralized scheme; site ``coordinator`` arbitrates."""

    algorithm_name = "centralized"

    def __init__(
        self,
        site_id: SiteId,
        n: int,
        cs_duration: DurationSpec = 0.1,
        listener: Optional[RunListener] = None,
        coordinator: SiteId = 0,
    ) -> None:
        super().__init__(site_id, cs_duration, listener)
        self.n = n
        self.coordinator = coordinator
        # coordinator-role state
        self.locked_by: Optional[SiteId] = None
        self.wait_queue: List[SiteId] = []

    @property
    def is_coordinator(self) -> bool:
        """True on the arbitrating site."""
        return self.site_id == self.coordinator

    # -- MutexSite hooks -----------------------------------------------------

    def _begin_request(self) -> None:
        self.send(self.coordinator, CRequest())

    def _exit_protocol(self) -> None:
        self.send(self.coordinator, CRelease())

    # -- message handlers ------------------------------------------------------

    def on_message(self, src: SiteId, message: object) -> None:
        if isinstance(message, CRequest):
            self._coord_request(src)
        elif isinstance(message, CRelease):
            self._coord_release(src)
        elif isinstance(message, CGrant):
            if self.state is SiteState.REQUESTING:
                self._enter_cs()
        else:
            raise TypeError(f"unexpected message {message!r}")

    def _coord_request(self, src: SiteId) -> None:
        if not self.is_coordinator:
            raise ProtocolError(f"site {self.site_id} is not the coordinator")
        if self.locked_by is None:
            self.locked_by = src
            self.send(src, CGrant())
        else:
            self.wait_queue.append(src)

    def _coord_release(self, src: SiteId) -> None:
        if not self.is_coordinator:
            raise ProtocolError(f"site {self.site_id} is not the coordinator")
        if self.locked_by != src:
            raise ProtocolError(
                f"coordinator: release from {src} but lock held by {self.locked_by}"
            )
        if self.wait_queue:
            self.locked_by = self.wait_queue.pop(0)
            self.send(self.locked_by, CGrant())
        else:
            self.locked_by = None
