"""Derived performance statistics (the paper's Section 5 quantities).

The two headline metrics:

* **message complexity** — network messages per CS execution, with
  piggybacked bundles counted once (Section 5's costing rule);
* **synchronization delay** — the gap between one site's CS exit and the
  next site's CS entry, *measured only over contended handoffs* (the next
  entrant was already waiting when the previous site exited). The paper
  notes the light-load value is meaningless, which is exactly why the
  uncontended gaps are excluded; at heavy load every handoff is contended
  and the estimator converges to the paper's quantity.

All delays are normalized by the network's mean one-way latency ``T`` so
results read directly against the paper's ``T`` / ``2T`` statements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.metrics.collector import CSRecord


@dataclass(frozen=True)
class Stats:
    """Mean/percentile summary of a sample."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Stats":
        """Summarize ``values`` (empty samples produce NaN statistics)."""
        if not values:
            nan = float("nan")
            return cls(0, nan, nan, nan, nan, nan)
        ordered = sorted(values)

        def pct(q: float) -> float:
            idx = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
            return ordered[idx]

        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=pct(0.50),
            p95=pct(0.95),
        )


def sync_delays(records: Sequence[CSRecord]) -> List[float]:
    """Contended exit-to-next-entry gaps, in simulation time units.

    CS executions are ordered by entry time; a gap is counted when the
    successor had already issued its request before the predecessor
    exited (i.e. it was genuinely waiting on the handoff).
    """
    done = sorted((r for r in records if r.complete), key=lambda r: r.enter_time)
    gaps: List[float] = []
    for prev, nxt in zip(done, done[1:]):
        assert prev.exit_time is not None and nxt.enter_time is not None
        if nxt.request_time <= prev.exit_time:
            gaps.append(nxt.enter_time - prev.exit_time)
    return gaps


def jain_fairness(counts: Dict[int, int], n_sites: int) -> float:
    """Jain's fairness index over per-site completion counts (1 = fair)."""
    values = [counts.get(site, 0) for site in range(n_sites)]
    total = sum(values)
    if total == 0:
        return float("nan")
    square_sum = sum(v * v for v in values)
    return (total * total) / (n_sites * square_sum)


@dataclass
class RunSummary:
    """Everything one simulation run reports."""

    algorithm: str
    n_sites: int
    quorum_name: Optional[str]
    mean_quorum_size: Optional[float]
    seed: int
    duration: float
    mean_delay_t: float
    completed: int
    unserved: int
    messages_sent: int
    messages_by_type: Dict[str, int] = field(default_factory=dict)
    messages_per_cs: float = float("nan")
    sync_delay: Stats = field(default_factory=lambda: Stats.of([]))
    sync_delay_in_t: float = float("nan")
    waiting_time: Stats = field(default_factory=lambda: Stats.of([]))
    response_time: Stats = field(default_factory=lambda: Stats.of([]))
    response_time_in_t: float = float("nan")
    throughput: float = float("nan")
    fairness: float = float("nan")
    #: Channel-reliability counters (fault-injected losses, duplicates,
    #: reorders from :class:`repro.sim.network.NetworkStats`; retransmits,
    #: dedups, acks from :class:`repro.sim.transport.TransportStats`).
    #: Empty for a run with no faults and no reliable transport, and then
    #: omitted from :meth:`to_dict` so historical summary digests (the
    #: golden kernel fingerprints) are unchanged.
    channel_stats: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready representation (used by the on-disk run cache)."""
        import dataclasses

        data = dataclasses.asdict(self)
        if not data["channel_stats"]:
            del data["channel_stats"]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunSummary":
        """Inverse of :meth:`to_dict`; raises on missing/unknown fields."""
        import dataclasses

        payload = dict(data)
        for stats_field in ("sync_delay", "waiting_time", "response_time"):
            payload[stats_field] = Stats(**payload[stats_field])
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - names
        if unknown:
            raise ValueError(f"unknown RunSummary fields: {sorted(unknown)}")
        return cls(**payload)

    def describe(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"algorithm        : {self.algorithm}",
            f"sites            : {self.n_sites}"
            + (f"   quorum={self.quorum_name} (K={self.mean_quorum_size:.2f})"
               if self.quorum_name else ""),
            f"completed        : {self.completed} (unserved {self.unserved})",
            f"messages/CS      : {self.messages_per_cs:.2f}",
            f"sync delay       : {self.sync_delay_in_t:.3f} T "
            f"(n={self.sync_delay.count})",
            f"response time    : {self.response_time_in_t:.3f} T",
            f"throughput       : {self.throughput:.4f} CS/time-unit",
            f"fairness (Jain)  : {self.fairness:.3f}",
        ]
        if self.channel_stats:
            pairs = ", ".join(
                f"{k}={v}" for k, v in sorted(self.channel_stats.items())
            )
            lines.append(f"channel          : {pairs}")
        return "\n".join(lines)


def summarize(
    algorithm: str,
    n_sites: int,
    records: Sequence[CSRecord],
    messages_sent: int,
    messages_by_type: Dict[str, int],
    duration: float,
    mean_delay_t: float,
    seed: int,
    quorum_name: Optional[str] = None,
    mean_quorum_size: Optional[float] = None,
    warmup_fraction: float = 0.1,
    channel_stats: Optional[Dict[str, int]] = None,
) -> RunSummary:
    """Fold raw records and counters into a :class:`RunSummary`.

    The first ``warmup_fraction`` of the run (by time) is excluded from the
    delay statistics so ramp-up transients do not bias steady-state
    numbers; message counters cannot be windowed per-period, so
    ``messages_per_cs`` uses the whole run.
    """
    done = [r for r in records if r.complete]
    cutoff = duration * warmup_fraction
    steady = [r for r in done if r.request_time >= cutoff]

    gaps = sync_delays(steady)
    waits = [r.waiting_time for r in steady]
    responses = [r.response_time for r in steady]
    counts: Dict[int, int] = {}
    for r in done:
        counts[r.site] = counts.get(r.site, 0) + 1

    gap_stats = Stats.of(gaps)
    resp_stats = Stats.of(responses)
    return RunSummary(
        algorithm=algorithm,
        n_sites=n_sites,
        quorum_name=quorum_name,
        mean_quorum_size=mean_quorum_size,
        seed=seed,
        duration=duration,
        mean_delay_t=mean_delay_t,
        completed=len(done),
        unserved=len(records) - len(done),
        messages_sent=messages_sent,
        messages_by_type=dict(messages_by_type),
        messages_per_cs=(messages_sent / len(done)) if done else float("nan"),
        sync_delay=gap_stats,
        sync_delay_in_t=gap_stats.mean / mean_delay_t,
        waiting_time=Stats.of(waits),
        response_time=resp_stats,
        response_time_in_t=resp_stats.mean / mean_delay_t,
        throughput=len(done) / duration if duration > 0 else float("nan"),
        fairness=jain_fairness(counts, n_sites),
        channel_stats=dict(channel_stats or {}),
    )
