"""Property tests: RequestQueue against a sorted-list model."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.common import Priority
from repro.core.state import RequestQueue

priorities = st.builds(
    Priority,
    seq=st.integers(min_value=0, max_value=50),
    site=st.integers(min_value=0, max_value=20),
)

#: Operations: ("push", p) | ("pop",) | ("remove", p) | ("remove_site", s)
ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), priorities),
        st.tuples(st.just("pop")),
        st.tuples(st.just("remove"), priorities),
        st.tuples(st.just("remove_site"), st.integers(min_value=0, max_value=20)),
    ),
    max_size=60,
)


@given(ops)
def test_queue_matches_sorted_model(operations):
    queue = RequestQueue()
    model: list = []
    for op in operations:
        if op[0] == "push":
            queue.push(op[1])
            model.append(op[1])
            model.sort()
        elif op[0] == "pop":
            if model:
                assert queue.pop_head() == model.pop(0)
            else:
                assert queue.head() is None
        elif op[0] == "remove":
            expected = op[1] in model
            assert queue.remove(op[1]) == expected
            if expected:
                model.remove(op[1])
        elif op[0] == "remove_site":
            expected = next((p for p in model if p.site == op[1]), None)
            assert queue.remove_site(op[1]) == expected
            if expected is not None:
                model.remove(expected)
        # Invariants after every operation.
        assert list(queue) == model
        assert queue.head() == (model[0] if model else None)
        assert len(queue) == len(model)
