"""Unit tests for the closed-form analysis module."""

from __future__ import annotations

import math

import pytest

from repro.analysis.closed_form import (
    HEAVY_LOAD_CASE_MULTIPLIERS,
    centralized_costs,
    gridset_quorum_size,
    heavy_load_message_bounds,
    hierarchical_quorum_size,
    lamport_costs,
    light_load_messages,
    light_load_response_time,
    maekawa_costs,
    maekawa_quorum_size,
    majority_quorum_size,
    proposed_costs,
    raymond_costs,
    ricart_agrawala_costs,
    roucairol_carvalho_costs,
    rst_quorum_size,
    suzuki_kasami_costs,
    tree_quorum_size,
)
from repro.analysis.table1 import analytic_table1, render_analytic_table1


def test_table1_rows_for_n25():
    rows = {c.name: c for c in analytic_table1(25)}
    assert rows["lamport"].light_messages == 72
    assert rows["ricart-agrawala"].light_messages == 48
    assert rows["maekawa"].light_messages == pytest.approx(12.0)
    assert rows["maekawa"].heavy_messages_low == pytest.approx(20.0)
    assert rows["maekawa"].sync_delay_t == 2.0
    assert rows["cao-singhal"].sync_delay_t == 1.0
    assert rows["cao-singhal"].heavy_messages_high == pytest.approx(24.0)
    assert rows["cao-singhal (tree)"].sync_delay_t == 1.0


def test_proposed_bounds_ordering():
    c = proposed_costs(100)
    assert c.light_messages < c.heavy_messages_low < c.heavy_messages_high


def test_heavy_load_case_multipliers():
    # Section 5.2: only case 4.2 costs 6(K-1).
    assert HEAVY_LOAD_CASE_MULTIPLIERS["case4.2"] == 6.0
    others = [v for k, v in HEAVY_LOAD_CASE_MULTIPLIERS.items() if k != "case4.2"]
    assert all(v == 5.0 for v in others)


def test_light_load_formulas():
    assert light_load_messages(9) == 24.0
    assert light_load_response_time(1.0, 0.5) == 2.5
    low, high = heavy_load_message_bounds(9)
    assert (low, high) == (40.0, 48.0)


def test_quorum_size_closed_forms():
    assert maekawa_quorum_size(25) == 5.0
    assert tree_quorum_size(31) == 5.0
    assert majority_quorum_size(9) == 5.0
    assert hierarchical_quorum_size(27) == pytest.approx(27 ** (math.log(2) / math.log(3)))
    assert gridset_quorum_size(16, 4) > 0
    assert rst_quorum_size(16, 4) > 0


def test_token_and_broadcast_costs():
    assert suzuki_kasami_costs(10).heavy_messages_low == 10.0
    assert raymond_costs(16).sync_delay_t == pytest.approx(4.0)
    assert centralized_costs(99).light_messages == 3.0
    assert roucairol_carvalho_costs(10).light_messages == 9.0
    assert lamport_costs(2).light_messages == 3.0
    assert ricart_agrawala_costs(2).light_messages == 2.0
    assert maekawa_costs(16, k=4.0).light_messages == 9.0


def test_render_analytic_table1_text():
    text = render_analytic_table1(25)
    assert "Table 1" in text
    assert "cao-singhal" in text
    assert "2.0T" in text and "1.0T" in text
