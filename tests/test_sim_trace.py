"""Unit tests for the trace buffer."""

from __future__ import annotations

from repro.sim.trace import Trace, TraceRecord


def test_disabled_trace_records_nothing():
    trace = Trace(enabled=False)
    trace.record(1.0, "send", 0, "payload")
    assert len(trace) == 0


def test_capacity_limits_and_counts_drops():
    trace = Trace(enabled=True, capacity=2)
    for i in range(5):
        trace.record(float(i), "send", i)
    assert len(trace) == 2
    assert trace.dropped == 3


def test_filter_by_kind_site_and_predicate():
    trace = Trace()
    trace.record(1.0, "send", 0, "a")
    trace.record(2.0, "deliver", 1, "b")
    trace.record(3.0, "send", 1, "c")
    assert [r.detail for r in trace.filter(kind="send")] == ["a", "c"]
    assert [r.detail for r in trace.filter(site=1)] == ["b", "c"]
    assert [r.detail for r in trace.filter(predicate=lambda r: r.time > 1.5)] == [
        "b",
        "c",
    ]
    assert [r.detail for r in trace.filter(kind="send", site=1)] == ["c"]


def test_iteration_preserves_order():
    trace = Trace()
    for i in range(4):
        trace.record(float(i), "k", 0, i)
    assert [r.detail for r in trace] == [0, 1, 2, 3]


def test_dump_renders_tail():
    trace = Trace()
    for i in range(10):
        trace.record(float(i), "send", 0, i)
    dump = trace.dump(limit=3)
    assert dump.count("\n") == 2  # three lines
    assert "send" in dump


def test_record_dataclass_str():
    rec = TraceRecord(time=1.5, kind="cs_enter", site=3)
    assert "cs_enter" in str(rec)
    assert "site=3" in str(rec)
