"""Integration: the full Section 6 stack, including heartbeat detection."""

from __future__ import annotations

import pytest

from repro.core.faults import FaultTolerantSite
from repro.ft.detector import HeartbeatMonitor
from repro.ft.recovery import CrashPlan, MonitoredSite
from repro.metrics.collector import MetricsCollector
from repro.quorums.registry import make_quorum_system
from repro.sim.network import ConstantDelay, ExponentialDelay
from repro.sim.simulator import Simulator
from repro.verify.invariants import check_mutual_exclusion


def build(site_cls, quorum_name, n, seed=0, cs=0.2, delay=None, **site_kw):
    qs = make_quorum_system(quorum_name, n)
    sim = Simulator(seed=seed, delay_model=delay or ConstantDelay(1.0))
    collector = MetricsCollector()
    sites = [
        site_cls(i, qs, cs_duration=cs, listener=collector, **site_kw)
        for i in range(n)
    ]
    for s in sites:
        sim.add_node(s)
    return sim, sites, collector


def test_monitored_sites_detect_and_recover():
    """Heartbeat path end to end: no oracle, detection via silence."""
    sim, sites, collector = build(
        MonitoredSite,
        "tree",
        7,
        seed=5,
        hb_interval=2.0,
        hb_timeout=6.0,
        hb_lifetime=120.0,
    )
    for s in sites:
        for _ in range(3):
            sim.schedule(0.0, s.submit_request)
    sim.schedule(10.0, lambda: sim.crash(3))
    sim.start()
    sim.run(until=200.0)
    check_mutual_exclusion(collector.records)
    # Everyone alive eventually suspects site 3.
    for s in sites:
        if s.site_id != 3:
            assert 3 in s.monitor.suspected
            assert 3 in s.known_failed
    live_unserved = [
        r for r in collector.records if not r.complete and r.site != 3
    ]
    assert not live_unserved


def test_heartbeat_monitor_no_false_positives_without_crash():
    sim, sites, collector = build(
        MonitoredSite,
        "grid",
        9,
        seed=6,
        hb_interval=2.0,
        hb_timeout=8.0,
        hb_lifetime=100.0,
    )
    for s in sites:
        sim.schedule(0.0, s.submit_request)
    sim.start()
    sim.run(until=150.0)
    for s in sites:
        assert not s.monitor.suspected
    assert all(r.complete for r in collector.records)


def test_monitor_validates_parameters():
    from repro.errors import ConfigurationError

    sim, sites, _ = build(FaultTolerantSite, "grid", 4)
    with pytest.raises(ConfigurationError):
        HeartbeatMonitor(sites[0], range(4), interval=0.0, timeout=1.0,
                         lifetime=10.0, on_suspect=lambda s: None)
    with pytest.raises(ConfigurationError):
        HeartbeatMonitor(sites[0], range(4), interval=2.0, timeout=1.0,
                         lifetime=10.0, on_suspect=lambda s: None)


def test_availability_degrades_then_sites_report_inaccessible():
    """Kill a majority: the survivors must *know* they are blocked
    (inaccessible) rather than silently hanging."""
    sim, sites, collector = build(FaultTolerantSite, "majority", 5, seed=7)
    # Victims idle; survivors each submit one request *after* the crashes.
    for s in sites[:2]:
        sim.schedule(20.0, s.submit_request)
    plan = CrashPlan()
    for i, victim in enumerate((2, 3, 4)):
        plan.crash(victim, at_time=2.0 + i, detection_delay=1.0)
    plan.install(sim, sites)
    sim.start()
    sim.run(until=100_000.0)
    assert sites[0].inaccessible and sites[1].inaccessible


def test_crash_during_cs_execution_releases_cleanly():
    """Crash the CS occupant itself: its locks must be recovered and every
    other site served."""
    sim, sites, collector = build(
        FaultTolerantSite, "tree", 7, seed=8, cs=5.0, delay=ConstantDelay(1.0)
    )
    for s in sites:
        sim.schedule(0.0, s.submit_request)
    # Site 0 (tree root, highest priority) wins first and enters around
    # t=2; crash it mid-CS.
    CrashPlan().crash(0, at_time=3.5, detection_delay=1.5).install(sim, sites)
    sim.start()
    sim.run(until=100_000.0)
    check_mutual_exclusion(collector.records)
    live_unserved = [
        r for r in collector.records if not r.complete and r.site != 0
    ]
    assert not live_unserved


@pytest.mark.parametrize("quorum", ["tree", "majority", "hierarchical", "rst"])
def test_randomized_crashes_per_construction(quorum):
    n = 9 if quorum != "tree" else 7
    sim, sites, collector = build(
        FaultTolerantSite, quorum, n, seed=hash(quorum) % 1000,
        delay=ExponentialDelay(1.0),
    )
    for s in sites:
        for _ in range(3):
            sim.schedule(0.0, s.submit_request)
    CrashPlan().crash(n - 1, 4.0, 2.0).install(sim, sites)
    sim.start()
    sim.run(until=500_000.0)
    check_mutual_exclusion(collector.records)
    live_unserved = {
        r.site for r in collector.records if not r.complete and r.site != n - 1
    }
    inaccessible = {s.site_id for s in sites if s.inaccessible}
    assert live_unserved <= inaccessible
