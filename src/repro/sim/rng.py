"""Deterministic random-number management for simulations.

Every stochastic component (each channel's delay model, each site's arrival
process, the failure injector) draws from its own :class:`random.Random`
stream derived from the run seed and a stable component name. Component
streams are independent, so adding a new consumer never perturbs the draws
of existing ones — essential for reproducible experiments and for
hypothesis-driven shrinking.
"""

from __future__ import annotations

import hashlib
import random


class SeedSequence:
    """Derives independent named random streams from one master seed.

    The derivation hashes ``(master_seed, name)`` with SHA-256, so streams
    are stable across processes and Python versions (unlike ``hash()``,
    which is salted).
    """

    def __init__(self, master_seed: int) -> None:
        self._master_seed = int(master_seed)

    @property
    def master_seed(self) -> int:
        """The seed this sequence was created with."""
        return self._master_seed

    def derive(self, name: str) -> random.Random:
        """Return a fresh :class:`random.Random` for component ``name``.

        Calling :meth:`derive` twice with the same name returns two
        independent generator objects in the same state; callers should
        derive once per component and keep the instance.
        """
        digest = hashlib.sha256(
            f"{self._master_seed}:{name}".encode("utf-8")
        ).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def spawn(self, name: str) -> "SeedSequence":
        """Return a child sequence for a subsystem with its own namespace."""
        digest = hashlib.sha256(
            f"{self._master_seed}/{name}".encode("utf-8")
        ).digest()
        return SeedSequence(int.from_bytes(digest[:8], "big"))
