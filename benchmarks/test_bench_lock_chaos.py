"""Lock-service crash-chaos benchmark: availability under seeded churn.

Not a paper experiment — the headline robustness measurement for the
multi-resource layer (DESIGN.md §10). One seeded scenario at the PR's
acceptance scale — 8 shards x 5 sites, 10^4 named locks, Zipf(1.1)
skew, with one crash/rejoin cycle per shard — driven through the full
failure path: oracle detection, Section 6 arbiter recovery, client
retry/backoff failover, and lease fencing. The run itself verifies
per-key mutual exclusion online and post hoc (zero violations or it
raises); the benchmark additionally asserts the fault machinery was
*exercised* (every shard crashed, at least one acquire failed over)
and that the ledger balances — every acquire reached a terminal state.

Everything in the archived ``BENCH_lock_chaos.json`` is deterministic
for the pinned seed (crash schedules draw from shard-qualified RNG
streams), so the regression gate holds the counters exactly and the
availability/latency numbers within bounds.
"""

from __future__ import annotations

from conftest import archive_json

from repro.locks import LockRunConfig, run_lock_service

SCENARIO = dict(
    algorithm="cao-singhal",
    shards=8,
    n_sites=5,
    n_keys=10_000,
    n_clients=48,
    arrival_rate=24.0,
    n_requests=4_000,
    hold_duration=0.5,
    key_skew=1.1,
    seed=7,
    crashes=1,
    crash_downtime=20.0,
    detection_delay=2.0,
)


def test_bench_lock_chaos(benchmark):
    summary = benchmark.pedantic(
        lambda: run_lock_service(LockRunConfig(**SCENARIO)).summary,
        rounds=1,
        iterations=1,
    )

    # The fault machinery actually ran: every shard lost (and regained)
    # a site, and failover moved real work to survivors.
    assert summary.crashes == SCENARIO["shards"] * SCENARIO["crashes"]
    assert summary.failovers >= 1
    # Safety was never traded: zero violations across all three
    # checkers, and the ledger balances — every acquire completed, was
    # fenced off as a crash orphan, or aborted out of the retry budget.
    assert summary.violations == 0
    assert (
        summary.completed + summary.orphaned + summary.aborted
        == summary.submitted
    )
    # Degraded windows opened and closed around the crash cycles.
    assert 0.0 < summary.availability < 1.0

    payload = {
        "benchmark": "lock_chaos",
        "scenario": dict(SCENARIO),
        "completed": summary.completed,
        "violations": summary.violations,
        "crashes": summary.crashes,
        "failovers": summary.failovers,
        "retries": summary.retries,
        "orphaned": summary.orphaned,
        "aborted": summary.aborted,
        "duplicate_drops": summary.duplicate_drops,
        "availability": round(summary.availability, 4),
        "messages_per_acquire": round(summary.messages_per_acquire, 4),
        "mean_wait": round(summary.mean_wait, 4),
        "p99_wait": round(summary.p99_wait, 4),
    }
    path = archive_json("lock_chaos", payload)
    print(
        f"\nlock chaos: {summary.completed}/{summary.submitted} acquires "
        f"under {summary.crashes} crashes, {summary.failovers} failovers, "
        f"availability {100 * summary.availability:.2f}% -> {path.name}"
    )
