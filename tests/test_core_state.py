"""Unit tests for the algorithm's data structures (Section 3.1)."""

from __future__ import annotations

from repro.common import Priority
from repro.core.messages import Transfer
from repro.core.state import (
    ArbiterState,
    RequestQueue,
    RequesterState,
    TranStack,
)


def _t(beneficiary, arbiter, holder=Priority(1, 0)):
    return Transfer(beneficiary=beneficiary, arbiter=arbiter, holder=holder)


# -- RequestQueue ---------------------------------------------------------------


def test_queue_orders_by_priority():
    q = RequestQueue()
    q.push(Priority(3, 1))
    q.push(Priority(1, 2))
    q.push(Priority(2, 0))
    assert q.head() == Priority(1, 2)
    assert q.pop_head() == Priority(1, 2)
    assert q.pop_head() == Priority(2, 0)
    assert q.pop_head() == Priority(3, 1)
    assert not q


def test_queue_head_of_empty_is_none():
    assert RequestQueue().head() is None


def test_queue_remove_exact():
    q = RequestQueue()
    a, b = Priority(1, 1), Priority(2, 2)
    q.push(a)
    q.push(b)
    assert q.remove(a)
    assert not q.remove(a)  # second removal: absent
    assert list(q) == [b]


def test_queue_remove_site():
    q = RequestQueue()
    q.push(Priority(1, 7))
    q.push(Priority(2, 3))
    removed = q.remove_site(7)
    assert removed == Priority(1, 7)
    assert q.remove_site(7) is None
    assert len(q) == 1


def test_queue_contains_and_iter():
    q = RequestQueue()
    q.push(Priority(5, 5))
    assert Priority(5, 5) in q
    assert Priority(5, 6) not in q
    assert [p.site for p in q] == [5]


# -- TranStack ------------------------------------------------------------------


def test_stack_is_lifo():
    s = TranStack()
    s.push(_t(Priority(1, 1), arbiter=9))
    s.push(_t(Priority(2, 2), arbiter=8))
    assert s.pop().arbiter == 8
    assert s.pop().arbiter == 9


def test_stack_drop_arbiter():
    s = TranStack()
    s.push(_t(Priority(1, 1), arbiter=9))
    s.push(_t(Priority(2, 2), arbiter=8))
    s.push(_t(Priority(3, 3), arbiter=9))
    assert s.drop_arbiter(9) == 2
    assert len(s) == 1
    assert next(iter(s)).arbiter == 8


def test_stack_drop_beneficiary():
    s = TranStack()
    s.push(_t(Priority(1, 4), arbiter=9))
    s.push(_t(Priority(2, 5), arbiter=8))
    assert s.drop_beneficiary(4) == 1
    assert len(s) == 1


def test_stack_clear_and_repr():
    s = TranStack()
    s.push(_t(Priority(1, 1), arbiter=2))
    assert "TranStack" in repr(s)
    s.clear()
    assert not s


# -- Arbiter / Requester state ----------------------------------------------------


def test_arbiter_starts_free_with_empty_queue():
    a = ArbiterState()
    assert a.is_free
    assert len(a.req_queue) == 0
    a.lock = Priority(1, 0)
    assert not a.is_free


def test_requester_reset_for_new_request():
    r = RequesterState()
    r.failed = True
    r.inq_pending[3] = 1
    r.grant_epoch[2] = 5
    r.tran_stack.push(_t(Priority(9, 9), arbiter=1))
    r.reset_for(Priority(2, 0), quorum={0, 1, 2})
    assert r.priority == Priority(2, 0)
    assert r.replied == {0: False, 1: False, 2: False}
    assert not r.failed
    assert not r.inq_pending
    assert not r.grant_epoch
    assert not r.tran_stack
    assert not r.all_replied
    for k in r.replied:
        r.replied[k] = True
    assert r.all_replied


def test_all_replied_false_when_empty():
    assert not RequesterState().all_replied
