"""Tests for the experiment harness: each report runs (scaled down) and its
headline claims hold in-shape."""

from __future__ import annotations

import math

import pytest

from repro.experiments.ablation import naked_message_count, run_ablation
from repro.experiments.delay import run_delay
from repro.experiments.fault_tolerance import run_availability, run_recovery
from repro.experiments.heavy_load import run_heavy_load
from repro.experiments.light_load import run_light_load
from repro.experiments.load_sweep import run_load_sweep
from repro.experiments.quorum_scaling import run_quorum_scaling
from repro.experiments.report import ExperimentReport
from repro.experiments.table1 import run_table1
from repro.experiments.throughput import run_throughput


def as_dict(report, key_col=0):
    return {row[key_col]: row for row in report.rows}


def test_report_rendering_and_csv():
    report = ExperimentReport("EX", "title", ["a", "b"])
    report.add_row(1, 2.0)
    report.add_note("note")
    text = report.render()
    assert "[EX] title" in text and "note" in text
    assert report.to_csv().splitlines()[0] == "a,b"


def test_e1_table1_shape():
    report = run_table1(n_sites=9, requests_per_site=6)
    rows = {(r[0], r[1]): r for r in report.rows}
    lamport = rows[("lamport", "-")]
    proposed = rows[("cao-singhal", "grid")]
    maekawa = rows[("maekawa", "grid")]
    # Message complexity: Lamport 3(N-1)=24 at both loads.
    assert lamport[3] == pytest.approx(24.0, rel=0.02)
    # Delay: proposed ~1T, Maekawa ~2T.
    assert proposed[5] == pytest.approx(1.0, abs=0.25)
    assert maekawa[5] == pytest.approx(2.0, abs=0.25)
    # Message cost: proposed stays in the O(K) family, far below Lamport.
    assert proposed[4] < lamport[4]


def test_e2_light_load_matches_3k_minus_1():
    report = run_light_load(
        n_sites=9, quorums=("grid",), horizon=1500.0, rate=0.002, cs_duration=0.25
    )
    row = report.rows[0]
    measured, paper = row[2], row[3]
    assert measured == pytest.approx(paper, rel=0.05)
    resp, paper_resp = row[4], row[5]
    assert resp == pytest.approx(paper_resp, rel=0.05)


def test_e3_heavy_load_within_paper_band():
    report = run_heavy_load(n_sites=9, quorums=("grid",), requests_per_site=15)
    row = report.rows[0]
    measured, floor, ceiling = row[2], row[3], row[5]
    assert floor - 1e-6 <= measured <= ceiling + 1e-6


def test_e4_delay_separation():
    report = run_delay(sizes=(9,), requests_per_site=10)
    row = report.rows[0]
    proposed_mean, ablation_mean, maekawa_mean = row[1], row[2], row[3]
    assert proposed_mean == pytest.approx(1.0, abs=0.15)
    assert maekawa_mean == pytest.approx(2.0, abs=0.15)
    assert ablation_mean == pytest.approx(maekawa_mean, rel=0.05)


def test_e5_throughput_ratio():
    report = run_throughput(n_sites=9, requests_per_site=15, cs_duration=0.1)
    rows = as_dict(report)
    ratio = rows["cao-singhal"][1] / rows["maekawa"][1]
    assert ratio > 1.3  # paper: ~2 in the E<<T limit; shape must hold


def test_e6_quorum_scaling_monotone():
    report = run_quorum_scaling(sizes=(9, 25, 100))
    grid = [row[1] for row in report.rows]
    tree = [row[3] for row in report.rows]
    majority = [row[7] for row in report.rows]
    assert grid == sorted(grid)
    assert tree == sorted(tree)
    # Asymptotic ordering at N=100: log < sqrt-grid < majority.
    assert tree[-1] < grid[-1] < majority[-1]


def test_e7a_availability_ordering():
    report = run_availability(n_sites=9, constructions=("grid", "majority"), ps=(0.9,))
    rows = as_dict(report)
    # Majority voting dominates the grid at high p (Section 6 trade-off).
    assert rows["majority"][1] >= rows["grid"][1]


def test_e7b_recovery_liveness():
    report = run_recovery(n_sites=7, quorum="tree", requests_per_site=4)
    rows = {r[0]: r[1] for r in report.rows}
    assert rows["unserved at live sites"] == 0


def test_e8_load_sweep_runs_and_orders_messages():
    report = run_load_sweep(n_sites=16, rates=(0.002, 0.05), horizon=600.0)
    # At light load the O(K) advantage is clean: 3(K-1) << 2(N-1). Under
    # contention the proposed cost grows toward 5-6(K-1), so only N large
    # enough keeps it below Ricart-Agrawala — at N=16 both rows must hold.
    for row in report.rows:
        cs_msgs, ra_msgs = row[1], row[3]
        if not (math.isnan(cs_msgs) or math.isnan(ra_msgs)):
            assert cs_msgs < ra_msgs  # O(K) vs O(N) messages


def test_e9_ablation_claims():
    report = run_ablation(n_sites=9, requests_per_site=10)
    rows = as_dict(report)
    full = rows["full (transfer on)"]
    bare = rows["no transfer"]
    maekawa = rows["maekawa reference"]
    assert full[1] < bare[1]  # delay improves with transfers
    assert bare[1] == pytest.approx(maekawa[1], rel=0.05)
    assert full[3] >= full[2]  # naked counts >= piggybacked counts


def test_naked_message_count():
    assert naked_message_count({"request": 3, "inquire+transfer": 2}) == 7
    assert naked_message_count({}) == 0
