"""Real-network execution backend: the same sites on asyncio UDP sockets.

This package is the second implementation of the
:class:`~repro.substrate.Substrate` interface (the first is the
discrete-event :class:`~repro.sim.simulator.Simulator`): every protocol
site, the reliable-channel layer, and the whole trace/verification stack
run unchanged over real datagrams on localhost.

* :mod:`repro.net.wire` — JSON datagram codec sharing the trace layer's
  message schema;
* :mod:`repro.net.substrate` — :class:`NetSubstrate`, wall-clock timers
  and UDP endpoints behind the substrate interface;
* :mod:`repro.net.config` — :class:`NetRunConfig`, the JSON-serializable
  run description shared by launcher and site processes;
* :mod:`repro.net.launcher` — :func:`run_net`, the process-per-site (or
  in-process) orchestrator returning a verified :class:`NetRunReport`;
* :mod:`repro.net.merge` — per-site ``repro-trace/1`` shard merging into
  one monitor-replayable stream;
* :mod:`repro.net.site_proc` — the ``python -m repro.net.site_proc``
  entry point one OS process per site runs.
"""

from repro.net.config import NetRunConfig
from repro.net.launcher import NetRunError, NetRunReport, run_net
from repro.net.merge import merge_records, merge_shard_files
from repro.net.substrate import NetSubstrate

__all__ = [
    "NetRunConfig",
    "NetRunError",
    "NetRunReport",
    "NetSubstrate",
    "merge_records",
    "merge_shard_files",
    "run_net",
]
