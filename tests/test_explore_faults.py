"""Fault actions in the model checker's exploration alphabet.

The explorer quantifies over crash/recover and link cut/heal schedules
(the untimed projection of the chaos engine's vocabulary, bounded per
schedule by :class:`~repro.ft.chaos.FaultBudget`). These tests pin:

* the fault-tolerant protocol survives exhaustive fault interleaving on
  small configurations — every crash point, every recovery point, every
  detection ordering;
* the rejoin reconciliation round is load-bearing: reverting it
  (``NoRejoinSite``) lets the checker re-find the double-grant;
* budget plumbing — validation, the timed-plan projection, and the
  guard against crashing non-fault-tolerant sites.
"""

from __future__ import annotations

import pytest
from _explore_mutants import NoRejoinSite

import repro.verify.explore as ex
from repro.errors import ConfigurationError, MutualExclusionViolation
from repro.ft.chaos import FaultBudget, FaultPlan

#: Smallest interesting fault topology: two requesters arbitrated by a
#: third site. Crashing the arbiter mid-tenure is the hard case.
TINY = ([{2}, {2}, {2}], [1, 1, 0])


def test_crash_recover_cycle_explores_clean():
    """One full crash/detect/recover/readmit cycle, any interleaving.

    This is the schedule family that exposed the rejoin double-grant:
    with the reconciliation round in place the whole space must be
    explorable to completion with no violation.
    """
    quorums, requests = TINY
    result = ex.explore(
        quorums,
        requests,
        fault_budget=FaultBudget(crashes=1, recoveries=1),
        max_states=500_000,
    )
    assert result.complete
    # The fault alphabet multiplies the failure-free space many times
    # over; a suspiciously small count would mean the budget never fired.
    failure_free = ex.explore(quorums, requests, max_states=500_000)
    assert result.states_explored > 10 * failure_free.states_explored


def test_permanent_crash_explores_clean():
    """A crash with no recovery: cleanup must free every wedged arbiter."""
    quorums, requests = TINY
    result = ex.explore(
        quorums,
        requests,
        fault_budget=FaultBudget(crashes=1),
        max_states=500_000,
    )
    assert result.complete


def test_inaccessible_requester_releases_late_grants():
    """A crash that kills the only quorum must not wedge live arbiters.

    With the single shared quorum ``{1, 2}``, crashing either member
    leaves the surviving requesters inaccessible; a grant that still
    reaches one of them must bounce back (ghost-release) instead of
    being hoarded, or the terminal check reports residual arbiter state.
    """
    result = ex.explore(
        [{1, 2}, {1, 2}, {1, 2}],
        [1, 1, 0],
        fault_budget=FaultBudget(crashes=1),
        max_states=500_000,
    )
    assert result.complete


def test_link_cut_and_heal_explores_clean():
    """Cut/heal of a requester-to-arbiter channel at every point."""
    quorums, requests = TINY
    result = ex.explore(
        quorums,
        requests,
        fault_budget=FaultBudget(cuts=1, cut_links=((0, 2),)),
        max_states=500_000,
    )
    assert result.complete


def test_rejoin_round_is_load_bearing():
    """Reverting the rejoin reconciliation re-exposes the double-grant.

    A recovered arbiter that grants straight from its rebuilt free lock
    overlaps the pre-crash holder's CS residency; the checker must find
    the mutual-exclusion violation (historically an 8-action schedule:
    grant, crash, detect, recover, readmit, grant again).
    """
    quorums, requests = TINY
    site_cls = type(
        "ExploreNoRejoinSite", (ex._ExploreFTSite, NoRejoinSite), {}
    )
    with pytest.raises(ex.CounterexampleFound) as exc_info:
        ex.explore(
            quorums,
            requests,
            fault_budget=FaultBudget(crashes=1, recoveries=1),
            max_states=500_000,
            keep_paths=True,
            site_cls=site_cls,
        )
    assert isinstance(exc_info.value.cause, MutualExclusionViolation)
    # The schedule must actually exercise the crash/recovery machinery.
    kinds = {kind for kind, _ in exc_info.value.path}
    assert {"crash", "detect", "recover", "readmit"} <= kinds


def test_crash_budget_requires_fault_tolerant_sites():
    quorums, requests = TINY
    with pytest.raises(ConfigurationError):
        ex.explore(
            quorums,
            requests,
            fault_budget=FaultBudget(crashes=1),
            site_cls=ex._ExploreSite,
        )


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(crashes=-1),
        dict(crashes=1, recoveries=2),
        dict(cuts=1),  # no cut_links to draw from
        dict(cuts=1, cut_links=((2, 2),)),
        dict(cuts=1, cut_links=((3, 1),)),  # not normalized
    ],
)
def test_fault_budget_validation(kwargs):
    with pytest.raises(ConfigurationError):
        FaultBudget(**kwargs)


def test_fault_budget_from_timed_plan():
    """The untimed projection keeps crash counts and cut endpoints."""
    plan = (
        FaultPlan()
        .crash(2, crash_at=1.0, recover_at=5.0)
        .crash(1, crash_at=9.0)
        .link_cut(3, 0, start=2.0, end=4.0)
        .loss_burst(0.0, 1.0, 0.5)  # vanishes: delivery choice covers it
    )
    budget = FaultBudget.from_plan(plan)
    assert budget.crashes == 2
    assert budget.recoveries == 1
    assert budget.cuts == 1
    assert budget.cut_links == ((0, 3),)
    assert budget.crash_sites == (1, 2)
