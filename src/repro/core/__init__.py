"""The paper's primary contribution: delay-optimal quorum-based mutex.

:class:`~repro.core.site.CaoSinghalSite` implements the Section 3
algorithm (synchronization delay ``T``, message complexity ``c*K`` with
``3 <= c <= 6``); :class:`~repro.core.faults.FaultTolerantSite` adds the
Section 6 failure-handling protocol on top.
"""

from repro.core.messages import (
    Fail,
    FailureNotice,
    Inquire,
    Release,
    Reply,
    Request,
    Transfer,
    Yield,
)
from repro.core.site import CaoSinghalSite
from repro.core.state import ArbiterState, RequesterState, RequestQueue, TranStack

__all__ = [
    "ArbiterState",
    "CaoSinghalSite",
    "Fail",
    "FailureNotice",
    "Inquire",
    "Release",
    "Reply",
    "Request",
    "RequestQueue",
    "RequesterState",
    "TranStack",
    "Transfer",
    "Yield",
]
