"""Dynamic checks of the paper's three theorems.

* Theorem 1 (mutual exclusion): no two CS intervals overlap —
  :func:`check_mutual_exclusion` scans the recorded intervals.
* Theorem 2 (deadlock freedom): the simulation never goes quiet while
  requests are outstanding — :func:`check_progress`.
* Theorem 3 (starvation freedom): every request issued sufficiently before
  the end of the run is eventually served — also :func:`check_progress`
  via the ``horizon`` argument.

These checks run after (or during) every simulation in the test suite and
the experiment harness; a violation raises instead of silently producing
numbers from a broken run.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import DeadlockError, MutualExclusionViolation
from repro.metrics.collector import CSRecord


def check_mutual_exclusion(records: Sequence[CSRecord]) -> None:
    """Raise when two completed CS intervals overlap.

    Entry/exit at the same instant counts as a violation too: the paper's
    minimum synchronization delay is one message latency, which is
    strictly positive in our delay models.
    """
    done = sorted(
        (r for r in records if r.complete), key=lambda r: r.enter_time
    )
    for prev, nxt in zip(done, done[1:]):
        assert prev.exit_time is not None and nxt.enter_time is not None
        if nxt.enter_time < prev.exit_time:
            raise MutualExclusionViolation(
                f"site {nxt.site} entered at {nxt.enter_time:.6f} while "
                f"site {prev.site} held the CS until {prev.exit_time:.6f}"
            )


def check_progress(
    records: Sequence[CSRecord],
    horizon: Optional[float] = None,
    context: str = "",
) -> None:
    """Raise when issued requests were never served.

    With ``horizon`` set, only requests issued at or before it must have
    completed (requests issued near the end of a finite run legitimately
    remain in flight). With ``horizon=None`` every request must be done —
    the right check when the event queue drained naturally.
    """
    stuck = [
        r
        for r in records
        if not r.complete and (horizon is None or r.request_time <= horizon)
    ]
    if stuck:
        sites = sorted({r.site for r in stuck})
        raise DeadlockError(
            f"{len(stuck)} request(s) never served (sites {sites})"
            + (f" [{context}]" if context else "")
        )


def check_sequential_per_site(records: Sequence[CSRecord]) -> None:
    """Raise when one site's executions overlap (model: one at a time)."""
    by_site: dict = {}
    for r in records:
        if r.complete:
            by_site.setdefault(r.site, []).append(r)
    for site, rows in by_site.items():
        rows.sort(key=lambda r: r.enter_time)
        for prev, nxt in zip(rows, rows[1:]):
            if nxt.request_time < prev.exit_time:
                raise MutualExclusionViolation(
                    f"site {site} issued a request at {nxt.request_time:.6f} "
                    f"before exiting its previous CS at {prev.exit_time:.6f}"
                )
