"""The seven control messages of the delay-optimal algorithm (Section 3.1).

Every message is tagged with the :class:`~repro.mutex.messages.Priority`
(timestamp) of the request it concerns. The paper's protocol discards
stale control traffic ("if an inquire or fail ... arrives after S_j has
sent release ..., S_j just ignores it"); carrying the concerned request's
timestamp makes every staleness check a single equality comparison, which
is also how a production implementation over UDP/TCP would do it.
"""

from __future__ import annotations

from typing import Optional

from repro.common import Priority, slotted_dataclass

SiteId = int


@slotted_dataclass(frozen=True)
class Request:
    """``request(sn, i)``: ``S_i`` asks an arbiter's permission to enter CS."""

    priority: Priority

    type_name = "request"


@slotted_dataclass(frozen=True)
class Reply:
    """``reply(j)``: permission of arbiter ``S_j`` granted to a requester.

    ``forwarded_by`` is ``None`` for a direct grant; for a proxied grant it
    names the site that exited the CS and forwarded the permission on the
    arbiter's behalf (the paper's headline mechanism). ``grantee`` is the
    timestamp of the request being granted, so a late forwarded reply for a
    finished request is discarded instead of corrupting a newer one.

    ``epoch`` is the arbiter's **tenure number** for this grant — a
    reconstruction extension (see ``repro.core.site``): once replies can
    arrive through proxy channels, FIFO and request timestamps alone
    cannot distinguish two tenures of the *same* request at the same
    arbiter (grant → yield → re-grant), and tenure-tagged traffic is what
    keeps stale transfers/inquires of the earlier tenure from being
    honoured in the later one. The exhaustive interleaving explorer found
    the concrete violation (see DESIGN.md).
    """

    arbiter: SiteId
    grantee: Priority
    forwarded_by: Optional[SiteId] = None
    epoch: int = 0

    type_name = "reply"


@slotted_dataclass(frozen=True)
class Release:
    """``release(i, j)``: ``S_i`` exited the CS.

    ``transferred_to`` carries the request to which ``S_i`` forwarded this
    arbiter's permission (the paper's ``j`` parameter), or ``None`` for the
    paper's ``max`` — meaning the permission went back to the arbiter.
    ``releaser`` is the timestamp of the completed request, used by the
    arbiter to assert the release matches its current lock.
    """

    releaser: Priority
    transferred_to: Optional[Priority] = None
    #: Tenure under which the releaser held this arbiter's permission.
    epoch: int = 0

    type_name = "release"


@slotted_dataclass(frozen=True)
class Inquire:
    """``inquire(j)``: arbiter ``S_j`` asks its lock holder whether it has
    succeeded in collecting all replies (and will otherwise yield)."""

    arbiter: SiteId
    target: Priority
    #: Tenure being inquired; a holder ignores inquires for other tenures.
    epoch: int = 0

    type_name = "inquire"


@slotted_dataclass(frozen=True)
class Fail:
    """``fail(j)``: arbiter ``S_j`` cannot grant this request now because a
    higher-priority request holds or precedes it."""

    arbiter: SiteId
    target: Priority

    type_name = "fail"


@slotted_dataclass(frozen=True)
class Yield:
    """``yield(i)``: the lock holder returns the arbiter's permission so a
    higher-priority request can proceed."""

    yielder: Priority
    #: Tenure being yielded; the arbiter ignores yields for other tenures.
    epoch: int = 0

    type_name = "yield"


@slotted_dataclass(frozen=True)
class Transfer:
    """``transfer(k, j)``: arbiter ``S_j`` asks its lock holder to send a
    ``reply(j)`` to beneficiary ``S_k`` when it exits the CS.

    ``holder`` is the lock holder's request timestamp: a transfer that
    reaches a site after it released (or yielded) the arbiter is outdated
    and must be ignored (paper Section 3.2).
    """

    beneficiary: Priority
    arbiter: SiteId
    holder: Priority
    #: The holder's tenure this instruction belongs to; the holder only
    #: honours transfers of its *current* tenure (a transfer delayed
    #: across a yield/re-acquire cycle must die — see Reply.epoch).
    holder_epoch: int = 0

    type_name = "transfer"


@slotted_dataclass(frozen=True)
class FailureNotice:
    """``failure(i)``: broadcast when site ``failed_site`` is detected down
    (Section 6 recovery protocol)."""

    failed_site: SiteId

    type_name = "failure"


@slotted_dataclass(frozen=True)
class Probe:
    """Recovery reconciliation (fault-tolerance extension, not in paper).

    After a failure, an arbiter cannot know whether a permission handoff
    that was in flight through the dead site completed: the forwarded
    ``reply`` and the ``release`` travel on different channels, so a crash
    can deliver one and lose the other. The arbiter probes the possible
    holder(s): "does your request ``target`` hold my permission?". The
    probe/ack exchange is safe because it shares FIFO channels with the
    yield/release traffic it might race against (see
    :mod:`repro.core.faults`).
    """

    arbiter: SiteId
    target: Priority
    #: Tenure the arbiter expects the probed grant to carry.
    epoch: int = 0

    type_name = "probe"


@slotted_dataclass(frozen=True)
class ProbeAck:
    """Answer to a :class:`Probe`: whether the probed site's request
    ``target`` currently holds the arbiter's permission."""

    arbiter: SiteId
    target: Priority
    holds: bool

    type_name = "probe-ack"


@slotted_dataclass(frozen=True)
class RejoinProbe:
    """Rejoin reconciliation (fault-tolerance extension, not in paper).

    A crash-recovered site rebuilds its arbiter role from nothing — but
    its *pre-crash* permission may still be held by a live site (even
    one inside the CS, if recovery completes within a CS residency).
    Granting from the fresh free lock would then double-grant; the model
    checker (:mod:`repro.verify.explore`) finds the overlap in an
    8-action schedule. So before its first grant the recovered arbiter
    asks every live site "do you hold my permission?", and defers
    arriving requests to its queue until all answers are in.
    """

    arbiter: SiteId

    type_name = "rejoin-probe"


@slotted_dataclass(frozen=True)
class RejoinAck:
    """Answer to a :class:`RejoinProbe`.

    ``responder`` is the answering site; ``holder`` is its current
    request if it holds the recovered arbiter's permission, else
    ``None``; ``epoch`` is the tenure that grant carried, so the
    adopting arbiter can resume the pre-crash tenure numbering and its
    later inquires/transfers pass the holder's staleness checks.
    Race-free on the same FIFO-sharing argument as :class:`Probe`: any
    release or yield the holder sent before the ack reaches the arbiter
    first.
    """

    arbiter: SiteId
    responder: SiteId
    holder: Optional[Priority]
    epoch: int = 0

    type_name = "rejoin-ack"
