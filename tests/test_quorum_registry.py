"""Unit tests for the quorum-system registry."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.quorums.coterie import QuorumSystem
from repro.quorums.registry import (
    make_quorum_system,
    quorum_system_names,
    register_quorum_system,
)


def test_all_registered_names_construct_and_validate():
    for name in quorum_system_names():
        # Size-constrained constructions (projective planes) only exist
        # for special N; give each name a size it supports.
        n = 13 if name == "fpp" else 9
        qs = make_quorum_system(name, n)
        assert isinstance(qs, QuorumSystem)
        qs.validate()


def test_expected_names_present():
    names = quorum_system_names()
    for expected in ("grid", "tree", "hierarchical", "majority", "singleton",
                     "wheel", "grid-set", "rst", "fpp"):
        assert expected in names


def test_unknown_name_raises_with_suggestions():
    with pytest.raises(ConfigurationError) as err:
        make_quorum_system("nope", 9)
    assert "grid" in str(err.value)


def test_kwargs_forwarded():
    qs = make_quorum_system("singleton", 5, arbiter=3)
    assert qs.quorum_for(0) == {3}


def test_custom_registration_and_duplicate_rejection():
    class Custom(QuorumSystem):
        name = "custom-test"

        def quorum_for(self, site):
            return frozenset(range(self.n))

    register_quorum_system("custom-test", Custom)
    try:
        qs = make_quorum_system("custom-test", 4)
        assert qs.quorum_for(0) == {0, 1, 2, 3}
        with pytest.raises(ConfigurationError):
            register_quorum_system("custom-test", Custom)
    finally:
        # Keep the global registry clean for other tests.
        from repro.quorums import registry

        registry._REGISTRY.pop("custom-test", None)
