"""Parallel trial execution with a deterministic merge.

:class:`TrialPool` fans independent seeded trials — each one
``run_mutex(config)`` — out over a ``ProcessPoolExecutor`` and merges the
summaries back **in input order**, so the result of a parallel run is
byte-identical to a serial run of the same configs regardless of worker
count or completion order. Three consequences drive the design:

* **Determinism.** A trial is a pure function of its config (the
  simulator derives every RNG stream from the seed), so parallelism can
  only reorder completion, never change a summary. The pool indexes
  outcomes by input position and never exposes completion order.
* **Reproducible failures.** A trial that violates one of the paper's
  theorems raises inside its worker. The pool re-raises the *original*
  exception type (``MutualExclusionViolation``, ``DeadlockError``, …)
  in the parent with the offending trial's seed attached
  (``exc.trial_seed`` and appended to the message), choosing the first
  failure in input order so even the error is deterministic.
* **Graceful degradation.** ``workers=1`` (or a single pending trial)
  runs in-process with no pickling at all; configs that cannot be
  pickled (e.g. a lambda ``cs_duration``) fall back to threaded
  dispatch (no process boundary, no pickling) with a warning instead
  of crashing.

Dispatch is **chunked**: pending trials are grouped into runs of
``chunk_size`` and each chunk crosses the worker boundary as one unit,
so a sweep of hundreds of 10ms trials pays per-chunk (not per-trial)
pickling and scheduling overhead. The backend is selected by the
``dispatch`` argument / ``REPRO_DISPATCH`` environment variable:

``process``
    ``ProcessPoolExecutor`` — true parallelism, needs picklable configs.
``thread``
    ``ThreadPoolExecutor`` — GIL-bound (the sims are pure Python
    compute, so expect ~1x throughput), but zero pickling; useful for
    unpicklable configs and as an overhead floor on small hosts.
``auto`` (default)
    Processes when the host has >1 CPU and the configs pickle, threads
    when they don't, straight in-process when neither pool can help
    (one worker, one chunk, or a 1-CPU host).
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import replace
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.experiments.runner import RunConfig, run_mutex
from repro.metrics.summary import RunSummary
from repro.parallel.cache import RunCache

#: Environment override for the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment override for the dispatch backend.
DISPATCH_ENV = "REPRO_DISPATCH"

#: Valid dispatch backends.
_DISPATCH_MODES = ("auto", "process", "thread")

#: One trial's outcome, shaped for transport across the process boundary.
#: The payload is a RunSummary for mutex trials, an arbitrary picklable
#: result for configs that define their own ``run_trial``, or the trial's
#: exception.
_Outcome = Tuple[str, Union[RunSummary, object, BaseException]]


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit > ``$REPRO_WORKERS`` > cpu count."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if env is not None:
            try:
                workers = int(env)
            except ValueError:
                raise ConfigurationError(
                    f"{WORKERS_ENV} must be an integer, got {env!r}"
                )
        else:
            workers = os.cpu_count() or 1
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return workers


def resolve_dispatch(dispatch: Optional[str] = None) -> str:
    """Effective backend: explicit > ``$REPRO_DISPATCH`` > ``auto``."""
    if dispatch is None:
        dispatch = os.environ.get(DISPATCH_ENV) or "auto"
    if dispatch not in _DISPATCH_MODES:
        raise ConfigurationError(
            f"dispatch must be one of {_DISPATCH_MODES}, got {dispatch!r}"
        )
    return dispatch


def _auto_chunk(n_trials: int, workers: int) -> int:
    """Default chunk size: ~2 chunks per worker.

    Big enough to amortize per-chunk pickling/scheduling, small enough
    that a straggler chunk can't idle the other workers for long.
    """
    return max(1, -(-n_trials // (workers * 2)))


def _attach_seed(exc: BaseException, seed: int) -> BaseException:
    """Mark ``exc`` with the seed of the trial that raised it."""
    exc.trial_seed = seed  # type: ignore[attr-defined]
    if exc.args and isinstance(exc.args[0], str):
        if "[trial seed=" not in exc.args[0]:
            exc.args = (f"{exc.args[0]} [trial seed={seed}]",) + exc.args[1:]
    else:
        exc.args = (f"trial failed [trial seed={seed}]",) + tuple(exc.args)
    return exc


def _run_trial(config: RunConfig) -> _Outcome:
    """Execute one trial; never raises, so outcomes survive pool transport.

    Module-level (not a closure) so worker processes can import it.

    A config exposing its own ``run_trial()`` (e.g.
    :class:`repro.locks.runner.LockRunConfig`) is dispatched to it —
    the pool's determinism machinery (input-order merge, seed-attached
    failures, pickling fallback) is trial-kind agnostic; only this entry
    point and the cache key care what a trial actually runs.
    """
    try:
        runner = getattr(config, "run_trial", None)
        if runner is not None:
            return ("ok", runner())
        return ("ok", run_mutex(config).summary)
    except Exception as exc:  # re-raised, typed, by the merging parent
        return ("error", exc)


def _run_chunk(configs: Sequence[RunConfig]) -> List[_Outcome]:
    """Execute one chunk of trials serially inside a worker.

    Chunking moves the pickling/scheduling cost from per-trial to
    per-chunk; outcomes come back in chunk order, which the parent
    flattens back to input order.
    """
    return [_run_trial(config) for config in configs]


class TrialPool:
    """Runs batches of independent trials, optionally cached and parallel.

    ``workers`` defaults to ``os.cpu_count()`` (override with the
    ``REPRO_WORKERS`` environment variable); pass ``cache`` to reuse and
    record results across runs. ``chunk_size`` fixes how many trials
    cross the worker boundary per dispatch (default: computed so each
    worker gets ~2 chunks); ``dispatch`` picks the backend (``auto`` |
    ``process`` | ``thread``, default from ``$REPRO_DISPATCH``).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[RunCache] = None,
        chunk_size: Optional[int] = None,
        dispatch: Optional[str] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.cache = cache
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self.chunk_size = chunk_size
        self.dispatch = resolve_dispatch(dispatch)

    # -- execution ---------------------------------------------------------

    def run_configs(self, configs: Sequence[RunConfig]) -> List[RunSummary]:
        """Run every config; summaries come back in input order.

        The first failing trial (in input order) re-raises its original
        exception with the seed attached; successful sibling trials are
        still written to the cache first, and no entry is ever written
        for a failed trial.
        """
        configs = list(configs)
        results: List[Optional[RunSummary]] = [None] * len(configs)
        keys: List[Optional[str]] = [None] * len(configs)

        pending: List[Tuple[int, RunConfig]] = []
        for i, config in enumerate(configs):
            if self.cache is not None:
                keys[i] = self.cache.key_for(config)
                if keys[i] is not None:
                    hit = self.cache.load(keys[i])
                    if hit is not None:
                        results[i] = hit
                        continue
            pending.append((i, config))

        outcomes = self._execute(pending)

        failure: Optional[Tuple[int, BaseException]] = None
        for (i, config), (status, payload) in zip(pending, outcomes):
            if status == "ok":
                assert not isinstance(payload, BaseException)
                results[i] = payload
                if self.cache is not None and keys[i] is not None:
                    self.cache.store(keys[i], payload)
            else:
                assert isinstance(payload, BaseException)
                if failure is None or i < failure[0]:
                    failure = (i, _attach_seed(payload, config.seed))
        if failure is not None:
            raise failure[1]
        return [s for s in results if s is not None]

    def run_seeds(
        self, config: RunConfig, seeds: Sequence[int]
    ) -> List[RunSummary]:
        """Run ``config`` once per seed; summaries come back in seed order."""
        return self.run_configs([replace(config, seed=s) for s in seeds])

    # -- internals ---------------------------------------------------------

    def _execute(
        self, pending: Sequence[Tuple[int, RunConfig]]
    ) -> List[_Outcome]:
        if not pending:
            return []
        configs = [config for _, config in pending]
        n_trials = len(configs)
        workers = min(self.workers, n_trials)
        chunk = self.chunk_size or _auto_chunk(n_trials, workers)

        mode = self.dispatch
        if mode != "thread" and workers > 1 and not self._picklable(pending):
            # Threads share the parent's heap: no pickling, so the only
            # usable pool for an unpicklable config.
            mode = "thread"
        if mode != "thread" and workers > 1 and (os.cpu_count() or 1) < 2:
            # Degenerate host: with one CPU a process pool can only add
            # fork, pickle, and scheduling overhead (measured ~0.98x
            # speedup), so even an explicit workers>1 degrades.
            workers = 1
        if workers <= 1 or chunk >= n_trials:
            # One worker — or one chunk, which a pool would hand to a
            # single worker anyway: run here and skip the pool entirely.
            return _run_chunk(configs)

        chunks = [configs[i : i + chunk] for i in range(0, n_trials, chunk)]
        executor = (
            ThreadPoolExecutor if mode == "thread" else ProcessPoolExecutor
        )
        with executor(max_workers=workers) as pool:
            parts = list(pool.map(_run_chunk, chunks))
        return [outcome for part in parts for outcome in part]

    @staticmethod
    def _picklable(pending: Sequence[Tuple[int, RunConfig]]) -> bool:
        try:
            pickle.dumps([c for _, c in pending])
            return True
        except Exception:
            warnings.warn(
                "trial config is not picklable (callable cs_duration or "
                "workload?); using threaded dispatch instead of a "
                "process pool",
                RuntimeWarning,
                stacklevel=3,
            )
            return False


def run_trials(
    config: RunConfig,
    seeds: Sequence[int],
    workers: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> List[RunSummary]:
    """One-shot convenience: ``TrialPool(...).run_seeds(config, seeds)``."""
    return TrialPool(workers=workers, cache=cache).run_seeds(config, seeds)
