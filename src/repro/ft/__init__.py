"""Fault tolerance: failure detection, the Section 6 recovery protocol,
and the deterministic chaos engine."""

from repro.ft.chaos import (
    ChaosSchedule,
    CrashCycle,
    DelaySpike,
    FaultPlan,
    LinkCut,
    LossBurst,
    chaos_preset,
)
from repro.ft.detector import Heartbeat, HeartbeatMonitor
from repro.ft.recovery import ChurnPlan, CrashPlan, MonitoredSite

__all__ = [
    "ChaosSchedule",
    "ChurnPlan",
    "CrashCycle",
    "CrashPlan",
    "DelaySpike",
    "FaultPlan",
    "Heartbeat",
    "HeartbeatMonitor",
    "LinkCut",
    "LossBurst",
    "MonitoredSite",
    "chaos_preset",
]
