"""E5 — throughput doubled / waiting time halved at heavy load."""

from __future__ import annotations

from repro.experiments.throughput import run_throughput


def test_bench_throughput(run_experiment):
    report = run_experiment(
        run_throughput,
        n_sites=25,
        requests_per_site=25,
        cs_duration=0.1,
    )
    rows = {row[0]: row for row in report.rows}
    proposed, maekawa = rows["cao-singhal"], rows["maekawa"]
    ideal = (2.0 + 0.1) / (1.0 + 0.1)  # (2T+E)/(T+E)
    ratio = proposed[1] / maekawa[1]
    # Who wins and by roughly what factor: within 25% of the ideal ratio.
    assert ratio > 1.0
    assert abs(ratio - ideal) / ideal < 0.25
    # Waiting time nearly halved.
    assert maekawa[2] / proposed[2] > 1.4
