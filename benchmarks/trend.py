"""Perf-trend helpers for the CI bench matrix.

Two subcommands, both operating on the ``BENCH_*.json`` artifacts the
benchmark suite archives under ``benchmarks/results/``:

``append``
    Extract every throughput metric (any ``events_per_sec`` /
    ``states_per_sec`` key, at any nesting depth) from one result file
    and append a single JSONL record — bench name, commit, timestamp,
    metrics — to a history file. CI uploads the file as the
    ``bench-history`` artifact, so each workflow run contributes one
    downloadable line per bench and a plot is one ``jq`` away.

``gate``
    Compare the same throughput metrics between a freshly regenerated
    result and the committed baseline, failing (exit 1) when any metric
    dropped by more than ``--threshold-pct``. This is deliberately
    one-sided: getting faster never fails, and non-throughput fields
    (timings, counts) are the ``repro.cli regress`` gate's job.

Usage (from the repo root)::

    python benchmarks/trend.py append --bench kernel \
        --result benchmarks/results/BENCH_sim_kernel.json \
        --out bench-history.jsonl --sha "$GITHUB_SHA"
    python benchmarks/trend.py gate \
        --result benchmarks/results/BENCH_sim_kernel.json \
        --baseline /tmp/bench-baseline/BENCH_sim_kernel.json \
        --threshold-pct 25
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict

#: JSON keys treated as throughput metrics (higher is better).
THROUGHPUT_KEYS = ("events_per_sec", "states_per_sec")


def extract_throughput(payload: object, prefix: str = "") -> Dict[str, float]:
    """Collect every throughput metric in ``payload``, keyed by JSON path.

    Nested dicts contribute dotted paths (``throughput.states_per_sec``),
    so one result file can carry several independent throughput numbers.
    """
    out: Dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else key
            if key in THROUGHPUT_KEYS and isinstance(value, (int, float)):
                out[path] = float(value)
            else:
                out.update(extract_throughput(value, path))
    return out


def cmd_append(args: argparse.Namespace) -> int:
    payload = json.loads(pathlib.Path(args.result).read_text())
    record = {
        "bench": args.bench,
        "sha": args.sha or None,
        "timestamp": int(time.time()),
        "metrics": extract_throughput(payload),
    }
    out = pathlib.Path(args.out)
    with out.open("a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"appended {args.bench} trend record to {out}: {record['metrics']}")
    return 0


def cmd_gate(args: argparse.Namespace) -> int:
    fresh = extract_throughput(json.loads(pathlib.Path(args.result).read_text()))
    base = extract_throughput(
        json.loads(pathlib.Path(args.baseline).read_text())
    )
    floor = 1.0 - args.threshold_pct / 100.0
    failures = []
    for path, committed in sorted(base.items()):
        measured = fresh.get(path)
        if measured is None:
            failures.append(f"{path}: missing from fresh result")
            continue
        ratio = measured / committed if committed else float("inf")
        verdict = "ok" if ratio >= floor else "REGRESSION"
        print(
            f"{path}: {measured:,.0f} vs committed {committed:,.0f} "
            f"({ratio:.2f}x, floor {floor:.2f}x) {verdict}"
        )
        if ratio < floor:
            failures.append(
                f"{path}: {measured:,.0f} is {1 - ratio:.0%} below the "
                f"committed {committed:,.0f} (allowed {args.threshold_pct}%)"
            )
    if failures:
        print("throughput regression gate FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("throughput regression gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    append_p = sub.add_parser("append", help="append a trend record")
    append_p.add_argument("--bench", required=True)
    append_p.add_argument("--result", required=True)
    append_p.add_argument("--out", default="bench-history.jsonl")
    append_p.add_argument("--sha", default="")
    append_p.set_defaults(fn=cmd_append)

    gate_p = sub.add_parser("gate", help="fail on throughput regression")
    gate_p.add_argument("--result", required=True)
    gate_p.add_argument("--baseline", required=True)
    gate_p.add_argument("--threshold-pct", type=float, default=25.0)
    gate_p.set_defaults(fn=cmd_gate)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
