"""Mutual-exclusion algorithms: the paper's baselines plus shared machinery.

The proposed algorithm itself lives in :mod:`repro.core`; this package
holds the shared site lifecycle (:class:`~repro.mutex.base.MutexSite`), the
message primitives (including the piggybacking :class:`Bundle` and the
Lamport :class:`Priority`), and an independent implementation of every
algorithm in the paper's Table 1 comparison.
"""

from repro.mutex.base import DurationSpec, MutexSite, RunListener, SiteState
from repro.mutex.centralized import CentralizedSite
from repro.mutex.lamport import LamportSite
from repro.mutex.maekawa import MaekawaSite
from repro.mutex.messages import Bundle, Priority, bundle_or_single
from repro.mutex.raymond import RaymondSite
from repro.mutex.registry import (
    AlgorithmSpec,
    algorithm_names,
    get_algorithm_spec,
    make_site,
)
from repro.mutex.ricart_agrawala import RicartAgrawalaSite
from repro.mutex.roucairol_carvalho import RoucairolCarvalhoSite
from repro.mutex.singhal_heuristic import SinghalHeuristicSite
from repro.mutex.suzuki_kasami import SuzukiKasamiSite

__all__ = [
    "AlgorithmSpec",
    "Bundle",
    "CentralizedSite",
    "DurationSpec",
    "LamportSite",
    "MaekawaSite",
    "MutexSite",
    "Priority",
    "RaymondSite",
    "RicartAgrawalaSite",
    "RoucairolCarvalhoSite",
    "RunListener",
    "SinghalHeuristicSite",
    "SiteState",
    "SuzukiKasamiSite",
    "algorithm_names",
    "bundle_or_single",
    "get_algorithm_spec",
    "make_site",
]
