"""Differential soundness of the sleep-set partial-order reduction.

Sleep sets prune redundant *transitions*, never *states*: the reduced
search must visit exactly the states the unreduced search visits and
reach exactly the same verdicts. These tests pin that equivalence —
state counts, terminal-state fingerprint sets, and completion — across
a grid of small configurations and across Hypothesis-generated random
coteries, while asserting the reduction actually reduces (fewer
transitions executed) where concurrency exists.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.verify.explore import explore

#: Small configurations whose full state space is cheap in both modes:
#: (quorums, requests_per_site). Shapes cover a lone site, shared single
#: arbiters, mutual arbitration (inquire/yield), no-transfer mode, and
#: the two-arbiter forwarding topology the historical bugs live in.
GRID = [
    ([{0}], [2], True),
    ([{2}, {2}, {2}], [1, 1, 0], True),
    ([{2}, {2}, {2}], [2, 1, 0], True),
    ([{3}, {3}, {3}, {3}], [1, 1, 1, 0], True),
    ([{0, 1}, {0, 1}], [1, 1], True),
    ([{0, 1}, {0, 1}], [1, 1], False),
    ([{2, 3}, {2, 3}, {2}, {3}], [1, 1, 0, 0], True),
]


def _both_modes(quorums, requests, enable_transfer):
    reduced = explore(
        quorums,
        requests,
        enable_transfer,
        max_states=1_000_000,
        dpor=True,
        collect_terminals=True,
    )
    unreduced = explore(
        quorums,
        requests,
        enable_transfer,
        max_states=1_000_000,
        dpor=False,
        collect_terminals=True,
    )
    return reduced, unreduced


@pytest.mark.parametrize("quorums,requests,transfer", GRID)
def test_dpor_visits_the_same_state_space(quorums, requests, transfer):
    reduced, unreduced = _both_modes(quorums, requests, transfer)
    assert reduced.complete and unreduced.complete
    assert reduced.states_explored == unreduced.states_explored
    assert reduced.terminal_states == unreduced.terminal_states
    assert (
        reduced.terminal_fingerprints == unreduced.terminal_fingerprints
    )
    # Pruned transitions are why DPOR exists; it must never add any.
    assert reduced.transitions <= unreduced.transitions


def test_dpor_actually_reduces_transitions():
    """On a genuinely concurrent topology the sleep sets must fire."""
    reduced, unreduced = _both_modes(
        [{2, 3}, {2, 3}, {2}, {3}], [1, 1, 0, 0], True
    )
    assert reduced.sleep_pruned > 0
    assert reduced.transitions < unreduced.transitions


@st.composite
def coterie_configs(draw):
    """Random pairwise-intersecting quorums with a small request load.

    Every quorum contains a common pivot site, which guarantees the
    intersection property (the degenerate-but-legal "centralized"
    coterie family); the rest of each quorum is an arbitrary subset.
    Request vectors are kept small so the full state space stays
    explorable in both modes within the test budget.
    """
    n = draw(st.integers(min_value=2, max_value=4))
    pivot = draw(st.integers(min_value=0, max_value=n - 1))
    quorums = []
    for site in range(n):
        extra = draw(
            st.sets(
                st.integers(min_value=0, max_value=n - 1), max_size=n - 1
            )
        )
        quorums.append(extra | {pivot})
    requesters = draw(
        st.lists(
            st.integers(min_value=0, max_value=1), min_size=n, max_size=n
        ).filter(lambda reqs: 1 <= sum(reqs) <= 2)
    )
    enable_transfer = draw(st.booleans())
    return quorums, requesters, enable_transfer


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(coterie_configs())
def test_dpor_differential_on_random_coteries(config):
    quorums, requests, enable_transfer = config
    reduced, unreduced = _both_modes(quorums, requests, enable_transfer)
    assert reduced.complete and unreduced.complete
    assert reduced.states_explored == unreduced.states_explored
    assert (
        reduced.terminal_fingerprints == unreduced.terminal_fingerprints
    )
    assert reduced.transitions <= unreduced.transitions
