"""Property tests over the quorum constructions.

The central safety property of the whole paper: every construction's
per-site quorums pairwise intersect — for any system size, and (for the
fault-tolerant constructions) under any failure knowledge any two sites
might independently hold.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.quorums.registry import make_quorum_system, quorum_system_names

NAMES = quorum_system_names()


def build_or_assume(name, n):
    """Construct, or tell hypothesis the (name, n) combination is invalid
    (size-constrained constructions such as projective planes)."""
    try:
        return make_quorum_system(name, n)
    except ConfigurationError:
        assume(False)


@given(
    name=st.sampled_from(NAMES),
    n=st.integers(min_value=2, max_value=40),
)
@settings(max_examples=120, deadline=None)
def test_per_site_quorums_pairwise_intersect(name, n):
    system = build_or_assume(name, n)
    quorums = [system.quorum_for(s) for s in system.sites]
    for i, g in enumerate(quorums):
        assert g, f"{name}: empty quorum for site {i}"
        for h in quorums[i + 1 :]:
            assert g & h, f"{name} n={n}: disjoint quorums"


@given(
    name=st.sampled_from(NAMES),
    n=st.integers(min_value=3, max_value=16),
    data=st.data(),
)
@settings(max_examples=120, deadline=None)
def test_failure_avoiding_quorums_cross_intersect(name, n, data):
    """Quorums computed under different failure views still intersect.

    This is the property that keeps mutual exclusion safe *during*
    recovery (Section 6): two sites may briefly disagree about which
    sites are dead, yet their quorums must still share an arbiter.
    """
    system = build_or_assume(name, n)
    sites = list(system.sites)
    failed_a = frozenset(
        data.draw(st.sets(st.sampled_from(sites), max_size=max(1, n // 3)))
    )
    failed_b = frozenset(
        data.draw(st.sets(st.sampled_from(sites), max_size=max(1, n // 3)))
    )
    site_a = data.draw(st.sampled_from(sites))
    site_b = data.draw(st.sampled_from(sites))
    qa = system.quorum_avoiding(site_a, failed_a)
    qb = system.quorum_avoiding(site_b, failed_b)
    if qa is not None:
        assert not (qa & failed_a)
    if qb is not None:
        assert not (qb & failed_b)
    if qa is not None and qb is not None:
        assert qa & qb, (
            f"{name} n={n}: quorums under views {sorted(failed_a)} / "
            f"{sorted(failed_b)} are disjoint"
        )


@given(
    name=st.sampled_from(NAMES),
    n=st.integers(min_value=2, max_value=30),
)
@settings(max_examples=60, deadline=None)
def test_mean_quorum_size_bounded(name, n):
    system = build_or_assume(name, n)
    k = system.mean_quorum_size()
    assert 1 <= k <= n
    assert system.max_quorum_size() <= n
