"""Differential equivalence: the kernel still replays the pinned goldens.

``tests/data/golden_kernel_fingerprints.json`` holds run fingerprints
(summary digest, per-record trace digest, event/message counts, final
clock) captured from the kernel *before* the hot-path refactor, for
3 algorithms x 3 seeds. This test re-runs each configuration on the
current kernel and asserts every field matches byte-for-byte — the
strongest practical proof that an optimisation changed the kernel's
speed and nothing else.

If this test fails after an intentional behaviour change, regenerate the
goldens with ``python -m repro.verify.fingerprint`` and call the change
out in the commit message; never regenerate to make a refactor pass.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib

import pytest

from repro.core.messages import pool
from repro.experiments.runner import run_mutex
from repro.verify.fingerprint import (
    GOLDEN_ALGORITHMS,
    GOLDEN_SEEDS,
    fingerprint_run,
    golden_config,
)

GOLDEN_PATH = (
    pathlib.Path(__file__).parent / "data" / "golden_kernel_fingerprints.json"
)

GRID = [
    (algorithm, seed)
    for algorithm in GOLDEN_ALGORITHMS
    for seed in GOLDEN_SEEDS
]


@pytest.fixture(scope="module")
def goldens():
    return json.loads(GOLDEN_PATH.read_text())


def test_golden_file_covers_the_whole_grid(goldens):
    assert sorted(goldens) == sorted(f"{a}/{s}" for a, s in GRID)


@pytest.mark.parametrize("algorithm,seed", GRID)
def test_kernel_replays_golden_fingerprint(goldens, algorithm, seed):
    key = f"{algorithm}/{seed}"
    expected = goldens[key]
    actual = fingerprint_run(golden_config(algorithm, seed))
    # Compare field-by-field so a failure names what diverged (counts
    # catch gross drift; the trace digest catches single-event drift).
    for field in expected:
        assert actual[field] == expected[field], (
            f"{key}: kernel diverged from golden on {field!r}"
        )


def _step_loop(sim, until=None, max_events=None):
    """One-event-at-a-time reference loop (no cohort batching)."""
    while sim.step():
        pass


@pytest.mark.parametrize("algorithm,seed", GRID)
def test_per_event_loop_replays_golden_fingerprint(goldens, algorithm, seed):
    # The cohort loop's contract: batching whole same-timestamp cohorts
    # replays exactly the per-event (time, seq) history. Driving the
    # golden grid through single-step execution must reproduce the very
    # same pinned digests the cohort loop does.
    key = f"{algorithm}/{seed}"
    expected = goldens[key]
    actual = fingerprint_run(golden_config(algorithm, seed), loop=_step_loop)
    for field in expected:
        assert actual[field] == expected[field], (
            f"{key}: per-event loop diverged from golden on {field!r}"
        )


def _summary_digest(config) -> str:
    result = run_mutex(config)
    payload = json.dumps(result.summary.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
def test_pooled_messages_replay_identical_summaries(monkeypatch, seed):
    # Message pooling recycles consumed control messages; armed runs must
    # produce byte-identical summaries. (The goldens themselves run with
    # trace=True, which is one of the conditions that keeps the pool
    # disarmed — so this test compares trace-free runs directly.)
    config = dataclasses.replace(golden_config("cao-singhal", seed), trace=False)
    monkeypatch.delenv("REPRO_MSG_POOL", raising=False)
    plain = _summary_digest(config)

    monkeypatch.setenv("REPRO_MSG_POOL", "1")
    reused_before = pool.reused
    pooled = _summary_digest(config)
    assert not pool.enabled  # run_mutex disarmed it on the way out
    assert pool.reused > reused_before  # the pool actually engaged
    assert pooled == plain
