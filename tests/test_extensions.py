"""Tests for the extension modules: new delay models, per-destination
load accounting, E10, and multi-seed replication."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.experiments.load_balance import run_load_balance
from repro.experiments.replicate import Replication, replicate, sync_delay_ci
from repro.experiments.runner import RunConfig, run_mutex
from repro.sim.network import LogNormalDelay, ParetoDelay, UniformDelay
from repro.workload.driver import SaturationWorkload


# -- new delay models ---------------------------------------------------------


def test_lognormal_mean_and_positivity():
    model = LogNormalDelay(mean=2.0, sigma=0.5)
    rng = random.Random(0)
    samples = [model.sample(rng, 0, 1) for _ in range(20000)]
    assert all(s > 0 for s in samples)
    assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.05)
    assert model.mean == 2.0


def test_pareto_mean_and_heavy_tail():
    model = ParetoDelay(mean=1.0, alpha=3.0)
    rng = random.Random(1)
    samples = [model.sample(rng, 0, 1) for _ in range(40000)]
    assert all(s > 0 for s in samples)
    assert sum(samples) / len(samples) == pytest.approx(1.0, rel=0.07)
    # Heavy tail: some samples far beyond the mean.
    assert max(samples) > 5.0


def test_delay_model_validation():
    with pytest.raises(ConfigurationError):
        LogNormalDelay(mean=0)
    with pytest.raises(ConfigurationError):
        LogNormalDelay(mean=1.0, sigma=0)
    with pytest.raises(ConfigurationError):
        ParetoDelay(mean=1.0, alpha=1.0)  # infinite mean


@pytest.mark.parametrize(
    "model",
    [LogNormalDelay(1.0, 0.6), ParetoDelay(1.0, 2.2)],
    ids=["lognormal", "pareto"],
)
def test_core_algorithm_survives_heavy_tailed_networks(model):
    summary = run_mutex(
        RunConfig(
            algorithm="cao-singhal",
            n_sites=8,
            quorum="grid",
            seed=5,
            delay_model=model,
            cs_duration=0.1,
            workload=SaturationWorkload(6),
        )
    ).summary
    assert summary.unserved == 0


# -- per-destination accounting ---------------------------------------------------


def test_by_destination_counts_sum_to_sent():
    result = run_mutex(
        RunConfig(
            algorithm="cao-singhal",
            n_sites=9,
            quorum="grid",
            seed=0,
            workload=SaturationWorkload(4),
        )
    )
    stats = result.sim.network.stats
    assert sum(stats.by_destination.values()) == stats.messages_sent


def test_e10_hotspot_ordering():
    report = run_load_balance(
        n_sites=15,
        constructions=("grid", "tree", "wheel"),
        requests_per_site=5,
    )
    rows = {row[0]: row for row in report.rows}
    # Balanced grid < root-funnelled tree < hub-funnelled wheel.
    assert rows["grid"][4] < rows["tree"][4] < rows["wheel"][4]
    # Tree hotspot is the root; wheel hotspot is the hub.
    assert rows["tree"][5] == 0
    assert rows["wheel"][5] == 0


# -- multi-seed replication -------------------------------------------------------


def test_replication_statistics():
    r = Replication(metric="x", samples=[1.0, 2.0, 3.0])
    assert r.mean == 2.0
    assert r.stdev == pytest.approx(1.0)
    assert r.ci95 == pytest.approx(1.96 / 3**0.5)
    assert "x:" in str(r)


def test_replicate_runs_across_seeds():
    config = RunConfig(
        algorithm="cao-singhal",
        n_sites=6,
        quorum="grid",
        delay_model=UniformDelay(0.5, 1.5),
        cs_duration=0.5,
        workload=SaturationWorkload(5),
    )
    rep = replicate(
        config,
        metric=lambda s: s.sync_delay_in_t,
        seeds=range(5),
        metric_name="sync",
    )
    assert rep.n == 5
    assert len(set(rep.samples)) > 1  # seeds actually vary the runs
    assert 0.5 < rep.mean < 2.0


def test_sync_delay_ci_separates_algorithms():
    kwargs = dict(
        n_sites=9,
        seeds=range(5),
        delay_model=UniformDelay(0.5, 1.5),
        cs_duration=1.0,
        workload=SaturationWorkload(8),
    )
    proposed = sync_delay_ci("cao-singhal", **kwargs)
    maekawa = sync_delay_ci("maekawa", **kwargs)
    # The CIs must not overlap: the T vs 2T gap dominates seed noise.
    assert proposed.mean + proposed.ci95 < maekawa.mean - maekawa.ci95


def test_replicate_requires_seeds():
    with pytest.raises(ConfigurationError):
        replicate(RunConfig(), metric=lambda s: 0.0, seeds=[])
