"""Tests for the Section 6 failure-handling protocol."""

from __future__ import annotations

import pytest

from repro.common import Priority
from repro.core.faults import FaultTolerantSite
from repro.core.messages import Release, Reply, Request
from repro.ft.recovery import CrashPlan
from repro.metrics.collector import MetricsCollector
from repro.quorums.majority import MajorityQuorumSystem
from repro.quorums.tree import TreeQuorumSystem
from repro.sim.network import ConstantDelay
from repro.sim.simulator import Simulator
from repro.verify.invariants import check_mutual_exclusion


def build_ft(quorum_system, cs_duration=0.2, seed=0):
    sim = Simulator(seed=seed, delay_model=ConstantDelay(1.0), trace=True)
    collector = MetricsCollector()
    sites = [
        FaultTolerantSite(i, quorum_system, cs_duration=cs_duration, listener=collector)
        for i in range(quorum_system.n)
    ]
    for s in sites:
        sim.add_node(s)
    sim.start()
    return sim, sites, collector


# -- arbiter-side cleanup (paper cases 1-3) -------------------------------------


def test_case3_dead_lock_holder_triggers_probe_round():
    """Case 3 must reconcile before re-granting: the dead holder may have
    already forwarded the permission (see the module docstring of
    repro.core.faults)."""
    from repro.core.messages import ProbeAck

    qs = MajorityQuorumSystem(5)
    sim, sites, _ = build_ft(qs)
    arbiter = sites[0]
    dead, waiter = Priority(1, 1), Priority(2, 2)
    arbiter._handle_request(Request(dead))
    arbiter._handle_request(Request(waiter))
    assert arbiter.arbiter.lock == dead
    arbiter.notify_failure(1)
    # The live waiter is probed, not yet granted.
    assert arbiter._probe_pending == {waiter}
    assert arbiter.arbiter.lock == dead
    # "No, I don't hold it" -> grant the waiter normally.
    arbiter._handle_probe_ack(
        2, ProbeAck(arbiter=0, target=waiter, holds=False)
    )
    assert arbiter.arbiter.lock == waiter
    assert len(arbiter.arbiter.req_queue) == 0


def test_case3_probe_yes_adopts_forwarded_holder():
    """A waiter that already received the dead proxy's forwarded reply is
    adopted as lock holder instead of being double-granted."""
    from repro.core.messages import ProbeAck

    qs = MajorityQuorumSystem(5)
    sim, sites, _ = build_ft(qs)
    arbiter = sites[0]
    dead, holder = Priority(1, 1), Priority(2, 2)
    arbiter._handle_request(Request(dead))
    arbiter._handle_request(Request(holder))
    arbiter.notify_failure(1)
    sent_before = sim.network.stats.by_type.get("reply", 0)
    arbiter._handle_probe_ack(
        2, ProbeAck(arbiter=0, target=holder, holds=True)
    )
    assert arbiter.arbiter.lock == holder
    assert len(arbiter.arbiter.req_queue) == 0
    # No fresh reply was issued: the forwarded one is the grant.
    assert sim.network.stats.by_type.get("reply", 0) == sent_before


def test_holder_probe_reissues_lost_grant():
    """Failure of a third site triggers holder reconciliation; a 'no'
    answer re-issues the grant that died with the proxy."""
    from repro.core.messages import ProbeAck

    qs = MajorityQuorumSystem(5)
    sim, sites, _ = build_ft(qs)
    arbiter = sites[0]
    holder = Priority(1, 1)
    arbiter._handle_request(Request(holder))
    arbiter.notify_failure(4)  # unrelated failure: reconcile with holder
    assert sim.network.stats.by_type.get("probe", 0) == 1
    before = sim.network.stats.by_type.get("reply", 0)
    arbiter._handle_probe_ack(1, ProbeAck(arbiter=0, target=holder, holds=False))
    assert sim.network.stats.by_type.get("reply", 0) == before + 1
    assert arbiter.arbiter.lock == holder  # lock unchanged, grant re-issued
    # A stale 'no' after the lock moved must be ignored.
    arbiter._handle_probe_ack(
        1, ProbeAck(arbiter=0, target=Priority(9, 9), holds=False)
    )
    assert sim.network.stats.by_type.get("reply", 0) == before + 1


def test_case3_dead_holder_empty_queue_frees_lock():
    qs = MajorityQuorumSystem(5)
    sim, sites, _ = build_ft(qs)
    arbiter = sites[0]
    arbiter._handle_request(Request(Priority(1, 1)))
    arbiter.notify_failure(1)
    assert arbiter.arbiter.is_free


def test_case1_dead_queued_request_removed():
    qs = MajorityQuorumSystem(5)
    sim, sites, _ = build_ft(qs)
    arbiter = sites[0]
    holder, dead, tail = Priority(1, 1), Priority(2, 2), Priority(3, 3)
    arbiter._handle_request(Request(holder))
    arbiter._handle_request(Request(dead))
    arbiter._handle_request(Request(tail))
    arbiter.notify_failure(2)
    assert list(arbiter.arbiter.req_queue) == [tail]
    assert arbiter.arbiter.lock == holder


def test_case2_transfers_to_dead_site_dropped():
    qs = MajorityQuorumSystem(5)
    sim, sites, _ = build_ft(qs, cs_duration=10.0)  # stay in CS while we test
    site = sites[0]
    site.submit_request()
    sim.run(until=3.0)  # collect replies
    from repro.core.messages import Transfer

    arbiter_id = min(site.quorum)
    site._record_transfer(
        Transfer(
            beneficiary=Priority(5, 2),
            arbiter=arbiter_id,
            holder=site.req.priority,
            holder_epoch=site.req.grant_epoch[arbiter_id],
        )
    )
    before = len(site.req.tran_stack)
    site.notify_failure(2)
    assert len(site.req.tran_stack) == before - 1


def test_release_forwarded_to_dead_site_degrades_to_plain_release():
    qs = MajorityQuorumSystem(5)
    sim, sites, _ = build_ft(qs)
    arbiter = sites[0]
    holder, dead = Priority(1, 1), Priority(2, 2)
    arbiter._handle_request(Request(holder))
    arbiter._handle_request(Request(dead))
    arbiter.notify_failure(2)  # purge the dead waiter
    # The holder, unaware, forwarded its reply to the dead site.
    arbiter._handle_release(1, Release(releaser=holder, transferred_to=dead))
    assert arbiter.arbiter.is_free


def test_ghost_release_is_ignored():
    qs = MajorityQuorumSystem(5)
    sim, sites, _ = build_ft(qs)
    arbiter = sites[0]
    # Nothing locked, releaser unknown: FT mode swallows it.
    arbiter._handle_release(3, Release(releaser=Priority(7, 3)))
    assert arbiter.arbiter.is_free


# -- requester-side quorum switch -------------------------------------------------


def test_requester_requorums_when_member_dies():
    qs = TreeQuorumSystem(7)
    sim, sites, collector = build_ft(qs, cs_duration=5.0)
    # Occupy the root so site 5's request is parked, then kill the root.
    sites[0].submit_request()
    sim.run(until=2.5)
    sites[5].submit_request()
    sim.run(until=4.0)
    assert 0 in sites[5].quorum
    for s in sites:
        if s.site_id != 0:
            s.notify_failure(0)
    sim.crash(0)
    assert 0 not in sites[5].quorum  # re-ran quorum construction
    sim.run(until=10_000)
    assert any(r.site == 5 and r.complete for r in collector.records)


def test_inaccessible_when_no_quorum_survives():
    qs = MajorityQuorumSystem(5)
    sim, sites, _ = build_ft(qs)
    site = sites[0]
    site.submit_request()
    sim.run(until=0.5)
    for dead in (1, 2, 3):  # 3 of 5 dead: no majority among {0, 4}
        site.notify_failure(dead)
    assert site.inaccessible


def test_ghost_grant_is_released_back():
    """A grant for a request we no longer run must free the arbiter."""
    qs = MajorityQuorumSystem(5)
    sim, sites, _ = build_ft(qs)
    site = sites[0]
    stale = Reply(arbiter=3, grantee=Priority(99, 0))
    site._record_reply(stale)
    sim.run(until=2.0)
    # Site 3 received a release for (99,0); being unlocked it ignored it —
    # the important part is that site 0 *sent* one rather than wedging 3.
    releases = [
        r
        for r in sim.trace.filter(kind="deliver", site=3)
        if isinstance(r.detail, Release) and r.detail.releaser == Priority(99, 0)
    ]
    assert releases


# -- end-to-end crash runs ---------------------------------------------------------


@pytest.mark.parametrize("victim", [0, 3, 6])
def test_crash_any_tree_site_preserves_liveness(victim):
    qs = TreeQuorumSystem(7)
    sim, sites, collector = build_ft(qs, cs_duration=0.2, seed=victim)
    for s in sites:
        for _ in range(4):
            sim.schedule(0.0, s.submit_request)
    CrashPlan().crash(victim, at_time=5.0, detection_delay=2.0).install(sim, sites)
    sim.start()
    sim.run(until=200_000)
    check_mutual_exclusion(collector.records)
    live_unserved = [
        r for r in collector.records if not r.complete and r.site != victim
    ]
    assert not live_unserved


def test_two_crashes_majority_quorums():
    qs = MajorityQuorumSystem(9)
    sim, sites, collector = build_ft(qs, cs_duration=0.2, seed=11)
    for s in sites:
        for _ in range(3):
            sim.schedule(0.0, s.submit_request)
    plan = CrashPlan().crash(2, 4.0, 1.5).crash(7, 9.0, 1.5)
    plan.install(sim, sites)
    sim.start()
    sim.run(until=200_000)
    check_mutual_exclusion(collector.records)
    live_unserved = [
        r for r in collector.records if not r.complete and r.site not in (2, 7)
    ]
    assert not live_unserved
