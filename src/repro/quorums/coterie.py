"""Coteries and quorum systems (paper Section 2).

A *coterie* ``C`` under a universe ``U`` of sites is a set of *quorums*
(site sets) satisfying:

1. non-emptiness: every quorum is a non-empty subset of ``U``;
2. minimality: no quorum contains another;
3. intersection: every pair of quorums shares at least one site.

The intersection property is what carries mutual exclusion; minimality is
an efficiency concern only (the paper notes this explicitly), so
:class:`Coterie` enforces intersection strictly and exposes minimality as a
queryable property plus a :meth:`Coterie.reduce` normalizer.

A :class:`QuorumSystem` is the operational object algorithms consume: it
assigns each site its ``req_set`` (the quorum it must lock) and can
re-derive quorums that avoid failed sites for the Section 6 fault-tolerance
protocol.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import combinations
from typing import AbstractSet, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError, CoterieError

SiteId = int
Quorum = FrozenSet[SiteId]


class Coterie:
    """An immutable, validated coterie.

    Parameters
    ----------
    quorums:
        The quorum sets. Duplicates are collapsed.
    universe:
        The site universe ``U``. Defaults to the union of the quorums.
    require_minimality:
        When True (default) a non-minimal family raises
        :class:`~repro.errors.CoterieError`; pass False to accept a
        dominated family (callers can normalize with :meth:`reduce`).
    """

    def __init__(
        self,
        quorums: Iterable[AbstractSet[SiteId]],
        universe: Optional[AbstractSet[SiteId]] = None,
        require_minimality: bool = True,
    ) -> None:
        unique: Set[Quorum] = {frozenset(q) for q in quorums}
        if not unique:
            raise CoterieError("a coterie must contain at least one quorum")
        self._quorums: Tuple[Quorum, ...] = tuple(
            sorted(unique, key=lambda q: (len(q), sorted(q)))
        )
        members = frozenset().union(*self._quorums)
        self._universe: Quorum = frozenset(universe) if universe is not None else members

        for q in self._quorums:
            if not q:
                raise CoterieError("quorums must be non-empty")
            if not q <= self._universe:
                raise CoterieError(f"quorum {sorted(q)} not within universe")
        self._check_intersection()
        if require_minimality and not self.is_minimal:
            raise CoterieError("coterie violates the minimality property")

    def _check_intersection(self) -> None:
        for g, h in combinations(self._quorums, 2):
            if not g & h:
                raise CoterieError(
                    f"intersection property violated: {sorted(g)} and {sorted(h)} "
                    "are disjoint"
                )

    # -- basic protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._quorums)

    def __iter__(self) -> Iterator[Quorum]:
        return iter(self._quorums)

    def __contains__(self, quorum: AbstractSet[SiteId]) -> bool:
        return frozenset(quorum) in set(self._quorums)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Coterie):
            return NotImplemented
        return set(self._quorums) == set(other._quorums)

    def __hash__(self) -> int:
        return hash(frozenset(self._quorums))

    def __repr__(self) -> str:
        inner = ", ".join("{" + ",".join(map(str, sorted(q))) + "}" for q in self._quorums)
        return f"Coterie([{inner}])"

    @property
    def quorums(self) -> Tuple[Quorum, ...]:
        """The quorums in deterministic (size, lexicographic) order."""
        return self._quorums

    @property
    def universe(self) -> Quorum:
        """The site universe ``U``."""
        return self._universe

    # -- structural properties -------------------------------------------------

    @property
    def is_minimal(self) -> bool:
        """True iff no quorum is a superset of another (Section 2, prop. 2)."""
        for g, h in combinations(self._quorums, 2):
            if g <= h or h <= g:
                return False
        return True

    def reduce(self) -> "Coterie":
        """Return the minimal coterie obtained by dropping dominated quorums."""
        minimal = [
            g
            for g in self._quorums
            if not any(h < g for h in self._quorums)
        ]
        return Coterie(minimal, universe=self._universe)

    def quorum_sizes(self) -> List[int]:
        """Sizes of all quorums, sorted ascending."""
        return sorted(len(q) for q in self._quorums)

    def degree_of(self, site: SiteId) -> int:
        """Number of quorums containing ``site`` (arbitration load)."""
        return sum(1 for q in self._quorums if site in q)

    def dominates(self, other: "Coterie") -> bool:
        """True iff this coterie dominates ``other``.

        ``C`` dominates ``D`` when ``C != D`` and every quorum of ``D``
        contains some quorum of ``C`` (Garcia-Molina & Barbara). Dominated
        coteries are strictly worse for availability; the fault-tolerance
        experiments use this to sanity-check constructions.
        """
        if self == other:
            return False
        return all(any(g <= h for g in self._quorums) for h in other._quorums)

    def is_quorum_alive(self, failed: AbstractSet[SiteId]) -> bool:
        """True iff some quorum survives when ``failed`` sites are down."""
        return any(not (q & failed) for q in self._quorums)


class QuorumSystem(ABC):
    """Assigns every site its ``req_set`` and supports failure avoidance.

    Subclasses implement a specific construction (grid, tree, hierarchical,
    ...). The mutual-exclusion algorithms only call :meth:`quorum_for`; the
    Section 6 recovery protocol additionally calls :meth:`quorum_avoiding`.
    """

    #: Registry name, overridden by subclasses.
    name: str = "abstract"

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ConfigurationError(f"need at least one site, got n={n}")
        self.n = n

    @property
    def sites(self) -> range:
        """The site universe ``0 .. n-1``."""
        return range(self.n)

    @abstractmethod
    def quorum_for(self, site: SiteId) -> Quorum:
        """The quorum (``req_set``) site ``site`` locks to enter the CS."""

    def quorum_avoiding(
        self, site: SiteId, failed: AbstractSet[SiteId]
    ) -> Optional[Quorum]:
        """A quorum for ``site`` avoiding ``failed`` sites, or ``None``.

        The default implementation searches the coterie for any surviving
        quorum; constructions with structural substitution rules (the tree
        algorithm) override this with their native procedure.
        """
        if not failed:
            return self.quorum_for(site)
        candidates = [q for q in self.coterie().quorums if not (q & failed)]
        if not candidates:
            return None
        return min(candidates, key=lambda q: (len(q), sorted(q)))

    def coterie(self) -> Coterie:
        """The coterie induced by the per-site quorums.

        Per-site assignments may repeat quorums and occasionally produce a
        non-minimal family (legal for the algorithm, which needs only
        intersection), so minimality is not enforced here.
        """
        return Coterie(
            {self.quorum_for(s) for s in self.sites},
            universe=frozenset(self.sites),
            require_minimality=False,
        )

    def mean_quorum_size(self) -> float:
        """Average ``req_set`` size across sites — the paper's ``K``."""
        return sum(len(self.quorum_for(s)) for s in self.sites) / self.n

    def max_quorum_size(self) -> int:
        """Largest per-site quorum size."""
        return max(len(self.quorum_for(s)) for s in self.sites)

    def validate(self) -> None:
        """Check pairwise intersection of all per-site quorums.

        Raises :class:`~repro.errors.CoterieError` on the first violating
        pair. O(n^2) set intersections; meant for tests and construction
        time, not hot paths.
        """
        quorums = [self.quorum_for(s) for s in self.sites]
        for (i, g), (j, h) in combinations(enumerate(quorums), 2):
            if not g & h:
                raise CoterieError(
                    f"req_set({i})={sorted(g)} and req_set({j})={sorted(h)} "
                    "do not intersect"
                )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n})"


class ExplicitQuorumSystem(QuorumSystem):
    """A quorum system given by an explicit per-site table.

    Useful in tests (hand-built coteries) and for the Section 6 recovery
    path, where a site that re-runs quorum construction pins its new
    ``req_set`` explicitly.
    """

    name = "explicit"

    def __init__(self, n: int, table: Sequence[AbstractSet[SiteId]]) -> None:
        super().__init__(n)
        if len(table) != n:
            raise ConfigurationError(
                f"table has {len(table)} entries for {n} sites"
            )
        self._table: List[Quorum] = [frozenset(q) for q in table]
        for site, q in enumerate(self._table):
            if not q:
                raise ConfigurationError(f"empty quorum for site {site}")
            if not q <= set(range(n)):
                raise ConfigurationError(
                    f"quorum for site {site} references unknown sites: {sorted(q)}"
                )

    def quorum_for(self, site: SiteId) -> Quorum:
        return self._table[site]
