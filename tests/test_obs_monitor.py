"""Runtime protocol monitor: clean runs stay clean, mutants get caught.

Three layers of evidence:

* **Clean runs** — the monitor attached to verified runs of three
  algorithms across seeds (including a lossy run under the reliable
  transport) reports zero violations, and the cao-singhal handoff
  samples it collects sit around one network hop (the paper's ``T``).
* **Mutant runs** — protocol sites with a deliberately broken rule
  (suppressing the transfer forward, double-granting an arbiter's
  permission) trigger the matching :class:`InvariantViolation`, with
  the trailing trace window attached for diagnosis.
* **Synthetic replays** — hand-built record sequences exercise checks
  that real runs (correct code) cannot reach, such as a CS overlap or
  an unreconciled post-crash grant.
"""

from __future__ import annotations

import pytest

from repro.common import Priority
from repro.core.messages import ProbeAck, Reply
from repro.core.site import CaoSinghalSite
from repro.errors import InvariantViolation
from repro.experiments.runner import RunConfig, run_mutex
from repro.metrics.collector import MetricsCollector
from repro.obs.monitor import MonitorTrace, ProtocolMonitor, WINDOW_SIZE
from repro.quorums.registry import make_quorum_system
from repro.sim.network import FaultModel, UniformDelay
from repro.sim.simulator import Simulator
from repro.sim.trace import TraceRecord
from repro.sim.transport import ReliableConfig
from repro.workload.driver import SaturationWorkload


def monitored_run(
    algorithm: str,
    seed: int,
    n_sites: int = 9,
    requests_per_site: int = 6,
    **kwargs,
):
    """A verified run with a strict monitor riding the trace stream."""
    monitor = ProtocolMonitor(strict=True)
    config = RunConfig(
        algorithm=algorithm,
        n_sites=n_sites,
        seed=seed,
        delay_model=UniformDelay(0.5, 1.5),
        workload=SaturationWorkload(requests_per_site),
        trace=monitor.trace,
        **kwargs,
    )
    return run_mutex(config), monitor


# -- clean runs -----------------------------------------------------------


@pytest.mark.parametrize("algorithm", ["cao-singhal", "maekawa", "ricart-agrawala"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_monitor_clean_on_verified_runs(algorithm, seed):
    result, monitor = monitored_run(algorithm, seed)
    assert monitor.violations == []
    assert monitor.records_seen > 0
    monitor.assert_clean()  # no-op on a clean run
    report = monitor.report(mean_delay_t=result.sim.network.mean_delay)
    assert report["violations"] == []
    assert report["records"] == monitor.records_seen


def test_monitor_handoff_delay_is_one_hop():
    """The paper's headline: a transfer-gated entry synchronizes in ~T.

    The sample mean sits a little above 1.0 T because the forwarded
    reply only gates entry when it arrives last — conditioning toward
    longer flights — but must stay well under the 2T release path.
    """
    samples = []
    means = []
    for seed in (0, 1, 2):
        result, monitor = monitored_run("cao-singhal", seed)
        assert monitor.handoff_delays, "saturation runs must exercise transfer"
        samples.extend(monitor.handoff_delays)
        mean_t = result.sim.network.mean_delay
        means.append(monitor.handoff_mean() / mean_t)
        report = monitor.report(mean_delay_t=mean_t)
        assert report["handoff_samples"] == len(monitor.handoff_delays)
        assert report["handoff_mean_in_t"] == pytest.approx(means[-1])
    overall = sum(samples) / len(samples)
    assert 0.5 <= overall <= 1.5, f"handoff mean {overall:.2f} not ~one hop"


@pytest.mark.parametrize("algorithm", ["cao-singhal", "maekawa"])
def test_monitor_clean_under_chaos_with_reliable_transport(algorithm):
    """20% loss behind the reliable layer still shows exactly-once FIFO
    delivery to the monitor: zero violations, by Theorem 1 + transport."""
    _, monitor = monitored_run(
        algorithm,
        seed=0,
        requests_per_site=4,
        fault_model=FaultModel(loss=0.2),
        reliable=ReliableConfig(),
    )
    assert monitor.violations == []
    assert monitor.records_seen > 0


def test_monitor_non_quorum_algorithms_have_no_handoffs():
    _, monitor = monitored_run("ricart-agrawala", seed=0)
    assert monitor.handoff_delays == []
    assert monitor.handoff_mean() is None


# -- mutant runs ----------------------------------------------------------


class TransferSuppressor(CaoSinghalSite):
    """Accepts transfer instructions but never honours them at exit —
    the silent degradation from T to 2T the monitor exists to catch."""

    def _exit_protocol(self) -> None:
        self.req.tran_stack.clear()
        super()._exit_protocol()


class DoubleGranter(CaoSinghalSite):
    """Grants the queue head as well as the rightful grantee."""

    def _grant(self, grantee: Priority) -> None:
        super()._grant(grantee)
        head = self.arbiter.req_queue.head()
        if head is not None and head != grantee:
            self.send(
                head.site,
                Reply(arbiter=self.site_id, grantee=head, epoch=self.arbiter.epoch),
            )


def mutant_run(site_cls, seed: int = 1, n_sites: int = 9):
    """Drive a mutated cao-singhal fleet under a strict monitor."""
    monitor = ProtocolMonitor(strict=True)
    qs = make_quorum_system("grid", n_sites)
    sim = Simulator(
        seed=seed, delay_model=UniformDelay(0.5, 1.5), trace=monitor.trace
    )
    collector = MetricsCollector()
    sites = [
        site_cls(i, qs.quorum_for(i), 0.05, collector) for i in range(n_sites)
    ]
    for site in sites:
        sim.add_node(site)
    SaturationWorkload(6).install(sim, sites)
    sim.start()
    sim.run(until=100_000.0, max_events=2_000_000)
    return monitor


def test_suppressed_transfer_raises_transfer_not_honoured():
    with pytest.raises(InvariantViolation) as exc_info:
        mutant_run(TransferSuppressor)
    violation = exc_info.value
    assert violation.invariant == "transfer-not-honoured"
    assert violation.window, "violation must carry its trace window"
    assert len(violation.window) <= WINDOW_SIZE
    assert all(isinstance(rec, TraceRecord) for rec in violation.window)
    assert violation.window[-1].time == violation.time


def test_double_grant_raises_arbiter_double_grant():
    with pytest.raises(InvariantViolation) as exc_info:
        mutant_run(DoubleGranter)
    violation = exc_info.value
    assert violation.invariant == "arbiter-double-grant"
    assert violation.window
    assert "[arbiter-double-grant]" in str(violation)


def test_non_strict_monitor_collects_instead_of_raising():
    monitor = ProtocolMonitor(strict=False)
    qs = make_quorum_system("grid", 9)
    sim = Simulator(seed=1, delay_model=UniformDelay(0.5, 1.5), trace=monitor.trace)
    collector = MetricsCollector()
    sites = [
        TransferSuppressor(i, qs.quorum_for(i), 0.05, collector) for i in range(9)
    ]
    for site in sites:
        sim.add_node(site)
    SaturationWorkload(6).install(sim, sites)
    sim.start()
    sim.run(until=100_000.0, max_events=2_000_000)
    assert monitor.violations
    assert all(v.invariant == "transfer-not-honoured" for v in monitor.violations)
    with pytest.raises(InvariantViolation):
        monitor.assert_clean()
    report = monitor.report()
    assert report["violations"][0]["invariant"] == "transfer-not-honoured"


# -- synthetic replays ----------------------------------------------------


def test_replay_flags_mutual_exclusion_overlap():
    monitor = ProtocolMonitor(strict=False)
    records = [
        TraceRecord(time=1.0, kind="cs_enter", site=3, detail=None),
        TraceRecord(time=1.5, kind="cs_enter", site=5, detail=None),
    ]
    violations = monitor.replay(records)
    assert len(violations) == 1
    assert violations[0].invariant == "mutual-exclusion"
    assert violations[0].site == 5
    assert "site(s) [3]" in violations[0].description


def test_replay_allows_sequential_cs_use():
    monitor = ProtocolMonitor(strict=True)
    monitor.replay(
        [
            TraceRecord(time=1.0, kind="cs_enter", site=3, detail=None),
            TraceRecord(time=2.0, kind="cs_exit", site=3, detail=None),
            TraceRecord(time=3.0, kind="cs_enter", site=5, detail=None),
        ]
    )
    assert monitor.violations == []


def test_replay_crash_clears_cs_occupancy():
    """A crashed occupant no longer excludes others (Section 6)."""
    monitor = ProtocolMonitor(strict=True)
    monitor.replay(
        [
            TraceRecord(time=1.0, kind="cs_enter", site=3, detail=None),
            TraceRecord(time=2.0, kind="crash", site=3, detail=None),
            TraceRecord(time=3.0, kind="cs_enter", site=5, detail=None),
        ]
    )
    assert monitor.violations == []


def test_replay_flags_unreconciled_post_crash_grant():
    """A recovered arbiter granting while its pre-crash permission is
    still live is a quorum-consistency violation, not a plain double
    grant."""
    a, b = Priority(1, 3), Priority(2, 5)
    monitor = ProtocolMonitor(strict=False)
    monitor.replay(
        [
            # Arbiter 0 grants request a...
            TraceRecord(
                time=1.0,
                kind="deliver",
                site=3,
                detail=Reply(arbiter=0, grantee=a, epoch=1),
            ),
            # ...then crashes (losing its lock state) and, after
            # recovering, grants b without probing a first.
            TraceRecord(time=2.0, kind="crash", site=0, detail=None),
            TraceRecord(
                time=5.0,
                kind="deliver",
                site=5,
                detail=Reply(arbiter=0, grantee=b, epoch=1),
            ),
        ]
    )
    assert [v.invariant for v in monitor.violations] == ["quorum-consistency"]


def test_replay_probe_ack_reconciles_recovered_arbiter():
    """The Section 6 recovery dialogue clears the crash suspicion: a
    positive probe-ack re-installs the holder, so the eventual re-grant
    after its release is clean."""
    a, b = Priority(1, 3), Priority(2, 5)
    monitor = ProtocolMonitor(strict=True)
    monitor.replay(
        [
            TraceRecord(
                time=1.0,
                kind="deliver",
                site=3,
                detail=Reply(arbiter=0, grantee=a, epoch=1),
            ),
            TraceRecord(time=2.0, kind="crash", site=0, detail=None),
            TraceRecord(time=3.0, kind="recover", site=0, detail=None),
            # Probe dialogue: site 3 confirms it still holds arbiter 0.
            TraceRecord(
                time=4.0,
                kind="deliver",
                site=0,
                detail=ProbeAck(arbiter=0, target=a, holds=True),
            ),
            # Re-granting the confirmed holder is consistent.
            TraceRecord(
                time=5.0,
                kind="deliver",
                site=3,
                detail=Reply(arbiter=0, grantee=a, epoch=2),
            ),
        ]
    )
    assert monitor.violations == []
    # A negative ack instead frees the permission for anyone.
    monitor2 = ProtocolMonitor(strict=True)
    monitor2.replay(
        [
            TraceRecord(
                time=1.0,
                kind="deliver",
                site=3,
                detail=Reply(arbiter=0, grantee=a, epoch=1),
            ),
            TraceRecord(time=2.0, kind="crash", site=0, detail=None),
            TraceRecord(
                time=4.0,
                kind="deliver",
                site=0,
                detail=ProbeAck(arbiter=0, target=a, holds=False),
            ),
            TraceRecord(
                time=5.0,
                kind="deliver",
                site=5,
                detail=Reply(arbiter=0, grantee=b, epoch=2),
            ),
        ]
    )
    assert monitor2.violations == []


def test_monitor_trace_capacity_still_feeds_monitor():
    """A bounded MonitorTrace drops stored records but never starves the
    monitor: violations are caught past the storage capacity."""
    monitor = ProtocolMonitor(strict=False)
    trace = MonitorTrace(monitor, capacity=1)
    trace.record(1.0, "cs_enter", 3)
    trace.record(1.5, "cs_enter", 5)
    assert len(list(trace)) == 1
    assert trace.dropped == 1
    assert [v.invariant for v in monitor.violations] == ["mutual-exclusion"]
