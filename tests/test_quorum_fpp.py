"""Unit tests for the finite-projective-plane construction."""

from __future__ import annotations

import itertools
import math

import pytest

from repro.errors import ConfigurationError
from repro.quorums.fpp import FPPQuorumSystem, plane_order_for


@pytest.mark.parametrize("n,q", [(7, 2), (13, 3), (31, 5), (57, 7)])
def test_plane_order(n, q):
    assert plane_order_for(n) == q


@pytest.mark.parametrize("bad", [1, 6, 9, 20, 21, 43])
def test_unsupported_sizes_rejected(bad):
    # 21 = 4^2+4+1 but 4 is not prime; 43 = 6^2+6+1 and no order-6 plane
    # exists; the others are not of the q^2+q+1 shape at all.
    with pytest.raises(ConfigurationError):
        FPPQuorumSystem(bad)


@pytest.mark.parametrize("n", [7, 13, 31])
def test_intersection_and_validation(n):
    FPPQuorumSystem(n).validate()


@pytest.mark.parametrize("n", [7, 13, 31, 57])
def test_quorum_size_is_q_plus_one_ish(n):
    f = FPPQuorumSystem(n)
    q = f.order
    for s in f.sites:
        # Line size q+1, plus possibly the self-insertion.
        assert q + 1 <= len(f.quorum_for(s)) <= q + 2
    assert f.mean_quorum_size() == pytest.approx(math.sqrt(n), rel=0.35)


def test_every_site_in_own_quorum():
    f = FPPQuorumSystem(13)
    for s in f.sites:
        assert s in f.quorum_for(s)


def test_lines_pairwise_intersect_in_exactly_one_structural_point():
    """Before the self-insertion, any two lines share exactly one point —
    the projective-plane property Maekawa's construction is built on."""
    from repro.quorums.fpp import _normalized_points

    q = 3
    points = _normalized_points(q)
    lines = [
        frozenset(
            j
            for j, pt in enumerate(points)
            if (pt[0] * ln[0] + pt[1] * ln[1] + pt[2] * ln[2]) % q == 0
        )
        for ln in points
    ]
    for a, b in itertools.combinations(lines, 2):
        assert len(a & b) == 1


def test_balanced_arbitration_load():
    f = FPPQuorumSystem(31)
    degrees = [sum(1 for s in f.sites if s2 in f.quorum_for(s)) for s2 in f.sites]
    # Perfectly balanced up to the self-insertion (each site in q+1 or
    # q+2 quorums).
    assert max(degrees) - min(degrees) <= 1


def test_quorum_avoiding_failures():
    f = FPPQuorumSystem(13)
    q = f.quorum_avoiding(0, frozenset({1, 2}))
    assert q is not None and not (q & {1, 2})
    # Plane quorums are fragile: enough failures kill every line.
    all_but_three = frozenset(range(10))
    assert f.quorum_avoiding(11, all_but_three) is None


def test_runs_under_the_core_algorithm():
    from repro.experiments.runner import RunConfig, run_mutex
    from repro.sim.network import ConstantDelay
    from repro.workload.driver import SaturationWorkload

    summaries = {}
    for algorithm in ("cao-singhal", "maekawa"):
        summaries[algorithm] = run_mutex(
            RunConfig(
                algorithm=algorithm,
                n_sites=13,
                quorum="fpp",
                seed=2,
                delay_model=ConstantDelay(1.0),
                cs_duration=1.0,
                workload=SaturationWorkload(8),
            )
        ).summary
    proposed, maekawa = summaries["cao-singhal"], summaries["maekawa"]
    assert proposed.unserved == 0
    # Plane quorums intersect in a single site, so fewer handoffs ride the
    # fast path than with grids (some replies arrive via yield chains):
    # the delay lands between T and Maekawa's 2T, much closer to T.
    assert proposed.sync_delay.p50 == pytest.approx(1.0, abs=1e-6)
    assert proposed.sync_delay_in_t < 1.4
    assert maekawa.sync_delay_in_t > 1.9
