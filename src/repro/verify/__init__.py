"""Dynamic verification of the paper's theorems and protocol invariants."""

from repro.verify.explore import ExplorationResult, build_world, explore
from repro.verify.checker import (
    check_arbiter_invariants,
    check_quiescent,
    lock_holders,
)
from repro.verify.invariants import (
    check_mutual_exclusion,
    check_progress,
    check_sequential_per_site,
)

__all__ = [
    "ExplorationResult",
    "build_world",
    "check_arbiter_invariants",
    "check_mutual_exclusion",
    "check_progress",
    "check_quiescent",
    "check_sequential_per_site",
    "explore",
    "lock_holders",
]
