"""Analytical Table 1 of the paper: message complexity and synchronization
delay of the proposed and existing algorithms.

:func:`analytic_table1` regenerates the paper's comparison table from the
closed forms; the E1 benchmark prints it next to the measured table.
"""

from __future__ import annotations

from typing import List

from repro.analysis.closed_form import (
    AlgorithmCosts,
    centralized_costs,
    lamport_costs,
    maekawa_costs,
    proposed_costs,
    raymond_costs,
    ricart_agrawala_costs,
    roucairol_carvalho_costs,
    singhal_heuristic_costs,
    suzuki_kasami_costs,
    tree_quorum_size,
)
from repro.metrics.tables import render_table


def analytic_table1(n: int) -> List[AlgorithmCosts]:
    """The paper's Table 1 rows, instantiated for ``n`` sites.

    The proposed algorithm appears twice — once with Maekawa grid quorums
    (``K = sqrt(N)``) and once with tree quorums (``K = log N``) — because
    Section 5.3 highlights that the scheme is quorum-agnostic.
    """
    tree_row = proposed_costs(n, k=tree_quorum_size(n))
    return [
        lamport_costs(n),
        ricart_agrawala_costs(n),
        roucairol_carvalho_costs(n),
        maekawa_costs(n),
        suzuki_kasami_costs(n),
        singhal_heuristic_costs(n),
        raymond_costs(n),
        centralized_costs(n),
        proposed_costs(n),
        AlgorithmCosts(
            name="cao-singhal (tree)",
            light_messages=tree_row.light_messages,
            heavy_messages_low=tree_row.heavy_messages_low,
            heavy_messages_high=tree_row.heavy_messages_high,
            sync_delay_t=tree_row.sync_delay_t,
            notes="K = log N tree quorums",
        ),
    ]


def render_analytic_table1(n: int) -> str:
    """Paper Table 1 as text, instantiated for ``n`` sites."""
    rows = []
    for c in analytic_table1(n):
        heavy = (
            f"{c.heavy_messages_low:.1f}"
            if c.heavy_messages_low == c.heavy_messages_high
            else f"{c.heavy_messages_low:.1f}-{c.heavy_messages_high:.1f}"
        )
        rows.append(
            [c.name, f"{c.light_messages:.1f}", heavy, f"{c.sync_delay_t:.1f}T", c.notes]
        )
    return render_table(
        ["algorithm", "msgs (light)", "msgs (heavy)", "sync delay", "notes"],
        rows,
        title=f"Table 1 (analytical), N = {n}",
    )
