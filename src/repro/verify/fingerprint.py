"""Run fingerprints: stable digests proving two kernels replay identically.

The simulation kernel's contract is that a run is a pure function of its
configuration and seed. Any refactor of the kernel hot path (event
representation, scheduling calling convention, trace plumbing) must keep
that function *byte-identical* — same event order, same RNG draws, same
metrics. This module reduces a whole run to two SHA-256 digests:

* ``summary_sha256`` — over the canonical JSON of the
  :class:`~repro.metrics.summary.RunSummary` (aggregate equivalence);
* ``trace_sha256`` — over every trace record in order, including message
  ``repr``\\ s (event-by-event equivalence, far stronger than aggregates).

``tests/data/golden_kernel_fingerprints.json`` pins the digests produced
by the pre-refactor kernel for 3 algorithms × 3 seeds; the differential
test layer asserts the current kernel still produces them. Regenerate
with ``python -m repro.verify.fingerprint`` only when a change is *meant*
to alter simulation behaviour (and say so in the commit).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List

from repro.experiments.runner import RunConfig, run_mutex

#: The pinned grid: every algorithm here runs with every seed.
GOLDEN_ALGORITHMS = ("cao-singhal", "maekawa", "ricart-agrawala")
GOLDEN_SEEDS = (0, 1, 2)


def golden_config(algorithm: str, seed: int) -> RunConfig:
    """The fixed configuration the golden fingerprints are pinned to."""
    from repro.sim.network import UniformDelay
    from repro.workload.driver import SaturationWorkload

    return RunConfig(
        algorithm=algorithm,
        n_sites=9,
        seed=seed,
        delay_model=UniformDelay(0.5, 1.5),
        cs_duration=0.05,
        workload=SaturationWorkload(5),
        trace=True,
    )


def fingerprint_run(config: RunConfig, loop=None) -> Dict[str, object]:
    """Run ``config`` and reduce the outcome to stable digests.

    ``loop`` is forwarded to :func:`run_mutex`, which lets the
    equivalence suite fingerprint the same configuration through an
    alternative main loop (e.g. one-event-at-a-time ``sim.step()``)
    and prove it byte-identical to the cohort loop.
    """
    result = run_mutex(config, loop)
    summary_json = json.dumps(result.summary.to_dict(), sort_keys=True)
    summary_sha = hashlib.sha256(summary_json.encode("utf-8")).hexdigest()

    trace_hash = hashlib.sha256()
    for rec in result.sim.trace:
        trace_hash.update(
            f"{rec.time!r}|{rec.kind}|{rec.site}|{rec.detail!r}\n".encode("utf-8")
        )
    return {
        "summary_sha256": summary_sha,
        "trace_sha256": trace_hash.hexdigest(),
        "trace_records": len(result.sim.trace),
        "events_processed": result.sim.events_processed,
        "final_time": repr(result.sim.last_event_time),
        "messages_sent": result.sim.network.stats.messages_sent,
    }


def golden_grid() -> Dict[str, Dict[str, object]]:
    """Fingerprints for the whole pinned grid, keyed ``algorithm/seed``."""
    out: Dict[str, Dict[str, object]] = {}
    for algorithm in GOLDEN_ALGORITHMS:
        for seed in GOLDEN_SEEDS:
            out[f"{algorithm}/{seed}"] = fingerprint_run(
                golden_config(algorithm, seed)
            )
    return out


def main(argv: List[str] = ()) -> int:  # pragma: no cover - maintenance tool
    """Regenerate ``tests/data/golden_kernel_fingerprints.json``."""
    import pathlib
    import sys

    repo_root = pathlib.Path(__file__).resolve().parents[3]
    target = repo_root / "tests" / "data" / "golden_kernel_fingerprints.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = golden_grid()
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    sys.stdout.write(f"wrote {len(payload)} fingerprints to {target}\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
