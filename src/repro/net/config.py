"""Run description shared by the launcher and every site process.

A :class:`NetRunConfig` is the single source of truth for one real-network
run: the launcher writes it to ``<run_dir>/config.json`` before spawning
anything, and each ``repro.net.site_proc`` child reconstructs its site
from that file plus its own ``--site`` index. Keeping the config a flat
JSON-serializable dataclass (no live objects) is what makes the
process-per-site model work — the only things crossing the process
boundary are this file, the address book, and datagrams.

Time scaling: the protocol stack thinks in simulation units (mean one-way
latency ``T`` = 1.0 under the default delay models). On the wire, one
unit maps to :attr:`NetRunConfig.unit` wall-clock seconds; timers and the
substrate clock apply the factor, so ``ReliableConfig.rto = 4.0`` means
"4 units" on both substrates and the algorithms never see wall seconds.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.errors import ConfigurationError
from repro.mutex.registry import get_algorithm_spec
from repro.sim.transport import ReliableConfig


@dataclass(frozen=True)
class NetRunConfig:
    """Everything one UDP run needs, JSON round-trippable.

    ``quorum`` may stay ``None`` for quorum algorithms — it then resolves
    to ``"grid"`` (the paper's default construction) exactly like the CLI
    does; non-quorum algorithms ignore it.
    """

    algorithm: str = "cao-singhal"
    n_sites: int = 5
    quorum: Optional[str] = None
    seed: int = 42
    requests_per_site: int = 3
    #: CS hold time in simulation units.
    cs_duration: float = 0.05
    #: Wall-clock seconds per simulation time unit.
    unit: float = 0.02
    #: Install the reliable-channel layer (strongly recommended: raw UDP
    #: guarantees neither delivery nor order, and the protocols assume
    #: exactly-once FIFO channels).
    reliable: bool = True
    #: Reliable-channel knobs, serialized field-by-field.
    rto: float = 4.0
    backoff: float = 2.0
    rto_max: float = 60.0
    max_retries: int = 12
    ack_delay: float = 0.5
    #: Fault injection at the datagram layer (seeded, per-site streams).
    loss: float = 0.0
    duplicate: float = 0.0
    chaos_seed: int = 0
    #: How long (in units) a drained site keeps serving arbiter/peer
    #: duties before the launcher is allowed to stop it.
    linger: float = 50.0
    #: Hard wall-clock cap on the whole run, in seconds.
    deadline: float = 60.0
    host: str = "127.0.0.1"

    def __post_init__(self) -> None:
        if self.n_sites < 1:
            raise ConfigurationError(
                f"n_sites must be >= 1, got {self.n_sites}"
            )
        if self.requests_per_site < 1:
            raise ConfigurationError(
                "requests_per_site must be >= 1, got "
                f"{self.requests_per_site}"
            )
        if self.unit <= 0:
            raise ConfigurationError(f"unit must be positive, got {self.unit}")
        if self.deadline <= 0:
            raise ConfigurationError(
                f"deadline must be positive, got {self.deadline}"
            )
        for name in ("cs_duration", "linger", "loss", "duplicate"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")
        get_algorithm_spec(self.algorithm)  # fail fast on unknown names

    # -- derived pieces ----------------------------------------------------

    def resolved_quorum(self) -> Optional[str]:
        """Quorum construction name, or ``None`` for non-quorum algorithms."""
        if not get_algorithm_spec(self.algorithm).needs_quorum:
            return None
        return self.quorum or "grid"

    def reliable_config(self) -> ReliableConfig:
        """The reliable-channel knobs as a :class:`ReliableConfig`."""
        return ReliableConfig(
            rto=self.rto,
            backoff=self.backoff,
            rto_max=self.rto_max,
            max_retries=self.max_retries,
            ack_delay=self.ack_delay,
        )

    # -- JSON round trip ---------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "NetRunConfig":
        try:
            row = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"bad net-run config JSON: {exc}") from exc
        if not isinstance(row, dict):
            raise ConfigurationError(
                f"net-run config must be a JSON object, got {type(row).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(row) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown net-run config keys: {', '.join(unknown)}"
            )
        return cls(**row)

    @classmethod
    def load(cls, path) -> "NetRunConfig":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


# -- run-directory layout ----------------------------------------------------
#
# The launcher and the site processes rendezvous purely through files in
# one run directory; these helpers are the single place the names live.


def config_path(run_dir) -> Path:
    return Path(run_dir) / "config.json"


def port_path(run_dir, site: int) -> Path:
    """Written by site ``site`` once its UDP socket is bound."""
    return Path(run_dir) / f"port-{site}"


def addrbook_path(run_dir) -> Path:
    """Written by the launcher once every port file exists."""
    return Path(run_dir) / "addrbook.json"


def trace_path(run_dir, site: int) -> Path:
    """Per-site ``repro-trace/1`` shard (write-through JSONL)."""
    return Path(run_dir) / f"trace-{site}.jsonl"


def done_path(run_dir, site: int) -> Path:
    """Written by site ``site`` when its workload has drained."""
    return Path(run_dir) / f"done-{site}.json"


def pid_path(run_dir, site: int) -> Path:
    """Written by the launcher after spawning site ``site`` (process
    mode), so fault-injection harnesses can target a specific child."""
    return Path(run_dir) / f"pid-{site}"


def merged_path(run_dir) -> Path:
    """The merged, monitor-replayable trace the launcher produces."""
    return Path(run_dir) / "merged.jsonl"
