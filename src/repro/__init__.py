"""repro — reference implementation of Cao & Singhal's delay-optimal
quorum-based distributed mutual exclusion (ICDCS 1998).

Public surface (see README for a tour):

* :mod:`repro.core` — the proposed algorithm (and its fault-tolerant
  extension).
* :mod:`repro.quorums` — coteries and every quorum construction the paper
  references.
* :mod:`repro.mutex` — the baseline algorithms of Table 1.
* :mod:`repro.sim` — the discrete-event simulation substrate.
* :mod:`repro.workload`, :mod:`repro.metrics`, :mod:`repro.verify` —
  load generation, measurement, and dynamic verification of the paper's
  theorems.
* :mod:`repro.experiments` — one module per table/figure of the paper.
* :mod:`repro.parallel` — the trial engine: seed fan-out over worker
  processes plus the content-addressed on-disk run cache.
"""

from repro.core.site import CaoSinghalSite
from repro.experiments.runner import (
    RunConfig,
    RunResult,
    quick_run,
    run_many,
    run_mutex,
)
from repro.metrics.summary import RunSummary
from repro.parallel import RunCache, TrialPool, run_trials
from repro.mutex.registry import algorithm_names, make_site
from repro.quorums.registry import make_quorum_system, quorum_system_names
from repro.sim.network import ConstantDelay, ExponentialDelay, UniformDelay
from repro.sim.simulator import Simulator

__version__ = "1.0.0"

__all__ = [
    "CaoSinghalSite",
    "ConstantDelay",
    "ExponentialDelay",
    "RunConfig",
    "RunCache",
    "RunResult",
    "RunSummary",
    "Simulator",
    "TrialPool",
    "UniformDelay",
    "algorithm_names",
    "make_quorum_system",
    "make_site",
    "quick_run",
    "quorum_system_names",
    "run_many",
    "run_mutex",
    "run_trials",
    "__version__",
]
