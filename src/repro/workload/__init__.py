"""Workload generation: arrival processes, key samplers, drivers, scenarios."""

from repro.workload.arrivals import (
    ArrivalProcess,
    BurstArrivals,
    KeySampler,
    PeriodicArrivals,
    PoissonArrivals,
    UniformKeys,
    ZipfKeys,
)
from repro.workload.driver import (
    OpenLoopWorkload,
    SaturationWorkload,
    StaggeredSingleShot,
    Workload,
)
from repro.workload.scenarios import heavy_load, light_load, moderate_load

__all__ = [
    "ArrivalProcess",
    "BurstArrivals",
    "KeySampler",
    "OpenLoopWorkload",
    "PeriodicArrivals",
    "PoissonArrivals",
    "SaturationWorkload",
    "StaggeredSingleShot",
    "UniformKeys",
    "Workload",
    "ZipfKeys",
    "heavy_load",
    "light_load",
    "moderate_load",
]
